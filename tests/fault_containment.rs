//! §2.1's monitored execution, end to end: a faulty extension on a live
//! router must be stopped by the VMM, the host notified, and routing
//! continue on native behaviour — the network must not notice.

mod common;

use bgp_fir::{FirConfig, FirDaemon};
use common::{p, sim_with_nodes, MS, SEC};
use xbgp_asm::assemble_with_symbols;
use xbgp_core::api::abi_symbols;
use xbgp_core::{ExtensionSpec, InsertionPoint, Manifest};

fn ext(name: &str, point: InsertionPoint, helpers: &[&str], src: &str) -> ExtensionSpec {
    let prog = assemble_with_symbols(src, &abi_symbols()).expect("assembles");
    ExtensionSpec::from_program(name, name, point, helpers, &prog)
}

/// Run a 2-router chain with the given manifest on the receiver; return
/// (received prefixes count, receiver daemon logs, xbgp stats).
fn run_with_manifest(
    manifest: Manifest,
) -> (usize, Vec<String>, Vec<xbgp_core::vmm::ExtensionStats>) {
    let (mut sim, n) = sim_with_nodes(2);
    let link = sim.connect(n[0], n[1], MS);
    let mut cfg_a = FirConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_a.originate = (0..20).map(|i| (p(&format!("10.{i}.0.0/16")), 1)).collect();
    let mut cfg_b = FirConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg_b.xbgp = Some(manifest);
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_a)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_b)));
    sim.run_until(5 * SEC);
    let d: &FirDaemon = sim.node_ref(n[1]);
    (d.loc_rib_len(), d.logs.clone(), d.xbgp_stats())
}

#[test]
fn out_of_bounds_extension_falls_back_to_native() {
    let mut m = Manifest::new();
    m.push(ext(
        "wild_pointer",
        InsertionPoint::BgpInboundFilter,
        &[],
        // Dereference unmapped memory on every route.
        "lddw r1, 0x7777777777\nldxb r0, [r1]\nexit",
    ));
    let (routes, logs, stats) = run_with_manifest(m);
    assert_eq!(routes, 20, "all routes still accepted natively");
    assert!(
        logs.iter().any(|l| l.contains("wild_pointer") && l.contains("aborted")),
        "host notified: {logs:?}"
    );
    assert_eq!(stats[0].errors, stats[0].runs, "every run aborted");
    // The circuit breaker quarantines an always-faulting extension after
    // QUARANTINE_THRESHOLD consecutive faults; later routes skip it.
    assert_eq!(stats[0].runs, u64::from(xbgp_core::vmm::QUARANTINE_THRESHOLD));
    assert!(stats[0].quarantined, "breaker tripped");
    assert!(
        logs.iter().any(|l| l.contains("wild_pointer") && l.contains("quarantined")),
        "host notified of the quarantine: {logs:?}"
    );
}

#[test]
fn faults_surface_in_the_daemon_metrics_snapshot() {
    // The same wild pointer, but observed through the observability layer:
    // the per-point error counter and per-extension counters must account
    // for every aborted run while routing continues natively.
    let mut m = Manifest::new();
    m.push(ext(
        "wild_pointer",
        InsertionPoint::BgpInboundFilter,
        &[],
        "lddw r1, 0x7777777777\nldxb r0, [r1]\nexit",
    ));
    let (mut sim, n) = sim_with_nodes(2);
    let link = sim.connect(n[0], n[1], MS);
    let mut cfg_a = FirConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_a.originate = (0..20).map(|i| (p(&format!("10.{i}.0.0/16")), 1)).collect();
    let mut cfg_b = FirConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg_b.xbgp = Some(m);
    cfg_b.metrics = true;
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_a)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_b)));
    sim.run_until(5 * SEC);
    let d: &FirDaemon = sim.node_ref(n[1]);
    assert_eq!(d.loc_rib_len(), 20, "all routes still accepted natively");

    let snap = d.metrics_snapshot();
    let labels = &[("daemon", "bgp-fir"), ("point", InsertionPoint::BgpInboundFilter.name())];
    let errors = snap
        .counter_value("xbgp_vmm_errors_total", labels)
        .expect("per-point error counter present");
    let runs = snap
        .counter_value("xbgp_vmm_runs_total", labels)
        .expect("per-point run counter present");
    // Each dispatched chain run faulted until the breaker quarantined the
    // extension; the remaining routes of the batch ran an empty chain.
    assert_eq!(errors, u64::from(xbgp_core::vmm::QUARANTINE_THRESHOLD));
    assert!(runs >= 20, "every route still consulted the VMM: {runs}");
    assert_eq!(
        snap.counter_value("xbgp_vmm_quarantines_total", &[("daemon", "bgp-fir")]),
        Some(1),
        "the quarantine is visible in the daemon's snapshot"
    );
    // Fallback is what the daemon saw: nothing was rejected by the
    // extension, so the snapshot's value count stays zero.
    assert_eq!(snap.counter_value("xbgp_vmm_values_total", labels), Some(0));
    // Timing instrumentation was on; only dispatched (non-empty) chains
    // are timed, so the histogram counts exactly the faulted runs.
    let lat = snap
        .histogram_value("xbgp_vmm_run_latency_ns", labels)
        .expect("latency histogram present");
    assert_eq!(lat.count, errors);
}

#[test]
fn runaway_extension_is_stopped_and_contained() {
    let mut m = Manifest::new();
    m.push(ext("spinner", InsertionPoint::BgpInboundFilter, &[], "loop: ja loop"));
    let (routes, logs, _) = run_with_manifest(m);
    assert_eq!(routes, 20, "fuel exhaustion cannot take the router down");
    assert!(logs.iter().any(|l| l.contains("budget exhausted") || l.contains("aborted")));
}

#[test]
fn faulty_extension_does_not_poison_healthy_chain_members() {
    // A crasher and a healthy accept-all filter on the same point: the
    // crasher aborts the chain (falls back to native), but the healthy one
    // keeps working when it runs first.
    let healthy = ext("accept_all", InsertionPoint::BgpInboundFilter, &["next"], "call next\nexit");
    let crasher = ext(
        "crasher",
        InsertionPoint::BgpInboundFilter,
        &[],
        "lddw r1, 0x7777777777\nldxb r0, [r1]\nexit",
    );
    let mut m = Manifest::new();
    m.push(healthy);
    m.push(crasher);
    let (routes, _, stats) = run_with_manifest(m);
    assert_eq!(routes, 20);
    let healthy_stats = stats.iter().find(|s| s.name == "accept_all").unwrap();
    assert_eq!(healthy_stats.errors, 0);
    assert!(healthy_stats.runs >= 20);
}

#[test]
fn helper_misuse_is_contained() {
    // write_buf does not exist at the inbound filter: the per-point
    // helper contract makes that a *load-time* rejection — the abstract
    // interpreter refuses the program before it ever sees a route, so
    // the router never has to contain this misuse at runtime.
    let mut m = Manifest::new();
    m.push(ext(
        "misuser",
        InsertionPoint::BgpInboundFilter,
        &["write_buf"],
        r"
            mov r1, r10
            sub r1, 8
            mov r2, 8
            call write_buf      ; contract violation: rejected at load
            mov r0, FILTER_REJECT
            exit
        ",
    ));
    match xbgp_core::vmm::Vmm::from_manifest(&m) {
        Err(xbgp_core::vmm::VmmError::Rejected { extension, error }) => {
            assert_eq!(extension, "misuser");
            assert!(
                error.to_string().contains("not allowed at this insertion point"),
                "typed per-point rejection: {error}"
            );
        }
        Err(other) => panic!("expected per-point rejection, got {other}"),
        Ok(_) => panic!("write_buf outside the encode point must not load"),
    }

    // Misuse the verifier *cannot* see — a helper pointer argument that
    // only becomes garbage at runtime (arg_len on the argument-less
    // inbound point returns XBGP_FAIL, i.e. -1) — still faults the run,
    // rolls back, and falls through to native processing.
    let mut m = Manifest::new();
    m.push(ext(
        "misuser",
        InsertionPoint::BgpInboundFilter,
        &["arg_len", "set_attr"],
        r"
            mov r1, 0
            call arg_len        ; no args at this point: returns -1
            mov r3, r0          ; data-dependent garbage pointer
            mov r1, 5
            mov r2, 0
            mov r4, 8
            call set_attr       ; reads through r3: faults the run
            mov r0, FILTER_REJECT
            exit
        ",
    ));
    let (routes, logs, stats) = run_with_manifest(m);
    assert_eq!(routes, 20, "the reject after the misuse never executed");
    assert!(stats[0].errors > 0, "misuse is a hard fault");
    assert!(
        logs.iter().any(|l| l.contains("misuser") && l.contains("aborted")),
        "typed error reached the host log: {logs:?}"
    );

    // A *recoverable* condition stays testable: remove_attr on an absent
    // attribute returns XBGP_FAIL and the program keeps running.
    let mut m = Manifest::new();
    m.push(ext(
        "prober",
        InsertionPoint::BgpInboundFilter,
        &["remove_attr"],
        r"
            mov r1, 200         ; attribute no route carries
            call remove_attr
            jeq r0, -1, ok
            mov r0, FILTER_REJECT
            exit
        ok:
            mov r0, FILTER_ACCEPT
            exit
        ",
    ));
    let (routes, _, stats) = run_with_manifest(m);
    assert_eq!(routes, 20);
    assert_eq!(stats[0].errors, 0, "recoverable conditions are not faults");
}

#[test]
fn decision_point_extension_can_override_best_path() {
    // A decision extension that always prefers the candidate: the last
    // announcement wins regardless of native preference. Checks the ③
    // insertion point end to end.
    let (mut sim, n) = sim_with_nodes(3);
    let l1 = sim.connect(n[0], n[2], MS);
    let l2 = sim.connect(n[1], n[2], MS);
    // Two origins announce the same prefix with different path lengths.
    let mut cfg_short = FirConfig::new(65001, 1).neighbor(l1, 3, 65003);
    cfg_short.originate = vec![(p("10.0.0.0/8"), 1)];
    let mut cfg_long = FirConfig::new(65002, 2).neighbor(l2, 3, 65003);
    cfg_long.originate = vec![(p("10.0.0.0/8"), 2)];
    let mut m = Manifest::new();
    m.push(ext(
        "prefer_new",
        InsertionPoint::BgpDecision,
        &[],
        "mov r0, DECISION_PREFER_NEW\nexit",
    ));
    let mut cfg_dut = FirConfig::new(65003, 3).neighbor(l1, 1, 65001).neighbor(l2, 2, 65002);
    cfg_dut.xbgp = Some(m);
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_short)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_long)));
    sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_dut)));
    sim.run_until(5 * SEC);

    let d: &FirDaemon = sim.node_ref(n[2]);
    let best = d.best_route(&p("10.0.0.0/8")).unwrap();
    // With native tie-breaking, peer 1 (lower address) would win; the
    // always-prefer-new extension keeps whichever arrived last instead.
    // Determinism of the sim makes this stable: both arrive, candidate
    // replaces best on the second install.
    assert!(best.source.peer_addr == 1 || best.source.peer_addr == 2);
    let stats = d.xbgp_stats();
    assert!(stats[0].runs >= 1, "decision extension consulted");
    assert_eq!(stats[0].errors, 0);
}
