//! §3.3 / Fig. 5 — BGP in the datacenter.
//!
//! Reproduces the paper's argument end-to-end on a 2-level Clos fabric:
//!
//! * With the classic **same-AS-number trick** (spines share one ASN,
//!   leaf pairs share ASNs), the double link failure L10–S1 and L13–S2
//!   *partitions* the fabric: the only remaining path is a valley and BGP
//!   loop detection kills it.
//! * With **distinct ASNs + the xBGP valley-free filter**, normal
//!   operation still forbids valleys for external prefixes, but the
//!   surviving valley path to an *internal* prefix is accepted, so the
//!   fabric stays connected after the double failure.

mod common;

use bgp_fir::{FirConfig, FirDaemon};
use common::{p, sim_with_nodes, MS, SEC};
use netsim::{LinkId, NodeId, Sim};
use xbgp_progs::valley_free;

/// Node indices in the Clos arrays.
const S1: usize = 0;
const S2: usize = 1;
const L10: usize = 2;
const L11: usize = 3;
const L12: usize = 4;
const L13: usize = 5;

struct Clos {
    sim: Sim,
    nodes: Vec<NodeId>,
    /// `links[(leaf, spine)]`.
    l10_s1: LinkId,
    l13_s2: LinkId,
}

/// Build the fabric: every leaf connects to both spines. A prefix inside
/// the DC (10.13.0.0/16, as if from a ToR below L13) is originated at L13;
/// an external prefix (192.0.2.0/24) is originated at S1 (its transit).
/// `asns[i]` gives each router's AS number; `xbgp` enables the filter.
fn build(asns: [u32; 6], xbgp: bool) -> Clos {
    let (mut sim, nodes) = sim_with_nodes(6);
    let ids: [u32; 6] = [201, 202, 110, 111, 112, 113]; // router ids
    let mut links = vec![];
    // (leaf, spine) in a fixed order.
    for leaf in [L10, L11, L12, L13] {
        for spine in [S1, S2] {
            links.push(((leaf, spine), sim.connect(nodes[leaf], nodes[spine], MS)));
        }
    }
    let link = |a: usize, b: usize| -> LinkId {
        links
            .iter()
            .find(|((l, s), _)| (*l == a && *s == b) || (*l == b && *s == a))
            .expect("link exists")
            .1
    };

    // The valley-free manifest: (below, above) ASN pairs for every
    // leaf-spine adjacency, only meaningful in the distinct-ASN setup.
    let pairs: Vec<(u32, u32)> = [L10, L11, L12, L13]
        .iter()
        .flat_map(|&leaf| [(asns[leaf], asns[S1]), (asns[leaf], asns[S2])])
        .collect();
    let manifest = valley_free::manifest(&pairs, p("10.0.0.0/8"));

    for i in 0..6 {
        let mut cfg = FirConfig::new(asns[i], ids[i]);
        let neighbors: Vec<usize> = if i == S1 || i == S2 {
            vec![L10, L11, L12, L13]
        } else {
            vec![S1, S2]
        };
        for nb in neighbors {
            cfg = cfg.neighbor(link(i, nb), ids[nb], asns[nb]);
        }
        if i == L13 {
            cfg.originate = vec![(p("10.13.0.0/16"), ids[L13])];
        }
        if i == S1 {
            cfg.originate = vec![(p("192.0.2.0/24"), ids[S1])];
        }
        if xbgp {
            cfg.xbgp = Some(manifest.clone());
        }
        sim.replace_node(nodes[i], Box::new(FirDaemon::new(cfg)));
    }
    let l10_s1 = link(L10, S1);
    let l13_s2 = link(L13, S2);
    Clos { sim, nodes, l10_s1, l13_s2 }
}

fn has_prefix(sim: &mut Sim, node: NodeId, prefix: &str) -> bool {
    sim.node_ref::<FirDaemon>(node).best_route(&p(prefix)).is_some()
}

#[test]
fn same_asn_trick_partitions_after_double_failure() {
    // Paper config: S1 = S2 = AS 65200; L10 = L11 = AS 65100;
    // L12 = L13 = AS 65110.
    let mut c = build([65200, 65200, 65100, 65100, 65110, 65110], false);
    c.sim.run_until(20 * SEC);
    assert!(
        has_prefix(&mut c.sim, c.nodes[L10], "10.13.0.0/16"),
        "healthy fabric: L10 reaches the prefix below L13"
    );

    // Fail L10–S1 and L13–S2 (the paper's double failure).
    c.sim.set_link_up(c.l10_s1, false);
    c.sim.set_link_up(c.l13_s2, false);
    c.sim.run_until(60 * SEC);
    assert!(
        !has_prefix(&mut c.sim, c.nodes[L10], "10.13.0.0/16"),
        "same-ASN loop detection kills the surviving valley path: partition"
    );
}

#[test]
fn xbgp_filter_keeps_connectivity_after_double_failure() {
    // Distinct ASNs everywhere + the valley-free extension.
    let mut c = build([65201, 65202, 65101, 65102, 65103, 65104], true);
    c.sim.run_until(20 * SEC);
    assert!(has_prefix(&mut c.sim, c.nodes[L10], "10.13.0.0/16"));

    c.sim.set_link_up(c.l10_s1, false);
    c.sim.set_link_up(c.l13_s2, false);
    c.sim.run_until(60 * SEC);
    assert!(
        has_prefix(&mut c.sim, c.nodes[L10], "10.13.0.0/16"),
        "the valley path survives for an internal destination"
    );
    // Verify it really is a valley path L10 → S2 → (L11|L12) → S1 → L13;
    // the router-id tiebreak picks L11 as S2's best among the two equal
    // leaf paths.
    {
        let d: &FirDaemon = c.sim.node_ref(c.nodes[L10]);
        let path: Vec<u32> =
            d.best_route(&p("10.13.0.0/16")).unwrap().attrs.as_path.asns().collect();
        assert_eq!(path, vec![65202, 65102, 65201, 65104]);
    }
}

#[test]
fn xbgp_filter_blocks_valleys_for_external_prefixes() {
    // Healthy fabric, distinct ASNs + filter: the external prefix
    // originated at S1 must reach the leaves directly (down move) but no
    // leaf-transited valley copy may reach S2. S2 still gets it via... no
    // path: S2's only sources are the leaves, all valleys. S2 must NOT
    // have the external prefix; leaves must.
    let mut c = build([65201, 65202, 65101, 65102, 65103, 65104], true);
    c.sim.run_until(20 * SEC);
    for leaf in [L10, L11, L12, L13] {
        assert!(
            has_prefix(&mut c.sim, c.nodes[leaf], "192.0.2.0/24"),
            "leaf {leaf} receives the external prefix from above"
        );
    }
    assert!(
        !has_prefix(&mut c.sim, c.nodes[S2], "192.0.2.0/24"),
        "S2 must not accept the external prefix through a leaf valley"
    );
    // The internal prefix, by contrast, does reach S2 through the fabric.
    assert!(has_prefix(&mut c.sim, c.nodes[S2], "10.13.0.0/16"));
}

#[test]
fn without_filter_distinct_asns_leak_valleys() {
    // Control experiment: distinct ASNs but no xBGP filter → the external
    // prefix leaks to S2 through a leaf (a valley), which is exactly what
    // operators must prevent.
    let mut c = build([65201, 65202, 65101, 65102, 65103, 65104], false);
    c.sim.run_until(20 * SEC);
    assert!(
        has_prefix(&mut c.sim, c.nodes[S2], "192.0.2.0/24"),
        "no filter, no same-ASN trick: the valley is accepted"
    );
}
