//! §3.4 — origin validation as extension code on both daemons.
//!
//! The extension validates every received prefix against the xBGP-layer
//! hash-backed ROA store, tallies verdicts in persistent memory, and never
//! discards — mirroring the paper's measurement setup ("checks the
//! validity of the origin of each prefix but does not discard the invalid
//! ones").

mod common;

use bgp_fir::{FirConfig, FirDaemon};
use bgp_wren::{WrenConfig, WrenDaemon};
use common::{p, sim_with_nodes, MS, SEC};
use rpki::Roa;
use xbgp_progs::origin_validation;

fn roas() -> Vec<Roa> {
    vec![
        Roa::new(p("10.1.0.0/16"), 16, 65001), // valid for origin 65001
        Roa::new(p("10.2.0.0/16"), 16, 64999), // wrong AS: invalid
                                               // 10.3.0.0/16 has no ROA: not found
    ]
}

#[test]
fn ov_extension_counts_and_keeps_routes_on_fir() {
    let (mut sim, n) = sim_with_nodes(2);
    let link = sim.connect(n[0], n[1], MS);
    let mut cfg_origin = FirConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_origin.originate =
        vec![(p("10.1.0.0/16"), 1), (p("10.2.0.0/16"), 1), (p("10.3.0.0/16"), 1)];
    let mut cfg_dut = FirConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg_dut.xbgp = Some(origin_validation::manifest());
    cfg_dut.xbgp_roas = Some(roas());
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_origin)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_dut)));
    sim.run_until(5 * SEC);

    let dut: &FirDaemon = sim.node_ref(n[1]);
    assert_eq!(dut.loc_rib_len(), 3, "nothing discarded");
    let raw = dut
        .xbgp_shared_read(origin_validation::GROUP, origin_validation::COUNTERS_KEY)
        .expect("counters persisted");
    assert_eq!(origin_validation::decode_counters(&raw), (1, 1, 1));
}

#[test]
fn ov_extension_counts_and_keeps_routes_on_wren() {
    let (mut sim, n) = sim_with_nodes(2);
    let link = sim.connect(n[0], n[1], MS);
    let mut cfg_origin = WrenConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_origin.originate =
        vec![(p("10.1.0.0/16"), 1), (p("10.2.0.0/16"), 1), (p("10.3.0.0/16"), 1)];
    let mut cfg_dut = WrenConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg_dut.xbgp = Some(origin_validation::manifest());
    cfg_dut.xbgp_roas = Some(roas());
    sim.replace_node(n[0], Box::new(WrenDaemon::new(cfg_origin)));
    sim.replace_node(n[1], Box::new(WrenDaemon::new(cfg_dut)));
    sim.run_until(5 * SEC);

    let dut: &WrenDaemon = sim.node_ref(n[1]);
    assert_eq!(dut.table_len(), 3, "nothing discarded");
    let raw = dut
        .xbgp_shared_read(origin_validation::GROUP, origin_validation::COUNTERS_KEY)
        .expect("counters persisted");
    assert_eq!(origin_validation::decode_counters(&raw), (1, 1, 1));
}

#[test]
fn extension_and_native_validation_agree() {
    // The same routes validated natively (FIR trie) and by the extension
    // (hash table through the helper) must produce identical tallies —
    // structural difference, same semantics.
    let (mut sim, n) = sim_with_nodes(3);
    let l1 = sim.connect(n[0], n[1], MS);
    let l2 = sim.connect(n[0], n[2], MS);
    let mut cfg_origin = FirConfig::new(65001, 1).neighbor(l1, 2, 65002).neighbor(l2, 3, 65003);
    cfg_origin.originate =
        vec![(p("10.1.0.0/16"), 1), (p("10.2.0.0/16"), 1), (p("10.3.0.0/16"), 1)];
    // DUT A: native trie validation.
    let mut cfg_native = FirConfig::new(65002, 2).neighbor(l1, 1, 65001);
    cfg_native.native_rov = Some(roas());
    // DUT B: extension validation.
    let mut cfg_ext = FirConfig::new(65003, 3).neighbor(l2, 1, 65001);
    cfg_ext.xbgp = Some(origin_validation::manifest());
    cfg_ext.xbgp_roas = Some(roas());
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_origin)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_native)));
    sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_ext)));
    sim.run_until(5 * SEC);

    let native: &FirDaemon = sim.node_ref(n[1]);
    let native_counts =
        (native.stats.rov_valid, native.stats.rov_invalid, native.stats.rov_not_found);
    let ext: &FirDaemon = sim.node_ref(n[2]);
    let raw = ext
        .xbgp_shared_read(origin_validation::GROUP, origin_validation::COUNTERS_KEY)
        .unwrap();
    assert_eq!(origin_validation::decode_counters(&raw), native_counts);
    assert_eq!(native_counts, (1, 1, 1));
}
