//! Property tests: the two daemons' internal attribute representations
//! are observationally equivalent at the xBGP boundary.
//!
//! FIR parses to host-order structs; WREN keeps wire-order `ea_list`s.
//! For any attribute set, both must (a) re-encode to the same neutral
//! typed form and (b) answer `get_attr` with byte-identical payloads —
//! otherwise "the same bytecode on both implementations" would silently
//! mean different inputs.

use bgp_fir::attrs::FirAttrs;
use bgp_wren::ealist::EaList;
use proptest::prelude::*;
use xbgp_wire::attr::Origin;
use xbgp_wire::{AsPath, AsSegment, PathAttr};

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(1u32..1_000_000, 1..6).prop_map(AsSegment::Sequence),
            proptest::collection::vec(1u32..1_000_000, 1..4).prop_map(AsSegment::Set),
        ],
        0..3,
    )
    .prop_map(|segments| AsPath { segments })
}

/// A well-formed attribute vector (mandatory attributes present, no
/// duplicates — the representations may canonicalize duplicates
/// differently, which the wire codec already rejects upstream).
fn arb_attrs() -> impl Strategy<Value = Vec<PathAttr>> {
    (
        prop_oneof![Just(Origin::Igp), Just(Origin::Egp), Just(Origin::Incomplete)],
        arb_as_path(),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec(any::<u32>(), 0..5),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec(any::<u32>(), 0..4),
        proptest::option::of((11u8..=200, proptest::collection::vec(any::<u8>(), 0..32))),
    )
        .prop_map(|(origin, path, nh, med, lp, comms, orig_id, cluster, unknown)| {
            let mut attrs =
                vec![PathAttr::Origin(origin), PathAttr::AsPath(path), PathAttr::NextHop(nh)];
            if let Some(m) = med {
                attrs.push(PathAttr::Med(m));
            }
            if let Some(l) = lp {
                attrs.push(PathAttr::LocalPref(l));
            }
            if !comms.is_empty() {
                attrs.push(PathAttr::Communities(comms));
            }
            if let Some(o) = orig_id {
                attrs.push(PathAttr::OriginatorId(o));
            }
            if !cluster.is_empty() {
                attrs.push(PathAttr::ClusterList(cluster));
            }
            if let Some((code, value)) = unknown {
                attrs.push(PathAttr::Unknown {
                    flags: xbgp_wire::AttrFlags::OPT_TRANS,
                    code,
                    value,
                });
            }
            attrs
        })
}

proptest! {
    /// Both representations re-encode the natively understood attributes
    /// to the same typed set (ordering canonicalized by attribute code).
    #[test]
    fn to_wire_agrees(attrs in arb_attrs()) {
        let fir = FirAttrs::from_wire(&attrs).expect("fir parses");
        let wren = EaList::from_wire(&attrs).expect("wren parses");
        let mut f = fir.to_wire();
        let mut w = wren.to_wire();
        f.sort_by_key(PathAttr::code);
        w.sort_by_key(PathAttr::code);
        prop_assert_eq!(f, w);
    }

    /// `get_attr` payloads (the bytes extension code actually sees) are
    /// identical across implementations for every attribute code.
    #[test]
    fn neutral_payloads_agree(attrs in arb_attrs()) {
        let fir = FirAttrs::from_wire(&attrs).expect("fir parses");
        let wren = EaList::from_wire(&attrs).expect("wren parses");
        for code in 1u8..=200 {
            let f = fir.neutral_payload(code).map(|(_, v)| v);
            let w = wren.get(code).map(|e| e.raw.clone());
            prop_assert_eq!(f, w, "attribute code {}", code);
        }
    }

    /// Decision-relevant accessors agree: hop count, origin ASN, loop
    /// detection — the inputs to best-path selection.
    #[test]
    fn decision_accessors_agree(attrs in arb_attrs(), probe: u32) {
        let fir = FirAttrs::from_wire(&attrs).expect("fir parses");
        let wren = EaList::from_wire(&attrs).expect("wren parses");
        prop_assert_eq!(fir.as_path.hop_count(), wren.as_path_hops());
        prop_assert_eq!(fir.as_path.origin_asn(), wren.origin_asn());
        prop_assert_eq!(fir.as_path.contains(probe), wren.as_path_contains(probe));
        prop_assert_eq!(fir.med, wren.med());
        prop_assert_eq!(fir.local_pref, wren.local_pref());
        prop_assert_eq!(fir.originator_id, wren.originator_id());
        prop_assert_eq!(fir.cluster_list.clone(), wren.cluster_list());
    }

    /// eBGP export transforms agree: prepending the local ASN through
    /// FIR's typed path and WREN's raw in-place splice yields the same
    /// wire bytes.
    #[test]
    fn prepend_transforms_agree(attrs in arb_attrs(), asn in 1u32..100_000) {
        let fir = FirAttrs::from_wire(&attrs).expect("fir parses");
        let mut wren = EaList::from_wire(&attrs).expect("wren parses");
        let typed = fir.as_path.prepend(asn);
        wren.as_path_prepend(asn);
        prop_assert_eq!(typed, wren.as_path());
    }
}
