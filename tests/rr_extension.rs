//! §3.2 — route reflection implemented entirely as extension code, on
//! both daemons, compared against the native implementation.

mod common;

use bgp_fir::{FirConfig, FirDaemon};
use bgp_wren::{WrenConfig, WrenDaemon};
use common::{p, sim_with_nodes, MS, SEC};
use xbgp_progs::route_reflect;

/// What the downstream sees after reflection: `(originator_id,
/// cluster_list, local_pref, prefix present)`.
#[derive(Debug, PartialEq)]
struct ReflectedView {
    originator: Option<u32>,
    clusters: Vec<u32>,
    local_pref: Option<u32>,
}

/// Run the Fig. 3 chain (up --iBGP-- DUT --iBGP-- down) with FIR and
/// return the downstream's view of the reflected route.
fn run_fir(extension: bool) -> ReflectedView {
    let (mut sim, n) = sim_with_nodes(3);
    let l_up = sim.connect(n[0], n[1], MS);
    let l_down = sim.connect(n[1], n[2], MS);

    let mut cfg_up = FirConfig::new(65000, 1).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("198.51.100.0/24"), 1)];
    let mut cfg_rr = FirConfig::new(65000, 2).rr_client(l_up, 1, 65000).rr_client(l_down, 3, 65000);
    if extension {
        cfg_rr.native_rr = false;
        cfg_rr.xbgp = Some(route_reflect::manifest());
    } else {
        cfg_rr.native_rr = true;
    }
    let cfg_down = FirConfig::new(65000, 3).neighbor(l_down, 2, 65000);
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_up)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_rr)));
    sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_down)));
    sim.run_until(5 * SEC);

    let down: &FirDaemon = sim.node_ref(n[2]);
    let best = down
        .best_route(&p("198.51.100.0/24"))
        .expect("route reflected to the downstream client");
    ReflectedView {
        originator: best.attrs.originator_id,
        clusters: best.attrs.cluster_list.clone(),
        local_pref: best.attrs.local_pref,
    }
}

/// Same, with WREN everywhere.
fn run_wren(extension: bool) -> ReflectedView {
    let (mut sim, n) = sim_with_nodes(3);
    let l_up = sim.connect(n[0], n[1], MS);
    let l_down = sim.connect(n[1], n[2], MS);

    let mut cfg_up = WrenConfig::new(65000, 1).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("198.51.100.0/24"), 1)];
    let mut cfg_rr =
        WrenConfig::new(65000, 2).rr_client(l_up, 1, 65000).rr_client(l_down, 3, 65000);
    if extension {
        cfg_rr.rr_enabled = false;
        cfg_rr.xbgp = Some(route_reflect::manifest());
    } else {
        cfg_rr.rr_enabled = true;
    }
    let cfg_down = WrenConfig::new(65000, 3).neighbor(l_down, 2, 65000);
    sim.replace_node(n[0], Box::new(WrenDaemon::new(cfg_up)));
    sim.replace_node(n[1], Box::new(WrenDaemon::new(cfg_rr)));
    sim.replace_node(n[2], Box::new(WrenDaemon::new(cfg_down)));
    sim.run_until(5 * SEC);

    let down: &WrenDaemon = sim.node_ref(n[2]);
    let best = down
        .best_route(&p("198.51.100.0/24"))
        .expect("route reflected to the downstream client");
    ReflectedView {
        originator: best.eattrs.originator_id(),
        clusters: best.eattrs.cluster_list(),
        local_pref: best.eattrs.local_pref(),
    }
}

#[test]
fn extension_rr_equals_native_rr_on_fir() {
    let native = run_fir(false);
    let ext = run_fir(true);
    assert_eq!(
        native,
        ReflectedView {
            originator: Some(1),
            clusters: vec![2],
            local_pref: Some(100)
        }
    );
    assert_eq!(ext, native, "extension reflection is wire-identical to native");
}

#[test]
fn extension_rr_equals_native_rr_on_wren() {
    let native = run_wren(false);
    let ext = run_wren(true);
    assert_eq!(
        native,
        ReflectedView {
            originator: Some(1),
            clusters: vec![2],
            local_pref: Some(100)
        }
    );
    assert_eq!(ext, native);
}

#[test]
fn extension_rr_loop_prevention_works() {
    // Client originates; two extension reflectors in a triangle with the
    // client. Without the inbound loop checks the route would circulate.
    let (mut sim, n) = sim_with_nodes(3);
    let l1 = sim.connect(n[0], n[1], MS); // client — rr1
    let l2 = sim.connect(n[1], n[2], MS); // rr1 — rr2
    let l3 = sim.connect(n[2], n[0], MS); // rr2 — client

    let mut cfg_client = FirConfig::new(65000, 1).neighbor(l1, 2, 65000).neighbor(l3, 3, 65000);
    cfg_client.originate = vec![(p("10.9.9.0/24"), 1)];
    let mut cfg_rr1 = FirConfig::new(65000, 2).rr_client(l1, 1, 65000).neighbor(l2, 3, 65000);
    cfg_rr1.xbgp = Some(route_reflect::manifest());
    let mut cfg_rr2 = FirConfig::new(65000, 3).rr_client(l3, 1, 65000).neighbor(l2, 2, 65000);
    cfg_rr2.xbgp = Some(route_reflect::manifest());
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_client)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_rr1)));
    sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_rr2)));
    sim.run_until(10 * SEC);

    for i in [1, 2] {
        let d: &FirDaemon = sim.node_ref(n[i]);
        assert_eq!(d.loc_rib_prefixes(), vec![p("10.9.9.0/24")], "reflector {i}");
    }
    let client: &FirDaemon = sim.node_ref(n[0]);
    assert!(
        client.best_route(&p("10.9.9.0/24")).unwrap().source.local,
        "the client never prefers a reflected copy of its own route"
    );
}

#[test]
fn non_client_to_non_client_is_refused_by_extension() {
    // up (non-client) — DUT — down (non-client): extension RR must refuse
    // iBGP→iBGP between non-clients, like native RR does.
    let (mut sim, n) = sim_with_nodes(3);
    let l_up = sim.connect(n[0], n[1], MS);
    let l_down = sim.connect(n[1], n[2], MS);
    let mut cfg_up = FirConfig::new(65000, 1).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("198.51.100.0/24"), 1)];
    let mut cfg_rr = FirConfig::new(65000, 2).neighbor(l_up, 1, 65000).neighbor(l_down, 3, 65000);
    cfg_rr.xbgp = Some(route_reflect::manifest());
    let cfg_down = FirConfig::new(65000, 3).neighbor(l_down, 2, 65000);
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_up)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_rr)));
    sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_down)));
    sim.run_until(5 * SEC);
    assert!(
        sim.node_ref::<FirDaemon>(n[2]).loc_rib_prefixes().is_empty(),
        "no reflection between non-clients"
    );
}

#[test]
fn cross_implementation_reflection_chain() {
    // A WREN client's route reflected by a FIR extension reflector to a
    // WREN downstream: implementations and feature provenance both mixed.
    let (mut sim, n) = sim_with_nodes(3);
    let l_up = sim.connect(n[0], n[1], MS);
    let l_down = sim.connect(n[1], n[2], MS);
    let mut cfg_up = WrenConfig::new(65000, 1).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("198.51.100.0/24"), 1)];
    let mut cfg_rr = FirConfig::new(65000, 2).rr_client(l_up, 1, 65000).rr_client(l_down, 3, 65000);
    cfg_rr.xbgp = Some(route_reflect::manifest());
    let cfg_down = WrenConfig::new(65000, 3).neighbor(l_down, 2, 65000);
    sim.replace_node(n[0], Box::new(WrenDaemon::new(cfg_up)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_rr)));
    sim.replace_node(n[2], Box::new(WrenDaemon::new(cfg_down)));
    sim.run_until(5 * SEC);

    let down: &WrenDaemon = sim.node_ref(n[2]);
    let best = down.best_route(&p("198.51.100.0/24")).expect("reflected");
    assert_eq!(best.eattrs.originator_id(), Some(1));
    assert_eq!(best.eattrs.cluster_list(), vec![2]);
}
