//! Shared topology helpers for the integration tests.

use netsim::{NodeId, Sim, SimConfig};
use xbgp_wire::Ipv4Prefix;

pub const MS: u64 = 1_000_000;
pub const SEC: u64 = 1_000_000_000;

pub fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

/// Stand-in node used while wiring topologies; must be replaced before the
/// simulation starts.
pub struct Placeholder;

impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A simulator plus `n` placeholder nodes.
pub fn sim_with_nodes(n: usize) -> (Sim, Vec<NodeId>) {
    let mut sim = Sim::new(SimConfig::default());
    let nodes = (0..n).map(|_| sim.add_node(Box::new(Placeholder))).collect();
    (sim, nodes)
}
