//! The paper's central claim: the *same* xBGP bytecode runs unmodified on
//! two very different BGP implementations.
//!
//! Each test builds the same topology twice — once with FIR as the device
//! under test, once with WREN — loads byte-identical manifests, and
//! asserts identical protocol-visible behaviour.

mod common;

use bgp_fir::{FirConfig, FirDaemon};
use bgp_wren::{WrenConfig, WrenDaemon};
use common::{p, sim_with_nodes, MS, SEC};
use xbgp_progs::{geoloc, igp_filter, GEOLOC_ATTR};

/// The §3.1 filter loaded into both daemons rejects the same route for
/// the same reason (nexthop IGP metric above 1000).
#[test]
fn igp_filter_same_bytecode_both_daemons() {
    // Topology: origin —iBGP— DUT —eBGP— peer, IGP metric to the route's
    // nexthop controlled by the link metric origin—DUT.
    // The DUT must not export the route when the metric exceeds 1000.
    for metric in [10u32, 5000] {
        let expect_exported = metric <= 1000;

        // ---- FIR as DUT ----
        {
            let (mut sim, n) = sim_with_nodes(3);
            let l1 = sim.connect(n[0], n[1], MS);
            let l2 = sim.connect(n[1], n[2], MS);
            let shared_igp = igp::shared({
                let mut net = igp::IgpNetwork::new();
                net.add_link(1, 2, metric);
                net
            });
            let mut cfg_origin = FirConfig::new(65000, 1).neighbor(l1, 2, 65000);
            cfg_origin.originate = vec![(p("203.0.113.0/24"), 1)];
            let mut cfg_dut =
                FirConfig::new(65000, 2).neighbor(l1, 1, 65000).neighbor(l2, 3, 65009);
            cfg_dut.xbgp = Some(igp_filter::manifest());
            cfg_dut.igp = Some(shared_igp.clone());
            let cfg_peer = FirConfig::new(65009, 3).neighbor(l2, 2, 65000);
            sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_origin)));
            sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_dut)));
            sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_peer)));
            sim.run_until(5 * SEC);
            let got = !sim.node_ref::<FirDaemon>(n[2]).loc_rib_prefixes().is_empty();
            assert_eq!(got, expect_exported, "FIR, metric {metric}");
        }

        // ---- WREN as DUT, identical bytecode ----
        {
            let (mut sim, n) = sim_with_nodes(3);
            let l1 = sim.connect(n[0], n[1], MS);
            let l2 = sim.connect(n[1], n[2], MS);
            let shared_igp = igp::shared({
                let mut net = igp::IgpNetwork::new();
                net.add_link(1, 2, metric);
                net
            });
            let mut cfg_origin = WrenConfig::new(65000, 1).neighbor(l1, 2, 65000);
            cfg_origin.originate = vec![(p("203.0.113.0/24"), 1)];
            let mut cfg_dut =
                WrenConfig::new(65000, 2).neighbor(l1, 1, 65000).neighbor(l2, 3, 65009);
            cfg_dut.xbgp = Some(igp_filter::manifest());
            cfg_dut.igp = Some(shared_igp.clone());
            let cfg_peer = WrenConfig::new(65009, 3).neighbor(l2, 2, 65000);
            sim.replace_node(n[0], Box::new(WrenDaemon::new(cfg_origin)));
            sim.replace_node(n[1], Box::new(WrenDaemon::new(cfg_dut)));
            sim.replace_node(n[2], Box::new(WrenDaemon::new(cfg_peer)));
            sim.run_until(5 * SEC);
            let got = !sim.node_ref::<WrenDaemon>(n[2]).nets().is_empty();
            assert_eq!(got, expect_exported, "WREN, metric {metric}");
        }
    }
}

/// GeoLoc end-to-end on FIR: stamped at eBGP ingress, carried over iBGP
/// by the encode bytecode, visible downstream.
#[test]
fn geoloc_end_to_end_on_fir() {
    let (mut sim, n) = sim_with_nodes(3);
    let l1 = sim.connect(n[0], n[1], MS); // eBGP ingress
    let l2 = sim.connect(n[1], n[2], MS); // iBGP inside the AS

    let mut cfg_ext = FirConfig::new(65009, 9).neighbor(l1, 1, 65000);
    cfg_ext.originate = vec![(p("198.51.100.0/24"), 9)];
    let mut cfg_border = FirConfig::new(65000, 1).neighbor(l1, 9, 65009).neighbor(l2, 2, 65000);
    cfg_border.xbgp = Some(geoloc::manifest(None));
    cfg_border.xtra = vec![("geo".into(), geoloc::coords_bytes(50_846, 4_352))];
    let cfg_inner = FirConfig::new(65000, 2).neighbor(l2, 1, 65000);
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_ext)));
    sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_border)));
    sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_inner)));
    sim.run_until(5 * SEC);

    let inner: &FirDaemon = sim.node_ref(n[2]);
    let best = inner.best_route(&p("198.51.100.0/24")).expect("route arrives");
    let geoloc_attr = best
        .attrs
        .extra
        .iter()
        .find(|(code, _, _)| *code == GEOLOC_ATTR)
        .expect("GeoLoc attribute crossed the iBGP hop");
    assert_eq!(geoloc_attr.2, geoloc::coords_bytes(50_846, 4_352));
}

/// The same GeoLoc bytecode on WREN produces the same wire behaviour.
#[test]
fn geoloc_end_to_end_on_wren() {
    let (mut sim, n) = sim_with_nodes(3);
    let l1 = sim.connect(n[0], n[1], MS);
    let l2 = sim.connect(n[1], n[2], MS);

    let mut cfg_ext = WrenConfig::new(65009, 9).neighbor(l1, 1, 65000);
    cfg_ext.originate = vec![(p("198.51.100.0/24"), 9)];
    let mut cfg_border = WrenConfig::new(65000, 1).neighbor(l1, 9, 65009).neighbor(l2, 2, 65000);
    cfg_border.xbgp = Some(geoloc::manifest(None));
    cfg_border.xtra = vec![("geo".into(), geoloc::coords_bytes(50_846, 4_352))];
    let cfg_inner = WrenConfig::new(65000, 2).neighbor(l2, 1, 65000);
    sim.replace_node(n[0], Box::new(WrenDaemon::new(cfg_ext)));
    sim.replace_node(n[1], Box::new(WrenDaemon::new(cfg_border)));
    sim.replace_node(n[2], Box::new(WrenDaemon::new(cfg_inner)));
    sim.run_until(5 * SEC);

    let inner: &WrenDaemon = sim.node_ref(n[2]);
    let best = inner.best_route(&p("198.51.100.0/24")).expect("route arrives");
    let ea = best.eattrs.get(GEOLOC_ATTR).expect("GeoLoc crossed the iBGP hop");
    assert_eq!(ea.raw, geoloc::coords_bytes(50_846, 4_352));
}

/// GeoLoc distance filtering: a second border router drops routes learned
/// too far away (the paper's "more than x kilometers" policy).
#[test]
fn geoloc_distance_filter_drops_far_routes() {
    // far_origin —eBGP— stamper —iBGP— filterer: the stamper is far from
    // the filterer's configured radius.
    for (threshold, expect_kept) in [(u64::MAX, true), (10, false)] {
        let (mut sim, n) = sim_with_nodes(3);
        let l1 = sim.connect(n[0], n[1], MS);
        let l2 = sim.connect(n[1], n[2], MS);

        let mut cfg_origin = FirConfig::new(65009, 9).neighbor(l1, 1, 65000);
        cfg_origin.originate = vec![(p("198.51.100.0/24"), 9)];
        let mut cfg_stamper =
            FirConfig::new(65000, 1).neighbor(l1, 9, 65009).neighbor(l2, 2, 65000);
        cfg_stamper.xbgp = Some(geoloc::manifest(None));
        cfg_stamper.xtra = vec![("geo".into(), geoloc::coords_bytes(10_000, 10_000))];
        let mut cfg_filterer = FirConfig::new(65000, 2).neighbor(l2, 1, 65000);
        cfg_filterer.xbgp = Some(geoloc::manifest(Some(threshold)));
        cfg_filterer.xtra = vec![("geo".into(), geoloc::coords_bytes(0, 0))];
        sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_origin)));
        sim.replace_node(n[1], Box::new(FirDaemon::new(cfg_stamper)));
        sim.replace_node(n[2], Box::new(FirDaemon::new(cfg_filterer)));
        sim.run_until(5 * SEC);

        let filterer: &FirDaemon = sim.node_ref(n[2]);
        assert_eq!(
            filterer.best_route(&p("198.51.100.0/24")).is_some(),
            expect_kept,
            "threshold {threshold}"
        );
    }
}

/// FIR and WREN interoperate on the wire: an eBGP session between the two
/// implementations converges and exchanges routes in both directions.
#[test]
fn fir_and_wren_interoperate() {
    let (mut sim, n) = sim_with_nodes(2);
    let link = sim.connect(n[0], n[1], MS);
    let mut cfg_fir = FirConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_fir.originate = vec![(p("10.1.0.0/16"), 1)];
    let mut cfg_wren = WrenConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg_wren.originate = vec![(p("10.2.0.0/16"), 2)];
    sim.replace_node(n[0], Box::new(FirDaemon::new(cfg_fir)));
    sim.replace_node(n[1], Box::new(WrenDaemon::new(cfg_wren)));
    sim.run_until(5 * SEC);

    {
        let fir: &FirDaemon = sim.node_ref(n[0]);
        assert!(fir.session_established(2));
        assert_eq!(fir.loc_rib_prefixes(), vec![p("10.1.0.0/16"), p("10.2.0.0/16")]);
        let f = fir.best_route(&p("10.2.0.0/16")).unwrap();
        assert_eq!(f.attrs.as_path.asns().collect::<Vec<_>>(), vec![65002]);
    }
    let wren: &WrenDaemon = sim.node_ref(n[1]);
    assert_eq!(wren.nets(), vec![p("10.1.0.0/16"), p("10.2.0.0/16")]);
    let w = wren.best_route(&p("10.1.0.0/16")).unwrap();
    assert!(w.eattrs.as_path_contains(65001));
}

/// FIR and WREN compute identical route sets on a mixed 5-router topology
/// with competing paths.
#[test]
fn mixed_topology_converges_to_identical_tables() {
    // Ring of alternating implementations, one prefix originated at each
    // router. All routers must end with all 5 prefixes.
    let (mut sim, n) = sim_with_nodes(5);
    let mut links = Vec::new();
    for i in 0..5 {
        links.push(sim.connect(n[i], n[(i + 1) % 5], MS));
    }
    // Router i: AS 65001+i, id i+1, originates 10.(i+1).0.0/16.
    for i in 0..5 {
        let id = (i + 1) as u32;
        let asn = 65001 + i as u32;
        let left = links[(i + 4) % 5];
        let left_id = ((i + 4) % 5 + 1) as u32;
        let left_asn = 65001 + ((i + 4) % 5) as u32;
        let right = links[i];
        let right_id = ((i + 1) % 5 + 1) as u32;
        let right_asn = 65001 + ((i + 1) % 5) as u32;
        let prefix = p(&format!("10.{id}.0.0/16"));
        if i % 2 == 0 {
            let mut cfg = FirConfig::new(asn, id)
                .neighbor(left, left_id, left_asn)
                .neighbor(right, right_id, right_asn);
            cfg.originate = vec![(prefix, id)];
            sim.replace_node(n[i], Box::new(FirDaemon::new(cfg)));
        } else {
            let mut cfg = WrenConfig::new(asn, id)
                .neighbor(left, left_id, left_asn)
                .neighbor(right, right_id, right_asn);
            cfg.originate = vec![(prefix, id)];
            sim.replace_node(n[i], Box::new(WrenDaemon::new(cfg)));
        }
    }
    sim.run_until(20 * SEC);

    let want: Vec<_> = (1..=5).map(|i| p(&format!("10.{i}.0.0/16"))).collect();
    for (i, &node) in n.iter().enumerate().take(5) {
        let got = if i % 2 == 0 {
            sim.node_ref::<FirDaemon>(node).loc_rib_prefixes()
        } else {
            sim.node_ref::<WrenDaemon>(node).nets()
        };
        assert_eq!(got, want, "router {i}");
    }
}
