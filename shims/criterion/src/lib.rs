//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io (see `shims/README.md`), so
//! this crate reimplements the criterion API surface the workspace's
//! benches use: `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`bench_with_input`/`finish`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short calibration pass picks an
//! iteration count per sample, then `sample_size` samples are timed and
//! mean / stddev / min reported on stdout. No HTML reports, no statistical
//! regression analysis — numbers suitable for relative comparisons on one
//! machine, which is what the repo's ablation acceptance checks need.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 50;
/// Wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Names a benchmark within a group, `function/parameter` style.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
    calibrating: bool,
}

impl Bencher {
    /// Time the routine. On the calibration pass this estimates a per-sample
    /// iteration count; on the measurement pass it records `sample_size`
    /// timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // One-shot estimate of the per-iteration cost.
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < WARMUP_BUDGET && n < 1_000_000 {
                black_box(f());
                n += 1;
            }
            let per_iter = start.elapsed().as_nanos() as f64 / n.max(1) as f64;
            let per_sample =
                MEASURE_BUDGET.as_nanos() as f64 / self.sample_size as f64 / per_iter.max(1.0);
            self.iters_per_sample = (per_sample as u64).clamp(1, 1_000_000);
            return;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
        calibrating: true,
    };
    f(&mut b); // calibration pass
    b.calibrating = false;
    f(&mut b); // measurement pass
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let var = b.samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<48} time: [mean {} ± {} | min {}] ({} samples × {} iters)",
        fmt_ns(mean),
        fmt_ns(var.sqrt()),
        fmt_ns(min),
        b.samples.len(),
        b.iters_per_sample,
    );
    emit_json(label, mean, var.sqrt(), min, b.samples.len(), b.iters_per_sample);
}

/// If `CRITERION_JSON_OUT` names a file, append one JSON line per benchmark
/// (all times in nanoseconds). The repo's bench evidence files
/// (`BENCH_*.json`) are assembled from these lines.
fn emit_json(label: &str, mean: f64, stddev: f64, min: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{mean:.3},\"stddev_ns\":{stddev:.3},\
         \"min_ns\":{min:.3},\"samples\":{samples},\"iters_per_sample\":{iters}}}\n"
    );
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Err(e) => eprintln!("criterion shim: cannot append to {path}: {e}"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Build the benchmark-runner functions, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        c.sample_size(5);
        // Smoke: must complete quickly and not panic.
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
