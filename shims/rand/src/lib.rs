//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces its external dependencies with local shims that implement the
//! exact API subset the workspace uses (see `shims/README.md`). This shim
//! provides `SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, and `gen_bool`, backed by xoshiro256** seeded via
//! SplitMix64 — the same generator family the real `SmallRng` uses on
//! 64-bit targets, so seeded streams are deterministic and well mixed.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed. Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface. Subset of `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample a uniform value of `T` ("standard" distribution).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — small, fast, and statistically strong; the same
    /// algorithm family the real `rand::rngs::SmallRng` uses on 64-bit
    /// platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation: guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Standard-distribution sampling for the types the workspace draws.
pub trait Sample {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` (`span` ≤ 2^64 here; widened to avoid
/// signed-range overflow at the call sites). Modulo bias is ≤ span/2^64,
/// irrelevant for test/bench workloads.
fn uniform_below<R: Rng>(rng: &mut R, span: u128) -> u64 {
    if span == 0 || span > u64::MAX as u128 {
        return rng.next_u64();
    }
    rng.next_u64() % span as u64
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
            let s = rng.gen_range(0usize..3);
            assert!(s < 3);
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn f64_samples_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
