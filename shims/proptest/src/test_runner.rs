//! Deterministic per-test RNG and the case-outcome error type.

/// Why a single sampled case did not complete.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; sample again.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64 seeded from a test-name hash: reproducible across runs,
/// different across tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
