//! The `Strategy` trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: a strategy is just a sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build a dependent strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values; sampling retries until `f` accepts one.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Type-erase, for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1024 samples in a row", self.whence)
    }
}

/// Uniform choice among boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy::tests")
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u8..7).sample(&mut r);
            assert!((3..7).contains(&v));
            let w = (0u8..=255).sample(&mut r);
            let _ = w;
            let n = (10u64..=10).sample(&mut r);
            assert_eq!(n, 10);
        }
    }

    #[test]
    fn map_flat_map_union_compose() {
        let mut r = rng();
        let s = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
        let dependent = (1u8..4).prop_flat_map(|lo| (lo..=3).prop_map(move |hi| (lo, hi)));
        for _ in 0..100 {
            let (lo, hi) = dependent.sample(&mut r);
            assert!(lo <= hi && hi <= 3);
        }
        let u = Union::new(vec![Just(1usize).boxed(), Just(8usize).boxed()]);
        for _ in 0..100 {
            let v = u.sample(&mut r);
            assert!(v == 1 || v == 8);
        }
    }
}
