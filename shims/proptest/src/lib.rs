//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace replaces
//! external dependencies with local shims (see `shims/README.md`). This one
//! keeps the workspace's property tests running unmodified: it implements
//! the `proptest!` / `prop_assert*` / `prop_oneof!` macros and the strategy
//! combinators the tests use (`any`, ranges, tuples, `Just`,
//! `collection::vec`, `prop_map`, `prop_flat_map`, unions).
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its values but is not minimised;
//! * sampling is driven by a per-test deterministic RNG (seeded from the
//!   test's module path), so runs are reproducible without a persistence
//!   file;
//! * [`CASES`] (default 64) cases per test instead of 256, keeping the
//!   offline test suite fast.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Number of accepted cases each `proptest!` test executes.
pub const CASES: u32 = 64;

/// Upper bound on sampling attempts per test, so `prop_assume!`-heavy
/// tests terminate even when most cases are rejected.
pub const MAX_ATTEMPTS: u32 = CASES * 16;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run each embedded test function [`CASES`] times with freshly sampled
/// inputs. Supports both `name in strategy` and `name: Type` parameters
/// (the latter meaning `any::<Type>()`), doc comments, and `#[test]`
/// attributes, exactly like the real macro.
#[macro_export]
macro_rules! proptest {
    // Entry: one or more test functions.
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < $crate::CASES {
                    __attempts += 1;
                    assert!(
                        __attempts <= $crate::MAX_ATTEMPTS,
                        "proptest: too many rejected cases (prop_assume! filter too strict)"
                    );
                    $crate::proptest!(@bind __rng, $($params)*);
                    let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {}", msg)
                        }
                    }
                }
            }
        )+
    };

    // Parameter binding: `name in strategy` form.
    (@bind $rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Parameter binding: `name: Type` form (implicit `any::<Type>()`).
    (@bind $rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Trailing comma / empty tail.
    (@bind $rng:ident $(,)?) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Reject the current case without failing the test (re-sampled instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between heterogeneous strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
