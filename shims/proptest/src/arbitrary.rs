//! `any::<T>()` — full-range uniform generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy form of [`Arbitrary`], as returned by [`any`].
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
