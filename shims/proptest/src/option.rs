//! `Option<T>` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate `None` about a quarter of the time, `Some(inner)` otherwise —
/// close to real proptest's default weighting, and enough to exercise both
/// arms of every `Option` field within a 64-case run.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_name("option::tests::produces_both_variants");
        let s = of(0u32..100);
        let samples: Vec<Option<u32>> = (0..200).map(|_| s.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().flatten().all(|v| *v < 100));
    }
}
