//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds for collection strategies, `[min, max)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::from_name("collection::tests");
        let s = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
