//! §3.1 — Filtering routes based on IGP costs (Listing 1).
//!
//!     cargo run --example igp_cost_filter
//!
//! The paper's worldwide ISP: two transatlantic links (IGP metric 1000)
//! terminate in London and Amsterdam; Europe is richly connected with
//! cheap links. The export filter refuses to announce routes whose
//! nexthop costs more than 1000 — so when the UK's continental links
//! fail and London becomes reachable from Berlin only via New York, the
//! Berlin border router stops advertising London-learned routes to its
//! European peer.

use bgp_fir::{FirConfig, FirDaemon};
use igp::IgpNetwork;
use netsim::{Sim, SimConfig};
use xbgp_progs::igp_filter;
use xbgp_wire::Ipv4Prefix;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

struct Ph;
impl netsim::Node for Ph {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;

// Router addresses double as IGP node ids.
const LONDON: u32 = 1;
const AMSTERDAM: u32 = 2;
const BERLIN: u32 = 3;
const NEWYORK: u32 = 4;

fn main() {
    // The AS 65000 backbone IGP (paper's Fig-less scenario):
    //   london—amsterdam 10, berlin—london 10, berlin—amsterdam 10,
    //   newyork—london 1000, newyork—amsterdam 1000.
    let mut backbone = IgpNetwork::new();
    backbone.add_link(LONDON, AMSTERDAM, 10);
    backbone.add_link(BERLIN, LONDON, 10);
    backbone.add_link(BERLIN, AMSTERDAM, 10);
    backbone.add_link(NEWYORK, LONDON, 1000);
    backbone.add_link(NEWYORK, AMSTERDAM, 1000);
    let shared = igp::shared(backbone);

    // BGP topology: london originates a customer route (as if learned in
    // the UK); london --iBGP-- berlin --eBGP-- a European peer AS.
    let mut sim = Sim::new(SimConfig::default());
    let london = sim.add_node(Box::new(Ph));
    let berlin = sim.add_node(Box::new(Ph));
    let peer = sim.add_node(Box::new(Ph));
    let l_ibgp = sim.connect(london, berlin, MS);
    let l_ebgp = sim.connect(berlin, peer, MS);

    let mut cfg_london = FirConfig::new(65000, LONDON).neighbor(l_ibgp, BERLIN, 65000);
    cfg_london.originate = vec![(p("203.0.113.0/24"), LONDON)];
    sim.replace_node(london, Box::new(FirDaemon::new(cfg_london)));

    let mut cfg_berlin = FirConfig::new(65000, BERLIN)
        .neighbor(l_ibgp, LONDON, 65000)
        .neighbor(l_ebgp, 9, 65009);
    cfg_berlin.igp = Some(shared.clone());
    cfg_berlin.xbgp = Some(igp_filter::manifest());
    sim.replace_node(berlin, Box::new(FirDaemon::new(cfg_berlin)));

    let cfg_peer = FirConfig::new(65009, 9).neighbor(l_ebgp, BERLIN, 65000);
    sim.replace_node(peer, Box::new(FirDaemon::new(cfg_peer)));

    sim.run_until(5 * SEC);
    {
        let metric = shared.borrow().metric(BERLIN, LONDON);
        let d: &FirDaemon = sim.node_ref(peer);
        println!(
            "healthy: berlin→london IGP metric = {metric}; peer sees {:?}",
            d.loc_rib_prefixes()
        );
        assert_eq!(d.loc_rib_prefixes(), vec![p("203.0.113.0/24")]);
    }

    // The UK's continental links fail; London is now only reachable via
    // the transatlantic detour (metric 2010 > 1000).
    shared.borrow_mut().set_link_up(LONDON, AMSTERDAM, false);
    shared.borrow_mut().set_link_up(BERLIN, LONDON, false);
    // BGP itself was untouched by the IGP failure; flap the iBGP session
    // so the route re-enters the export pipeline with the post-failure
    // metrics (a real deployment would hook IGP events into re-export).
    sim.set_link_up(l_ibgp, false);
    sim.run_until(6 * SEC);
    sim.set_link_up(l_ibgp, true);
    sim.run_until(20 * SEC);

    let metric = shared.borrow().metric(BERLIN, LONDON);
    let peer_sees = {
        let d: &FirDaemon = sim.node_ref(peer);
        d.loc_rib_prefixes()
    };
    println!(
        "after UK link failures: berlin→london IGP metric = {metric}; peer sees {peer_sees:?}"
    );
    let b: &FirDaemon = sim.node_ref(berlin);
    println!("berlin's extension rejected {} export(s)", b.stats.xbgp_rejected);
    assert!(
        peer_sees.is_empty(),
        "routes with transatlantic-detour nexthops are no longer exported"
    );
    println!(
        "\nwith BGP communities this policy is impossible to express — the\n\
         tags don't change when the IGP does. With Listing 1's 12-line xBGP\n\
         filter, the export decision tracks the live IGP metric."
    );
}
