//! §3.4 — validating BGP prefix origins.
//!
//!     cargo run --example origin_validation
//!
//! Feeds a synthetic table (75% of prefixes covered by a matching ROA,
//! per the paper) through a device under test and compares native
//! validation with the xBGP extension. On FIR the native path walks a
//! trie per lookup while the extension uses the xBGP layer's hash table —
//! the structural reason the paper's extension beat FRRouting's native
//! code by ~10%.

use xbgp_harness::fig3::{run, Dut, Fig3Spec, UseCase};
use xbgp_harness::stats::relative_impact_pct;

fn main() {
    println!("origin validation: native vs extension (5000 routes, 75% valid, one seed)\n");
    for dut in [Dut::Fir, Dut::Wren] {
        let native = run(&Fig3Spec {
            dut,
            use_case: UseCase::OriginValidation,
            extension: false,
            routes: 5_000,
            seed: 42,
            metrics: false,
            shards: 1,
            rib_dump: false,
            trace_sample: 0,
            profile: false,
            engine: xbgp_core::Engine::Interp,
        });
        let ext = run(&Fig3Spec {
            dut,
            use_case: UseCase::OriginValidation,
            extension: true,
            routes: 5_000,
            seed: 42,
            metrics: false,
            shards: 1,
            rib_dump: false,
            trace_sample: 0,
            profile: false,
            engine: xbgp_core::Engine::Interp,
        });
        assert_eq!(native.prefixes_delivered, 5_000, "validation never discards");
        assert_eq!(ext.prefixes_delivered, 5_000);
        println!(
            "{:>6}: native {:8.2} ms | extension {:8.2} ms | impact {:+6.1}%   \
             (native store: {})",
            dut.name(),
            native.elapsed_ns as f64 / 1e6,
            ext.elapsed_ns as f64 / 1e6,
            relative_impact_pct(native.elapsed_ns as f64, ext.elapsed_ns as f64),
            match dut {
                Dut::Fir => "trie",
                Dut::Wren => "hash",
            },
        );
    }
    println!(
        "\nevery route was validated and none discarded (§3.4). The paper's\n\
         Fig. 4 (orange) shows the extension at parity with BIRD's native\n\
         hash-based validation and *faster* than FRRouting's trie walk —\n\
         run `cargo run --release -p xbgp-harness --bin fig4 -- --use-case ov`\n\
         for the full 15-run distribution."
    );
}
