//! §3.3 / Fig. 5 — BGP in the datacenter: the same-ASN trick versus the
//! xBGP valley-free filter.
//!
//!     cargo run --example datacenter_valley_free
//!
//! Builds the paper's 2-level Clos (spines S1/S2, leaves L10..L13),
//! originates a prefix below L13 and an external prefix at S1, fails the
//! links L10–S1 and L13–S2, and shows:
//!
//! * same-ASN trick → the fabric partitions (L10 loses the prefix),
//! * distinct ASNs + the xBGP filter → the surviving valley path keeps
//!   the fabric connected for internal destinations while external
//!   valleys stay blocked.

use bgp_fir::{FirConfig, FirDaemon};
use netsim::{LinkId, NodeId, Sim, SimConfig};
use xbgp_progs::valley_free;
use xbgp_wire::Ipv4Prefix;

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;
const S1: usize = 0;
const S2: usize = 1;
const L10: usize = 2;
const L13: usize = 5;
const LEAVES: [usize; 4] = [2, 3, 4, 5];

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

struct Ph;
impl netsim::Node for Ph {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn build(asns: [u32; 6], xbgp: bool) -> (Sim, Vec<NodeId>, LinkId, LinkId) {
    let mut sim = Sim::new(SimConfig::default());
    let nodes: Vec<NodeId> = (0..6).map(|_| sim.add_node(Box::new(Ph))).collect();
    let ids: [u32; 6] = [201, 202, 110, 111, 112, 113];
    let mut links = vec![];
    for leaf in LEAVES {
        for spine in [S1, S2] {
            links.push(((leaf, spine), sim.connect(nodes[leaf], nodes[spine], MS)));
        }
    }
    let link = |a: usize, b: usize| -> LinkId {
        links
            .iter()
            .find(|((l, s), _)| (*l == a && *s == b) || (*l == b && *s == a))
            .expect("link exists")
            .1
    };
    let pairs: Vec<(u32, u32)> = LEAVES
        .iter()
        .flat_map(|&l| [(asns[l], asns[S1]), (asns[l], asns[S2])])
        .collect();
    let manifest = valley_free::manifest(&pairs, p("10.0.0.0/8"));
    for i in 0..6 {
        let mut cfg = FirConfig::new(asns[i], ids[i]);
        let nbs: Vec<usize> = if i < 2 { LEAVES.to_vec() } else { vec![S1, S2] };
        for nb in nbs {
            cfg = cfg.neighbor(link(i, nb), ids[nb], asns[nb]);
        }
        if i == L13 {
            cfg.originate = vec![(p("10.13.0.0/16"), ids[L13])];
        }
        if i == S1 {
            cfg.originate = vec![(p("192.0.2.0/24"), ids[S1])];
        }
        if xbgp {
            cfg.xbgp = Some(manifest.clone());
        }
        sim.replace_node(nodes[i], Box::new(FirDaemon::new(cfg)));
    }
    (sim, nodes, link(L10, S1), link(L13, S2))
}

fn l10_reaches_l13(sim: &mut Sim, nodes: &[NodeId]) -> bool {
    sim.node_ref::<FirDaemon>(nodes[L10]).best_route(&p("10.13.0.0/16")).is_some()
}

fn main() {
    println!("Fig. 5 Clos fabric: spines S1/S2, leaves L10..L13.");
    println!("prefix below L13: 10.13.0.0/16; failures: L10–S1 and L13–S2.\n");

    // Scenario 1: the same-ASN trick.
    let (mut sim, nodes, la, lb) = build([65200, 65200, 65100, 65100, 65110, 65110], false);
    sim.run_until(20 * SEC);
    println!(
        "same-ASN trick, healthy fabric: L10 reaches 10.13/16: {}",
        l10_reaches_l13(&mut sim, &nodes)
    );
    sim.set_link_up(la, false);
    sim.set_link_up(lb, false);
    sim.run_until(90 * SEC);
    let partitioned = !l10_reaches_l13(&mut sim, &nodes);
    println!("same-ASN trick, after double failure: PARTITIONED = {partitioned}");
    assert!(partitioned);

    // Scenario 2: distinct ASNs + the xBGP valley-free filter.
    let (mut sim, nodes, la, lb) = build([65201, 65202, 65101, 65102, 65103, 65104], true);
    sim.run_until(20 * SEC);
    let ext_leak = sim.node_ref::<FirDaemon>(nodes[S2]).best_route(&p("192.0.2.0/24")).is_some();
    println!(
        "\nxBGP filter, healthy fabric: external prefix leaks to S2 via a leaf valley: {ext_leak}"
    );
    assert!(!ext_leak, "valleys blocked for external prefixes");
    sim.set_link_up(la, false);
    sim.set_link_up(lb, false);
    sim.run_until(90 * SEC);
    let connected = l10_reaches_l13(&mut sim, &nodes);
    println!("xBGP filter, after double failure: L10 still reaches 10.13/16: {connected}");
    assert!(connected);
    let path: Vec<u32> = sim
        .node_ref::<FirDaemon>(nodes[L10])
        .best_route(&p("10.13.0.0/16"))
        .unwrap()
        .attrs
        .as_path
        .asns()
        .collect();
    println!("surviving (valley) AS path at L10: {path:?}");
    println!(
        "\nsame policy intent, but the extension understands *why* valleys are\n\
         forbidden and can make the exception the same-ASN trick cannot —\n\
         and operators keep distinct ASNs for troubleshooting."
    );
}
