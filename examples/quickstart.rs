//! Quickstart: write an xBGP extension in eBPF assembly, load it into a
//! running BGP daemon, and watch it change routing behaviour.
//!
//!     cargo run --example quickstart
//!
//! The extension rejects every route carrying the community 65000:666 —
//! a blackhole import filter an operator could deploy today, without
//! waiting for the IETF or a vendor.

use bgp_fir::{FirConfig, FirDaemon};
use netsim::{Sim, SimConfig};
use xbgp_asm::assemble_with_symbols;
use xbgp_core::api::abi_symbols;
use xbgp_core::{ExtensionSpec, InsertionPoint, Manifest};
use xbgp_harness::Feeder;
use xbgp_wire::attr::Origin;
use xbgp_wire::{AsPath, Ipv4Prefix, Message, PathAttr, UpdateMsg};

/// An import filter in xBGP assembly: fetch COMMUNITIES, scan for
/// 65000:666, reject on match, otherwise delegate with next().
const BLACKHOLE_FILTER: &str = r"
    .equ BLACKHOLE, 0xFDE8029A      ; 65000:666
        mov r1, 512
        call ctx_malloc
        jeq r0, 0, pass
        mov r6, r0
        mov r1, ATTR_COMMUNITIES
        mov r2, r6
        mov r3, 512
        call get_attr
        jeq r0, -1, pass            ; no communities at all
        mov r7, r0
        add r7, r6                  ; end of list
    scan:
        jge r6, r7, pass
        ldxw r1, [r6]
        be32 r1
        jeq32 r1, BLACKHOLE, reject ; jeq32: the immediate is a u32
                                    ; (64-bit jeq would sign-extend it)
        add r6, 4
        ja scan
    pass:
        call next
        exit
    reject:
        mov r0, FILTER_REJECT
        exit
";

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

struct Ph;
impl netsim::Node for Ph {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn main() {
    // 1. Assemble the extension against the xBGP ABI symbol table.
    let prog =
        assemble_with_symbols(BLACKHOLE_FILTER, &abi_symbols()).expect("the filter assembles");
    println!("assembled blackhole filter: {} eBPF instructions\n", prog.len());

    // 2. Package it in a manifest: name, insertion point, allowed helpers.
    //    The verifier rejects any helper call outside this list.
    let mut manifest = Manifest::new();
    manifest.push(ExtensionSpec::from_program(
        "blackhole_filter",
        "quickstart",
        InsertionPoint::BgpInboundFilter,
        &["ctx_malloc", "get_attr", "next"],
        &prog,
    ));
    println!(
        "manifest JSON (shippable to any xBGP-compliant router):\n{}\n",
        manifest.to_json()
    );

    // 3. A feeder announces two routes — one clean, one tagged with the
    //    blackhole community — to a FIR daemon that loaded the manifest.
    let mut sim = Sim::new(SimConfig::default());
    let feeder = sim.add_node(Box::new(Ph));
    let router = sim.add_node(Box::new(Ph));
    let link = sim.connect(feeder, router, 1_000_000);

    let base_attrs = |communities: Vec<u32>| {
        let mut attrs = vec![
            PathAttr::Origin(Origin::Igp),
            PathAttr::AsPath(AsPath::sequence(vec![65001])),
            PathAttr::NextHop(1),
        ];
        if !communities.is_empty() {
            attrs.push(PathAttr::Communities(communities));
        }
        attrs
    };
    let frames = vec![
        Message::Update(UpdateMsg::announce(
            base_attrs(vec![(65000 << 16) | 666]),
            vec![p("10.66.0.0/16")],
        ))
        .encode(4)
        .unwrap(),
        Message::Update(UpdateMsg::announce(base_attrs(vec![]), vec![p("10.1.0.0/16")]))
            .encode(4)
            .unwrap(),
    ];
    sim.replace_node(feeder, Box::new(Feeder::new(65001, 1, frames)));

    let mut cfg = FirConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg.xbgp = Some(manifest);
    sim.replace_node(router, Box::new(FirDaemon::new(cfg)));

    sim.run_until(5_000_000_000);

    let d: &FirDaemon = sim.node_ref(router);
    println!(
        "announced: 10.66.0.0/16 (tagged 65000:666) and 10.1.0.0/16 (clean)\n\
         accepted prefixes: {:?}\n\
         routes rejected by the extension: {}",
        d.loc_rib_prefixes(),
        d.stats.xbgp_rejected
    );
    assert_eq!(d.loc_rib_prefixes(), vec![p("10.1.0.0/16")]);
    assert_eq!(d.stats.xbgp_rejected, 1);
    println!("\nthe tagged route was dropped by ~25 lines of assembly — no vendor involved.");
}
