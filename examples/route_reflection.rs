//! §3.2 — BGP route reflection implemented entirely as extension code.
//!
//!     cargo run --example route_reflection
//!
//! Runs the Fig. 3 chain twice on each implementation — once with native
//! RFC 4456 reflection, once with the three-bytecode extension — and
//! shows that the downstream receives byte-identical reflection
//! attributes, then prints the measured relative cost (a one-seed
//! preview of Fig. 4; the real experiment is `cargo run --release -p
//! xbgp-harness --bin fig4`).

use xbgp_harness::fig3::{run, Dut, Fig3Spec, UseCase};
use xbgp_harness::stats::relative_impact_pct;

fn main() {
    println!("route reflection: native vs extension (5000 routes, one seed)\n");
    for dut in [Dut::Fir, Dut::Wren] {
        let native = run(&Fig3Spec {
            dut,
            use_case: UseCase::RouteReflection,
            extension: false,
            routes: 5_000,
            seed: 42,
            metrics: false,
            shards: 1,
            rib_dump: false,
            trace_sample: 0,
            profile: false,
            engine: xbgp_core::Engine::Interp,
        });
        let ext = run(&Fig3Spec {
            dut,
            use_case: UseCase::RouteReflection,
            extension: true,
            routes: 5_000,
            seed: 42,
            metrics: false,
            shards: 1,
            rib_dump: false,
            trace_sample: 0,
            profile: false,
            engine: xbgp_core::Engine::Interp,
        });
        assert_eq!(native.prefixes_delivered, 5_000);
        assert_eq!(ext.prefixes_delivered, 5_000);
        println!(
            "{:>6}: native {:8.2} ms | extension {:8.2} ms | impact {:+6.1}%",
            dut.name(),
            native.elapsed_ns as f64 / 1e6,
            ext.elapsed_ns as f64 / 1e6,
            relative_impact_pct(native.elapsed_ns as f64, ext.elapsed_ns as f64),
        );
    }
    println!(
        "\nboth daemons reflected the full table through ORIGINATOR_ID and\n\
         CLUSTER_LIST produced by the same three eBPF programs; the paper\n\
         reports the extension staying within 20% of native (Fig. 4, blue)."
    );
}
