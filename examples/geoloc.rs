//! The paper's running example (§2, Fig. 2): the GeoLoc attribute.
//!
//!     cargo run --example geoloc
//!
//! Four bytecodes — receive, inbound filter, outbound filter, encode —
//! cooperate to stamp eBGP-learned routes with the learning router's
//! coordinates, carry the attribute across iBGP, and drop routes learned
//! too far away. The same bytecode runs on FIR here and on WREN in the
//! integration tests.

use bgp_fir::{FirConfig, FirDaemon};
use netsim::{Sim, SimConfig};
use xbgp_progs::{geoloc, GEOLOC_ATTR};
use xbgp_wire::Ipv4Prefix;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

struct Ph;
impl netsim::Node for Ph {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

const SEC: u64 = 1_000_000_000;

fn main() {
    // Topology: an external AS feeds a border router in London; London
    // speaks iBGP to a router in Tokyo that only wants nearby routes.
    //
    //   external(65009) --eBGP-- london(65000) --iBGP-- tokyo(65000)
    //
    // Coordinates in milli-degrees: London ~ (51507, -128), Tokyo ~
    // (35676, 139650). Tokyo's radius only admits routes learned within
    // ~60 degrees of itself.
    let mut sim = Sim::new(SimConfig::default());
    let external = sim.add_node(Box::new(Ph));
    let london = sim.add_node(Box::new(Ph));
    let tokyo = sim.add_node(Box::new(Ph));
    let l_ext = sim.connect(external, london, 1_000_000);
    let l_ibgp = sim.connect(london, tokyo, 1_000_000);

    let mut cfg_ext = FirConfig::new(65009, 9).neighbor(l_ext, 1, 65000);
    cfg_ext.originate = vec![(p("198.51.100.0/24"), 9)];
    sim.replace_node(external, Box::new(FirDaemon::new(cfg_ext)));

    let mut cfg_london =
        FirConfig::new(65000, 1).neighbor(l_ext, 9, 65009).neighbor(l_ibgp, 2, 65000);
    cfg_london.xbgp = Some(geoloc::manifest(None));
    cfg_london.xtra = vec![("geo".into(), geoloc::coords_bytes(51_507, -128))];
    sim.replace_node(london, Box::new(FirDaemon::new(cfg_london)));

    // Tokyo enforces a radius: 60 000 milli-degrees squared distance.
    let radius: u64 = 60_000;
    let mut cfg_tokyo = FirConfig::new(65000, 2).neighbor(l_ibgp, 1, 65000);
    cfg_tokyo.xbgp = Some(geoloc::manifest(Some(radius * radius)));
    cfg_tokyo.xtra = vec![("geo".into(), geoloc::coords_bytes(35_676, 139_650))];
    sim.replace_node(tokyo, Box::new(FirDaemon::new(cfg_tokyo)));

    sim.run_until(5 * SEC);

    {
        let d: &FirDaemon = sim.node_ref(london);
        let best = d.best_route(&p("198.51.100.0/24")).expect("learned");
        let stamp = best
            .attrs
            .extra
            .iter()
            .find(|(c, _, _)| *c == GEOLOC_ATTR)
            .expect("bytecode ① stamped the route");
        let lat = i32::from_be_bytes(stamp.2[0..4].try_into().unwrap());
        let lon = i32::from_be_bytes(stamp.2[4..8].try_into().unwrap());
        println!(
            "london learned 198.51.100.0/24 over eBGP; GeoLoc stamped: ({:.3}°, {:.3}°)",
            lat as f64 / 1000.0,
            lon as f64 / 1000.0
        );
    }

    let d: &FirDaemon = sim.node_ref(tokyo);
    println!(
        "tokyo (radius {radius} milli-degrees): prefixes accepted = {:?}, \
         rejected by the distance filter = {}",
        d.loc_rib_prefixes(),
        d.stats.xbgp_rejected
    );
    assert!(d.loc_rib_prefixes().is_empty(), "London is too far from Tokyo");
    assert_eq!(d.stats.xbgp_rejected, 1);

    println!(
        "\nthe route crossed the iBGP hop carrying GeoLoc (bytecode ④ wrote it\n\
         on the wire) and Tokyo's inbound bytecode ② rejected it as too far —\n\
         the policy the IETF discussed but never standardized, in four small\n\
         eBPF programs."
    );
}
