//! # xbgp — facade crate for the xBGP reproduction
//!
//! Re-exports the workspace crates under one roof. See the README for the
//! architecture and DESIGN.md for the paper-to-code map.
//!
//! ```
//! use xbgp::core::{InsertionPoint, Vmm, VmmOutcome};
//! use xbgp::progs;
//!
//! // Load the paper's §3.1 IGP-cost filter into a VMM.
//! let mut vmm = Vmm::from_manifest(&progs::igp_filter::manifest()).unwrap();
//! assert!(vmm.has_extensions(InsertionPoint::BgpOutboundFilter));
//! ```

pub use bgp_fir as fir;
pub use bgp_wren as wren;
pub use igp;
pub use netsim;
pub use routegen;
pub use rpki;
pub use xbgp_asm as asm;
pub use xbgp_core as core;
pub use xbgp_harness as harness;
pub use xbgp_progs as progs;
pub use xbgp_vm as vm;
pub use xbgp_wire as wire;
