//! End-to-end tests: WREN daemons over netsim.

use bgp_wren::{WrenConfig, WrenDaemon};
use netsim::{Sim, SimConfig};
use rpki::Roa;
use xbgp_wire::Ipv4Prefix;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn ebgp_session_and_route_propagation() {
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let b = sim.add_node(Box::new(Placeholder));
    let link = sim.connect(a, b, MS);
    let mut cfg_a = WrenConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_a.originate = vec![(p("10.1.0.0/16"), 1)];
    let cfg_b = WrenConfig::new(65002, 2).neighbor(link, 1, 65001);
    sim.replace_node(a, Box::new(WrenDaemon::new(cfg_a)));
    sim.replace_node(b, Box::new(WrenDaemon::new(cfg_b)));
    sim.run_until(5 * SEC);

    let db: &WrenDaemon = sim.node_ref(b);
    assert!(db.session_established(1));
    assert_eq!(db.nets(), vec![p("10.1.0.0/16")]);
    let best = db.best_route(&p("10.1.0.0/16")).unwrap();
    assert_eq!(best.eattrs.as_path_hops(), 1);
    assert!(best.eattrs.as_path_contains(65001));
    assert_eq!(best.eattrs.next_hop(), Some(1));
    assert_eq!(best.eattrs.local_pref(), None);
}

#[test]
fn withdrawal_on_upstream_failure() {
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let c = sim.add_node(Box::new(Placeholder));
    let l1 = sim.connect(a, dut, MS);
    let l2 = sim.connect(dut, c, MS);
    let mut cfg_a = WrenConfig::new(65001, 1).neighbor(l1, 2, 65002);
    cfg_a.originate = vec![(p("192.0.2.0/24"), 1)];
    let cfg_dut = WrenConfig::new(65002, 2).neighbor(l1, 1, 65001).neighbor(l2, 3, 65003);
    let cfg_c = WrenConfig::new(65003, 3).neighbor(l2, 2, 65002);
    sim.replace_node(a, Box::new(WrenDaemon::new(cfg_a)));
    sim.replace_node(dut, Box::new(WrenDaemon::new(cfg_dut)));
    sim.replace_node(c, Box::new(WrenDaemon::new(cfg_c)));

    sim.run_until(5 * SEC);
    assert_eq!(sim.node_ref::<WrenDaemon>(c).nets(), vec![p("192.0.2.0/24")]);

    sim.set_link_up(l1, false);
    sim.run_until(10 * SEC);
    assert!(sim.node_ref::<WrenDaemon>(c).nets().is_empty());
}

#[test]
fn native_route_reflection_with_hash_representation() {
    let mut sim = Sim::new(SimConfig::default());
    let up = sim.add_node(Box::new(Placeholder));
    let rr = sim.add_node(Box::new(Placeholder));
    let down = sim.add_node(Box::new(Placeholder));
    let l_up = sim.connect(up, rr, MS);
    let l_down = sim.connect(rr, down, MS);

    let mut cfg_up = WrenConfig::new(65000, 1).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("198.51.100.0/24"), 1)];
    let mut cfg_rr =
        WrenConfig::new(65000, 2).rr_client(l_up, 1, 65000).rr_client(l_down, 3, 65000);
    cfg_rr.rr_enabled = true;
    let cfg_down = WrenConfig::new(65000, 3).neighbor(l_down, 2, 65000);
    sim.replace_node(up, Box::new(WrenDaemon::new(cfg_up)));
    sim.replace_node(rr, Box::new(WrenDaemon::new(cfg_rr)));
    sim.replace_node(down, Box::new(WrenDaemon::new(cfg_down)));

    sim.run_until(5 * SEC);
    let dd: &WrenDaemon = sim.node_ref(down);
    assert_eq!(dd.nets(), vec![p("198.51.100.0/24")]);
    let best = dd.best_route(&p("198.51.100.0/24")).unwrap();
    assert_eq!(best.eattrs.originator_id(), Some(1));
    assert_eq!(best.eattrs.cluster_list(), vec![2]);
    assert_eq!(best.eattrs.local_pref(), Some(100));
}

#[test]
fn ibgp_routes_not_reflected_without_rr() {
    let mut sim = Sim::new(SimConfig::default());
    let up = sim.add_node(Box::new(Placeholder));
    let mid = sim.add_node(Box::new(Placeholder));
    let down = sim.add_node(Box::new(Placeholder));
    let l1 = sim.connect(up, mid, MS);
    let l2 = sim.connect(mid, down, MS);
    let mut cfg_up = WrenConfig::new(65009, 9).neighbor(l1, 2, 65000);
    cfg_up.originate = vec![(p("203.0.113.0/24"), 9)];
    // mid's iBGP neighbor 'down' must not receive iBGP-learned... here the
    // route arrives over eBGP at mid, so down DOES get it; extend the chain
    // inside the AS instead.
    let cfg_mid = WrenConfig::new(65000, 2).neighbor(l1, 9, 65009).neighbor(l2, 3, 65000);
    let cfg_down = WrenConfig::new(65000, 3).neighbor(l2, 2, 65000);
    sim.replace_node(up, Box::new(WrenDaemon::new(cfg_up)));
    sim.replace_node(mid, Box::new(WrenDaemon::new(cfg_mid)));
    sim.replace_node(down, Box::new(WrenDaemon::new(cfg_down)));
    sim.run_until(5 * SEC);
    // eBGP-learned → iBGP peer: delivered.
    assert_eq!(sim.node_ref::<WrenDaemon>(down).nets(), vec![p("203.0.113.0/24")]);
    let best = sim
        .node_mut::<WrenDaemon>(down)
        .best_route(&p("203.0.113.0/24"))
        .unwrap()
        .clone();
    assert!(best.src_ibgp);
}

#[test]
fn native_origin_validation_uses_hash_table_and_tags() {
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let b = sim.add_node(Box::new(Placeholder));
    let link = sim.connect(a, b, MS);
    let mut cfg_a = WrenConfig::new(65001, 1).neighbor(link, 2, 65002);
    cfg_a.originate = vec![(p("10.1.0.0/16"), 1), (p("10.2.0.0/16"), 1), (p("10.3.0.0/16"), 1)];
    let mut cfg_b = WrenConfig::new(65002, 2).neighbor(link, 1, 65001);
    cfg_b.roa_table = Some(vec![
        Roa::new(p("10.1.0.0/16"), 16, 65001),
        Roa::new(p("10.2.0.0/16"), 16, 64999),
    ]);
    sim.replace_node(a, Box::new(WrenDaemon::new(cfg_a)));
    sim.replace_node(b, Box::new(WrenDaemon::new(cfg_b)));
    sim.run_until(5 * SEC);

    let db: &WrenDaemon = sim.node_ref(b);
    assert_eq!(db.stats.rov_valid, 1);
    assert_eq!(db.stats.rov_invalid, 1);
    assert_eq!(db.stats.rov_not_found, 1);
    assert_eq!(db.table_len(), 3, "validation tags but never discards");
    use rpki::RovState;
    assert_eq!(db.best_route(&p("10.1.0.0/16")).unwrap().rov, Some(RovState::Valid));
    assert_eq!(db.best_route(&p("10.2.0.0/16")).unwrap().rov, Some(RovState::Invalid));
}

#[test]
fn best_route_is_head_of_preference_ordered_list() {
    // dut hears the same net from two eBGP neighbors with different path
    // lengths; the table keeps both, best first.
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let b = sim.add_node(Box::new(Placeholder));
    let mid = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let l_a_dut = sim.connect(a, dut, MS);
    let l_a_mid = sim.connect(a, mid, MS);
    let l_mid_b = sim.connect(mid, b, MS);
    let l_b_dut = sim.connect(b, dut, MS);

    let mut cfg_a = WrenConfig::new(65001, 1)
        .neighbor(l_a_dut, 4, 65004)
        .neighbor(l_a_mid, 2, 65002);
    cfg_a.originate = vec![(p("10.0.0.0/8"), 1)];
    let cfg_mid = WrenConfig::new(65002, 2)
        .neighbor(l_a_mid, 1, 65001)
        .neighbor(l_mid_b, 3, 65003);
    let cfg_b = WrenConfig::new(65003, 3)
        .neighbor(l_mid_b, 2, 65002)
        .neighbor(l_b_dut, 4, 65004);
    let cfg_dut = WrenConfig::new(65004, 4)
        .neighbor(l_a_dut, 1, 65001)
        .neighbor(l_b_dut, 3, 65003);
    sim.replace_node(a, Box::new(WrenDaemon::new(cfg_a)));
    sim.replace_node(mid, Box::new(WrenDaemon::new(cfg_mid)));
    sim.replace_node(b, Box::new(WrenDaemon::new(cfg_b)));
    sim.replace_node(dut, Box::new(WrenDaemon::new(cfg_dut)));

    sim.run_until(10 * SEC);
    let dd: &WrenDaemon = sim.node_ref(dut);
    let best = dd.best_route(&p("10.0.0.0/8")).unwrap();
    assert_eq!(best.eattrs.as_path_hops(), 1);
    assert_eq!(best.src_addr, 1);
}

#[test]
fn withdraw_triggered_reannouncement_is_flushed_immediately() {
    // Regression: a withdraw-only UPDATE that flips the best route must
    // flush the resulting re-announcements at once (the tx queue must not
    // sit until an unrelated event). Topology: two origins announce the
    // same net to a middle router; the preferred origin then withdraws.
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let b = sim.add_node(Box::new(Placeholder));
    let mid = sim.add_node(Box::new(Placeholder));
    let down = sim.add_node(Box::new(Placeholder));
    let la = sim.connect(a, mid, MS);
    let lb = sim.connect(b, mid, MS);
    let ld = sim.connect(mid, down, MS);

    // a's path will be shorter (preferred); b is the backup.
    let mut cfg_a = WrenConfig::new(65001, 1).neighbor(la, 3, 65003);
    cfg_a.originate = vec![(p("10.0.0.0/8"), 1)];
    let mut cfg_b = WrenConfig::new(65002, 2).neighbor(lb, 3, 65003);
    cfg_b.originate = vec![(p("10.0.0.0/8"), 2)];
    let cfg_mid = WrenConfig::new(65003, 3)
        .neighbor(la, 1, 65001)
        .neighbor(lb, 2, 65002)
        .neighbor(ld, 4, 65004);
    let cfg_down = WrenConfig::new(65004, 4).neighbor(ld, 3, 65003);
    sim.replace_node(a, Box::new(WrenDaemon::new(cfg_a)));
    sim.replace_node(b, Box::new(WrenDaemon::new(cfg_b)));
    sim.replace_node(mid, Box::new(WrenDaemon::new(cfg_mid)));
    sim.replace_node(down, Box::new(WrenDaemon::new(cfg_down)));
    sim.run_until(5 * SEC);
    {
        let d: &WrenDaemon = sim.node_ref(down);
        let best = d.best_route(&p("10.0.0.0/8")).unwrap();
        assert!(best.eattrs.as_path_contains(65001), "a preferred initially");
    }

    // a withdraws (link failure): mid must immediately re-announce via b.
    sim.set_link_up(la, false);
    sim.run_until(10 * SEC);
    let d: &WrenDaemon = sim.node_ref(down);
    let best = d.best_route(&p("10.0.0.0/8")).expect("failover to b");
    assert!(best.eattrs.as_path_contains(65002));
}
