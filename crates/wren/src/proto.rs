//! Channel/protocol state: WREN's take on the RFC 4271 FSM.
//!
//! BIRD models a BGP neighbor as a protocol instance with a connection
//! object; WREN condenses this into a [`Channel`] whose `conn_state`
//! tracks the OPEN handshake. Functionally equivalent to FIR's FSM,
//! organized differently.

use crate::config::ChannelCfg;
use xbgp_wire::{MsgReader, OpenMsg};

/// Handshake progress on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// No connection (link down or stopped).
    Down,
    /// OPEN sent; waiting for the peer's OPEN then KEEPALIVE.
    OpenWait,
    /// Peer's OPEN accepted; waiting for its KEEPALIVE.
    KeepaliveWait,
    /// Fully up.
    Up,
}

/// One neighbor channel.
pub struct Channel {
    pub cfg: ChannelCfg,
    pub conn_state: ConnState,
    pub rx: MsgReader,
    /// Negotiated hold time (ns).
    pub hold_ns: u64,
    pub last_rx: u64,
    /// iBGP channel (neighbor AS == local AS).
    pub ibgp: bool,
    pub four_octet_as: bool,
}

impl Channel {
    pub fn new(cfg: ChannelCfg, local_as: u32) -> Channel {
        let ibgp = cfg.neighbor_as == local_as;
        Channel {
            cfg,
            conn_state: ConnState::Down,
            rx: MsgReader::new(),
            hold_ns: 0,
            last_rx: 0,
            ibgp,
            four_octet_as: true,
        }
    }

    pub fn up(&self) -> bool {
        self.conn_state == ConnState::Up
    }

    pub fn asn_width(&self) -> usize {
        if self.four_octet_as {
            4
        } else {
            2
        }
    }

    pub fn down(&mut self) {
        self.conn_state = ConnState::Down;
        self.rx = MsgReader::new();
        self.hold_ns = 0;
    }

    /// Validate and absorb the neighbor's OPEN.
    pub fn accept_open(&mut self, open: &OpenMsg, our_hold_secs: u16) -> Result<(), String> {
        let asn = open.negotiated_asn();
        if asn != self.cfg.neighbor_as {
            return Err(format!("expected AS{}, got AS{asn}", self.cfg.neighbor_as));
        }
        if open.router_id != self.cfg.neighbor {
            // BIRD checks neighbor identity strictly; WREN warns only when
            // ids mismatch since the simulation uses addresses as ids.
        }
        self.four_octet_as = open.supports_four_octet_as();
        self.hold_ns = u64::from(open.hold_time.min(our_hold_secs)) * 1_000_000_000;
        self.conn_state = ConnState::KeepaliveWait;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkId;

    fn cfg() -> ChannelCfg {
        ChannelCfg {
            link: LinkId(0),
            neighbor: 7,
            neighbor_as: 65007,
            rr_client: false,
        }
    }

    #[test]
    fn ibgp_detection() {
        assert!(!Channel::new(cfg(), 65001).ibgp);
        assert!(Channel::new(ChannelCfg { neighbor_as: 65001, ..cfg() }, 65001).ibgp);
    }

    #[test]
    fn open_handshake_negotiation() {
        let mut ch = Channel::new(cfg(), 65001);
        ch.conn_state = ConnState::OpenWait;
        ch.accept_open(&OpenMsg::standard(65007, 45, 7), 90).unwrap();
        assert_eq!(ch.conn_state, ConnState::KeepaliveWait);
        assert_eq!(ch.hold_ns, 45_000_000_000);
        assert!(ch.accept_open(&OpenMsg::standard(1, 45, 7), 90).is_err());
    }

    #[test]
    fn down_resets_buffers() {
        let mut ch = Channel::new(cfg(), 65001);
        ch.conn_state = ConnState::Up;
        ch.rx.push(&[1, 2, 3]);
        ch.down();
        assert_eq!(ch.conn_state, ConnState::Down);
        assert_eq!(ch.rx.buffered(), 0);
    }
}
