//! WREN configuration (BIRD's protocol + channel model).

use igp::SharedIgp;
use netsim::LinkId;
use rpki::Roa;
use xbgp_core::{Engine, Manifest};
use xbgp_obs::trace::TraceConfig;
use xbgp_wire::Ipv4Prefix;

/// One BGP channel: a neighbor and its per-channel policy.
#[derive(Debug, Clone)]
pub struct ChannelCfg {
    pub link: LinkId,
    /// Neighbor address / expected BGP identifier.
    pub neighbor: u32,
    pub neighbor_as: u32,
    /// iBGP route-reflection client.
    pub rr_client: bool,
}

/// Full configuration of one WREN daemon instance.
pub struct WrenConfig {
    pub local_as: u32,
    pub router_id: u32,
    pub hold_time_secs: u16,
    pub channels: Vec<ChannelCfg>,
    /// Native RFC 4456 route reflection.
    pub rr_enabled: bool,
    pub rr_cluster_id: Option<u32>,
    /// ROAs for WREN's native hash-table origin validation (tagging only).
    pub roa_table: Option<Vec<Roa>>,
    /// xBGP manifest.
    pub xbgp: Option<Manifest>,
    /// ROAs backing the xBGP `rpki_check_origin` helper.
    pub xbgp_roas: Option<Vec<Roa>>,
    pub igp: Option<SharedIgp>,
    /// Locally originated routes: `(prefix, nexthop)`.
    pub originate: Vec<(Ipv4Prefix, u32)>,
    pub default_local_pref: u32,
    /// `get_xtra` configuration data.
    pub xtra: Vec<(String, Vec<u8>)>,
    /// Enable timing instrumentation: hook-site and VMM latency
    /// histograms fill in (two clock reads per hook). Counters are
    /// collected regardless.
    pub metrics: bool,
    /// Route-scoped tracing: attach a flight recorder with this sampling
    /// and shard configuration. `None` (the default) records nothing and
    /// keeps the hot path trace-free.
    pub trace: Option<TraceConfig>,
    /// Enable the VM execution profiler (`xbgp_prof_*` metric series).
    pub profile: bool,
    /// Execution engine for extension bytecode: the stepping interpreter
    /// (default) or the block-compiled engine. Bit-for-bit identical
    /// routing outcomes either way; only throughput differs.
    pub engine: Engine,
    /// Disable delta recomputation: after every UPDATE batch, resort and
    /// re-propagate *every* net instead of only those the batch touched.
    /// Byte-identical outcomes to the incremental default — this exists
    /// as the ablation baseline for the churn benchmarks.
    pub full_recompute: bool,
}

impl WrenConfig {
    pub fn new(local_as: u32, router_id: u32) -> WrenConfig {
        WrenConfig {
            local_as,
            router_id,
            hold_time_secs: 90,
            channels: Vec::new(),
            rr_enabled: false,
            rr_cluster_id: None,
            roa_table: None,
            xbgp: None,
            xbgp_roas: None,
            igp: None,
            originate: Vec::new(),
            default_local_pref: 100,
            xtra: Vec::new(),
            metrics: false,
            trace: None,
            profile: false,
            engine: Engine::default(),
            full_recompute: false,
        }
    }

    /// Turn on timing instrumentation (see the `metrics` field).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Attach a route-scoped flight recorder (see the `trace` field).
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Turn on the VM execution profiler (see the `profile` field).
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Select the bytecode execution engine (see the `engine` field).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Run the full-recompute decision baseline (see the
    /// `full_recompute` field).
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self
    }

    /// Add a neighbor channel (the unified [`xbgp_driver::DaemonSpec`]
    /// builder vocabulary; fir spells this identically).
    pub fn neighbor(mut self, link: LinkId, neighbor: u32, neighbor_as: u32) -> Self {
        self.channels.push(ChannelCfg { link, neighbor, neighbor_as, rr_client: false });
        self
    }

    /// Add a route-reflection client channel (iBGP).
    pub fn rr_client(mut self, link: LinkId, neighbor: u32, neighbor_as: u32) -> Self {
        self.channels.push(ChannelCfg { link, neighbor, neighbor_as, rr_client: true });
        self
    }

    /// Add a neighbor channel.
    #[deprecated(since = "0.1.0", note = "renamed to `neighbor()` (unified builder vocabulary)")]
    pub fn channel(self, link: LinkId, neighbor: u32, neighbor_as: u32) -> Self {
        self.neighbor(link, neighbor, neighbor_as)
    }

    /// Add a route-reflection client channel (iBGP).
    #[deprecated(since = "0.1.0", note = "renamed to `rr_client()` (unified builder vocabulary)")]
    pub fn rr_client_channel(self, link: LinkId, neighbor: u32, neighbor_as: u32) -> Self {
        self.rr_client(link, neighbor, neighbor_as)
    }

    /// Build a WREN configuration from the unified driver-seam spec (see
    /// [`xbgp_driver::DaemonSpec`]): one neighbor vocabulary, wren field
    /// names (`local_as`, `rr_enabled`, `roa_table`, …) resolved here and
    /// nowhere else.
    pub fn from_spec(spec: xbgp_driver::DaemonSpec) -> WrenConfig {
        let mut cfg = WrenConfig::new(spec.asn, spec.router_id);
        cfg.hold_time_secs = spec.hold_time_secs;
        for n in &spec.neighbors {
            cfg = if n.rr_client {
                cfg.rr_client(n.link, n.addr, n.asn)
            } else {
                cfg.neighbor(n.link, n.addr, n.asn)
            };
        }
        cfg.rr_enabled = spec.native_rr;
        cfg.rr_cluster_id = spec.cluster_id;
        cfg.roa_table = spec.native_rov;
        cfg.xbgp = spec.xbgp;
        cfg.xbgp_roas = spec.xbgp_roas;
        cfg.igp = spec.igp;
        cfg.originate = spec.originate;
        cfg.default_local_pref = spec.default_local_pref;
        cfg.xtra = spec.xtra;
        cfg.metrics = spec.metrics;
        cfg.trace = spec.trace;
        cfg.profile = spec.profile;
        cfg.engine = spec.engine;
        cfg.full_recompute = spec.full_recompute;
        cfg
    }
}
