//! # bgp-wren — the WREN BGP daemon (BIRD analogue)
//!
//! WREN is the second independent BGP implementation of this workspace
//! (its sibling is `bgp-fir`). Where FIR parses everything into host-order
//! structs, WREN follows BIRD's design choices (DESIGN.md §1):
//!
//! * **Wire-order `ea_list` attributes** ([`ealist::EaList`]): attributes
//!   are stored as a flat, code-sorted list of raw network-byte-order
//!   payloads, decoded lazily by typed accessors. The xBGP glue is
//!   therefore almost free — `get_attr` hands out the stored bytes, and
//!   BIRD's "flexible API to manage BGP attributes" maps directly onto
//!   `set_attr`/`add_attr` (the paper: "xBGP simply extends this API").
//! * **Hash-based native origin validation** ([`rpki::RoaHashTable`]):
//!   BIRD's ROA table is a hash structure, which is why its native origin
//!   validation performs like the xBGP extension in Fig. 4.
//! * **One routing table with per-net route lists** ([`rtable::RTable`]):
//!   like BIRD's `rtable`, all routes for a prefix live in one
//!   preference-ordered list tagged with their source channel; there is no
//!   materialized per-peer Adj-RIB-In.
//!
//! Protocol behaviour (FSM, decision outcomes, reflection rules) is
//! RFC-equivalent to FIR — the integration tests in the workspace root
//! assert the two daemons compute identical Loc-RIBs on identical
//! topologies — while the internals differ the way BIRD differs from
//! FRRouting.

pub mod config;
pub mod daemon;
pub mod ealist;
pub mod proto;
pub mod rtable;
pub mod xbgp_glue;

pub use config::{ChannelCfg, WrenConfig};
pub use daemon::{WrenDaemon, WrenStats};
