//! BIRD-style extended attribute lists.
//!
//! An [`EaList`] stores each BGP path attribute as `(code, flags, raw
//! network-byte-order payload)`, kept sorted by code. Typed information is
//! decoded on demand by accessors; nothing is parsed up front beyond the
//! TLV framing. This is the representation the paper credits for BIRD's
//! cheap xBGP integration: the neutral form *is* the stored form.

use xbgp_wire::attr::{encode_attr_tlv, AttrFlags, Origin};
use xbgp_wire::{AsPath, PathAttr, WireError};

/// One extended attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ea {
    pub code: u8,
    pub flags: u8,
    /// Raw payload, network byte order.
    pub raw: Vec<u8>,
}

/// A code-sorted list of attributes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct EaList {
    eas: Vec<Ea>,
}

fn be32(b: &[u8]) -> Option<u32> {
    Some(u32::from_be_bytes([*b.first()?, *b.get(1)?, *b.get(2)?, *b.get(3)?]))
}

impl EaList {
    pub fn new() -> EaList {
        EaList::default()
    }

    /// Build from the neutral typed form (message decode boundary).
    /// Validates the RFC 4271 mandatory attributes.
    pub fn from_wire(attrs: &[PathAttr]) -> Result<EaList, WireError> {
        let mut list = EaList::new();
        for attr in attrs {
            let mut raw = Vec::new();
            attr.encode_body(&mut raw, 4);
            list.set(attr.code(), attr.flags().0, raw);
        }
        if list.get(1).is_none() {
            return Err(WireError::MissingWellKnown("ORIGIN"));
        }
        if list.get(3).is_none() {
            return Err(WireError::MissingWellKnown("NEXT_HOP"));
        }
        // AS_PATH must at least parse.
        AsPath::decode_body(list.get(2).map(|e| e.raw.as_slice()).unwrap_or(&[]), 4)?;
        Ok(list)
    }

    /// Find attribute by code.
    pub fn get(&self, code: u8) -> Option<&Ea> {
        self.eas.binary_search_by_key(&code, |e| e.code).ok().map(|i| &self.eas[i])
    }

    /// Insert or replace an attribute (BIRD's `ea_set_attr`).
    pub fn set(&mut self, code: u8, flags: u8, raw: Vec<u8>) {
        match self.eas.binary_search_by_key(&code, |e| e.code) {
            Ok(i) => {
                self.eas[i].flags = flags;
                self.eas[i].raw = raw;
            }
            Err(i) => self.eas.insert(i, Ea { code, flags, raw }),
        }
    }

    /// Remove an attribute; true if it was present.
    pub fn unset(&mut self, code: u8) -> bool {
        match self.eas.binary_search_by_key(&code, |e| e.code) {
            Ok(i) => {
                self.eas.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    pub fn len(&self) -> usize {
        self.eas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.eas.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Ea> {
        self.eas.iter()
    }

    // ----- typed accessors (decode on demand) -----

    pub fn origin(&self) -> Option<Origin> {
        Origin::from_u8(*self.get(1)?.raw.first()?).ok()
    }

    pub fn as_path(&self) -> AsPath {
        self.get(2)
            .and_then(|e| AsPath::decode_body(&e.raw, 4).ok())
            .unwrap_or_default()
    }

    /// AS-path hop count without building an [`AsPath`] (scans the raw
    /// segments, BIRD's `as_path_getlen` style).
    pub fn as_path_hops(&self) -> usize {
        let Some(e) = self.get(2) else { return 0 };
        let mut buf = e.raw.as_slice();
        let mut hops = 0;
        while buf.len() >= 2 {
            let ty = buf[0];
            let count = usize::from(buf[1]);
            hops += if ty == 1 { 1 } else { count }; // SET counts one
            let body = 2 + count * 4;
            if buf.len() < body {
                break;
            }
            buf = &buf[body..];
        }
        hops
    }

    /// Origin AS: last ASN of the raw path if it ends in a SEQUENCE.
    pub fn origin_asn(&self) -> Option<u32> {
        let e = self.get(2)?;
        let mut buf = e.raw.as_slice();
        let mut last: Option<u32> = None;
        while buf.len() >= 2 {
            let ty = buf[0];
            let count = usize::from(buf[1]);
            let body = 2 + count * 4;
            if buf.len() < body {
                return None;
            }
            last = if ty == 2 && count > 0 {
                be32(&buf[2 + (count - 1) * 4..])
            } else {
                None
            };
            buf = &buf[body..];
        }
        last
    }

    /// Does the raw AS path contain `asn`? (loop detection)
    pub fn as_path_contains(&self, asn: u32) -> bool {
        let Some(e) = self.get(2) else { return false };
        let mut buf = e.raw.as_slice();
        while buf.len() >= 2 {
            let count = usize::from(buf[1]);
            let body = 2 + count * 4;
            if buf.len() < body {
                return false;
            }
            for i in 0..count {
                if be32(&buf[2 + i * 4..]) == Some(asn) {
                    return true;
                }
            }
            buf = &buf[body..];
        }
        false
    }

    /// Prepend `asn` to the raw AS path in place (eBGP export).
    pub fn as_path_prepend(&mut self, asn: u32) {
        let mut raw = self.get(2).map(|e| e.raw.clone()).unwrap_or_default();
        if raw.len() >= 2 && raw[0] == 2 && raw[1] < 255 {
            raw[1] += 1;
            raw.splice(2..2, asn.to_be_bytes());
        } else {
            let mut seg = vec![2u8, 1];
            seg.extend_from_slice(&asn.to_be_bytes());
            seg.extend_from_slice(&raw);
            raw = seg;
        }
        self.set(2, AttrFlags::WELL_KNOWN.0, raw);
    }

    pub fn next_hop(&self) -> Option<u32> {
        be32(&self.get(3)?.raw)
    }

    pub fn set_next_hop(&mut self, nh: u32) {
        self.set(3, AttrFlags::WELL_KNOWN.0, nh.to_be_bytes().to_vec());
    }

    pub fn med(&self) -> Option<u32> {
        be32(&self.get(4)?.raw)
    }

    pub fn local_pref(&self) -> Option<u32> {
        be32(&self.get(5)?.raw)
    }

    pub fn set_local_pref(&mut self, lp: u32) {
        self.set(5, AttrFlags::WELL_KNOWN.0, lp.to_be_bytes().to_vec());
    }

    pub fn originator_id(&self) -> Option<u32> {
        be32(&self.get(9)?.raw)
    }

    pub fn cluster_list(&self) -> Vec<u32> {
        self.get(10)
            .map(|e| e.raw.chunks_exact(4).filter_map(be32).collect())
            .unwrap_or_default()
    }

    pub fn cluster_list_contains(&self, id: u32) -> bool {
        self.get(10).is_some_and(|e| e.raw.chunks_exact(4).any(|c| be32(c) == Some(id)))
    }

    /// Prepend a cluster id to the raw CLUSTER_LIST.
    pub fn cluster_list_prepend(&mut self, id: u32) {
        let mut raw = id.to_be_bytes().to_vec();
        if let Some(e) = self.get(10) {
            raw.extend_from_slice(&e.raw);
        }
        self.set(10, AttrFlags::OPT_NON_TRANS.0, raw);
    }

    /// Serialize the attributes WREN understands (codes 1-10) back to the
    /// neutral typed form for the encoder. Higher codes are extension
    /// territory and emitted only by the encode-message insertion point,
    /// mirroring FIR's behaviour so both daemons have identical wire
    /// semantics.
    pub fn to_wire(&self) -> Vec<PathAttr> {
        let mut out = Vec::with_capacity(self.eas.len());
        for ea in &self.eas {
            if ea.code > 10 {
                continue;
            }
            let raw = xbgp_wire::attr::RawAttr {
                flags: AttrFlags(ea.flags),
                code: ea.code,
                value: &ea.raw,
            };
            if let Ok(attr) = PathAttr::decode(&raw, 4) {
                out.push(attr);
            }
        }
        out
    }

    /// Raw TLV encoding of the extension-owned (code > 10) attributes.
    pub fn extension_tlvs(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for ea in &self.eas {
            if ea.code > 10 {
                encode_attr_tlv(&mut out, AttrFlags(ea.flags), ea.code, &ea.raw);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_wire::AsPath;

    fn sample() -> EaList {
        EaList::from_wire(&[
            PathAttr::Origin(Origin::Igp),
            PathAttr::AsPath(AsPath::sequence(vec![65001, 65002])),
            PathAttr::NextHop(0x0a00_0001),
            PathAttr::Med(50),
        ])
        .unwrap()
    }

    #[test]
    fn list_is_sorted_and_searchable() {
        let l = sample();
        let codes: Vec<u8> = l.iter().map(|e| e.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
        assert!(l.get(2).is_some());
        assert!(l.get(5).is_none());
    }

    #[test]
    fn mandatory_attrs_enforced() {
        assert!(EaList::from_wire(&[PathAttr::NextHop(1)]).is_err());
        assert!(EaList::from_wire(&[PathAttr::Origin(Origin::Igp)]).is_err());
    }

    #[test]
    fn typed_accessors_decode_lazily() {
        let l = sample();
        assert_eq!(l.origin(), Some(Origin::Igp));
        assert_eq!(l.next_hop(), Some(0x0a00_0001));
        assert_eq!(l.med(), Some(50));
        assert_eq!(l.local_pref(), None);
        assert_eq!(l.as_path_hops(), 2);
        assert_eq!(l.origin_asn(), Some(65002));
        assert!(l.as_path_contains(65001));
        assert!(!l.as_path_contains(7));
    }

    #[test]
    fn raw_prepend_matches_typed_prepend() {
        let mut l = sample();
        l.as_path_prepend(65000);
        assert_eq!(l.as_path_hops(), 3);
        assert_eq!(
            l.as_path(),
            AsPath::sequence(vec![65000, 65001, 65002]),
            "raw in-place prepend must equal the typed operation"
        );
        // Prepending onto an empty path creates a fresh segment.
        let mut empty = EaList::new();
        empty.as_path_prepend(7);
        assert_eq!(empty.as_path(), AsPath::sequence(vec![7]));
    }

    #[test]
    fn set_and_unset() {
        let mut l = sample();
        l.set_local_pref(300);
        assert_eq!(l.local_pref(), Some(300));
        l.set(66, 0xc0, vec![1, 2, 3]);
        assert_eq!(l.get(66).unwrap().raw, vec![1, 2, 3]);
        assert!(l.unset(66));
        assert!(!l.unset(66));
    }

    #[test]
    fn cluster_list_operations_on_raw_bytes() {
        let mut l = sample();
        assert!(l.cluster_list().is_empty());
        l.cluster_list_prepend(7);
        l.cluster_list_prepend(9);
        assert_eq!(l.cluster_list(), vec![9, 7]);
        assert!(l.cluster_list_contains(7));
        assert!(!l.cluster_list_contains(8));
    }

    #[test]
    fn to_wire_round_trips_known_attrs_and_hides_extensions() {
        let mut l = sample();
        l.set(66, 0xc0, vec![9, 9]);
        let wire = l.to_wire();
        assert_eq!(wire.len(), 4, "codes 1-4 emitted, 66 withheld");
        let back = EaList::from_wire(&wire).unwrap();
        assert_eq!(back.next_hop(), l.next_hop());
        assert_eq!(back.as_path(), l.as_path());
        // Extension attrs are available as raw TLVs for the encode point.
        let tlvs = l.extension_tlvs();
        assert_eq!(tlvs, vec![0xc0, 66, 2, 9, 9]);
    }

    #[test]
    fn malformed_as_path_in_from_wire_rejected() {
        // Craft an Unknown-carried AS_PATH? Not possible through typed
        // attrs; instead verify accessor robustness on a corrupt raw path.
        let mut l = sample();
        l.set(2, 0x40, vec![2, 200, 1, 2, 3]); // claims 200 ASNs, has 1
        assert_eq!(l.origin_asn(), None);
        assert!(!l.as_path_contains(1));
    }
}
