//! The WREN daemon: netsim node, channel driver, rtable pipeline,
//! xBGP insertion points.

use crate::config::WrenConfig;
use crate::ealist::EaList;
use crate::proto::{Channel, ConnState};
use crate::rtable::{RTable, Rte, SrcId, TableChange};
use crate::xbgp_glue::{EaAccess, WrenXbgpCtx};
use netsim::{LinkId, Node, NodeCtx};
use rpki::{RoaHashTable, RoaTable, RovState};
use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;
use xbgp_core::api::{self, InsertionPoint, PeerInfo, PeerType};
use xbgp_core::{Manifest, Vmm, VmmOutcome};
use xbgp_obs::trace::{pack_prefix, TraceConfig, TraceDump, TraceKind, NO_EXT, NO_POINT};
use xbgp_obs::{Histogram, Snapshot};
use xbgp_rib::{push_rib_gauges, DirtySet, RibCounters};
use xbgp_wire::attr::encode_attrs;
use xbgp_wire::{Ipv4Prefix, Message, NotificationMsg, OpenMsg, UpdateMsg};

/// Harness-visible counters.
#[derive(Debug, Default, Clone)]
pub struct WrenStats {
    pub updates_rx: u64,
    pub prefixes_rx: u64,
    pub withdrawals_rx: u64,
    pub updates_tx: u64,
    pub prefixes_tx: u64,
    pub withdrawals_tx: u64,
    pub first_update_rx: Option<u64>,
    pub last_route_change: Option<u64>,
    pub sessions_established: u64,
    pub rov_valid: u64,
    pub rov_invalid: u64,
    pub rov_not_found: u64,
    pub xbgp_rejected: u64,
    /// Filter-point runs where an extension accepted the route (a
    /// `Value` other than reject).
    pub xbgp_accepted: u64,
    /// Decision-point runs resolved by an extension instead of the
    /// native comparison.
    pub xbgp_decisions: u64,
    /// Channel state transitions, indexed by target state
    /// ([`FSM_TO_OPEN_WAIT`] …).
    pub fsm_transitions: [u64; 4],
}

/// Indices into [`WrenStats::fsm_transitions`], one per target state.
pub const FSM_TO_OPEN_WAIT: usize = 0;
pub const FSM_TO_KEEPALIVE_WAIT: usize = 1;
pub const FSM_TO_UP: usize = 2;
pub const FSM_TO_DOWN: usize = 3;

/// Label values for the transition counters, matching the indices above.
const FSM_STATE_NAMES: [&str; 4] = ["open_wait", "keepalive_wait", "up", "down"];

/// Dense index of an insertion point into the hook-latency table.
fn pindex(p: InsertionPoint) -> usize {
    InsertionPoint::ALL.iter().position(|q| *q == p).expect("point in ALL")
}

const TK_KEEPALIVE: u64 = 0;
const TK_HOLD: u64 = 1;

/// One queued announcement: net, attrs to advertise, cached wire form.
type TxEntry = (Ipv4Prefix, Rc<EaList>, [u8; 24]);

/// The WREN BGP daemon. See the crate documentation.
pub struct WrenDaemon {
    cfg: WrenConfig,
    channels: Vec<Channel>,
    link_to_channel: HashMap<LinkId, usize>,
    table: RTable,
    /// Nets whose best route was changed by the withdraw path of the
    /// current UPDATE batch and not yet re-exported. Drained (in prefix
    /// order) at the end of the batch, so a storm touching one net many
    /// times propagates it once.
    dirty: DirtySet,
    /// Shared `xbgp_rib_*` churn accounting (same block as FIR).
    rib_counters: RibCounters,
    /// What each channel has been sent: net → advertised attrs.
    exported: Vec<HashMap<Ipv4Prefix, Rc<EaList>>>,
    /// Per-channel pending announcements (BIRD's tx event queue): batched
    /// into shared UPDATEs at flush points so the encode insertion point
    /// and message framing amortize over routes sharing attributes.
    txq: Vec<Vec<TxEntry>>,
    /// Per-channel pending withdrawals.
    txq_wd: Vec<Vec<Ipv4Prefix>>,
    vmm: Vmm,
    /// WREN's native origin validation: the hash table (§3.4).
    roa: Option<RoaHashTable>,
    /// The xBGP-layer ROA store for `rpki_check_origin`.
    xbgp_rov: Option<RoaHashTable>,
    pub stats: WrenStats,
    pub logs: Vec<String>,
    ext_rib_adds: Vec<(Ipv4Prefix, u32)>,
    /// Timing instrumentation on? (mirrors `WrenConfig::metrics`).
    metrics: bool,
    /// Wall-clock nanoseconds around each insertion-point hook, context
    /// marshalling included. Indexed by [`pindex`]; filled only when
    /// `metrics` is set.
    hook_ns: [Histogram; 5],
}

impl WrenDaemon {
    /// Build a daemon. Panics on an invalid xBGP manifest (startup-fatal
    /// configuration error).
    pub fn new(cfg: WrenConfig) -> WrenDaemon {
        let mut vmm = match &cfg.xbgp {
            Some(m) => Vmm::from_manifest(m).expect("invalid xBGP manifest"),
            None => Vmm::from_manifest(&Manifest::new()).expect("empty manifest"),
        };
        if cfg.metrics {
            vmm.enable_metrics();
        }
        if let Some(tc) = cfg.trace {
            vmm.enable_trace(tc);
        }
        if cfg.profile {
            vmm.enable_profile();
        }
        vmm.set_engine(cfg.engine);
        let mk_hash = |roas: &Vec<rpki::Roa>| {
            let mut t = RoaHashTable::new();
            for r in roas {
                t.insert(*r);
            }
            t
        };
        let roa = cfg.roa_table.as_ref().map(mk_hash);
        let xbgp_rov = cfg.xbgp_roas.as_ref().map(mk_hash);
        let channels: Vec<Channel> =
            cfg.channels.iter().map(|c| Channel::new(c.clone(), cfg.local_as)).collect();
        let link_to_channel = cfg.channels.iter().enumerate().map(|(i, c)| (c.link, i)).collect();
        let n = channels.len();
        let metrics = cfg.metrics;
        WrenDaemon {
            cfg,
            channels,
            link_to_channel,
            table: RTable::new(),
            dirty: DirtySet::new(),
            rib_counters: RibCounters::new(),
            exported: (0..n).map(|_| HashMap::new()).collect(),
            txq: (0..n).map(|_| Vec::new()).collect(),
            txq_wd: (0..n).map(|_| Vec::new()).collect(),
            vmm,
            roa,
            xbgp_rov,
            stats: WrenStats::default(),
            logs: Vec::new(),
            ext_rib_adds: Vec::new(),
            metrics,
            hook_ns: Default::default(),
        }
    }

    /// Turn on timing instrumentation at runtime (same effect as
    /// `WrenConfig::metrics`).
    pub fn enable_metrics(&mut self) {
        self.metrics = true;
        self.vmm.enable_metrics();
    }

    /// Attach a route-scoped flight recorder at runtime (same effect as
    /// `WrenConfig::trace`).
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        self.vmm.enable_trace(cfg);
    }

    /// Turn on the VM execution profiler at runtime.
    pub fn enable_profile(&mut self) {
        self.vmm.enable_profile();
    }

    /// Drain the flight recorder: ring contents, interned extension names
    /// and accumulated fault postmortems. `None` when tracing is off.
    pub fn take_trace(&mut self) -> Option<TraceDump> {
        self.vmm.take_trace()
    }

    /// Start a hook timer when instrumentation is on.
    fn hook_start(&self) -> Option<Instant> {
        self.metrics.then(Instant::now)
    }

    /// Record the elapsed time of one insertion-point hook.
    fn hook_end(&self, point: InsertionPoint, start: Option<Instant>) {
        if let Some(t0) = start {
            self.hook_ns[pindex(point)].observe(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Full observability snapshot: daemon counters and gauges, hook-site
    /// latency histograms (when instrumentation is on) and the VMM's
    /// per-point / per-extension metrics, all labelled `daemon="bgp-wren"`.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        let st = &self.stats;
        s.push_counter("xbgp_daemon_updates_rx_total", &[], st.updates_rx);
        s.push_counter("xbgp_daemon_updates_tx_total", &[], st.updates_tx);
        s.push_counter("xbgp_daemon_prefixes_rx_total", &[], st.prefixes_rx);
        s.push_counter("xbgp_daemon_prefixes_tx_total", &[], st.prefixes_tx);
        s.push_counter("xbgp_daemon_withdrawals_rx_total", &[], st.withdrawals_rx);
        s.push_counter("xbgp_daemon_withdrawals_tx_total", &[], st.withdrawals_tx);
        s.push_counter("xbgp_daemon_sessions_established_total", &[], st.sessions_established);
        for (state, n) in [
            ("valid", st.rov_valid),
            ("invalid", st.rov_invalid),
            ("not_found", st.rov_not_found),
        ] {
            s.push_counter("xbgp_daemon_rov_total", &[("state", state)], n);
        }
        s.push_counter("xbgp_daemon_filter_rejects_total", &[], st.xbgp_rejected);
        s.push_counter("xbgp_daemon_filter_accepts_total", &[], st.xbgp_accepted);
        s.push_counter("xbgp_daemon_decision_overrides_total", &[], st.xbgp_decisions);
        for (i, to) in FSM_STATE_NAMES.iter().enumerate() {
            s.push_counter(
                "xbgp_daemon_fsm_transitions_total",
                &[("to", to)],
                st.fsm_transitions[i],
            );
        }
        s.push_gauge("xbgp_daemon_table_size", &[], self.table.len() as i64);
        s.push_gauge(
            "xbgp_daemon_exported_routes",
            &[],
            self.exported.iter().map(HashMap::len).sum::<usize>() as i64,
        );
        s.push_gauge(
            "xbgp_daemon_sessions_up",
            &[],
            self.channels.iter().filter(|c| c.up()).count() as i64,
        );
        self.rib_counters.push(&mut s);
        push_rib_gauges(&mut s, self.table.route_len(), self.table.len(), self.dirty.len());
        if self.metrics {
            for p in InsertionPoint::ALL {
                s.push_histogram(
                    "xbgp_daemon_hook_ns",
                    &[("point", p.name())],
                    self.hook_ns[pindex(p)].snapshot(),
                );
            }
        }
        s.merge(self.vmm.metrics_snapshot())
            .expect("daemon and VMM share the bucket layout");
        s.with_labels(&[("daemon", "bgp-wren")])
    }

    /// Number of nets in the table.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Best route for a net.
    pub fn best_route(&self, net: &Ipv4Prefix) -> Option<&Rte> {
        self.table.best(net)
    }

    /// Nets in prefix order. The table trie's pre-order iteration *is*
    /// `(addr, len)` order, so no sort is needed for determinism.
    pub fn nets(&self) -> Vec<Ipv4Prefix> {
        self.table.iter_best().map(|(n, _)| n).collect()
    }

    /// Full table contents as `(net, wire-encoded best-route attributes)`,
    /// in prefix order straight off the trie (no sort — the iteration
    /// order is already the sorted order). The wire form is `Send` and
    /// implementation-neutral, so per-shard dumps can cross threads and
    /// be compared byte-for-byte against a sequential run's dump.
    pub fn loc_rib_dump(&self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        self.table
            .iter_best()
            .map(|(n, r)| (n, encode_attrs(&r.eattrs.to_wire(), 4)))
            .collect()
    }

    /// From-scratch Loc-RIB recomputation — the churn oracle. For every
    /// net, re-derive the best route by folding the full route list
    /// through the live comparator, ignoring the incrementally-maintained
    /// list head. Byte-identical to [`Self::loc_rib_dump`] whenever the
    /// incremental engine is correct. Takes `&mut self` because the
    /// comparator may run ③ decision extensions.
    pub fn oracle_loc_rib_dump(&mut self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        let mut out = Vec::new();
        for net in self.table.net_keys() {
            let routes = self.table.routes(&net).to_vec();
            let mut best: Option<Rte> = None;
            for rte in routes {
                // Folding in list order keeps ties on the earlier entry,
                // matching the stable insertion order the head reflects.
                let wins = match &best {
                    None => true,
                    Some(b) => self.rte_better(&rte, b),
                };
                if wins {
                    best = Some(rte);
                }
            }
            if let Some(b) = best {
                out.push((net, encode_attrs(&b.eattrs.to_wire(), 4)));
            }
        }
        out
    }

    pub fn session_established(&self, neighbor: u32) -> bool {
        self.channels.iter().any(|c| c.cfg.neighbor == neighbor && c.up())
    }

    pub fn xbgp_stats(&self) -> Vec<xbgp_core::vmm::ExtensionStats> {
        self.vmm.stats()
    }

    /// Read a block from an extension program's persistent memory.
    pub fn xbgp_shared_read(&self, group: &str, key: u64) -> Option<Vec<u8>> {
        self.vmm.shared_read(group, key)
    }

    fn cluster_id(&self) -> u32 {
        self.cfg.rr_cluster_id.unwrap_or(self.cfg.router_id)
    }

    fn peer_info(&self, ch: usize) -> PeerInfo {
        let c = &self.channels[ch];
        PeerInfo {
            router_id: c.cfg.neighbor,
            asn: c.cfg.neighbor_as,
            peer_type: if c.ibgp { PeerType::Ibgp } else { PeerType::Ebgp },
            local_router_id: self.cfg.router_id,
            local_asn: self.cfg.local_as,
            flags: if c.cfg.rr_client { api::PEER_FLAG_RR_CLIENT } else { 0 },
        }
    }

    fn source_info_bytes(&self, rte: &Rte) -> [u8; 24] {
        let mut flags = 0;
        if rte.src_rr_client {
            flags |= api::PEER_FLAG_RR_CLIENT;
        }
        if rte.src == SrcId::Local {
            flags |= api::PEER_FLAG_LOCAL;
        }
        let pi = PeerInfo {
            router_id: rte.src_addr,
            asn: rte.src_asn,
            peer_type: if rte.src_ibgp { PeerType::Ibgp } else { PeerType::Ebgp },
            local_router_id: self.cfg.router_id,
            local_asn: self.cfg.local_as,
            flags,
        };
        pi.to_bytes()
    }

    fn igp_metric(&self, nexthop: u32) -> u32 {
        match &self.cfg.igp {
            Some(igp) => igp.borrow().metric(self.cfg.router_id, nexthop),
            None => 0,
        }
    }

    fn nexthop_info(&self, ea: &EaList) -> api::NextHopInfo {
        let nh = ea.next_hop().unwrap_or(0);
        let metric = self.igp_metric(nh);
        api::NextHopInfo { addr: nh, igp_metric: metric, reachable: metric != u32::MAX }
    }

    // -----------------------------------------------------------------
    // Preference
    // -----------------------------------------------------------------

    /// Table update using the native comparator (fast path; no extension
    /// code runs, so the comparator can borrow the table context freely).
    fn table_update_fast(&mut self, net: Ipv4Prefix, rte: Rte) -> TableChange {
        let dlp = self.cfg.default_local_pref;
        let igp = self.cfg.igp.clone();
        let router_id = self.cfg.router_id;
        let metric = move |nh: u32| match &igp {
            Some(g) => g.borrow().metric(router_id, nh),
            None => 0,
        };
        self.table.update(net, rte, &mut |a, b| rte_better_native(a, b, dlp, &metric))
    }

    /// Preference with the ③ BGP_DECISION point consulted first.
    fn rte_better(&mut self, a: &Rte, b: &Rte) -> bool {
        if self.vmm.has_extensions(InsertionPoint::BgpDecision) {
            let best_wire = encode_attrs(&b.eattrs.to_wire(), 4);
            let peer = PeerInfo {
                router_id: a.src_addr,
                asn: a.src_asn,
                peer_type: if a.src_ibgp { PeerType::Ibgp } else { PeerType::Ebgp },
                local_router_id: self.cfg.router_id,
                local_asn: self.cfg.local_as,
                flags: 0,
            };
            let nexthop = self.nexthop_info(&a.eattrs);
            let t0 = self.hook_start();
            let hook_args = [best_wire.as_slice()];
            let mut hctx = WrenXbgpCtx {
                peer,
                args: &hook_args,
                eattrs: EaAccess::Read(&a.eattrs),
                net: None,
                nexthop: Some(nexthop),
                xtra: &self.cfg.xtra,
                out_buf: None,
                rov: self.xbgp_rov.as_ref(),
                rib_adds: &mut self.ext_rib_adds,
                logs: &mut self.logs,
            };
            let outcome = self.vmm.run(InsertionPoint::BgpDecision, &mut hctx);
            self.hook_end(InsertionPoint::BgpDecision, t0);
            match outcome {
                VmmOutcome::Value(v) => {
                    self.stats.xbgp_decisions += 1;
                    return v == api::DECISION_PREFER_NEW;
                }
                // The decision point has a sound native answer, so both
                // fallback and abort degrade to the native comparison.
                VmmOutcome::Fallback | VmmOutcome::Aborted => {}
            }
        }
        let dlp = self.cfg.default_local_pref;
        let metric = |nh: u32| self.igp_metric(nh);
        rte_better_native(a, b, dlp, &metric)
    }

    /// Is this route usable as best (nexthop reachable for iBGP routes)?
    fn eligible(&self, rte: &Rte) -> bool {
        if self.cfg.igp.is_none() || !rte.src_ibgp || rte.src == SrcId::Local {
            return true;
        }
        self.igp_metric(rte.eattrs.next_hop().unwrap_or(0)) != u32::MAX
    }

    /// First eligible route of a net's preference-ordered list.
    fn best_eligible(&self, net: &Ipv4Prefix) -> Option<Rte> {
        self.table.routes(net).iter().find(|r| self.eligible(r)).cloned()
    }

    // -----------------------------------------------------------------
    // Inbound
    // -----------------------------------------------------------------

    fn rx_update(&mut self, ctx: &mut NodeCtx<'_>, ch: usize, upd: UpdateMsg, raw_body: Vec<u8>) {
        self.stats.updates_rx += 1;
        if self.stats.first_update_rx.is_none() {
            self.stats.first_update_rx = Some(ctx.now());
        }
        if let Some(t) = self.vmm.tracer_mut() {
            t.set_now(ctx.now());
            t.on_ingest(ch as u64, upd.nlri.len() as u64);
        }

        for net in &upd.withdrawn {
            self.stats.withdrawals_rx += 1;
            let (change, removed) = self.table.withdraw(*net, SrcId::Channel(ch));
            if removed {
                self.rib_counters.withdrawals += 1;
            }
            // Defer the re-export: mark the net and propagate once per
            // batch at drain time. Propagation only reads the *current*
            // best route, so a storm touching the same net many times in
            // one batch collapses to a single export decision. Non-best
            // removals need nothing at all.
            if !matches!(change, TableChange::NoBestChange) {
                self.dirty.mark(*net);
            }
        }
        if upd.nlri.is_empty() {
            // Withdraw-only UPDATE: propagate the deferred best-route
            // changes, which may queue re-announcements or withdrawals.
            self.drain_dirty(ctx);
            self.flush_all(ctx);
            return;
        }

        let mut eattrs = match EaList::from_wire(&upd.attrs) {
            Ok(l) => l,
            Err(e) => {
                // Propagate the withdraw-loop deferrals first: the old
                // inline path had already queued their exports when the
                // malformed attributes surfaced, and `channel_down`'s
                // flush sends whatever is queued.
                self.drain_dirty(ctx);
                self.logs.push(format!("malformed UPDATE on channel {ch}: {e}"));
                self.tx(ctx, ch, &Message::Notification(NotificationMsg::from_error(&e)));
                self.channel_down(ctx, ch);
                return;
            }
        };

        let peer_info = self.peer_info(ch);
        // ① BGP_RECEIVE_MESSAGE.
        if self.vmm.has_extensions(InsertionPoint::BgpReceiveMessage) {
            let t0 = self.hook_start();
            let hook_args = [raw_body.as_slice()];
            let mut hctx = WrenXbgpCtx {
                peer: peer_info,
                args: &hook_args,
                eattrs: EaAccess::Mut(&mut eattrs),
                net: None,
                nexthop: None,
                xtra: &self.cfg.xtra,
                out_buf: None,
                rov: self.xbgp_rov.as_ref(),
                rib_adds: &mut self.ext_rib_adds,
                logs: &mut self.logs,
            };
            let _ = self.vmm.run(InsertionPoint::BgpReceiveMessage, &mut hctx);
            self.hook_end(InsertionPoint::BgpReceiveMessage, t0);
        }

        let ibgp = self.channels[ch].ibgp;
        // Loop prevention. These early returns still owe the withdraw
        // loop its deferred propagations (queued, like the old inline
        // path, though not flushed until the next flush point).
        if !ibgp && eattrs.as_path_contains(self.cfg.local_as) {
            self.drain_dirty(ctx);
            return;
        }
        if ibgp && self.cfg.rr_enabled {
            if eattrs.originator_id() == Some(self.cfg.router_id) {
                self.drain_dirty(ctx);
                return;
            }
            if eattrs.cluster_list_contains(self.cluster_id()) {
                self.drain_dirty(ctx);
                return;
            }
        }

        let shared = Rc::new(eattrs);
        let inbound_ext = self.vmm.has_extensions(InsertionPoint::BgpInboundFilter);
        let nexthop = self.nexthop_info(&shared);
        let (src_addr, src_asn, src_rr_client) = {
            let c = &self.channels[ch];
            (c.cfg.neighbor, c.cfg.neighbor_as, c.cfg.rr_client)
        };

        for net in &upd.nlri {
            self.stats.prefixes_rx += 1;
            if let Some(t) = self.vmm.tracer_mut() {
                t.begin_route(pack_prefix(net.addr(), net.len()));
            }
            let mut route_attrs = Rc::clone(&shared);

            // ② BGP_INBOUND_FILTER.
            if inbound_ext {
                let t0 = self.hook_start();
                let mut modified = None;
                let mut hctx = WrenXbgpCtx {
                    peer: peer_info,
                    args: &[],
                    eattrs: EaAccess::Cow { base: &shared, modified: &mut modified },
                    net: Some(*net),
                    nexthop: Some(nexthop),
                    xtra: &self.cfg.xtra,
                    out_buf: None,
                    rov: self.xbgp_rov.as_ref(),
                    rib_adds: &mut self.ext_rib_adds,
                    logs: &mut self.logs,
                };
                let outcome = self.vmm.run(InsertionPoint::BgpInboundFilter, &mut hctx);
                self.hook_end(InsertionPoint::BgpInboundFilter, t0);
                match outcome {
                    VmmOutcome::Value(v) if v == api::FILTER_REJECT => {
                        self.stats.xbgp_rejected += 1;
                        self.withdraw_and_propagate(ctx, *net, ch);
                        // Close the route scope on the early-reject path
                        // too: a leaked scope would let the next route's
                        // events inherit this route's attribution.
                        if let Some(t) = self.vmm.tracer_mut() {
                            t.end_route();
                        }
                        continue;
                    }
                    VmmOutcome::Value(_) => self.stats.xbgp_accepted += 1,
                    VmmOutcome::Fallback => {}
                    // `on_fault = abort`: the filter failed, so fail
                    // closed — reject the route rather than widen policy.
                    VmmOutcome::Aborted => {
                        self.stats.xbgp_rejected += 1;
                        self.withdraw_and_propagate(ctx, *net, ch);
                        if let Some(t) = self.vmm.tracer_mut() {
                            t.end_route();
                        }
                        continue;
                    }
                }
                if let Some(m) = modified {
                    route_attrs = Rc::new(m);
                }
            }

            // Native origin validation (hash table; tags, never drops).
            let rov = self.roa.as_ref().map(|table| {
                let state = match route_attrs.origin_asn() {
                    Some(origin) => table.validate(*net, origin),
                    None => RovState::NotFound,
                };
                match state {
                    RovState::Valid => self.stats.rov_valid += 1,
                    RovState::Invalid => self.stats.rov_invalid += 1,
                    RovState::NotFound => self.stats.rov_not_found += 1,
                }
                state
            });

            let rte = Rte {
                src: SrcId::Channel(ch),
                src_addr,
                src_asn,
                src_ibgp: ibgp,
                src_rr_client,
                eattrs: route_attrs,
                rov,
            };
            let change = if self.vmm.has_extensions(InsertionPoint::BgpDecision) {
                self.update_with_decision_ext(*net, rte)
            } else {
                self.table_update_fast(*net, rte)
            };
            self.rib_counters.updates_applied += 1;
            if !matches!(change, TableChange::NoBestChange) {
                // This propagation re-exports the net from its current
                // best, which already reflects any earlier withdraw-loop
                // removal — the deferred propagation is subsumed.
                self.dirty.unmark(net);
            }
            self.propagate(ctx, *net, change);
            // Every `begin_route` above is matched here or on the reject/
            // abort `continue`s, so no scope outlives its route.
            if let Some(t) = self.vmm.tracer_mut() {
                t.end_route();
            }
        }

        // Extension-installed routes.
        let adds: Vec<(Ipv4Prefix, u32)> = self.ext_rib_adds.drain(..).collect();
        for (net, nexthop) in adds {
            let rte = self.local_rte(nexthop);
            let change = self.table_update_fast(net, rte);
            self.rib_counters.updates_applied += 1;
            if !matches!(change, TableChange::NoBestChange) {
                self.dirty.unmark(&net);
            }
            self.propagate(ctx, net, change);
        }
        self.drain_dirty(ctx);
        self.flush_all(ctx);
    }

    /// Shared reject/abort handling in the inbound filter: drop any
    /// previously accepted route from this channel and re-export inline
    /// (inside the route's trace scope, so the decision is attributed).
    fn withdraw_and_propagate(&mut self, ctx: &mut NodeCtx<'_>, net: Ipv4Prefix, ch: usize) {
        let (change, removed) = self.table.withdraw(net, SrcId::Channel(ch));
        if removed {
            self.rib_counters.withdrawals += 1;
        }
        if !matches!(change, TableChange::NoBestChange) {
            // Same subsumption as the accept path: the inline propagation
            // below re-exports from the current best.
            self.dirty.unmark(&net);
        }
        self.propagate(ctx, net, change);
    }

    /// Propagate the deferred withdraw-path changes: every net still
    /// marked dirty is re-exported from its current best route (or
    /// withdrawn when gone), in prefix order. Inline NLRI processing
    /// unmarks nets it already re-exported, so each net is propagated at
    /// most once per batch. Under `full_recompute` this additionally
    /// degrades to the ablation baseline: resort and re-propagate every
    /// net in the table.
    fn drain_dirty(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.dirty.is_empty() {
            let batch = self.dirty.drain_ordered();
            self.rib_counters.delta_batch_size.observe(batch.len() as u64);
            for net in batch {
                // The mark means the net's head changed; whether it is a
                // re-announce or a withdrawal falls out of the current
                // table state (propagation reads only the current best,
                // so `BestChanged` vs `NetGone` steer the same arm).
                let change = if self.table.routes(&net).is_empty() {
                    TableChange::NetGone
                } else {
                    TableChange::BestChanged
                };
                self.propagate(ctx, net, change);
            }
        }
        if self.cfg.full_recompute {
            self.full_resort_sweep(ctx);
        }
    }

    /// The full-recompute ablation baseline: re-run the comparator over
    /// every net in the table and propagate any head changes. With the
    /// strict total preference order and the stable resort this is
    /// byte-identical to the incremental path — it exists only to
    /// measure what the delta engine saves.
    fn full_resort_sweep(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.vmm.has_extensions(InsertionPoint::BgpDecision) {
            // Slow path mirror of `update_with_decision_ext`: the
            // comparator may run extension code, so each list is pulled
            // out, stably resorted, and reinserted.
            for net in self.table.net_keys() {
                let routes = self.table.routes(&net).to_vec();
                let old_best = routes.first().map(|r| r.src);
                let mut sorted: Vec<Rte> = Vec::with_capacity(routes.len());
                for rte in routes {
                    let pos = sorted
                        .iter()
                        .position(|s| self.rte_better(&rte, s))
                        .unwrap_or(sorted.len());
                    sorted.insert(pos, rte);
                }
                let new_best = sorted.first().map(|r| r.src);
                self.table.replace_net(net, sorted);
                let change = if new_best == old_best {
                    TableChange::NoBestChange
                } else {
                    TableChange::BestChanged
                };
                self.propagate(ctx, net, change);
            }
            return;
        }
        let dlp = self.cfg.default_local_pref;
        let igp = self.cfg.igp.clone();
        let router_id = self.cfg.router_id;
        let metric = move |nh: u32| match &igp {
            Some(g) => g.borrow().metric(router_id, nh),
            None => 0,
        };
        for net in self.table.net_keys() {
            let change = self.table.resort(&net, &mut |a, b| rte_better_native(a, b, dlp, &metric));
            self.propagate(ctx, net, change);
        }
    }

    fn update_with_decision_ext(&mut self, net: Ipv4Prefix, rte: Rte) -> TableChange {
        // Slow path: the comparator may run extension code, so the list is
        // pulled out, compared, and reinserted.
        let mut routes: Vec<Rte> = self.table.routes(&net).to_vec();
        routes.retain(|r| r.src != rte.src);
        let mut pos = routes.len();
        for (i, incumbent) in routes.iter().enumerate() {
            if self.rte_better(&rte, incumbent) {
                pos = i;
                break;
            }
        }
        routes.insert(pos, rte.clone());
        // Rebuild the net in the table.
        let src_order: Vec<Rte> = routes;
        let old_best_src = self.table.best(&net).map(|r| r.src);
        self.table.replace_net(net, src_order);
        let new_best_src = self.table.best(&net).map(|r| r.src);
        if old_best_src != new_best_src || new_best_src == Some(rte.src) {
            TableChange::BestChanged
        } else {
            TableChange::NoBestChange
        }
    }

    fn local_rte(&self, nexthop: u32) -> Rte {
        let eattrs = EaList::from_wire(&[
            xbgp_wire::PathAttr::Origin(xbgp_wire::attr::Origin::Igp),
            xbgp_wire::PathAttr::AsPath(xbgp_wire::AsPath::empty()),
            xbgp_wire::PathAttr::NextHop(nexthop),
        ])
        .expect("local attrs well-formed");
        Rte {
            src: SrcId::Local,
            src_addr: self.cfg.router_id,
            src_asn: self.cfg.local_as,
            src_ibgp: true,
            src_rr_client: false,
            eattrs: Rc::new(eattrs),
            rov: None,
        }
    }

    // -----------------------------------------------------------------
    // Outbound
    // -----------------------------------------------------------------

    /// React to a table change on `net`: re-announce or withdraw on every
    /// channel.
    fn propagate(&mut self, ctx: &mut NodeCtx<'_>, net: Ipv4Prefix, change: TableChange) {
        if let Some(t) = self.vmm.tracer_mut() {
            let best_changed = !matches!(change, TableChange::NoBestChange);
            t.record(
                TraceKind::Decision,
                NO_POINT,
                NO_EXT,
                pack_prefix(net.addr(), net.len()),
                u64::from(best_changed),
            );
        }
        match change {
            TableChange::NoBestChange => {}
            TableChange::BestChanged | TableChange::NetGone => {
                self.stats.last_route_change = Some(ctx.now());
                self.rib_counters.best_changes += 1;
                let best = self.best_eligible(&net);
                for ch in 0..self.channels.len() {
                    match &best {
                        Some(rte) => self.announce_one(ctx, ch, net, rte),
                        None => self.withdraw_one(ctx, ch, net),
                    }
                }
            }
        }
    }

    fn withdraw_one(&mut self, _ctx: &mut NodeCtx<'_>, ch: usize, net: Ipv4Prefix) {
        if !self.channels[ch].up() {
            return;
        }
        if self.exported[ch].remove(&net).is_some() {
            self.txq_wd[ch].push(net);
        }
    }

    /// Export one route to one channel: policy and transform here, then
    /// into the channel's tx queue; framing and the encode insertion point
    /// happen at flush time over whole batches (BIRD's tx event queue).
    fn announce_one(&mut self, ctx: &mut NodeCtx<'_>, ch: usize, net: Ipv4Prefix, rte: &Rte) {
        if !self.channels[ch].up() {
            return;
        }
        // Split horizon, with implicit withdraw of a previously advertised
        // copy (the neighbor became our best source for this net).
        if rte.src != SrcId::Local && rte.src_addr == self.channels[ch].cfg.neighbor {
            self.withdraw_one(ctx, ch, net);
            return;
        }

        // ④ BGP_OUTBOUND_FILTER.
        let allowed = if self.vmm.has_extensions(InsertionPoint::BgpOutboundFilter) {
            let t0 = self.hook_start();
            let peer_info = self.peer_info(ch);
            let nexthop = self.nexthop_info(&rte.eattrs);
            let src_bytes = self.source_info_bytes(rte);
            let hook_args = [&src_bytes[..]];
            let mut hctx = WrenXbgpCtx {
                peer: peer_info,
                args: &hook_args,
                eattrs: EaAccess::Read(&rte.eattrs),
                net: Some(net),
                nexthop: Some(nexthop),
                xtra: &self.cfg.xtra,
                out_buf: None,
                rov: self.xbgp_rov.as_ref(),
                rib_adds: &mut self.ext_rib_adds,
                logs: &mut self.logs,
            };
            let outcome = self.vmm.run(InsertionPoint::BgpOutboundFilter, &mut hctx);
            self.hook_end(InsertionPoint::BgpOutboundFilter, t0);
            match outcome {
                VmmOutcome::Value(v) if v == api::FILTER_REJECT => {
                    self.stats.xbgp_rejected += 1;
                    false
                }
                VmmOutcome::Value(_) => {
                    self.stats.xbgp_accepted += 1;
                    true
                }
                VmmOutcome::Fallback => self.export_policy_native(ch, rte),
                // Fail closed: a broken `abort` filter exports nothing.
                VmmOutcome::Aborted => {
                    self.stats.xbgp_rejected += 1;
                    false
                }
            }
        } else {
            self.export_policy_native(ch, rte)
        };
        if !allowed {
            self.withdraw_one(ctx, ch, net);
            return;
        }

        // Transform for the session type (in-place on a copy of the raw
        // list — BIRD's export path copies the ea_list too).
        let ibgp_dest = self.channels[ch].ibgp;
        let mut out = (*rte.eattrs).clone();
        if ibgp_dest {
            if out.local_pref().is_none() {
                out.set_local_pref(self.cfg.default_local_pref);
            }
            if self.cfg.rr_enabled && rte.src != SrcId::Local && rte.src_ibgp {
                if out.originator_id().is_none() {
                    out.set(9, 0x80, rte.src_addr.to_be_bytes().to_vec());
                }
                out.cluster_list_prepend(self.cluster_id());
            }
        } else {
            out.as_path_prepend(self.cfg.local_as);
            out.set_next_hop(self.cfg.router_id);
            out.unset(5);
            out.unset(4);
            out.unset(9);
            out.unset(10);
        }
        let out = Rc::new(out);

        // Suppress duplicates.
        if self.exported[ch].get(&net).is_some_and(|prev| **prev == *out) {
            return;
        }
        self.exported[ch].insert(net, Rc::clone(&out));
        if let Some(t) = self.vmm.tracer_mut() {
            t.record(
                TraceKind::Propagate,
                NO_POINT,
                NO_EXT,
                pack_prefix(net.addr(), net.len()),
                ch as u64,
            );
        }
        let src_blob = self.source_info_bytes(rte);
        self.txq[ch].push((net, out, src_blob));
        let _ = ctx;
    }

    /// Drain one channel's tx queue: group by (attributes, source), run
    /// the ⑤ BGP_ENCODE_MESSAGE point once per group, frame in ≤700-NLRI
    /// chunks, send.
    fn flush_channel(&mut self, ctx: &mut NodeCtx<'_>, ch: usize) {
        if self.txq_wd[ch].is_empty() && self.txq[ch].is_empty() {
            return;
        }
        let withdrawals = std::mem::take(&mut self.txq_wd[ch]);
        let pending = std::mem::take(&mut self.txq[ch]);
        if !self.channels[ch].up() {
            return;
        }
        for chunk in withdrawals.chunks(800) {
            let upd = UpdateMsg::withdraw(chunk.to_vec());
            self.stats.updates_tx += 1;
            self.stats.withdrawals_tx += chunk.len() as u64;
            self.tx(ctx, ch, &Message::Update(upd));
        }

        // Group by (attrs, source blob), preserving first-seen order.
        let mut order: Vec<(Rc<EaList>, [u8; 24], Vec<Ipv4Prefix>)> = Vec::new();
        let mut index: HashMap<(Rc<EaList>, [u8; 24]), usize> = HashMap::new();
        for (net, out, src) in pending {
            let key = (Rc::clone(&out), src);
            match index.get(&key) {
                Some(&i) => order[i].2.push(net),
                None => {
                    index.insert(key, order.len());
                    order.push((out, src, vec![net]));
                }
            }
        }

        let encode_ext = self.vmm.has_extensions(InsertionPoint::BgpEncodeMessage);
        let width = self.channels[ch].asn_width();
        for (out, src, nets) in order {
            let mut extra = Vec::new();
            if encode_ext {
                let t0 = self.hook_start();
                let peer_info = self.peer_info(ch);
                let hook_args = [&src[..]];
                let mut hctx = WrenXbgpCtx {
                    peer: peer_info,
                    args: &hook_args,
                    eattrs: EaAccess::Read(&out),
                    net: nets.first().copied(),
                    nexthop: None,
                    xtra: &self.cfg.xtra,
                    out_buf: Some(&mut extra),
                    rov: self.xbgp_rov.as_ref(),
                    rib_adds: &mut self.ext_rib_adds,
                    logs: &mut self.logs,
                };
                let _ = self.vmm.run(InsertionPoint::BgpEncodeMessage, &mut hctx);
                self.hook_end(InsertionPoint::BgpEncodeMessage, t0);
            }
            let wire = out.to_wire();
            for chunk in nets.chunks(700) {
                let upd = UpdateMsg::announce(wire.clone(), chunk.to_vec());
                match upd.encode_with_extra(&extra, width) {
                    Ok(frame) => {
                        self.stats.updates_tx += 1;
                        self.stats.prefixes_tx += chunk.len() as u64;
                        ctx.send(self.channels[ch].cfg.link, &frame);
                    }
                    Err(e) => self.logs.push(format!("encode failed on channel {ch}: {e}")),
                }
            }
        }
    }

    /// Flush every channel's tx queue.
    fn flush_all(&mut self, ctx: &mut NodeCtx<'_>) {
        for ch in 0..self.channels.len() {
            self.flush_channel(ctx, ch);
        }
    }

    fn export_policy_native(&self, ch: usize, rte: &Rte) -> bool {
        if !self.channels[ch].ibgp {
            return true;
        }
        if rte.src == SrcId::Local || !rte.src_ibgp {
            return true;
        }
        self.cfg.rr_enabled && (rte.src_rr_client || self.channels[ch].cfg.rr_client)
    }

    /// Full-table dump when a channel comes up, in prefix order straight
    /// off the trie — deterministic wire batching without a sort.
    fn feed_channel(&mut self, ctx: &mut NodeCtx<'_>, ch: usize) {
        for net in self.table.net_keys() {
            if let Some(rte) = self.best_eligible(&net) {
                self.announce_one(ctx, ch, net, &rte);
            }
        }
    }

    // -----------------------------------------------------------------
    // Channel lifecycle and message dispatch
    // -----------------------------------------------------------------

    fn tx(&mut self, ctx: &mut NodeCtx<'_>, ch: usize, msg: &Message) {
        let width = self.channels[ch].asn_width();
        match msg.encode(width) {
            Ok(frame) => ctx.send(self.channels[ch].cfg.link, &frame),
            Err(e) => self.logs.push(format!("encode error on channel {ch}: {e}")),
        }
    }

    fn start_channel(&mut self, ctx: &mut NodeCtx<'_>, ch: usize) {
        let open =
            OpenMsg::standard(self.cfg.local_as, self.cfg.hold_time_secs, self.cfg.router_id);
        self.channels[ch].conn_state = ConnState::OpenWait;
        self.stats.fsm_transitions[FSM_TO_OPEN_WAIT] += 1;
        self.tx(ctx, ch, &Message::Open(open));
    }

    fn channel_up(&mut self, ctx: &mut NodeCtx<'_>, ch: usize) {
        self.channels[ch].conn_state = ConnState::Up;
        self.stats.fsm_transitions[FSM_TO_UP] += 1;
        self.channels[ch].last_rx = ctx.now();
        self.stats.sessions_established += 1;
        let hold = self.channels[ch].hold_ns;
        if hold > 0 {
            ctx.set_timer(hold / 3, (ch as u64) * 2 + TK_KEEPALIVE);
            ctx.set_timer(hold / 3, (ch as u64) * 2 + TK_HOLD);
        }
        self.feed_channel(ctx, ch);
        self.flush_all(ctx);
    }

    fn channel_down(&mut self, ctx: &mut NodeCtx<'_>, ch: usize) {
        if self.channels[ch].conn_state == ConnState::Down {
            return;
        }
        self.channels[ch].down();
        self.stats.fsm_transitions[FSM_TO_DOWN] += 1;
        self.exported[ch].clear();
        let before = self.table.route_len();
        let changes = self.table.flush_src(SrcId::Channel(ch));
        self.rib_counters.withdrawals += (before - self.table.route_len()) as u64;
        for (net, change) in changes {
            self.propagate(ctx, net, change);
        }
        self.flush_all(ctx);
    }

    fn rx_frame(&mut self, ctx: &mut NodeCtx<'_>, ch: usize, frame: Vec<u8>) {
        self.channels[ch].last_rx = ctx.now();
        let width = self.channels[ch].asn_width();
        let decoded = match xbgp_wire::msg::deframe(&frame) {
            Ok((ty, body)) => Message::decode_body(ty, body, width).map(|m| (m, body.to_vec())),
            Err(e) => Err(e),
        };
        let (msg, body) = match decoded {
            Ok(v) => v,
            Err(e) => {
                self.logs.push(format!("bad message on channel {ch}: {e}"));
                self.tx(ctx, ch, &Message::Notification(NotificationMsg::from_error(&e)));
                self.channel_down(ctx, ch);
                return;
            }
        };
        match (self.channels[ch].conn_state, msg) {
            (ConnState::OpenWait, Message::Open(open)) => {
                match self.channels[ch].accept_open(&open, self.cfg.hold_time_secs) {
                    Ok(()) => {
                        self.stats.fsm_transitions[FSM_TO_KEEPALIVE_WAIT] += 1;
                        self.tx(ctx, ch, &Message::Keepalive)
                    }
                    Err(reason) => {
                        self.logs.push(format!("OPEN rejected on channel {ch}: {reason}"));
                        self.tx(ctx, ch, &Message::Notification(NotificationMsg::new(2, 2)));
                        self.channel_down(ctx, ch);
                    }
                }
            }
            (ConnState::KeepaliveWait, Message::Keepalive) => self.channel_up(ctx, ch),
            (ConnState::Up, Message::Update(upd)) => self.rx_update(ctx, ch, upd, body),
            (ConnState::Up, Message::Keepalive) => {}
            (_, Message::Notification(n)) => {
                self.logs.push(format!("NOTIFICATION {}/{} on channel {ch}", n.code, n.subcode));
                self.channel_down(ctx, ch);
            }
            (state, msg) => {
                self.logs
                    .push(format!("unexpected {:?} in {state:?} on channel {ch}", msg.msg_type()));
                self.tx(ctx, ch, &Message::Notification(NotificationMsg::new(5, 0)));
                self.channel_down(ctx, ch);
            }
        }
    }
}

impl Node for WrenDaemon {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let originate = self.cfg.originate.clone();
        for (net, nexthop) in originate {
            let rte = self.local_rte(nexthop);
            let change = self.table_update_fast(net, rte);
            self.propagate(ctx, net, change);
        }
        self.flush_all(ctx);
        for ch in 0..self.channels.len() {
            self.start_channel(ctx, ch);
        }
    }

    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, data: &[u8]) {
        let Some(&ch) = self.link_to_channel.get(&link) else {
            return;
        };
        if self.channels[ch].conn_state == ConnState::Down {
            return;
        }
        self.channels[ch].rx.push(data);
        loop {
            match self.channels[ch].rx.next_frame() {
                Ok(Some(frame)) => self.rx_frame(ctx, ch, frame),
                Ok(None) => break,
                Err(e) => {
                    self.logs.push(format!("framing error on channel {ch}: {e}"));
                    self.tx(ctx, ch, &Message::Notification(NotificationMsg::from_error(&e)));
                    self.channel_down(ctx, ch);
                    break;
                }
            }
            if self.channels[ch].conn_state == ConnState::Down {
                break;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let ch = (token / 2) as usize;
        if ch >= self.channels.len() || !self.channels[ch].up() {
            return;
        }
        let hold = self.channels[ch].hold_ns;
        if token % 2 == TK_KEEPALIVE {
            self.tx(ctx, ch, &Message::Keepalive);
            ctx.set_timer(hold / 3, token);
        } else if ctx.now().saturating_sub(self.channels[ch].last_rx) >= hold {
            self.logs.push(format!("hold timer expired on channel {ch}"));
            self.tx(ctx, ch, &Message::Notification(NotificationMsg::new(4, 0)));
            self.channel_down(ctx, ch);
        } else {
            ctx.set_timer(hold / 3, token);
        }
    }

    fn on_link_event(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, up: bool) {
        let Some(&ch) = self.link_to_channel.get(&link) else {
            return;
        };
        if up {
            if self.channels[ch].conn_state == ConnState::Down {
                self.start_channel(ctx, ch);
            }
        } else {
            self.channel_down(ctx, ch);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl xbgp_driver::Daemon for WrenDaemon {
    fn kind(&self) -> xbgp_driver::Dut {
        xbgp_driver::Dut::Wren
    }

    fn loc_rib_len(&self) -> usize {
        self.table_len()
    }

    fn has_best_route(&self, prefix: &Ipv4Prefix) -> bool {
        self.best_route(prefix).is_some()
    }

    fn loc_rib_dump(&self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        WrenDaemon::loc_rib_dump(self)
    }

    fn oracle_loc_rib_dump(&mut self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        WrenDaemon::oracle_loc_rib_dump(self)
    }

    fn metrics_snapshot(&self) -> Snapshot {
        WrenDaemon::metrics_snapshot(self)
    }

    fn take_trace(&mut self) -> Option<TraceDump> {
        WrenDaemon::take_trace(self)
    }

    fn session_established(&self, addr: u32) -> bool {
        WrenDaemon::session_established(self, addr)
    }

    fn counters(&self) -> xbgp_driver::DaemonCounters {
        let st = &self.stats;
        xbgp_driver::DaemonCounters {
            updates_rx: st.updates_rx,
            prefixes_rx: st.prefixes_rx,
            withdrawals_rx: st.withdrawals_rx,
            updates_tx: st.updates_tx,
            prefixes_tx: st.prefixes_tx,
            withdrawals_tx: st.withdrawals_tx,
            sessions_established: st.sessions_established,
            first_update_rx: st.first_update_rx,
            last_route_change: st.last_route_change,
        }
    }
}

/// WREN's native RFC 4271 §9.1 preference, written over the lazy
/// `ea_list` accessors. A free function so the fast-path table update can
/// borrow the table mutably while comparing.
fn rte_better_native(
    a: &Rte,
    b: &Rte,
    default_local_pref: u32,
    igp_metric: &dyn Fn(u32) -> u32,
) -> bool {
    let lp = |r: &Rte| r.eattrs.local_pref().unwrap_or(default_local_pref);
    if lp(a) != lp(b) {
        return lp(a) > lp(b);
    }
    let hops = |r: &Rte| r.eattrs.as_path_hops();
    if hops(a) != hops(b) {
        return hops(a) < hops(b);
    }
    let origin = |r: &Rte| r.eattrs.origin().map(|o| o as u8).unwrap_or(2);
    if origin(a) != origin(b) {
        return origin(a) < origin(b);
    }
    let med = |r: &Rte| r.eattrs.med().unwrap_or(0);
    if med(a) != med(b) {
        return med(a) < med(b);
    }
    let ebgp = |r: &Rte| !r.src_ibgp && r.src != SrcId::Local;
    if ebgp(a) != ebgp(b) {
        return ebgp(a);
    }
    let metric = |r: &Rte| igp_metric(r.eattrs.next_hop().unwrap_or(0));
    if metric(a) != metric(b) {
        return metric(a) < metric(b);
    }
    let orig_id = |r: &Rte| r.eattrs.originator_id().unwrap_or(r.src_addr);
    if orig_id(a) != orig_id(b) {
        return orig_id(a) < orig_id(b);
    }
    a.src_addr < b.src_addr
}
