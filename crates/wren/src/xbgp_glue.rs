//! xBGP execution contexts for WREN.
//!
//! BIRD already stores attributes as wire-order `ea_list`s with a generic
//! attribute API, so the paper reports the xBGP integration was almost
//! free ("BIRD includes a flexible API to manage BGP attributes. xBGP
//! simply extends this API"). WREN reproduces that: `get_attr` returns the
//! stored payload bytes, `set_attr` stores them — no representation
//! conversion, unlike FIR.

use crate::ealist::EaList;
use rpki::{RoaHashTable, RoaTable};
use xbgp_core::api::{NextHopInfo, PeerInfo};
use xbgp_core::{HostApi, HostError, HostOp};
use xbgp_wire::Ipv4Prefix;

/// How the current insertion point exposes the route's `ea_list`.
pub enum EaAccess<'a> {
    None,
    Read(&'a EaList),
    /// Copy-on-write over a shared list.
    Cow {
        base: &'a EaList,
        modified: &'a mut Option<EaList>,
    },
    Mut(&'a mut EaList),
}

impl EaAccess<'_> {
    /// Non-mutating probe used by `check_op`: can this point write
    /// attributes at all? (A `write()` call would clone on a Cow point.)
    fn writable(&self) -> bool {
        !matches!(self, EaAccess::None | EaAccess::Read(_))
    }

    fn read(&self) -> Option<&EaList> {
        match self {
            EaAccess::None => None,
            EaAccess::Read(l) => Some(l),
            EaAccess::Cow { base, modified } => Some(modified.as_ref().unwrap_or(base)),
            EaAccess::Mut(l) => Some(l),
        }
    }

    fn write(&mut self) -> Option<&mut EaList> {
        match self {
            EaAccess::None | EaAccess::Read(_) => None,
            EaAccess::Cow { base, modified } => {
                if modified.is_none() {
                    **modified = Some((*base).clone());
                }
                modified.as_mut()
            }
            EaAccess::Mut(l) => Some(l),
        }
    }
}

/// Execution context for one WREN insertion-point call.
pub struct WrenXbgpCtx<'a> {
    pub peer: PeerInfo,
    /// Insertion-point arguments, borrowed from the daemon.
    pub args: &'a [&'a [u8]],
    pub eattrs: EaAccess<'a>,
    pub net: Option<Ipv4Prefix>,
    pub nexthop: Option<NextHopInfo>,
    pub xtra: &'a [(String, Vec<u8>)],
    pub out_buf: Option<&'a mut Vec<u8>>,
    pub rov: Option<&'a RoaHashTable>,
    pub rib_adds: &'a mut Vec<(Ipv4Prefix, u32)>,
    pub logs: &'a mut Vec<String>,
}

impl HostApi for WrenXbgpCtx<'_> {
    fn peer_info(&self) -> PeerInfo {
        self.peer
    }

    fn nexthop_info(&self) -> Option<NextHopInfo> {
        self.nexthop
    }

    fn prefix(&self) -> Option<Ipv4Prefix> {
        self.net
    }

    fn arg(&self, idx: u32) -> Option<&[u8]> {
        self.args.get(idx as usize).copied()
    }

    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8> {
        // The stored form is already the neutral form: a straight copy.
        let ea = self.eattrs.read()?.get(code)?;
        out.extend_from_slice(&ea.raw);
        Some(ea.flags)
    }

    fn has_attr(&self, code: u8) -> bool {
        self.eattrs.read().is_some_and(|l| l.get(code).is_some())
    }

    fn check_op(&self, op: &HostOp<'_>) -> Result<(), HostError> {
        // An `ea_list` stores any payload verbatim, so the only stage-time
        // conditions are point writability and buffer availability.
        match op {
            HostOp::SetAttr { .. } if !self.eattrs.writable() => {
                Err(HostError::ReadOnlyPoint { op: "set_attr" })
            }
            HostOp::RemoveAttr { .. } if !self.eattrs.writable() => {
                Err(HostError::ReadOnlyPoint { op: "remove_attr" })
            }
            HostOp::WriteBuf { .. } if self.out_buf.is_none() => Err(HostError::NoOutputBuffer),
            _ => Ok(()),
        }
    }

    fn set_attr(&mut self, code: u8, flags: u8, value: &[u8]) -> Result<(), HostError> {
        let list = self.eattrs.write().ok_or(HostError::ReadOnlyPoint { op: "set_attr" })?;
        list.set(code, flags, value.to_vec());
        Ok(())
    }

    fn remove_attr(&mut self, code: u8) -> Result<(), HostError> {
        let list = self.eattrs.write().ok_or(HostError::ReadOnlyPoint { op: "remove_attr" })?;
        if list.unset(code) {
            Ok(())
        } else {
            Err(HostError::AttrNotPresent { code })
        }
    }

    fn get_xtra(&self, key: &str) -> Option<Vec<u8>> {
        self.xtra.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    fn write_buf(&mut self, data: &[u8]) -> Result<(), HostError> {
        match self.out_buf.as_deref_mut() {
            Some(buf) => {
                buf.extend_from_slice(data);
                Ok(())
            }
            None => Err(HostError::NoOutputBuffer),
        }
    }

    fn check_origin(&self, prefix: Ipv4Prefix, origin_asn: u32) -> u64 {
        match self.rov {
            Some(table) => table.validate(prefix, origin_asn) as u8 as u64,
            None => xbgp_core::api::ROV_NOT_FOUND,
        }
    }

    fn rib_add_route(&mut self, prefix: Ipv4Prefix, nexthop: u32) -> Result<(), HostError> {
        self.rib_adds.push((prefix, nexthop));
        Ok(())
    }

    fn log(&mut self, msg: &str) {
        self.logs.push(msg.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_core::api::PeerType;

    fn peer() -> PeerInfo {
        PeerInfo {
            router_id: 1,
            asn: 65002,
            peer_type: PeerType::Ebgp,
            local_router_id: 2,
            local_asn: 65001,
            flags: 0,
        }
    }

    #[test]
    fn get_attr_is_a_straight_copy_of_stored_bytes() {
        let mut list = EaList::new();
        list.set(5, 0x40, 100u32.to_be_bytes().to_vec());
        let mut rib_adds = Vec::new();
        let mut logs = Vec::new();
        let ctx = WrenXbgpCtx {
            peer: peer(),
            args: &[],
            eattrs: EaAccess::Read(&list),
            net: None,
            nexthop: None,
            xtra: &[],
            out_buf: None,
            rov: None,
            rib_adds: &mut rib_adds,
            logs: &mut logs,
        };
        let (flags, payload) = ctx.get_attr(5).unwrap();
        assert_eq!(flags, 0x40);
        assert_eq!(payload, 100u32.to_be_bytes());
    }

    #[test]
    fn cow_preserves_shared_base() {
        let mut base = EaList::new();
        base.set(4, 0x80, 1u32.to_be_bytes().to_vec());
        let mut modified = None;
        let mut rib_adds = Vec::new();
        let mut logs = Vec::new();
        let mut ctx = WrenXbgpCtx {
            peer: peer(),
            args: &[],
            eattrs: EaAccess::Cow { base: &base, modified: &mut modified },
            net: None,
            nexthop: None,
            xtra: &[],
            out_buf: None,
            rov: None,
            rib_adds: &mut rib_adds,
            logs: &mut logs,
        };
        ctx.set_attr(4, 0x80, &9u32.to_be_bytes()).unwrap();
        assert_eq!(ctx.get_attr(4).unwrap().1, 9u32.to_be_bytes());
        assert_eq!(base.med(), Some(1));
        assert_eq!(modified.unwrap().med(), Some(9));
    }
}
