//! BIRD-style routing table: one table, per-net route lists.
//!
//! Instead of materialized per-peer Adj-RIB-Ins, WREN keeps all routes for
//! a prefix in a single preference-ordered list, each route tagged with
//! its source channel (BIRD's `rte` / `net` structures). The best route is
//! simply the head of the list. Nets are keyed by a path-compressed prefix
//! trie ([`xbgp_rib::PrefixMap`]) whose pre-order iteration *is*
//! `(addr, len)` order, so dump and flush paths are deterministic without
//! sorting.

use crate::ealist::EaList;
use rpki::RovState;
use std::rc::Rc;
use xbgp_rib::PrefixMap;
use xbgp_wire::Ipv4Prefix;

/// Identifies where a route entered the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcId {
    /// Channel (peer) index.
    Channel(usize),
    /// Locally originated.
    Local,
}

/// One route (BIRD's `rte`).
#[derive(Debug, Clone)]
pub struct Rte {
    pub src: SrcId,
    /// Source peer address and ASN (0 for local routes).
    pub src_addr: u32,
    pub src_asn: u32,
    /// Source session was iBGP.
    pub src_ibgp: bool,
    /// Source peer is a reflection client.
    pub src_rr_client: bool,
    pub eattrs: Rc<EaList>,
    /// Origin-validation verdict when validation is active.
    pub rov: Option<RovState>,
}

/// The routing table.
#[derive(Debug, Default)]
pub struct RTable {
    nets: PrefixMap<Vec<Rte>>,
    /// Total routes across every net's list (the Adj-RIB-In occupancy).
    route_count: usize,
}

/// Outcome of a table update, used to drive re-export.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TableChange {
    /// The best route changed (announce to peers).
    BestChanged,
    /// A non-best position changed; nothing to re-announce.
    NoBestChange,
    /// The net lost its last route (withdraw from peers).
    NetGone,
}

impl RTable {
    pub fn new() -> RTable {
        RTable::default()
    }

    /// Insert or replace the route from `src` for `net`, keeping the list
    /// preference-ordered via `better` (a strict "candidate beats
    /// incumbent" predicate).
    pub fn update(
        &mut self,
        net: Ipv4Prefix,
        rte: Rte,
        better: &mut dyn FnMut(&Rte, &Rte) -> bool,
    ) -> TableChange {
        let list = self.nets.get_or_insert_with(net, Vec::new);
        let old_len = list.len();
        let old_best_was_src = list.first().map(|r| r.src == rte.src).unwrap_or(false);
        list.retain(|r| r.src != rte.src);
        // Insertion sort position: first slot whose occupant loses to us.
        let pos = list.iter().position(|incumbent| better(&rte, incumbent)).unwrap_or(list.len());
        list.insert(pos, rte);
        self.route_count += list.len() - old_len;
        if pos == 0 || old_best_was_src {
            TableChange::BestChanged
        } else {
            TableChange::NoBestChange
        }
    }

    /// Remove the route from `src` for `net`, if any. The second element
    /// reports whether a route was actually removed (a `NoBestChange`
    /// alone can also mean "nothing to withdraw").
    pub fn withdraw(&mut self, net: Ipv4Prefix, src: SrcId) -> (TableChange, bool) {
        let Some(list) = self.nets.get_mut(&net) else {
            return (TableChange::NoBestChange, false);
        };
        let Some(pos) = list.iter().position(|r| r.src == src) else {
            return (TableChange::NoBestChange, false);
        };
        list.remove(pos);
        self.route_count -= 1;
        if list.is_empty() {
            self.nets.remove(&net);
            (TableChange::NetGone, true)
        } else if pos == 0 {
            (TableChange::BestChanged, true)
        } else {
            (TableChange::NoBestChange, true)
        }
    }

    /// Remove every route from `src`, returning the nets whose best route
    /// was affected and whether each net is now empty. The result is in
    /// `(addr, len)` prefix order — trie iteration order — so the
    /// withdrawal storm a teardown produces is deterministic without a
    /// sort.
    pub fn flush_src(&mut self, src: SrcId) -> Vec<(Ipv4Prefix, TableChange)> {
        let mut changed = Vec::new();
        let mut empty = Vec::new();
        let mut removed = 0usize;
        self.nets.for_each_mut(|net, list| {
            if let Some(pos) = list.iter().position(|r| r.src == src) {
                list.remove(pos);
                removed += 1;
                if list.is_empty() {
                    empty.push(net);
                    changed.push((net, TableChange::NetGone));
                } else if pos == 0 {
                    changed.push((net, TableChange::BestChanged));
                }
            }
        });
        self.route_count -= removed;
        for net in empty {
            self.nets.remove(&net);
        }
        if !changed.is_empty() {
            xbgp_obs::debug!("flushed {:?}: {} nets affected", src, changed.len());
        }
        changed
    }

    /// The best (head) route for a net.
    pub fn best(&self, net: &Ipv4Prefix) -> Option<&Rte> {
        self.nets.get(net).and_then(|l| l.first())
    }

    /// All routes for a net, best first.
    pub fn routes(&self, net: &Ipv4Prefix) -> &[Rte] {
        self.nets.get(net).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(net, best route)` in prefix order.
    pub fn iter_best(&self) -> impl Iterator<Item = (Ipv4Prefix, &Rte)> {
        self.nets.iter().filter_map(|(net, list)| list.first().map(|r| (net, r)))
    }

    /// All nets, in prefix order (oracle and full-recompute sweeps).
    pub fn net_keys(&self) -> Vec<Ipv4Prefix> {
        self.nets.keys().collect()
    }

    /// Number of nets with at least one route.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Total routes across all nets (Adj-RIB-In occupancy).
    pub fn route_len(&self) -> usize {
        self.route_count
    }

    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Replace a net's whole route list (used by the slow path where the
    /// comparator may run extension code and thus cannot borrow the table).
    pub fn replace_net(&mut self, net: Ipv4Prefix, routes: Vec<Rte>) {
        let old_len = self.nets.get(&net).map(Vec::len).unwrap_or(0);
        self.route_count = self.route_count - old_len + routes.len();
        if routes.is_empty() {
            self.nets.remove(&net);
        } else {
            self.nets.insert(net, routes);
        }
    }

    /// Re-sort one net after preference inputs changed (e.g. IGP metrics).
    pub fn resort(
        &mut self,
        net: &Ipv4Prefix,
        better: &mut dyn FnMut(&Rte, &Rte) -> bool,
    ) -> TableChange {
        let Some(list) = self.nets.get_mut(net) else {
            return TableChange::NoBestChange;
        };
        let old_best = list.first().map(|r| r.src);
        // Stable selection sort by the strict predicate.
        let mut sorted: Vec<Rte> = Vec::with_capacity(list.len());
        for rte in list.drain(..) {
            let pos = sorted.iter().position(|s| better(&rte, s)).unwrap_or(sorted.len());
            sorted.insert(pos, rte);
        }
        *list = sorted;
        if list.first().map(|r| r.src) != old_best {
            TableChange::BestChanged
        } else {
            TableChange::NoBestChange
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_wire::attr::Origin;
    use xbgp_wire::{AsPath, PathAttr};

    fn ea(hops: usize) -> Rc<EaList> {
        Rc::new(
            EaList::from_wire(&[
                PathAttr::Origin(Origin::Igp),
                PathAttr::AsPath(AsPath::sequence((0..hops as u32).map(|i| 100 + i).collect())),
                PathAttr::NextHop(1),
            ])
            .unwrap(),
        )
    }

    fn rte(ch: usize, hops: usize) -> Rte {
        Rte {
            src: SrcId::Channel(ch),
            src_addr: ch as u32,
            src_asn: 65000,
            src_ibgp: false,
            src_rr_client: false,
            eattrs: ea(hops),
            rov: None,
        }
    }

    fn shorter(a: &Rte, b: &Rte) -> bool {
        a.eattrs.as_path_hops() < b.eattrs.as_path_hops()
    }

    #[test]
    fn best_is_head_and_updates_report_changes() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(t.update(net, rte(0, 3), &mut shorter), TableChange::BestChanged);
        // Worse route from another channel: no best change.
        assert_eq!(t.update(net, rte(1, 5), &mut shorter), TableChange::NoBestChange);
        assert_eq!(t.routes(&net).len(), 2);
        assert_eq!(t.route_len(), 2);
        // Better route: takes the head.
        assert_eq!(t.update(net, rte(2, 1), &mut shorter), TableChange::BestChanged);
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(2));
        // Replacement from a known channel keeps the count stable.
        assert_eq!(t.update(net, rte(1, 4), &mut shorter), TableChange::NoBestChange);
        assert_eq!(t.route_len(), 3);
    }

    #[test]
    fn replacing_the_best_routes_own_entry_reports_change() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 1), &mut shorter);
        t.update(net, rte(1, 5), &mut shorter);
        // Channel 0 re-announces with a worse path: best flips to ch 1...
        assert_eq!(t.update(net, rte(0, 9), &mut shorter), TableChange::BestChanged);
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(1));
    }

    #[test]
    fn withdraw_semantics() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 1), &mut shorter);
        t.update(net, rte(1, 2), &mut shorter);
        assert_eq!(t.withdraw(net, SrcId::Channel(1)), (TableChange::NoBestChange, true));
        assert_eq!(
            t.withdraw(net, SrcId::Channel(1)),
            (TableChange::NoBestChange, false),
            "second withdraw removes nothing"
        );
        assert_eq!(t.withdraw(net, SrcId::Channel(0)), (TableChange::NetGone, true));
        assert!(t.is_empty());
        assert_eq!(t.route_len(), 0);
    }

    #[test]
    fn withdraw_of_the_head_reports_best_changed() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 1), &mut shorter);
        t.update(net, rte(1, 2), &mut shorter);
        assert_eq!(t.withdraw(net, SrcId::Channel(0)), (TableChange::BestChanged, true));
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(1));
    }

    #[test]
    fn flush_src_reports_affected_nets_in_prefix_order() {
        let mut t = RTable::new();
        let n1: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let n2: Ipv4Prefix = "11.0.0.0/8".parse().unwrap();
        let n3: Ipv4Prefix = "9.0.0.0/8".parse().unwrap();
        t.update(n1, rte(0, 1), &mut shorter);
        t.update(n1, rte(1, 2), &mut shorter);
        t.update(n2, rte(0, 1), &mut shorter);
        t.update(n3, rte(1, 1), &mut shorter);
        t.update(n3, rte(0, 2), &mut shorter);
        let changes = t.flush_src(SrcId::Channel(0));
        // n3 (9/8) lost a non-best route: absent. Others in prefix order,
        // straight off the trie — no sort in flush_src.
        assert_eq!(changes, vec![(n1, TableChange::BestChanged), (n2, TableChange::NetGone)]);
        assert_eq!(t.best(&n1).unwrap().src, SrcId::Channel(1));
        assert!(t.best(&n2).is_none());
        assert_eq!(t.route_len(), 2);
    }

    #[test]
    fn flush_src_of_sole_route_empties_the_table() {
        let mut t = RTable::new();
        let n1: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let n2: Ipv4Prefix = "192.0.2.0/24".parse().unwrap();
        t.update(n1, rte(0, 1), &mut shorter);
        t.update(n2, rte(0, 1), &mut shorter);
        let changes = t.flush_src(SrcId::Channel(0));
        assert_eq!(changes, vec![(n1, TableChange::NetGone), (n2, TableChange::NetGone)]);
        assert!(t.is_empty());
        assert_eq!(t.route_len(), 0);
        assert_eq!(t.flush_src(SrcId::Channel(0)), vec![], "flush of empty table is a no-op");
    }

    #[test]
    fn resort_reorders_after_predicate_change() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 2), &mut shorter);
        t.update(net, rte(1, 4), &mut shorter);
        // Invert the predicate: longer is better now.
        let mut longer = |a: &Rte, b: &Rte| a.eattrs.as_path_hops() > b.eattrs.as_path_hops();
        assert_eq!(t.resort(&net, &mut longer), TableChange::BestChanged);
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(1));
        assert_eq!(t.resort(&net, &mut longer), TableChange::NoBestChange);
    }

    #[test]
    fn resort_is_stable_and_handles_missing_nets() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let missing: Ipv4Prefix = "172.16.0.0/12".parse().unwrap();
        assert_eq!(t.resort(&missing, &mut shorter), TableChange::NoBestChange);
        // Equal-length paths: stable resort keeps insertion order, so the
        // head must not flip between equally-preferred routes.
        t.update(net, rte(0, 3), &mut shorter);
        t.update(net, rte(1, 3), &mut shorter);
        let head = t.best(&net).unwrap().src;
        assert_eq!(t.resort(&net, &mut shorter), TableChange::NoBestChange);
        assert_eq!(t.best(&net).unwrap().src, head);
    }

    #[test]
    fn iter_best_is_prefix_ordered() {
        let mut t = RTable::new();
        for s in ["192.0.2.0/24", "10.0.0.0/8", "10.0.0.0/16", "172.16.0.0/12"] {
            t.update(s.parse().unwrap(), rte(0, 1), &mut shorter);
        }
        let got: Vec<Ipv4Prefix> = t.iter_best().map(|(n, _)| n).collect();
        let mut want = got.clone();
        want.sort();
        assert_eq!(got, want, "trie pre-order is (addr, len) order — no sort needed");
    }

    #[test]
    fn replace_net_keeps_route_count() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 1), &mut shorter);
        t.update(net, rte(1, 2), &mut shorter);
        let mut routes = t.routes(&net).to_vec();
        routes.push(rte(2, 3));
        t.replace_net(net, routes);
        assert_eq!(t.route_len(), 3);
        t.replace_net(net, Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.route_len(), 0);
    }
}
