//! BIRD-style routing table: one table, per-net route lists.
//!
//! Instead of materialized per-peer Adj-RIB-Ins, WREN keeps all routes for
//! a prefix in a single preference-ordered list, each route tagged with
//! its source channel (BIRD's `rte` / `net` structures). The best route is
//! simply the head of the list.

use crate::ealist::EaList;
use rpki::RovState;
use std::collections::HashMap;
use std::rc::Rc;
use xbgp_wire::Ipv4Prefix;

/// Identifies where a route entered the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcId {
    /// Channel (peer) index.
    Channel(usize),
    /// Locally originated.
    Local,
}

/// One route (BIRD's `rte`).
#[derive(Debug, Clone)]
pub struct Rte {
    pub src: SrcId,
    /// Source peer address and ASN (0 for local routes).
    pub src_addr: u32,
    pub src_asn: u32,
    /// Source session was iBGP.
    pub src_ibgp: bool,
    /// Source peer is a reflection client.
    pub src_rr_client: bool,
    pub eattrs: Rc<EaList>,
    /// Origin-validation verdict when validation is active.
    pub rov: Option<RovState>,
}

/// The routing table.
#[derive(Debug, Default)]
pub struct RTable {
    nets: HashMap<Ipv4Prefix, Vec<Rte>>,
}

/// Outcome of a table update, used to drive re-export.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TableChange {
    /// The best route changed (announce to peers).
    BestChanged,
    /// A non-best position changed; nothing to re-announce.
    NoBestChange,
    /// The net lost its last route (withdraw from peers).
    NetGone,
}

impl RTable {
    pub fn new() -> RTable {
        RTable::default()
    }

    /// Insert or replace the route from `src` for `net`, keeping the list
    /// preference-ordered via `better` (a strict "candidate beats
    /// incumbent" predicate).
    pub fn update(
        &mut self,
        net: Ipv4Prefix,
        rte: Rte,
        better: &mut dyn FnMut(&Rte, &Rte) -> bool,
    ) -> TableChange {
        let list = self.nets.entry(net).or_default();
        let old_best_was_src = list.first().map(|r| r.src == rte.src).unwrap_or(false);
        list.retain(|r| r.src != rte.src);
        // Insertion sort position: first slot whose occupant loses to us.
        let pos = list.iter().position(|incumbent| better(&rte, incumbent)).unwrap_or(list.len());
        list.insert(pos, rte);
        if pos == 0 || old_best_was_src {
            TableChange::BestChanged
        } else {
            TableChange::NoBestChange
        }
    }

    /// Remove the route from `src` for `net`, if any.
    pub fn withdraw(&mut self, net: Ipv4Prefix, src: SrcId) -> TableChange {
        let Some(list) = self.nets.get_mut(&net) else {
            return TableChange::NoBestChange;
        };
        let Some(pos) = list.iter().position(|r| r.src == src) else {
            return TableChange::NoBestChange;
        };
        list.remove(pos);
        if list.is_empty() {
            self.nets.remove(&net);
            TableChange::NetGone
        } else if pos == 0 {
            TableChange::BestChanged
        } else {
            TableChange::NoBestChange
        }
    }

    /// Remove every route from `src`, returning the nets whose best route
    /// was affected and whether each net is now empty.
    pub fn flush_src(&mut self, src: SrcId) -> Vec<(Ipv4Prefix, TableChange)> {
        let mut changed = Vec::new();
        let mut empty = Vec::new();
        for (net, list) in self.nets.iter_mut() {
            if let Some(pos) = list.iter().position(|r| r.src == src) {
                list.remove(pos);
                if list.is_empty() {
                    empty.push(*net);
                    changed.push((*net, TableChange::NetGone));
                } else if pos == 0 {
                    changed.push((*net, TableChange::BestChanged));
                }
            }
        }
        for net in empty {
            self.nets.remove(&net);
        }
        // Sorted: callers propagate these changes to peers, and the map's
        // hash order must not leak into the withdrawal sequence.
        changed.sort_by_key(|(net, _)| *net);
        if !changed.is_empty() {
            xbgp_obs::debug!("flushed {:?}: {} nets affected", src, changed.len());
        }
        changed
    }

    /// The best (head) route for a net.
    pub fn best(&self, net: &Ipv4Prefix) -> Option<&Rte> {
        self.nets.get(net).and_then(|l| l.first())
    }

    /// All routes for a net, best first.
    pub fn routes(&self, net: &Ipv4Prefix) -> &[Rte] {
        self.nets.get(net).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(net, best route)`.
    pub fn iter_best(&self) -> impl Iterator<Item = (&Ipv4Prefix, &Rte)> {
        self.nets.iter().filter_map(|(net, list)| list.first().map(|r| (net, r)))
    }

    /// Number of nets with at least one route.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Replace a net's whole route list (used by the slow path where the
    /// comparator may run extension code and thus cannot borrow the table).
    pub fn replace_net(&mut self, net: Ipv4Prefix, routes: Vec<Rte>) {
        if routes.is_empty() {
            self.nets.remove(&net);
        } else {
            self.nets.insert(net, routes);
        }
    }

    /// Re-sort one net after preference inputs changed (e.g. IGP metrics).
    pub fn resort(
        &mut self,
        net: &Ipv4Prefix,
        better: &mut dyn FnMut(&Rte, &Rte) -> bool,
    ) -> TableChange {
        let Some(list) = self.nets.get_mut(net) else {
            return TableChange::NoBestChange;
        };
        let old_best = list.first().map(|r| r.src);
        // Stable selection sort by the strict predicate.
        let mut sorted: Vec<Rte> = Vec::with_capacity(list.len());
        for rte in list.drain(..) {
            let pos = sorted.iter().position(|s| better(&rte, s)).unwrap_or(sorted.len());
            sorted.insert(pos, rte);
        }
        *list = sorted;
        if list.first().map(|r| r.src) != old_best {
            TableChange::BestChanged
        } else {
            TableChange::NoBestChange
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_wire::attr::Origin;
    use xbgp_wire::{AsPath, PathAttr};

    fn ea(hops: usize) -> Rc<EaList> {
        Rc::new(
            EaList::from_wire(&[
                PathAttr::Origin(Origin::Igp),
                PathAttr::AsPath(AsPath::sequence((0..hops as u32).map(|i| 100 + i).collect())),
                PathAttr::NextHop(1),
            ])
            .unwrap(),
        )
    }

    fn rte(ch: usize, hops: usize) -> Rte {
        Rte {
            src: SrcId::Channel(ch),
            src_addr: ch as u32,
            src_asn: 65000,
            src_ibgp: false,
            src_rr_client: false,
            eattrs: ea(hops),
            rov: None,
        }
    }

    fn shorter(a: &Rte, b: &Rte) -> bool {
        a.eattrs.as_path_hops() < b.eattrs.as_path_hops()
    }

    #[test]
    fn best_is_head_and_updates_report_changes() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(t.update(net, rte(0, 3), &mut shorter), TableChange::BestChanged);
        // Worse route from another channel: no best change.
        assert_eq!(t.update(net, rte(1, 5), &mut shorter), TableChange::NoBestChange);
        assert_eq!(t.routes(&net).len(), 2);
        // Better route: takes the head.
        assert_eq!(t.update(net, rte(2, 1), &mut shorter), TableChange::BestChanged);
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(2));
    }

    #[test]
    fn replacing_the_best_routes_own_entry_reports_change() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 1), &mut shorter);
        t.update(net, rte(1, 5), &mut shorter);
        // Channel 0 re-announces with a worse path: best flips to ch 1...
        assert_eq!(t.update(net, rte(0, 9), &mut shorter), TableChange::BestChanged);
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(1));
    }

    #[test]
    fn withdraw_semantics() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 1), &mut shorter);
        t.update(net, rte(1, 2), &mut shorter);
        assert_eq!(t.withdraw(net, SrcId::Channel(1)), TableChange::NoBestChange);
        assert_eq!(t.withdraw(net, SrcId::Channel(1)), TableChange::NoBestChange);
        assert_eq!(t.withdraw(net, SrcId::Channel(0)), TableChange::NetGone);
        assert!(t.is_empty());
    }

    #[test]
    fn flush_src_reports_affected_nets() {
        let mut t = RTable::new();
        let n1: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let n2: Ipv4Prefix = "11.0.0.0/8".parse().unwrap();
        t.update(n1, rte(0, 1), &mut shorter);
        t.update(n1, rte(1, 2), &mut shorter);
        t.update(n2, rte(0, 1), &mut shorter);
        let mut changes = t.flush_src(SrcId::Channel(0));
        changes.sort_by_key(|(n, _)| *n);
        assert_eq!(changes, vec![(n1, TableChange::BestChanged), (n2, TableChange::NetGone)]);
        assert_eq!(t.best(&n1).unwrap().src, SrcId::Channel(1));
        assert!(t.best(&n2).is_none());
    }

    #[test]
    fn resort_reorders_after_predicate_change() {
        let mut t = RTable::new();
        let net: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        t.update(net, rte(0, 2), &mut shorter);
        t.update(net, rte(1, 4), &mut shorter);
        // Invert the predicate: longer is better now.
        let mut longer = |a: &Rte, b: &Rte| a.eattrs.as_path_hops() > b.eattrs.as_path_hops();
        assert_eq!(t.resort(&net, &mut longer), TableChange::BestChanged);
        assert_eq!(t.best(&net).unwrap().src, SrcId::Channel(1));
        assert_eq!(t.resort(&net, &mut longer), TableChange::NoBestChange);
    }
}
