//! # igp — link-state IGP substrate
//!
//! The paper's §3.1 use case ("Filtering Routes Based on IGP Costs") needs
//! a BGP daemon that can ask *what is my IGP cost to this BGP nexthop?*.
//! In the authors' testbed that answer comes from OSPF/IS-IS; here it comes
//! from this crate: a link-state database shared by all routers of an AS
//! (as flooding would synchronize it) plus Dijkstra shortest-path-first
//! computation with per-source memoization.
//!
//! Failing a link (`set_link_up(false)` or `remove_link`) invalidates the
//! cached SPF trees, so BGP filters immediately observe the post-failure
//! metrics — exactly the transatlantic-failure scenario of §3.1.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

/// IGP cost type. [`UNREACHABLE`] marks disconnected destinations.
pub type Metric = u32;

/// Cost reported for nodes the SPF cannot reach.
pub const UNREACHABLE: Metric = u32::MAX;

/// A shared handle to one AS's link-state database, cloneable across the
/// simulated routers of that AS (single-threaded simulation).
pub type SharedIgp = Rc<RefCell<IgpNetwork>>;

/// Build a shared handle.
pub fn shared(network: IgpNetwork) -> SharedIgp {
    Rc::new(RefCell::new(network))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinkState {
    to: usize,
    metric: Metric,
    up: bool,
}

/// Cost-to-destination table computed by one SPF run, keyed by router id.
type CostTable = HashMap<u32, Metric>;

/// The link-state database and SPF engine.
#[derive(Debug, Default)]
pub struct IgpNetwork {
    /// Router id (an IPv4 address in host order) per node index.
    ids: Vec<u32>,
    index: HashMap<u32, usize>,
    adj: Vec<Vec<LinkState>>,
    version: u64,
    /// Memoized SPF trees: source → (version, cost table).
    cache: RefCell<HashMap<usize, (u64, CostTable)>>,
}

impl IgpNetwork {
    pub fn new() -> IgpNetwork {
        IgpNetwork::default()
    }

    /// Register a router by its id. Idempotent.
    pub fn add_router(&mut self, id: u32) {
        if self.index.contains_key(&id) {
            return;
        }
        self.index.insert(id, self.ids.len());
        self.ids.push(id);
        self.adj.push(Vec::new());
        self.version += 1;
    }

    /// Add a bidirectional link with a symmetric metric. Routers are
    /// auto-registered.
    pub fn add_link(&mut self, a: u32, b: u32, metric: Metric) {
        assert_ne!(a, b, "self-loops are not valid IGP links");
        self.add_router(a);
        self.add_router(b);
        let (ia, ib) = (self.index[&a], self.index[&b]);
        self.adj[ia].push(LinkState { to: ib, metric, up: true });
        self.adj[ib].push(LinkState { to: ia, metric, up: true });
        self.version += 1;
    }

    /// Set the administrative state of the `a`–`b` link (both directions).
    /// Returns false if no such link exists.
    pub fn set_link_up(&mut self, a: u32, b: u32, up: bool) -> bool {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            xbgp_obs::warn!("set_link_up on unknown IGP link {a}–{b}");
            return false;
        };
        let mut touched = false;
        for l in &mut self.adj[ia] {
            if l.to == ib {
                l.up = up;
                touched = true;
            }
        }
        for l in &mut self.adj[ib] {
            if l.to == ia {
                l.up = up;
                touched = true;
            }
        }
        if touched {
            self.version += 1;
            xbgp_obs::debug!("IGP link {a}–{b} {}", if up { "up" } else { "down" });
        }
        touched
    }

    /// Change the metric of the `a`–`b` link (both directions).
    pub fn set_metric(&mut self, a: u32, b: u32, metric: Metric) -> bool {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            xbgp_obs::warn!("set_metric on unknown IGP link {a}–{b}");
            return false;
        };
        let mut touched = false;
        for l in &mut self.adj[ia] {
            if l.to == ib {
                l.metric = metric;
                touched = true;
            }
        }
        for l in &mut self.adj[ib] {
            if l.to == ia {
                l.metric = metric;
                touched = true;
            }
        }
        if touched {
            self.version += 1;
        }
        touched
    }

    /// IGP cost from `from` to `to` ([`UNREACHABLE`] when disconnected or
    /// unknown). Memoized per source until the topology changes.
    pub fn metric(&self, from: u32, to: u32) -> Metric {
        if from == to {
            return 0;
        }
        let Some(&src) = self.index.get(&from) else {
            return UNREACHABLE;
        };
        let mut cache = self.cache.borrow_mut();
        let entry = cache.get(&src);
        if let Some((v, table)) = entry {
            if *v == self.version {
                return table.get(&to).copied().unwrap_or(UNREACHABLE);
            }
        }
        let table = self.spf(src);
        let result = table.get(&to).copied().unwrap_or(UNREACHABLE);
        cache.insert(src, (self.version, table));
        result
    }

    /// Full SPF tree from `from`, as router-id → cost.
    pub fn spf_from(&self, from: u32) -> HashMap<u32, Metric> {
        match self.index.get(&from) {
            Some(&src) => self.spf(src),
            None => HashMap::new(),
        }
    }

    fn spf(&self, src: usize) -> HashMap<u32, Metric> {
        let mut dist: Vec<Metric> = vec![UNREACHABLE; self.ids.len()];
        let mut heap = BinaryHeap::new();
        dist[src] = 0;
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > u64::from(dist[u]) {
                continue;
            }
            for l in &self.adj[u] {
                if !l.up {
                    continue;
                }
                let nd = d + u64::from(l.metric);
                if nd < u64::from(dist[l.to]) {
                    dist[l.to] = nd as Metric;
                    heap.push(Reverse((nd, l.to)));
                }
            }
        }
        self.ids
            .iter()
            .zip(&dist)
            .filter(|(_, &d)| d != UNREACHABLE)
            .map(|(&id, &d)| (id, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The §3.1 ISP: continental links cost 10, transatlantic cost 1000.
    ///   london — amsterdam (eu), berlin — london, berlin — amsterdam,
    ///   newyork — london (1000), newyork — amsterdam (1000).
    fn isp() -> IgpNetwork {
        let mut n = IgpNetwork::new();
        let (lon, ams, ber, nyc) = (1, 2, 3, 4);
        n.add_link(lon, ams, 10);
        n.add_link(ber, lon, 10);
        n.add_link(ber, ams, 10);
        n.add_link(nyc, lon, 1000);
        n.add_link(nyc, ams, 1000);
        n
    }

    #[test]
    fn shortest_paths_basic() {
        let n = isp();
        assert_eq!(n.metric(3, 1), 10); // berlin → london direct
        assert_eq!(n.metric(3, 4), 1010); // berlin → nyc via either coast hub
        assert_eq!(n.metric(1, 1), 0);
    }

    #[test]
    fn unknown_routers_are_unreachable() {
        let n = isp();
        assert_eq!(n.metric(1, 99), UNREACHABLE);
        assert_eq!(n.metric(99, 1), UNREACHABLE);
    }

    #[test]
    fn link_failure_reroutes_and_raises_cost() {
        // The paper's scenario: both UK-continent links fail; Germany now
        // reaches London via Amsterdam → NYC → London (transatlantic
        // detour), making its metric blow past the 1000 threshold.
        let mut n = isp();
        assert_eq!(n.metric(3, 1), 10);
        n.set_link_up(1, 2, false); // london—amsterdam
        n.set_link_up(3, 1, false); // berlin—london
                                    // berlin → amsterdam (10) → nyc (1000) → london (1000).
        assert_eq!(n.metric(3, 1), 2010);
    }

    #[test]
    fn full_partition_is_unreachable() {
        let mut n = IgpNetwork::new();
        n.add_link(1, 2, 5);
        n.add_link(3, 4, 5);
        assert_eq!(n.metric(1, 3), UNREACHABLE);
        assert_eq!(n.metric(1, 2), 5);
    }

    #[test]
    fn metric_change_invalidates_cache() {
        let mut n = isp();
        assert_eq!(n.metric(3, 4), 1010);
        n.set_metric(4, 1, 50);
        assert_eq!(n.metric(3, 4), 60);
    }

    #[test]
    fn set_state_on_missing_link_reports_false() {
        let mut n = isp();
        assert!(!n.set_link_up(1, 99, false));
        assert!(!n.set_metric(99, 1, 7));
        // Registered routers but no direct link: adjacency untouched.
        assert!(!n.set_link_up(3, 4, false) || n.metric(3, 4) == UNREACHABLE);
    }

    #[test]
    fn restore_returns_original_metrics() {
        let mut n = isp();
        n.set_link_up(1, 2, false);
        n.set_link_up(3, 1, false);
        n.set_link_up(1, 2, true);
        n.set_link_up(3, 1, true);
        assert_eq!(n.metric(3, 1), 10);
    }

    proptest! {
        /// SPF distances satisfy the triangle inequality over direct links.
        #[test]
        fn prop_triangle_inequality(edges in proptest::collection::vec((0u32..8, 0u32..8, 1u32..100), 1..20)) {
            let mut n = IgpNetwork::new();
            for (a, b, m) in &edges {
                if a != b {
                    n.add_link(*a + 1, *b + 1, *m);
                }
            }
            for (a, b, m) in &edges {
                if a == b { continue; }
                let d = n.metric(*a + 1, *b + 1);
                prop_assert!(d <= *m, "direct link {m} but spf distance {d}");
                // Symmetry for undirected graphs.
                prop_assert_eq!(d, n.metric(*b + 1, *a + 1));
            }
        }

        /// Removing a link never decreases any distance.
        #[test]
        fn prop_failure_monotone(edges in proptest::collection::vec((0u32..6, 0u32..6, 1u32..50), 2..15), kill in 0usize..15) {
            let mut n = IgpNetwork::new();
            let mut real = Vec::new();
            for (a, b, m) in &edges {
                if a != b {
                    n.add_link(*a + 1, *b + 1, *m);
                    real.push((*a + 1, *b + 1));
                }
            }
            prop_assume!(!real.is_empty());
            let before: Vec<Vec<Metric>> = (1..=6).map(|s| (1..=6).map(|t| n.metric(s, t)).collect()).collect();
            let (ka, kb) = real[kill % real.len()];
            n.set_link_up(ka, kb, false);
            for s in 1..=6u32 {
                for t in 1..=6u32 {
                    let d = n.metric(s, t);
                    let b = before[(s - 1) as usize][(t - 1) as usize];
                    prop_assert!(d >= b, "distance {s}->{t} decreased after failure: {b} -> {d}");
                }
            }
        }
    }
}
