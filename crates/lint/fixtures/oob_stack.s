; Seeded defect: a constant-offset frame store one slot below the
; 512-byte stack. The structural verifier must reject this before the
; program ever runs.
        stdw [r10-520], 7
        mov r0, 0
        exit
