; Seeded defect: r7 is callee-saved and read before any write. The
; abstract-interpretation pass must reject this at load time; CI runs
; xbgp-lint over this file and asserts a non-zero exit.
        mov r0, r7
        exit
