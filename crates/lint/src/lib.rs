//! # xbgp-lint — load-time diagnostics for extension programs
//!
//! Runs the exact pipeline a router applies at load time — assembler →
//! structural verifier → abstract interpretation ([`xbgp_vm::absint`]) —
//! over `.s` sources, and reports what the router would reject plus
//! lint-grade warnings the router ignores (dead stores, branches the
//! analysis proves constant). Because it is the *same* pipeline with the
//! same per-insertion-point helper contracts, a clean lint run is a
//! guarantee: the program loads on any conforming implementation.
//!
//! Diagnostics carry the original slot pc and the decoded mnemonic, so
//! they point into the assembler's output the way the runtime's fault
//! reports do.

use std::collections::HashSet;
use std::fmt;

use xbgp_asm::assemble_with_symbols;
use xbgp_core::api::{abi_symbols, helper, InsertionPoint};
use xbgp_core::contracts::analysis_options;
use xbgp_vm::{absint, verify, Analysis, LoadedProgram};

/// What to lint: one assembly source plus the load context the router
/// would give it (insertion point, helper whitelist, `.equ` definitions).
#[derive(Debug, Clone)]
pub struct LintTarget {
    /// Diagnostic label (file name or extension name).
    pub name: String,
    /// eBPF assembly source.
    pub source: String,
    /// Insertion point the program attaches to; selects the helper
    /// contract table (e.g. `write_buf` is only legal while encoding).
    pub point: InsertionPoint,
    /// Helper ids the manifest whitelists. `None` = all API helpers
    /// (lint-only mode for sources without a manifest).
    pub helpers: Option<HashSet<u32>>,
    /// `NAME=value` constants prepended as `.equ` lines (templates like
    /// `fault_inject.s` assemble against these).
    pub defines: Vec<(String, i64)>,
}

impl LintTarget {
    /// A target with no manifest context: every helper allowed, inbound
    /// filter contracts.
    pub fn bare(name: impl Into<String>, source: impl Into<String>) -> LintTarget {
        LintTarget {
            name: name.into(),
            source: source.into(),
            point: InsertionPoint::BgpInboundFilter,
            helpers: None,
            defines: Vec::new(),
        }
    }
}

/// The outcome of linting one target.
#[derive(Debug)]
pub struct LintReport {
    pub name: String,
    /// Load-time rejections (assembler or verifier). Any entry means the
    /// router would refuse this program.
    pub errors: Vec<String>,
    /// Lint-grade findings the router ignores.
    pub warnings: Vec<String>,
    /// The analysis summary, when verification got that far.
    pub analysis: Option<Analysis>,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.errors {
            writeln!(f, "{}: error: {e}", self.name)?;
        }
        for w in &self.warnings {
            writeln!(f, "{}: warning: {w}", self.name)?;
        }
        if let Some(a) = &self.analysis {
            let fuel = match a.worst_fuel {
                Some(n) => n.to_string(),
                None => "unbounded".to_string(),
            };
            writeln!(
                f,
                "{}: ok: worst-case fuel {fuel}, {} of {} memory accesses proven safe, \
                 stack high-water {} bytes",
                self.name,
                a.elided_loads + a.elided_stores,
                a.mem_accesses,
                a.stack_high_water,
            )?;
        }
        Ok(())
    }
}

/// Every API helper id (lint-only mode without a manifest whitelist).
pub fn all_helpers() -> HashSet<u32> {
    helper::TABLE.iter().map(|(_, id)| *id).collect()
}

/// Run the load pipeline over one target.
pub fn lint(target: &LintTarget) -> LintReport {
    let mut report = LintReport {
        name: target.name.clone(),
        errors: Vec::new(),
        warnings: Vec::new(),
        analysis: None,
    };
    let mut src = String::new();
    for (name, value) in &target.defines {
        src.push_str(&format!(".equ {name}, {value}\n"));
    }
    src.push_str(&target.source);

    let prog = match assemble_with_symbols(&src, &abi_symbols()) {
        Ok(p) => p,
        Err(e) => {
            report.errors.push(e.to_string());
            return report;
        }
    };
    let helpers = target.helpers.clone().unwrap_or_else(all_helpers);
    if let Err(e) = verify(&prog, &helpers) {
        report.errors.push(e.to_string());
        return report;
    }
    let mut lp = LoadedProgram::load(&prog);
    let opts = analysis_options(target.point);
    match absint::analyze(&mut lp, &prog, &opts) {
        Ok(analysis) => {
            report.warnings.extend(analysis.warnings.iter().map(ToString::to_string));
            report.analysis = Some(analysis);
        }
        Err(e) => report.errors.push(e.to_string()),
    }
    report
}

/// The load context a shipped program verifies under: its insertion
/// point, granted helper set, and `.equ` template parameters.
pub struct ShippedContext {
    pub point: InsertionPoint,
    pub helpers: HashSet<u32>,
    pub defines: Vec<(String, i64)>,
}

/// The load context of every shipped program, keyed by its `.s` file
/// stem, derived from the actual manifest builders in [`xbgp_progs`] so
/// the linter and the routers can never disagree about a program's
/// helpers or insertion point.
pub fn shipped_context(stem: &str) -> Option<ShippedContext> {
    // File stem → manifest extension name (they differ only for
    // geoloc_out.s, kept short for the assembler listing's sake).
    let ext_name = match stem {
        "export_igp" => "export_igp",
        "geoloc_out" => "geoloc_outbound",
        s => s,
    };
    let mut manifests = vec![
        xbgp_progs::igp_filter::manifest(),
        xbgp_progs::geoloc::manifest(None),
        xbgp_progs::route_reflect::manifest(),
        xbgp_progs::valley_free::manifest(&[], "10.0.0.0/8".parse().expect("static prefix")),
        xbgp_progs::origin_validation::manifest(),
        xbgp_progs::fault_inject::manifest(3),
    ];
    for m in &mut manifests {
        for spec in &m.extensions {
            if spec.name == ext_name {
                let ids =
                    spec.helpers.iter().filter_map(|n| helper::id_of(n)).collect::<HashSet<u32>>();
                // Templates carry their `.equ` parameters; the linter
                // substitutes representative values.
                let defines = if ext_name == "fault_inject" {
                    vec![
                        ("PERIOD".to_string(), 3),
                        ("FAULT_ATTR".to_string(), i64::from(xbgp_progs::fault_inject::FAULT_ATTR)),
                    ]
                } else {
                    Vec::new()
                };
                return Some(ShippedContext { point: spec.insertion_point, helpers: ids, defines });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shipped(stem: &str, source: &str) -> LintTarget {
        let ctx = shipped_context(stem).unwrap_or_else(|| panic!("no shipped context for {stem}"));
        LintTarget {
            name: format!("{stem}.s"),
            source: source.to_string(),
            point: ctx.point,
            helpers: Some(ctx.helpers),
            defines: ctx.defines,
        }
    }

    #[test]
    fn every_shipped_program_lints_clean() {
        let sources = [
            ("export_igp", xbgp_progs::igp_filter::SOURCE),
            ("geoloc_recv", xbgp_progs::geoloc::SRC_RECV),
            ("geoloc_inbound", xbgp_progs::geoloc::SRC_INBOUND),
            ("geoloc_out", xbgp_progs::geoloc::SRC_OUTBOUND),
            ("geoloc_encode", xbgp_progs::geoloc::SRC_ENCODE),
            ("rr_inbound", xbgp_progs::route_reflect::SRC_INBOUND),
            ("rr_outbound", xbgp_progs::route_reflect::SRC_OUTBOUND),
            ("rr_encode", xbgp_progs::route_reflect::SRC_ENCODE),
            ("valley_free", xbgp_progs::valley_free::SOURCE),
            ("rov_check", xbgp_progs::origin_validation::SOURCE),
            ("fault_inject", xbgp_progs::fault_inject::TEMPLATE),
        ];
        for (stem, src) in sources {
            let report = lint(&shipped(stem, src));
            assert!(report.clean(), "{stem} has errors: {:?}", report.errors);
        }
    }

    #[test]
    fn uninit_read_is_an_error() {
        // r7 is callee-saved and never written before use (r1-r5 are
        // argument registers and so defined at entry).
        let report = lint(&LintTarget::bare("t", "mov r0, r7\nexit"));
        assert!(!report.clean());
        assert!(report.errors[0].contains("before any write"), "{:?}", report.errors);
    }

    #[test]
    fn oob_stack_slot_is_an_error() {
        let report = lint(&LintTarget::bare("t", "ldxdw r0, [r10-520]\nexit"));
        assert!(!report.clean());
        assert!(report.errors[0].contains("outside"), "{:?}", report.errors);
    }

    #[test]
    fn write_buf_outside_encode_is_an_error() {
        let mut t =
            LintTarget::bare("t", "mov r1, r10\nsub r1, 8\nmov r2, 8\ncall write_buf\nexit");
        t.point = InsertionPoint::BgpInboundFilter;
        let report = lint(&t);
        assert!(!report.clean());
        assert!(report.errors[0].contains("not allowed"), "{:?}", report.errors);
        t.point = InsertionPoint::BgpEncodeMessage;
        // Same program at the encode point: legal.
        assert!(lint(&t).clean(), "{:?}", lint(&t).errors);
    }

    #[test]
    fn dead_store_is_a_warning_not_an_error() {
        let report = lint(&LintTarget::bare("t", "mov r2, 7\nmov r2, 8\nmov r0, r2\nexit"));
        assert!(report.clean(), "{:?}", report.errors);
        assert!(
            report.warnings.iter().any(|w| w.contains("dead store")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn diagnostics_carry_slot_pc_and_mnemonic() {
        let report = lint(&LintTarget::bare("t", "mov r0, 0\nldxdw r4, [r10-1024]\nexit"));
        let e = &report.errors[0];
        assert!(e.contains("pc 1"), "{e}");
        assert!(e.contains("ldxdw"), "{e}");
    }
}
