//! `xbgp-lint` — lint xBGP extension assembly before deployment.
//!
//! ```text
//! xbgp-lint [options] <file.s>...
//!
//!   --point <name>        insertion point for files without shipped
//!                         context (bgp_receive_message, bgp_inbound_filter,
//!                         bgp_decision, bgp_outbound_filter,
//!                         bgp_encode_message); default bgp_inbound_filter
//!   --helpers <a,b,...>   helper whitelist by name; default: all helpers
//!   --define NAME=VAL     prepend `.equ NAME, VAL` (repeatable)
//!   --quiet               suppress the per-file ok summary
//! ```
//!
//! Files whose stem matches a shipped program (`rov_check.s`, …) are
//! linted under that program's manifest context — same insertion point,
//! same helper whitelist — unless `--point`/`--helpers` override it.
//! Exit status: 0 when every file is error-free (warnings do not fail
//! the run), 1 otherwise, 2 on usage errors.

use std::collections::HashSet;
use std::path::Path;
use std::process::ExitCode;

use xbgp_core::api::{helper, InsertionPoint};
use xbgp_lint::{all_helpers, lint, shipped_context, LintTarget};

fn usage(msg: &str) -> ExitCode {
    eprintln!("xbgp-lint: {msg}");
    eprintln!("usage: xbgp-lint [--point <name>] [--helpers a,b,...] [--define NAME=VAL]... [--quiet] <file.s>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut point: Option<InsertionPoint> = None;
    let mut helpers: Option<HashSet<u32>> = None;
    let mut defines: Vec<(String, i64)> = Vec::new();
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--point" => {
                let Some(name) = args.next() else {
                    return usage("--point needs a value");
                };
                match InsertionPoint::from_name(&name) {
                    Some(p) => point = Some(p),
                    None => return usage(&format!("unknown insertion point `{name}`")),
                }
            }
            "--helpers" => {
                let Some(list) = args.next() else {
                    return usage("--helpers needs a value");
                };
                let mut ids = HashSet::new();
                for name in list.split(',').filter(|s| !s.is_empty()) {
                    match helper::id_of(name) {
                        Some(id) => {
                            ids.insert(id);
                        }
                        None => return usage(&format!("unknown helper `{name}`")),
                    }
                }
                helpers = Some(ids);
            }
            "--define" => {
                let Some(kv) = args.next() else {
                    return usage("--define needs NAME=VAL");
                };
                let Some((name, val)) = kv.split_once('=') else {
                    return usage(&format!("bad --define `{kv}` (want NAME=VAL)"));
                };
                let Ok(val) = val.parse::<i64>() else {
                    return usage(&format!("bad --define value in `{kv}`"));
                };
                defines.push((name.to_string(), val));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: xbgp-lint [--point <name>] [--helpers a,b,...] \
                     [--define NAME=VAL]... [--quiet] <file.s>..."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown option `{arg}`")),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage("no input files");
    }

    let mut failed = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: error: {e}");
                failed = true;
                continue;
            }
        };
        let stem = Path::new(file).file_stem().and_then(|s| s.to_str()).unwrap_or(file);
        let ctx = shipped_context(stem);
        let target = LintTarget {
            name: file.clone(),
            source,
            point: point
                .or(ctx.as_ref().map(|c| c.point))
                .unwrap_or(InsertionPoint::BgpInboundFilter),
            helpers: helpers
                .clone()
                .or(ctx.as_ref().map(|c| c.helpers.clone()))
                .or(Some(all_helpers())),
            defines: if defines.is_empty() {
                ctx.map(|c| c.defines).unwrap_or_default()
            } else {
                defines.clone()
            },
        };
        let report = lint(&target);
        if !report.clean() {
            failed = true;
        }
        let text = report.to_string();
        if report.clean() && quiet {
            // Errors and warnings only.
            for line in text.lines().filter(|l| !l.contains(": ok:")) {
                println!("{line}");
            }
        } else {
            print!("{text}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
