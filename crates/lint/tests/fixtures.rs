//! The seeded-defect fixtures must fail the lint, and the shipped
//! programs must pass it — the same invariants the CI step asserts with
//! the `xbgp-lint` binary.

use xbgp_lint::{lint, LintTarget};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn uninit_read_fixture_is_rejected() {
    let report = lint(&LintTarget::bare("uninit_read.s", fixture("uninit_read.s")));
    assert!(!report.clean());
    assert!(report.errors[0].contains("reads r7 before any write"), "{:?}", report.errors);
}

#[test]
fn oob_stack_fixture_is_rejected() {
    let report = lint(&LintTarget::bare("oob_stack.s", fixture("oob_stack.s")));
    assert!(!report.clean());
    assert!(report.errors[0].contains("outside [r10-512, r10)"), "{:?}", report.errors);
}

#[test]
fn shipped_asm_directory_is_clean() {
    let dir = format!("{}/../progs/asm", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("progs/asm exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("s") {
            continue;
        }
        seen += 1;
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf8 stem");
        let ctx = xbgp_lint::shipped_context(stem)
            .unwrap_or_else(|| panic!("no shipped context for {stem} — update the registry"));
        let report = lint(&LintTarget {
            name: format!("{stem}.s"),
            source: std::fs::read_to_string(&path).expect("readable source"),
            point: ctx.point,
            helpers: Some(ctx.helpers),
            defines: ctx.defines,
        });
        assert!(report.clean(), "{stem}.s: {:?}", report.errors);
    }
    assert!(seen >= 11, "expected the bundled programs, found {seen}");
}
