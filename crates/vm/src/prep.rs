//! Load-time pre-decoding of programs into a dense executable form.
//!
//! The raw [`Program`] is a sequence of 8-byte eBPF slots. Interpreting it
//! directly means re-splitting every opcode into class/source/size bits on
//! every executed instruction, re-reading the second `lddw` slot, and
//! re-computing relative jump targets. All of that is static, so it is done
//! exactly once here, at load time:
//!
//! * every slot becomes one [`DInsn`] with a fully resolved [`DOp`]
//!   discriminant — the interpreter dispatches on it with a single match,
//! * the two `lddw` slots fuse into one instruction with a 64-bit immediate,
//! * jump offsets are rewritten to dense instruction indices, so a taken
//!   branch is an index assignment with no arithmetic or range check,
//! * immediates are sign-extended once.
//!
//! Decoding is *total*: a slot the ISA does not cover decodes to
//! [`DOp::Trap`], which raises [`crate::VmError::BadInstruction`] when (and
//! only when) it is reached. Verified programs never contain one — running
//! [`crate::verify`] first proves every `DOp` is a real operation and every
//! jump target is in range, which is what lets the interpreter elide the
//! per-step checks. Each decoded instruction keeps its original slot index
//! (`slot`) so faults still report program counters in slot units, matching
//! the verifier's diagnostics.

use crate::insn::{op, Insn, Program};

/// Fully decoded operation. One variant per (operation, width, operand
/// source) combination, so the interpreter's dispatch is a single jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum DOp {
    Add64Imm,
    Add64Reg,
    Add32Imm,
    Add32Reg,
    Sub64Imm,
    Sub64Reg,
    Sub32Imm,
    Sub32Reg,
    Mul64Imm,
    Mul64Reg,
    Mul32Imm,
    Mul32Reg,
    Div64Imm,
    Div64Reg,
    Div32Imm,
    Div32Reg,
    Mod64Imm,
    Mod64Reg,
    Mod32Imm,
    Mod32Reg,
    Or64Imm,
    Or64Reg,
    Or32Imm,
    Or32Reg,
    And64Imm,
    And64Reg,
    And32Imm,
    And32Reg,
    Xor64Imm,
    Xor64Reg,
    Xor32Imm,
    Xor32Reg,
    Lsh64Imm,
    Lsh64Reg,
    Lsh32Imm,
    Lsh32Reg,
    Rsh64Imm,
    Rsh64Reg,
    Rsh32Imm,
    Rsh32Reg,
    Arsh64Imm,
    Arsh64Reg,
    Arsh32Imm,
    Arsh32Reg,
    Mov64Imm,
    Mov64Reg,
    Mov32Imm,
    Mov32Reg,
    Neg64,
    Neg32,
    /// `div`/`mod` with a constant zero divisor: always faults. Folding the
    /// check into decode keeps the real divide arms branch-free.
    DivZero,
    Be16,
    Be32,
    Be64,
    Le16,
    Le32,
    Le64,
    /// Fused two-slot `lddw`; `imm` holds the full 64-bit constant.
    LdDw,
    LdxDw,
    LdxW,
    LdxH,
    LdxB,
    StDw,
    StW,
    StH,
    StB,
    StxDw,
    StxW,
    StxH,
    StxB,
    Ja,
    Call,
    Exit,
    Jeq64Imm,
    Jeq64Reg,
    Jeq32Imm,
    Jeq32Reg,
    Jne64Imm,
    Jne64Reg,
    Jne32Imm,
    Jne32Reg,
    Jgt64Imm,
    Jgt64Reg,
    Jgt32Imm,
    Jgt32Reg,
    Jge64Imm,
    Jge64Reg,
    Jge32Imm,
    Jge32Reg,
    Jlt64Imm,
    Jlt64Reg,
    Jlt32Imm,
    Jlt32Reg,
    Jle64Imm,
    Jle64Reg,
    Jle32Imm,
    Jle32Reg,
    Jset64Imm,
    Jset64Reg,
    Jset32Imm,
    Jset32Reg,
    Jsgt64Imm,
    Jsgt64Reg,
    Jsgt32Imm,
    Jsgt32Reg,
    Jsge64Imm,
    Jsge64Reg,
    Jsge32Imm,
    Jsge32Reg,
    Jslt64Imm,
    Jslt64Reg,
    Jslt32Imm,
    Jslt32Reg,
    Jsle64Imm,
    Jsle64Reg,
    Jsle32Imm,
    Jsle32Reg,
    /// Undecodable slot (or a register outside r0..r10). `dst` carries the
    /// original opcode for the `BadInstruction` report.
    Trap,
}

/// One pre-decoded instruction (24 bytes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DInsn {
    pub op: DOp,
    pub dst: u8,
    pub src: u8,
    /// Proof bits stamped by [`crate::absint`]; see [`elide`]. Zero straight
    /// out of [`LoadedProgram::load`], so unanalyzed programs keep every
    /// dynamic check.
    pub flags: u8,
    /// Memory displacement for load/store forms; unused elsewhere.
    pub off: i16,
    /// Dense index of the taken branch (jumps), or the helper id (`Call`).
    pub target: u32,
    /// Original slot index, for fault program counters.
    pub slot: u32,
    /// Sign-extended immediate; the fused 64-bit constant for `LdDw`.
    pub imm: u64,
}

/// Proof-bit layout of [`DInsn::flags`], written by the abstract
/// interpreter and consumed by both execution engines.
pub(crate) mod elide {
    /// The access is proven in-region: the engine may skip the
    /// `MemoryMap` region scan and permission check.
    pub const BOUNDS: u8 = 1;
    /// Region kind of a proven access, `flags >> KIND_SHIFT`:
    /// 0 = stack, 1 = heap, 2 = shared.
    pub const KIND_SHIFT: u8 = 1;
    pub const KIND_STACK: u8 = 0;
    pub const KIND_HEAP: u8 = 1;
    pub const KIND_SHARED: u8 = 2;

    pub const fn pack(kind: u8) -> u8 {
        BOUNDS | (kind << KIND_SHIFT)
    }
    pub const fn kind(flags: u8) -> u8 {
        flags >> KIND_SHIFT
    }
}

/// A [`Program`] decoded for execution. Build one with [`LoadedProgram::load`]
/// (after [`crate::verify`]) and run it as many times as you like — this is
/// the per-extension artifact the VMM caches so the per-invocation path does
/// no decoding at all.
#[derive(Debug, Clone)]
pub struct LoadedProgram {
    pub(crate) code: Vec<DInsn>,
    /// Number of slots in the source program (diagnostics only).
    slots: usize,
    /// Static worst-case fuel cost proven by [`crate::absint`]: every run
    /// of this program retires at most this many instructions. `None` when
    /// the analysis has not run or could not bound every loop.
    pub(crate) worst_fuel: Option<u64>,
    /// Master switch for proof-based check elision. Proof bits stamped on
    /// instructions are retained either way; turning this off makes both
    /// engines take every dynamic check, which is how the bench ablation
    /// and the soundness proptests compare the two modes.
    pub(crate) elide: bool,
    /// True when the analysis proved at least one access elidable. Programs
    /// with nothing to elide skip the per-run region snapshot entirely.
    pub(crate) has_elided: bool,
}

fn pick4(is64: bool, use_src: bool, i64v: DOp, r64v: DOp, i32v: DOp, r32v: DOp) -> DOp {
    match (is64, use_src) {
        (true, false) => i64v,
        (true, true) => r64v,
        (false, false) => i32v,
        (false, true) => r32v,
    }
}

fn decode_slot(insn: Insn, slot: u32, hi_imm: Option<i32>, resolve: impl Fn(i16) -> u32) -> DInsn {
    let trap = DInsn {
        op: DOp::Trap,
        dst: insn.opcode,
        src: 0,
        flags: 0,
        off: 0,
        target: 0,
        slot,
        imm: 0,
    };
    let imm = insn.imm as i64 as u64;
    let cls = insn.opcode & op::CLS_MASK;
    let use_src = insn.opcode & op::SRC_X != 0;
    match cls {
        op::CLS_ALU64 | op::CLS_ALU => {
            let is64 = cls == op::CLS_ALU64;
            if insn.dst > 10 || (use_src && insn.src > 10) {
                return trap;
            }
            let dop = match insn.opcode & op::ALU_OP_MASK {
                op::ALU_ADD => {
                    pick4(is64, use_src, DOp::Add64Imm, DOp::Add64Reg, DOp::Add32Imm, DOp::Add32Reg)
                }
                op::ALU_SUB => {
                    pick4(is64, use_src, DOp::Sub64Imm, DOp::Sub64Reg, DOp::Sub32Imm, DOp::Sub32Reg)
                }
                op::ALU_MUL => {
                    pick4(is64, use_src, DOp::Mul64Imm, DOp::Mul64Reg, DOp::Mul32Imm, DOp::Mul32Reg)
                }
                op::ALU_DIV => {
                    if !use_src && insn.imm == 0 {
                        DOp::DivZero
                    } else {
                        pick4(
                            is64,
                            use_src,
                            DOp::Div64Imm,
                            DOp::Div64Reg,
                            DOp::Div32Imm,
                            DOp::Div32Reg,
                        )
                    }
                }
                op::ALU_MOD => {
                    if !use_src && insn.imm == 0 {
                        DOp::DivZero
                    } else {
                        pick4(
                            is64,
                            use_src,
                            DOp::Mod64Imm,
                            DOp::Mod64Reg,
                            DOp::Mod32Imm,
                            DOp::Mod32Reg,
                        )
                    }
                }
                op::ALU_OR => {
                    pick4(is64, use_src, DOp::Or64Imm, DOp::Or64Reg, DOp::Or32Imm, DOp::Or32Reg)
                }
                op::ALU_AND => {
                    pick4(is64, use_src, DOp::And64Imm, DOp::And64Reg, DOp::And32Imm, DOp::And32Reg)
                }
                op::ALU_XOR => {
                    pick4(is64, use_src, DOp::Xor64Imm, DOp::Xor64Reg, DOp::Xor32Imm, DOp::Xor32Reg)
                }
                op::ALU_LSH => {
                    pick4(is64, use_src, DOp::Lsh64Imm, DOp::Lsh64Reg, DOp::Lsh32Imm, DOp::Lsh32Reg)
                }
                op::ALU_RSH => {
                    pick4(is64, use_src, DOp::Rsh64Imm, DOp::Rsh64Reg, DOp::Rsh32Imm, DOp::Rsh32Reg)
                }
                op::ALU_ARSH => pick4(
                    is64,
                    use_src,
                    DOp::Arsh64Imm,
                    DOp::Arsh64Reg,
                    DOp::Arsh32Imm,
                    DOp::Arsh32Reg,
                ),
                op::ALU_MOV => {
                    pick4(is64, use_src, DOp::Mov64Imm, DOp::Mov64Reg, DOp::Mov32Imm, DOp::Mov32Reg)
                }
                op::ALU_NEG => {
                    if is64 {
                        DOp::Neg64
                    } else {
                        DOp::Neg32
                    }
                }
                // The SRC bit selects to-big-endian (the common be16/32/64
                // form on LE machines) vs to-little-endian.
                op::ALU_END => match (insn.imm, use_src) {
                    (16, true) => DOp::Be16,
                    (32, true) => DOp::Be32,
                    (64, true) => DOp::Be64,
                    (16, false) => DOp::Le16,
                    (32, false) => DOp::Le32,
                    (64, false) => DOp::Le64,
                    _ => return trap,
                },
                _ => return trap,
            };
            DInsn {
                op: dop,
                dst: insn.dst,
                src: insn.src,
                flags: 0,
                off: 0,
                target: 0,
                slot,
                imm,
            }
        }
        op::CLS_JMP | op::CLS_JMP32 => {
            let opb = insn.opcode & op::ALU_OP_MASK;
            match opb {
                op::JMP_EXIT => DInsn {
                    op: DOp::Exit,
                    dst: 0,
                    src: 0,
                    flags: 0,
                    off: 0,
                    target: 0,
                    slot,
                    imm: 0,
                },
                op::JMP_CALL => DInsn {
                    op: DOp::Call,
                    dst: 0,
                    src: 0,
                    flags: 0,
                    off: 0,
                    target: insn.imm as u32,
                    slot,
                    imm: 0,
                },
                op::JMP_JA => DInsn {
                    op: DOp::Ja,
                    dst: 0,
                    src: 0,
                    flags: 0,
                    off: 0,
                    target: resolve(insn.offset),
                    slot,
                    imm: 0,
                },
                _ => {
                    let is64 = cls == op::CLS_JMP;
                    if insn.dst > 10 || (use_src && insn.src > 10) {
                        return trap;
                    }
                    let dop = match opb {
                        op::JMP_JEQ => pick4(
                            is64,
                            use_src,
                            DOp::Jeq64Imm,
                            DOp::Jeq64Reg,
                            DOp::Jeq32Imm,
                            DOp::Jeq32Reg,
                        ),
                        op::JMP_JNE => pick4(
                            is64,
                            use_src,
                            DOp::Jne64Imm,
                            DOp::Jne64Reg,
                            DOp::Jne32Imm,
                            DOp::Jne32Reg,
                        ),
                        op::JMP_JGT => pick4(
                            is64,
                            use_src,
                            DOp::Jgt64Imm,
                            DOp::Jgt64Reg,
                            DOp::Jgt32Imm,
                            DOp::Jgt32Reg,
                        ),
                        op::JMP_JGE => pick4(
                            is64,
                            use_src,
                            DOp::Jge64Imm,
                            DOp::Jge64Reg,
                            DOp::Jge32Imm,
                            DOp::Jge32Reg,
                        ),
                        op::JMP_JLT => pick4(
                            is64,
                            use_src,
                            DOp::Jlt64Imm,
                            DOp::Jlt64Reg,
                            DOp::Jlt32Imm,
                            DOp::Jlt32Reg,
                        ),
                        op::JMP_JLE => pick4(
                            is64,
                            use_src,
                            DOp::Jle64Imm,
                            DOp::Jle64Reg,
                            DOp::Jle32Imm,
                            DOp::Jle32Reg,
                        ),
                        op::JMP_JSET => pick4(
                            is64,
                            use_src,
                            DOp::Jset64Imm,
                            DOp::Jset64Reg,
                            DOp::Jset32Imm,
                            DOp::Jset32Reg,
                        ),
                        op::JMP_JSGT => pick4(
                            is64,
                            use_src,
                            DOp::Jsgt64Imm,
                            DOp::Jsgt64Reg,
                            DOp::Jsgt32Imm,
                            DOp::Jsgt32Reg,
                        ),
                        op::JMP_JSGE => pick4(
                            is64,
                            use_src,
                            DOp::Jsge64Imm,
                            DOp::Jsge64Reg,
                            DOp::Jsge32Imm,
                            DOp::Jsge32Reg,
                        ),
                        op::JMP_JSLT => pick4(
                            is64,
                            use_src,
                            DOp::Jslt64Imm,
                            DOp::Jslt64Reg,
                            DOp::Jslt32Imm,
                            DOp::Jslt32Reg,
                        ),
                        op::JMP_JSLE => pick4(
                            is64,
                            use_src,
                            DOp::Jsle64Imm,
                            DOp::Jsle64Reg,
                            DOp::Jsle32Imm,
                            DOp::Jsle32Reg,
                        ),
                        _ => return trap,
                    };
                    DInsn {
                        op: dop,
                        dst: insn.dst,
                        src: insn.src,
                        flags: 0,
                        off: 0,
                        target: resolve(insn.offset),
                        slot,
                        imm,
                    }
                }
            }
        }
        op::CLS_LD => {
            if insn.opcode != op::LDDW || insn.dst > 10 {
                return trap;
            }
            match hi_imm {
                Some(hi) => DInsn {
                    op: DOp::LdDw,
                    dst: insn.dst,
                    src: 0,
                    flags: 0,
                    off: 0,
                    target: 0,
                    slot,
                    imm: u64::from(insn.imm as u32) | (u64::from(hi as u32) << 32),
                },
                // lddw in the very last slot: nothing to fuse with.
                None => trap,
            }
        }
        op::CLS_LDX => {
            if insn.dst > 10 || insn.src > 10 {
                return trap;
            }
            let dop = match insn.opcode & op::SIZE_MASK {
                op::SIZE_W => DOp::LdxW,
                op::SIZE_H => DOp::LdxH,
                op::SIZE_B => DOp::LdxB,
                _ => DOp::LdxDw,
            };
            DInsn {
                op: dop,
                dst: insn.dst,
                src: insn.src,
                flags: 0,
                off: insn.offset,
                target: 0,
                slot,
                imm,
            }
        }
        op::CLS_ST => {
            if insn.dst > 10 {
                return trap;
            }
            let dop = match insn.opcode & op::SIZE_MASK {
                op::SIZE_W => DOp::StW,
                op::SIZE_H => DOp::StH,
                op::SIZE_B => DOp::StB,
                _ => DOp::StDw,
            };
            DInsn {
                op: dop,
                dst: insn.dst,
                src: 0,
                flags: 0,
                off: insn.offset,
                target: 0,
                slot,
                imm,
            }
        }
        op::CLS_STX => {
            if insn.dst > 10 || insn.src > 10 {
                return trap;
            }
            let dop = match insn.opcode & op::SIZE_MASK {
                op::SIZE_W => DOp::StxW,
                op::SIZE_H => DOp::StxH,
                op::SIZE_B => DOp::StxB,
                _ => DOp::StxDw,
            };
            DInsn {
                op: dop,
                dst: insn.dst,
                src: insn.src,
                flags: 0,
                off: insn.offset,
                target: 0,
                slot,
                imm,
            }
        }
        _ => trap,
    }
}

impl LoadedProgram {
    /// Pre-decode a program. Total: never fails, even on garbage input —
    /// undecodable slots become [`DOp::Trap`] instructions that fault at
    /// runtime. For programs accepted by [`crate::verify`] the result
    /// contains no traps and every jump target is a valid dense index.
    pub fn load(prog: &Program) -> LoadedProgram {
        let insns = &prog.insns;
        let n = insns.len();

        // Pass 1: dense index of every decodable slot. An `lddw` second
        // slot is not independently executable and keeps the sentinel.
        let mut dense_of = vec![u32::MAX; n];
        let mut count: u32 = 0;
        let mut i = 0;
        while i < n {
            dense_of[i] = count;
            count += 1;
            if insns[i].opcode == op::LDDW && i + 1 < n {
                i += 2;
            } else {
                i += 1;
            }
        }
        // Dense index of the trailing trap sentinel (below); jumps that
        // leave the text or land inside an lddw resolve here.
        let trap_target = count;

        // Pass 2: decode, rewriting slot-relative jumps to dense indices.
        let mut code = Vec::with_capacity(count as usize + 1);
        let mut i = 0;
        while i < n {
            let insn = insns[i];
            let resolve = |off: i16| -> u32 {
                let t = i as i64 + 1 + i64::from(off);
                if t >= 0 && (t as usize) < n {
                    let d = dense_of[t as usize];
                    if d != u32::MAX {
                        return d;
                    }
                }
                trap_target
            };
            let fused = insn.opcode == op::LDDW && i + 1 < n;
            let hi_imm = if fused { Some(insns[i + 1].imm) } else { None };
            code.push(decode_slot(insn, i as u32, hi_imm, resolve));
            i += if fused { 2 } else { 1 };
        }

        // Sentinel: control that would leave the text (possible only for
        // unverified programs) raises BadInstruction instead of indexing
        // out of bounds.
        code.push(DInsn {
            op: DOp::Trap,
            dst: 0,
            src: 0,
            flags: 0,
            off: 0,
            target: 0,
            slot: n as u32,
            imm: 0,
        });
        LoadedProgram {
            code,
            slots: n,
            worst_fuel: None,
            elide: true,
            has_elided: false,
        }
    }

    /// Number of slots in the source program.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Static worst-case fuel bound proven by the abstract interpreter,
    /// if every loop in the program was bounded.
    pub fn worst_fuel(&self) -> Option<u64> {
        self.worst_fuel
    }

    /// Enable or disable proof-based runtime check elision. Elision-on and
    /// elision-off runs are contractually byte-identical (outcome, memory,
    /// metrics, faults); the switch exists so that equivalence can be
    /// measured and tested.
    pub fn set_elide(&mut self, elide: bool) {
        self.elide = elide;
    }

    /// Whether proof-based check elision is enabled.
    pub fn elide(&self) -> bool {
        self.elide
    }

    /// Number of decoded instructions (a fused `lddw` counts once).
    pub fn len(&self) -> usize {
        self.code.len() - 1 // minus the trap sentinel
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::build;

    #[test]
    fn lddw_fuses_into_one_instruction() {
        let [lo, hi] = build::lddw(3, 0xdead_beef_0bad_f00d);
        let lp = LoadedProgram::load(&Program::new(vec![lo, hi, build::exit()]));
        assert_eq!(lp.len(), 2);
        assert_eq!(lp.code[0].op, DOp::LdDw);
        assert_eq!(lp.code[0].imm, 0xdead_beef_0bad_f00d);
        assert_eq!(lp.code[0].dst, 3);
        assert_eq!(lp.code[1].op, DOp::Exit);
        // Slot pcs survive: exit was slot 2.
        assert_eq!(lp.code[1].slot, 2);
    }

    #[test]
    fn jump_targets_are_rewritten_to_dense_indices() {
        // slot 0: ja +2 (over the two lddw slots) → slot 3 → dense 2.
        let [lo, hi] = build::lddw(0, 99);
        let lp = LoadedProgram::load(&Program::new(vec![build::ja(2), lo, hi, build::exit()]));
        assert_eq!(lp.code[0].op, DOp::Ja);
        assert_eq!(lp.code[0].target, 2);
        assert_eq!(lp.code[2].op, DOp::Exit);
    }

    #[test]
    fn backward_jump_before_lddw_keeps_dense_target() {
        // slot 0: mov; slots 1-2: lddw; slot 3: jne → slot 0 (dense 0).
        let [lo, hi] = build::lddw(2, 7);
        let insns = vec![build::mov_imm(0, 0), lo, hi, build::jne_imm(1, 0, -4), build::exit()];
        let lp = LoadedProgram::load(&Program::new(insns));
        assert_eq!(lp.code[2].op, DOp::Jne64Imm);
        assert_eq!(lp.code[2].target, 0);
        assert_eq!(lp.code[2].slot, 3);
    }

    #[test]
    fn undecodable_slots_become_traps() {
        let bogus = Insn::new(0xff, 0, 0, 0, 0);
        let lp = LoadedProgram::load(&Program::new(vec![bogus, build::exit()]));
        assert_eq!(lp.code[0].op, DOp::Trap);
        assert_eq!(lp.code[0].dst, 0xff);
    }

    #[test]
    fn out_of_range_jump_resolves_to_sentinel() {
        let lp = LoadedProgram::load(&Program::new(vec![build::ja(100), build::exit()]));
        assert_eq!(lp.code[0].target, lp.len() as u32);
        assert_eq!(lp.code[lp.len()].op, DOp::Trap);
    }

    #[test]
    fn const_zero_divisor_decodes_to_div_zero() {
        let div0 = Insn::new(op::CLS_ALU64 | op::ALU_DIV | op::SRC_K, 1, 0, 0, 0);
        let lp = LoadedProgram::load(&Program::new(vec![div0, build::exit()]));
        assert_eq!(lp.code[0].op, DOp::DivZero);
    }
}
