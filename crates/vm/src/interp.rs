//! The eBPF interpreter.
//!
//! Execution runs over the pre-decoded [`LoadedProgram`] form (see
//! [`crate::prep`]): opcode splitting, `lddw` fusion, immediate sign
//! extension and jump-target resolution all happened at load time, so the
//! per-instruction work here is one match on a flat discriminant.

use crate::error::VmError;
use crate::insn::Program;
use crate::mem::{ElideCtx, MemoryMap, Region, RegionKind};
use crate::prep::{elide, DOp, LoadedProgram};
use crate::{STACK_BASE, STACK_SIZE};

/// How a program run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The program executed `exit`; r0 is the return value.
    Return(u64),
    /// The program called the special `next()` helper, delegating the
    /// decision to the next extension in the chain (or to the host's
    /// native code). Paper §2.1.
    Next,
}

/// Host-side implementation of the helper functions a program may call.
///
/// The dispatcher receives the helper id, the five argument registers
/// (r1..r5), and the memory map so it can read or write extension memory.
/// Returning `Err(VmError::HelperFault mapped from NextSignal)` is awkward,
/// so delegation is signalled with [`HelperOutcome::Next`] instead.
pub trait HelperDispatcher {
    /// Execute helper `id`. Return the value for r0, or `Next` to stop the
    /// program and delegate, or a fault. Fault pcs are stamped by the
    /// interpreter afterwards (see [`VmError::at_pc`]); dispatchers may use
    /// a placeholder.
    fn call(
        &mut self,
        id: u32,
        args: [u64; 5],
        mem: &mut MemoryMap,
    ) -> Result<HelperOutcome, VmError>;
}

/// Result of one helper invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperOutcome {
    /// Normal return value, placed into r0.
    Value(u64),
    /// The `next()` delegation signal: abort execution with
    /// [`ExecOutcome::Next`].
    Next,
}

/// A dispatcher with no helpers, for pure-computation programs and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHelpers;

impl HelperDispatcher for NoHelpers {
    fn call(
        &mut self,
        id: u32,
        _args: [u64; 5],
        _mem: &mut MemoryMap,
    ) -> Result<HelperOutcome, VmError> {
        // pc is a placeholder: the interpreter rewrites it to the real
        // call site via `VmError::at_pc`.
        Err(VmError::UnknownHelper { pc: 0, helper: id })
    }
}

/// Interpreter tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Instruction budget for one run (the paper's "monitors their
    /// execution and stops them"). Enforced at loop back-edges and helper
    /// calls, so a run may overshoot by at most one straight-line basic
    /// block before being stopped.
    pub fuel: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        // Generous enough for a full pass over a 4 KiB message with a
        // few dozen instructions per byte; tiny compared to a runaway loop.
        VmConfig { fuel: 1_000_000 }
    }
}

/// Per-run execution metrics, reported by [`Vm::run_metered`].
///
/// Counting costs nothing on the interpreter hot path: instructions are
/// already metered by the fuel counter, so `insns_retired` falls out of
/// the fuel arithmetic, and `helper_calls` bumps a local only on the
/// (rare) `call` instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Instructions executed (a two-slot `lddw` counts once).
    pub insns_retired: u64,
    /// Helper invocations, including `next()`.
    pub helper_calls: u64,
    /// Fuel consumed — identical to `insns_retired` today, kept separate
    /// so a future weighted-fuel scheme (e.g. helpers costing more) does
    /// not change the reporting API.
    pub fuel_consumed: u64,
}

impl LoadedProgram {
    /// Execute the pre-decoded program.
    ///
    /// `args` pre-loads r1..r5 (insertion-point arguments, usually virtual
    /// addresses of marshalled structs). A fresh stack region is mapped at
    /// [`STACK_BASE`] if the caller did not pre-map one, and r10 points one
    /// past its end, per eBPF convention.
    pub fn run(
        &self,
        config: VmConfig,
        mem: &mut MemoryMap,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> Result<ExecOutcome, VmError> {
        self.run_metered(config, mem, helpers, args).0
    }

    /// Execute the program and report [`RunMetrics`] alongside the outcome.
    ///
    /// Fuel is charged per instruction but the balance is only *checked*
    /// at loop back-edges (taken jumps that do not advance the pc) and at
    /// helper calls — the two places a program can spend unbounded time —
    /// so straight-line code pays nothing beyond the decrement. A program
    /// can therefore overrun its budget by at most one basic block; a
    /// run stopped by `FuelExhausted` reports *at least* `config.fuel`
    /// instructions retired (exactly `config.fuel` when the stopping
    /// instruction is itself the back-edge, as in a tight loop).
    pub fn run_metered(
        &self,
        config: VmConfig,
        mem: &mut MemoryMap,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> (Result<ExecOutcome, VmError>, RunMetrics) {
        assert!(args.len() <= 5, "at most five argument registers");
        let mut reg = [0u64; 11];
        for (i, a) in args.iter().enumerate() {
            reg[i + 1] = *a;
        }
        // Fresh stack per run. If the caller pre-mapped one (the VMM pools
        // stack buffers), it must already be zeroed; otherwise map our own.
        if mem.region_of(RegionKind::Stack).is_none() {
            mem.map(Region::new(RegionKind::Stack, STACK_BASE, vec![0; STACK_SIZE], true));
        }
        reg[10] = STACK_BASE + STACK_SIZE as u64;

        let code = &self.code[..];
        let mut pc: usize = 0;
        // Signed so the balance can dip below zero between checks: the
        // per-instruction cost is an unconditional decrement, and only
        // back-edges and calls compare against zero.
        let mut fuel: i64 = config.fuel.min(i64::MAX as u64) as i64;
        let budget = fuel;
        // Fuel-ledger elision: when the analyzer proved a worst case
        // strictly under the budget, exhaustion cannot fire in *either*
        // mode (consumed ≤ worst < budget), so the ledger may start
        // saturated. Metrics stay instruction-exact via `start - fuel`.
        if self.elide && self.worst_fuel.is_some_and(|w| w < budget as u64) {
            fuel = i64::MAX;
        }
        let start = fuel;
        let mut helper_calls: u64 = 0;
        // Proof-carrying memory elision: resolve the provable regions once
        // up front; revalidated after helper returns (helpers may remap
        // regions). Programs with no proven accesses skip all of it.
        let elide_on = self.elide && self.has_elided;
        let mut ectx = if elide_on { mem.elide_ctx() } else { ElideCtx::default() };

        // Binary ALU forms: f(dst, operand) → dst, then fall through.
        macro_rules! bin64i {
            ($ins:expr, $f:expr) => {{
                let d = $ins.dst as usize;
                reg[d] = $f(reg[d], $ins.imm);
                pc += 1;
            }};
        }
        macro_rules! bin64r {
            ($ins:expr, $f:expr) => {{
                let d = $ins.dst as usize;
                reg[d] = $f(reg[d], reg[$ins.src as usize]);
                pc += 1;
            }};
        }
        macro_rules! bin32i {
            ($ins:expr, $f:expr) => {{
                let d = $ins.dst as usize;
                reg[d] = u64::from($f(reg[d] as u32, $ins.imm as u32));
                pc += 1;
            }};
        }
        macro_rules! bin32r {
            ($ins:expr, $f:expr) => {{
                let d = $ins.dst as usize;
                reg[d] = u64::from($f(reg[d] as u32, reg[$ins.src as usize] as u32));
                pc += 1;
            }};
        }
        // Taken branches whose target does not advance the pc are the
        // only way to revisit an instruction, so they are where the fuel
        // balance is enforced (see the `run_metered` doc).
        macro_rules! back_edge {
            ($target:expr, $slot:expr) => {
                if $target <= pc && fuel <= 0 {
                    return Err(VmError::FuelExhausted { pc: $slot as usize });
                }
            };
        }
        // Conditional jumps: taken branches go straight to the pre-resolved
        // dense target, no arithmetic or range check.
        macro_rules! jmp64i {
            ($ins:expr, $f:expr) => {
                pc = if $f(reg[$ins.dst as usize], $ins.imm) {
                    let t = $ins.target as usize;
                    back_edge!(t, $ins.slot);
                    t
                } else {
                    pc + 1
                }
            };
        }
        macro_rules! jmp64r {
            ($ins:expr, $f:expr) => {
                pc = if $f(reg[$ins.dst as usize], reg[$ins.src as usize]) {
                    let t = $ins.target as usize;
                    back_edge!(t, $ins.slot);
                    t
                } else {
                    pc + 1
                }
            };
        }
        macro_rules! jmp32i {
            ($ins:expr, $f:expr) => {
                pc = if $f(reg[$ins.dst as usize] as u32, $ins.imm as u32) {
                    let t = $ins.target as usize;
                    back_edge!(t, $ins.slot);
                    t
                } else {
                    pc + 1
                }
            };
        }
        macro_rules! jmp32r {
            ($ins:expr, $f:expr) => {
                pc = if $f(reg[$ins.dst as usize] as u32, reg[$ins.src as usize] as u32) {
                    let t = $ins.target as usize;
                    back_edge!(t, $ins.slot);
                    t
                } else {
                    pc + 1
                }
            };
        }
        // Loads and stores carry the verifier's proof bits: when the
        // analyzer proved the access in-bounds for a specific region kind,
        // the slow find()+bounds walk is skipped and the access indexes the
        // pre-resolved region directly. The fast path still returns None on
        // any disagreement (region remapped, analysis bug), falling back to
        // the checked path so faults are bit-identical with elision off.
        macro_rules! ld {
            ($ins:expr, $fast:ident, $slow:ident) => {{
                let a = reg[$ins.src as usize].wrapping_add($ins.off as i64 as u64);
                reg[$ins.dst as usize] = if elide_on && $ins.flags & elide::BOUNDS != 0 {
                    match mem.$fast(&ectx, elide::kind($ins.flags), a) {
                        Some(v) => v,
                        None => mem.$slow(a).map_err(|e| e.at_pc($ins.slot as usize))?,
                    }
                } else {
                    mem.$slow(a).map_err(|e| e.at_pc($ins.slot as usize))?
                };
                pc += 1;
            }};
        }
        macro_rules! st {
            ($ins:expr, $fast:ident, $slow:ident, $v:expr) => {{
                let a = reg[$ins.dst as usize].wrapping_add($ins.off as i64 as u64);
                let v = $v;
                if !(elide_on
                    && $ins.flags & elide::BOUNDS != 0
                    && mem.$fast(&ectx, elide::kind($ins.flags), a, v))
                {
                    mem.$slow(a, v).map_err(|e| e.at_pc($ins.slot as usize))?;
                }
                pc += 1;
            }};
        }

        // The body keeps its early `return`s by running inside an
        // immediately-invoked closure; the metrics are assembled from the
        // fuel arithmetic afterwards, whatever the exit path.
        let result = (|| -> Result<ExecOutcome, VmError> {
            loop {
                fuel -= 1;
                let ins = code[pc];
                match ins.op {
                    DOp::Add64Imm => bin64i!(ins, u64::wrapping_add),
                    DOp::Add64Reg => bin64r!(ins, u64::wrapping_add),
                    DOp::Add32Imm => bin32i!(ins, u32::wrapping_add),
                    DOp::Add32Reg => bin32r!(ins, u32::wrapping_add),
                    DOp::Sub64Imm => bin64i!(ins, u64::wrapping_sub),
                    DOp::Sub64Reg => bin64r!(ins, u64::wrapping_sub),
                    DOp::Sub32Imm => bin32i!(ins, u32::wrapping_sub),
                    DOp::Sub32Reg => bin32r!(ins, u32::wrapping_sub),
                    DOp::Mul64Imm => bin64i!(ins, u64::wrapping_mul),
                    DOp::Mul64Reg => bin64r!(ins, u64::wrapping_mul),
                    DOp::Mul32Imm => bin32i!(ins, u32::wrapping_mul),
                    DOp::Mul32Reg => bin32r!(ins, u32::wrapping_mul),
                    // Constant divisors are proven non-zero at decode time
                    // (a zero divisor decodes to DivZero), so the immediate
                    // forms divide unconditionally.
                    DOp::Div64Imm => bin64i!(ins, |d: u64, s: u64| d / s),
                    DOp::Div32Imm => bin32i!(ins, |d: u32, s: u32| d / s),
                    DOp::Mod64Imm => bin64i!(ins, |d: u64, s: u64| d % s),
                    DOp::Mod32Imm => bin32i!(ins, |d: u32, s: u32| d % s),
                    DOp::Div64Reg => {
                        let s = reg[ins.src as usize];
                        if s == 0 {
                            return Err(VmError::DivByZero { pc: ins.slot as usize });
                        }
                        let d = ins.dst as usize;
                        reg[d] /= s;
                        pc += 1;
                    }
                    DOp::Div32Reg => {
                        let s = reg[ins.src as usize] as u32;
                        if s == 0 {
                            return Err(VmError::DivByZero { pc: ins.slot as usize });
                        }
                        let d = ins.dst as usize;
                        reg[d] = u64::from(reg[d] as u32 / s);
                        pc += 1;
                    }
                    DOp::Mod64Reg => {
                        let s = reg[ins.src as usize];
                        if s == 0 {
                            return Err(VmError::DivByZero { pc: ins.slot as usize });
                        }
                        let d = ins.dst as usize;
                        reg[d] %= s;
                        pc += 1;
                    }
                    DOp::Mod32Reg => {
                        let s = reg[ins.src as usize] as u32;
                        if s == 0 {
                            return Err(VmError::DivByZero { pc: ins.slot as usize });
                        }
                        let d = ins.dst as usize;
                        reg[d] = u64::from(reg[d] as u32 % s);
                        pc += 1;
                    }
                    DOp::DivZero => return Err(VmError::DivByZero { pc: ins.slot as usize }),
                    DOp::Or64Imm => bin64i!(ins, |d: u64, s: u64| d | s),
                    DOp::Or64Reg => bin64r!(ins, |d: u64, s: u64| d | s),
                    DOp::Or32Imm => bin32i!(ins, |d: u32, s: u32| d | s),
                    DOp::Or32Reg => bin32r!(ins, |d: u32, s: u32| d | s),
                    DOp::And64Imm => bin64i!(ins, |d: u64, s: u64| d & s),
                    DOp::And64Reg => bin64r!(ins, |d: u64, s: u64| d & s),
                    DOp::And32Imm => bin32i!(ins, |d: u32, s: u32| d & s),
                    DOp::And32Reg => bin32r!(ins, |d: u32, s: u32| d & s),
                    DOp::Xor64Imm => bin64i!(ins, |d: u64, s: u64| d ^ s),
                    DOp::Xor64Reg => bin64r!(ins, |d: u64, s: u64| d ^ s),
                    DOp::Xor32Imm => bin32i!(ins, |d: u32, s: u32| d ^ s),
                    DOp::Xor32Reg => bin32r!(ins, |d: u32, s: u32| d ^ s),
                    // Shift amounts wrap modulo the operand width, exactly
                    // as the slot interpreter's wrapping_shl/shr did.
                    DOp::Lsh64Imm => bin64i!(ins, |d: u64, s: u64| d.wrapping_shl(s as u32)),
                    DOp::Lsh64Reg => bin64r!(ins, |d: u64, s: u64| d.wrapping_shl(s as u32)),
                    DOp::Lsh32Imm => bin32i!(ins, u32::wrapping_shl),
                    DOp::Lsh32Reg => bin32r!(ins, u32::wrapping_shl),
                    DOp::Rsh64Imm => bin64i!(ins, |d: u64, s: u64| d.wrapping_shr(s as u32)),
                    DOp::Rsh64Reg => bin64r!(ins, |d: u64, s: u64| d.wrapping_shr(s as u32)),
                    DOp::Rsh32Imm => bin32i!(ins, u32::wrapping_shr),
                    DOp::Rsh32Reg => bin32r!(ins, u32::wrapping_shr),
                    DOp::Arsh64Imm => {
                        bin64i!(ins, |d: u64, s: u64| (d as i64).wrapping_shr(s as u32) as u64)
                    }
                    DOp::Arsh64Reg => {
                        bin64r!(ins, |d: u64, s: u64| (d as i64).wrapping_shr(s as u32) as u64)
                    }
                    DOp::Arsh32Imm => {
                        bin32i!(ins, |d: u32, s: u32| (d as i32).wrapping_shr(s) as u32)
                    }
                    DOp::Arsh32Reg => {
                        bin32r!(ins, |d: u32, s: u32| (d as i32).wrapping_shr(s) as u32)
                    }
                    DOp::Mov64Imm => bin64i!(ins, |_, s| s),
                    DOp::Mov64Reg => bin64r!(ins, |_, s| s),
                    DOp::Mov32Imm => bin32i!(ins, |_, s: u32| s),
                    DOp::Mov32Reg => bin32r!(ins, |_, s: u32| s),
                    DOp::Neg64 => {
                        let d = ins.dst as usize;
                        reg[d] = (reg[d] as i64).wrapping_neg() as u64;
                        pc += 1;
                    }
                    DOp::Neg32 => {
                        let d = ins.dst as usize;
                        reg[d] = (reg[d] as u32 as i32).wrapping_neg() as u32 as u64;
                        pc += 1;
                    }
                    DOp::Be16 => {
                        let d = ins.dst as usize;
                        reg[d] = u64::from((reg[d] as u16).to_be());
                        pc += 1;
                    }
                    DOp::Be32 => {
                        let d = ins.dst as usize;
                        reg[d] = u64::from((reg[d] as u32).to_be());
                        pc += 1;
                    }
                    DOp::Be64 => {
                        let d = ins.dst as usize;
                        reg[d] = reg[d].to_be();
                        pc += 1;
                    }
                    DOp::Le16 => {
                        let d = ins.dst as usize;
                        reg[d] = u64::from((reg[d] as u16).to_le());
                        pc += 1;
                    }
                    DOp::Le32 => {
                        let d = ins.dst as usize;
                        reg[d] = u64::from((reg[d] as u32).to_le());
                        pc += 1;
                    }
                    DOp::Le64 => {
                        let d = ins.dst as usize;
                        reg[d] = reg[d].to_le();
                        pc += 1;
                    }
                    DOp::LdDw => {
                        reg[ins.dst as usize] = ins.imm;
                        pc += 1;
                    }
                    DOp::LdxDw => ld!(ins, fast_load64, load64),
                    DOp::LdxW => ld!(ins, fast_load32, load32),
                    DOp::LdxH => ld!(ins, fast_load16, load16),
                    DOp::LdxB => ld!(ins, fast_load8, load8),
                    DOp::StDw => st!(ins, fast_store64, store64, ins.imm),
                    DOp::StW => st!(ins, fast_store32, store32, ins.imm as u32),
                    DOp::StH => st!(ins, fast_store16, store16, ins.imm as u16),
                    DOp::StB => st!(ins, fast_store8, store8, ins.imm as u8),
                    DOp::StxDw => st!(ins, fast_store64, store64, reg[ins.src as usize]),
                    DOp::StxW => st!(ins, fast_store32, store32, reg[ins.src as usize] as u32),
                    DOp::StxH => st!(ins, fast_store16, store16, reg[ins.src as usize] as u16),
                    DOp::StxB => st!(ins, fast_store8, store8, reg[ins.src as usize] as u8),
                    DOp::Ja => {
                        let t = ins.target as usize;
                        back_edge!(t, ins.slot);
                        pc = t;
                    }
                    DOp::Call => {
                        if fuel <= 0 {
                            return Err(VmError::FuelExhausted { pc: ins.slot as usize });
                        }
                        helper_calls += 1;
                        let args5 = [reg[1], reg[2], reg[3], reg[4], reg[5]];
                        match helpers.call(ins.target, args5, mem) {
                            Ok(HelperOutcome::Value(v)) => {
                                reg[0] = v;
                                // Caller-saved registers are clobbered,
                                // matching eBPF calling convention.
                                reg[1] = 0;
                                reg[2] = 0;
                                reg[3] = 0;
                                reg[4] = 0;
                                reg[5] = 0;
                                // Helpers may remap regions; the
                                // pre-resolved elision slots must track.
                                if elide_on {
                                    ectx.refresh(mem);
                                }
                                pc += 1;
                            }
                            Ok(HelperOutcome::Next) => return Ok(ExecOutcome::Next),
                            Err(e) => return Err(e.at_pc(ins.slot as usize)),
                        }
                    }
                    DOp::Exit => return Ok(ExecOutcome::Return(reg[0])),
                    DOp::Jeq64Imm => jmp64i!(ins, |a, b| a == b),
                    DOp::Jeq64Reg => jmp64r!(ins, |a, b| a == b),
                    DOp::Jeq32Imm => jmp32i!(ins, |a: u32, b: u32| a == b),
                    DOp::Jeq32Reg => jmp32r!(ins, |a: u32, b: u32| a == b),
                    DOp::Jne64Imm => jmp64i!(ins, |a, b| a != b),
                    DOp::Jne64Reg => jmp64r!(ins, |a, b| a != b),
                    DOp::Jne32Imm => jmp32i!(ins, |a: u32, b: u32| a != b),
                    DOp::Jne32Reg => jmp32r!(ins, |a: u32, b: u32| a != b),
                    DOp::Jgt64Imm => jmp64i!(ins, |a, b| a > b),
                    DOp::Jgt64Reg => jmp64r!(ins, |a, b| a > b),
                    DOp::Jgt32Imm => jmp32i!(ins, |a: u32, b: u32| a > b),
                    DOp::Jgt32Reg => jmp32r!(ins, |a: u32, b: u32| a > b),
                    DOp::Jge64Imm => jmp64i!(ins, |a, b| a >= b),
                    DOp::Jge64Reg => jmp64r!(ins, |a, b| a >= b),
                    DOp::Jge32Imm => jmp32i!(ins, |a: u32, b: u32| a >= b),
                    DOp::Jge32Reg => jmp32r!(ins, |a: u32, b: u32| a >= b),
                    DOp::Jlt64Imm => jmp64i!(ins, |a, b| a < b),
                    DOp::Jlt64Reg => jmp64r!(ins, |a, b| a < b),
                    DOp::Jlt32Imm => jmp32i!(ins, |a: u32, b: u32| a < b),
                    DOp::Jlt32Reg => jmp32r!(ins, |a: u32, b: u32| a < b),
                    DOp::Jle64Imm => jmp64i!(ins, |a, b| a <= b),
                    DOp::Jle64Reg => jmp64r!(ins, |a, b| a <= b),
                    DOp::Jle32Imm => jmp32i!(ins, |a: u32, b: u32| a <= b),
                    DOp::Jle32Reg => jmp32r!(ins, |a: u32, b: u32| a <= b),
                    DOp::Jset64Imm => jmp64i!(ins, |a, b| a & b != 0),
                    DOp::Jset64Reg => jmp64r!(ins, |a, b| a & b != 0),
                    DOp::Jset32Imm => jmp32i!(ins, |a: u32, b: u32| a & b != 0),
                    DOp::Jset32Reg => jmp32r!(ins, |a: u32, b: u32| a & b != 0),
                    DOp::Jsgt64Imm => jmp64i!(ins, |a: u64, b: u64| (a as i64) > (b as i64)),
                    DOp::Jsgt64Reg => jmp64r!(ins, |a: u64, b: u64| (a as i64) > (b as i64)),
                    DOp::Jsgt32Imm => jmp32i!(ins, |a: u32, b: u32| (a as i32) > (b as i32)),
                    DOp::Jsgt32Reg => jmp32r!(ins, |a: u32, b: u32| (a as i32) > (b as i32)),
                    DOp::Jsge64Imm => jmp64i!(ins, |a: u64, b: u64| (a as i64) >= (b as i64)),
                    DOp::Jsge64Reg => jmp64r!(ins, |a: u64, b: u64| (a as i64) >= (b as i64)),
                    DOp::Jsge32Imm => jmp32i!(ins, |a: u32, b: u32| (a as i32) >= (b as i32)),
                    DOp::Jsge32Reg => jmp32r!(ins, |a: u32, b: u32| (a as i32) >= (b as i32)),
                    DOp::Jslt64Imm => jmp64i!(ins, |a: u64, b: u64| (a as i64) < (b as i64)),
                    DOp::Jslt64Reg => jmp64r!(ins, |a: u64, b: u64| (a as i64) < (b as i64)),
                    DOp::Jslt32Imm => jmp32i!(ins, |a: u32, b: u32| (a as i32) < (b as i32)),
                    DOp::Jslt32Reg => jmp32r!(ins, |a: u32, b: u32| (a as i32) < (b as i32)),
                    DOp::Jsle64Imm => jmp64i!(ins, |a: u64, b: u64| (a as i64) <= (b as i64)),
                    DOp::Jsle64Reg => jmp64r!(ins, |a: u64, b: u64| (a as i64) <= (b as i64)),
                    DOp::Jsle32Imm => jmp32i!(ins, |a: u32, b: u32| (a as i32) <= (b as i32)),
                    DOp::Jsle32Reg => jmp32r!(ins, |a: u32, b: u32| (a as i32) <= (b as i32)),
                    DOp::Trap => {
                        return Err(VmError::BadInstruction {
                            pc: ins.slot as usize,
                            opcode: ins.dst,
                        })
                    }
                }
            }
        })();
        let fuel_consumed = (start - fuel) as u64;
        (result, RunMetrics { insns_retired: fuel_consumed, helper_calls, fuel_consumed })
    }
}

/// The virtual machine: a pre-decoded program plus configuration. The
/// memory map travels separately so the VMM can prepare it per invocation.
pub struct Vm {
    prog: LoadedProgram,
    config: VmConfig,
}

impl Vm {
    /// Pre-decode and wrap a (verified) program. Run [`crate::verify`]
    /// first: the decoder is total, but only verification proves the
    /// program free of trap instructions and invalid jumps.
    pub fn new(prog: &Program) -> Vm {
        Vm { prog: LoadedProgram::load(prog), config: VmConfig::default() }
    }

    pub fn with_config(prog: &Program, config: VmConfig) -> Vm {
        Vm { prog: LoadedProgram::load(prog), config }
    }

    /// Wrap an already pre-decoded program (the VMM caches one per
    /// extension and skips re-decoding entirely).
    pub fn from_loaded(prog: LoadedProgram, config: VmConfig) -> Vm {
        Vm { prog, config }
    }

    /// Execute the program. See [`LoadedProgram::run`].
    pub fn run(
        &self,
        mem: &mut MemoryMap,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> Result<ExecOutcome, VmError> {
        self.prog.run(self.config, mem, helpers, args)
    }

    /// Execute the program and report [`RunMetrics`] alongside the outcome.
    /// See [`LoadedProgram::run_metered`].
    pub fn run_metered(
        &self,
        mem: &mut MemoryMap,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> (Result<ExecOutcome, VmError>, RunMetrics) {
        self.prog.run_metered(self.config, mem, helpers, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{build, op, Insn, Program};
    use crate::verify::verify;
    use std::collections::HashSet;

    fn run(insns: Vec<Insn>) -> Result<ExecOutcome, VmError> {
        run_with(insns, &mut NoHelpers, &[])
    }

    fn run_with(
        insns: Vec<Insn>,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> Result<ExecOutcome, VmError> {
        let prog = Program::new(insns);
        let mut mem = MemoryMap::new();
        Vm::new(&prog).run(&mut mem, helpers, args)
    }

    fn ret(insns: Vec<Insn>) -> u64 {
        match run(insns).unwrap() {
            ExecOutcome::Return(v) => v,
            ExecOutcome::Next => panic!("unexpected next()"),
        }
    }

    #[test]
    fn mov_and_exit() {
        assert_eq!(ret(vec![build::mov_imm(0, 42), build::exit()]), 42);
    }

    #[test]
    fn arithmetic_64() {
        // r0 = (7 + 3) * 5 - 8 = 42
        assert_eq!(
            ret(vec![
                build::mov_imm(0, 7),
                build::add_imm(0, 3),
                Insn::new(op::CLS_ALU64 | op::ALU_MUL | op::SRC_K, 0, 0, 0, 5),
                Insn::new(op::CLS_ALU64 | op::ALU_SUB | op::SRC_K, 0, 0, 0, 8),
                build::exit(),
            ]),
            42
        );
    }

    #[test]
    fn alu32_truncates() {
        // 32-bit add of 0xffff_ffff + 1 wraps to 0 and clears the top half.
        let insns = vec![
            build::mov_imm(0, -1), // r0 = 0xffff_ffff_ffff_ffff
            Insn::new(op::CLS_ALU | op::ALU_ADD | op::SRC_K, 0, 0, 0, 1),
            build::exit(),
        ];
        assert_eq!(ret(insns), 0);
    }

    #[test]
    fn division_and_modulo() {
        let insns = vec![
            build::mov_imm(0, 43),
            Insn::new(op::CLS_ALU64 | op::ALU_DIV | op::SRC_K, 0, 0, 0, 4),
            build::exit(),
        ];
        assert_eq!(ret(insns), 10);
        let insns = vec![
            build::mov_imm(0, 43),
            Insn::new(op::CLS_ALU64 | op::ALU_MOD | op::SRC_K, 0, 0, 0, 4),
            build::exit(),
        ];
        assert_eq!(ret(insns), 3);
    }

    #[test]
    fn runtime_div_by_zero_faults() {
        let insns = vec![
            build::mov_imm(0, 1),
            build::mov_imm(1, 0),
            Insn::new(op::CLS_ALU64 | op::ALU_DIV | op::SRC_X, 0, 1, 0, 0),
            build::exit(),
        ];
        assert!(matches!(run(insns), Err(VmError::DivByZero { pc: 2 })));
    }

    #[test]
    fn const_div_by_zero_faults_at_its_slot() {
        // Unverified program: the decoder folds a constant zero divisor
        // into a DivZero trap that still reports the right pc.
        let insns = vec![
            build::mov_imm(0, 1),
            Insn::new(op::CLS_ALU64 | op::ALU_MOD | op::SRC_K, 0, 0, 0, 0),
            build::exit(),
        ];
        assert!(matches!(run(insns), Err(VmError::DivByZero { pc: 1 })));
    }

    #[test]
    fn signed_ops() {
        // arsh: -8 >> 1 == -4
        let insns = vec![
            build::mov_imm(0, -8),
            Insn::new(op::CLS_ALU64 | op::ALU_ARSH | op::SRC_K, 0, 0, 0, 1),
            build::exit(),
        ];
        assert_eq!(ret(insns) as i64, -4);
        // neg
        let insns = vec![
            build::mov_imm(0, 5),
            Insn::new(op::CLS_ALU64 | op::ALU_NEG, 0, 0, 0, 0),
            build::exit(),
        ];
        assert_eq!(ret(insns) as i64, -5);
    }

    #[test]
    fn byte_swap() {
        // be32 of 0x01020304 (LE memory semantics) = 0x04030201 as u32.
        let insns = vec![
            build::mov_imm(0, 0x0102_0304),
            Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_X, 0, 0, 0, 32),
            build::exit(),
        ];
        assert_eq!(ret(insns), u64::from(0x0102_0304u32.to_be()));
        let insns = vec![
            build::mov_imm(0, 0x0102),
            Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_X, 0, 0, 0, 16),
            build::exit(),
        ];
        assert_eq!(ret(insns), u64::from(0x0102u16.to_be()));
    }

    #[test]
    fn lddw_loads_full_64_bits() {
        let [lo, hi] = build::lddw(0, 0xdead_beef_0bad_f00d);
        assert_eq!(ret(vec![lo, hi, build::exit()]), 0xdead_beef_0bad_f00d);
    }

    #[test]
    fn conditional_jumps() {
        // if r1 == 7 return 1 else return 0
        let prog = |arg: u64| {
            let insns = vec![
                build::mov_imm(0, 0),
                build::jne_imm(1, 7, 1),
                build::mov_imm(0, 1),
                build::exit(),
            ];
            match run_with(insns, &mut NoHelpers, &[arg]).unwrap() {
                ExecOutcome::Return(v) => v,
                _ => panic!(),
            }
        };
        assert_eq!(prog(7), 1);
        assert_eq!(prog(8), 0);
    }

    #[test]
    fn jmp32_compares_low_word_only() {
        // r1 = 0x1_0000_0007; jeq32 r1, 7 must be taken.
        let [lo, hi] = build::lddw(1, 0x1_0000_0007);
        let insns = vec![
            lo,
            hi,
            build::mov_imm(0, 0),
            Insn::new(op::CLS_JMP32 | op::JMP_JEQ | op::SRC_K, 1, 0, 1, 7),
            build::ja(1),
            build::mov_imm(0, 1),
            build::exit(),
        ];
        assert_eq!(ret(insns), 1);
    }

    #[test]
    fn signed_jumps() {
        // jsgt: -1 > -2 signed.
        let insns = vec![
            build::mov_imm(1, -1),
            build::mov_imm(2, -2),
            build::mov_imm(0, 0),
            Insn::new(op::CLS_JMP | op::JMP_JSGT | op::SRC_X, 1, 2, 1, 0),
            build::ja(1),
            build::mov_imm(0, 1),
            build::exit(),
        ];
        assert_eq!(ret(insns), 1);
    }

    #[test]
    fn stack_load_store() {
        // Store 0x11223344 at [r10-8], load it back.
        let insns = vec![
            build::mov_imm(1, 0x1122_3344),
            build::stxw(10, 1, -8),
            build::ldxw(0, 10, -8),
            build::exit(),
        ];
        assert_eq!(ret(insns), 0x1122_3344);
    }

    #[test]
    fn byte_access_on_stack() {
        let insns = vec![build::stb(10, -1, 0x7f), build::ldxb(0, 10, -1), build::exit()];
        assert_eq!(ret(insns), 0x7f);
    }

    #[test]
    fn out_of_stack_access_faults() {
        // One past the stack top.
        let insns = vec![build::ldxb(0, 10, 0), build::exit()];
        assert!(matches!(run(insns), Err(VmError::MemFault { .. })));
        // Below the stack bottom.
        let insns = vec![build::ldxb(0, 10, -(STACK_SIZE as i16) - 1), build::exit()];
        assert!(matches!(run(insns), Err(VmError::MemFault { .. })));
    }

    #[test]
    fn mem_faults_carry_the_faulting_slot() {
        // Slot 0 is fine; the out-of-bounds load sits at slot 1.
        let insns = vec![build::mov_imm(0, 0), build::ldxb(0, 10, 0), build::exit()];
        match run(insns) {
            Err(VmError::MemFault { pc, write: false, .. }) => assert_eq!(pc, 1),
            other => panic!("expected a load fault at pc 1, got {other:?}"),
        }
    }

    #[test]
    fn infinite_loop_is_stopped_by_fuel() {
        let prog = Program::new(vec![build::ja(-1)]);
        let mut mem = MemoryMap::new();
        let vm = Vm::with_config(&prog, VmConfig { fuel: 1000 });
        // The back-edge that trips the check is the jump at slot 0.
        assert_eq!(vm.run(&mut mem, &mut NoHelpers, &[]), Err(VmError::FuelExhausted { pc: 0 }));
    }

    #[test]
    fn loop_with_counter_terminates() {
        // r0 = sum of 1..=10 computed with a backward jump.
        let insns = vec![
            build::mov_imm(0, 0),  // acc
            build::mov_imm(1, 10), // counter
            // loop: acc += counter; counter -= 1; if counter != 0 goto loop
            build::add_reg(0, 1),
            Insn::new(op::CLS_ALU64 | op::ALU_SUB | op::SRC_K, 1, 0, 0, 1),
            build::jne_imm(1, 0, -3),
            build::exit(),
        ];
        assert_eq!(ret(insns), 55);
    }

    #[test]
    fn falling_off_the_end_faults_instead_of_panicking() {
        // Unverified program with no terminal exit: execution reaches the
        // decoder's trap sentinel and reports a BadInstruction one past
        // the last slot.
        let insns = vec![build::mov_imm(0, 0)];
        assert_eq!(run(insns), Err(VmError::BadInstruction { pc: 1, opcode: 0 }));
    }

    struct Doubler;
    impl HelperDispatcher for Doubler {
        fn call(
            &mut self,
            id: u32,
            args: [u64; 5],
            _mem: &mut MemoryMap,
        ) -> Result<HelperOutcome, VmError> {
            match id {
                1 => Ok(HelperOutcome::Value(args[0] * 2)),
                2 => Ok(HelperOutcome::Next),
                3 => Err(VmError::HelperFault { pc: 0, helper: 3, reason: "boom".into() }),
                other => Err(VmError::UnknownHelper { pc: 0, helper: other }),
            }
        }
    }

    #[test]
    fn helper_call_returns_value_and_clobbers_caller_saved() {
        let insns = vec![
            build::mov_imm(1, 21),
            build::call(1),
            // r1 must be clobbered to 0 after the call.
            build::add_reg(0, 1),
            build::exit(),
        ];
        match run_with(insns, &mut Doubler, &[]).unwrap() {
            ExecOutcome::Return(v) => assert_eq!(v, 42),
            _ => panic!(),
        }
    }

    #[test]
    fn next_helper_short_circuits() {
        let insns = vec![
            build::call(2),
            build::mov_imm(0, 99), // never reached
            build::exit(),
        ];
        assert_eq!(run_with(insns, &mut Doubler, &[]).unwrap(), ExecOutcome::Next);
    }

    #[test]
    fn helper_fault_propagates() {
        let insns = vec![build::call(3), build::exit()];
        assert!(matches!(
            run_with(insns, &mut Doubler, &[]),
            Err(VmError::HelperFault { helper: 3, .. })
        ));
    }

    #[test]
    fn unknown_helper_reports_pc() {
        let insns = vec![build::mov_imm(0, 0), build::call(77), build::exit()];
        assert_eq!(
            run_with(insns, &mut Doubler, &[]),
            Err(VmError::UnknownHelper { pc: 1, helper: 77 })
        );
    }

    #[test]
    fn helper_fault_reports_call_site_pc() {
        // Regression: helper faults used to surface with the dispatcher's
        // placeholder pc (always 0). The interpreter must stamp the real
        // call site, including when lddw slots shift it.
        let [lo, hi] = build::lddw(1, 7);
        let insns = vec![build::mov_imm(0, 0), lo, hi, build::call(3), build::exit()];
        match run_with(insns, &mut Doubler, &[]) {
            Err(VmError::HelperFault { pc, helper: 3, reason }) => {
                assert_eq!(pc, 3, "pc must be the call's slot index");
                assert_eq!(reason, "boom");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn args_arrive_in_r1_to_r5() {
        let insns = vec![
            build::mov_reg(0, 1),
            build::add_reg(0, 2),
            build::add_reg(0, 3),
            build::add_reg(0, 4),
            build::add_reg(0, 5),
            build::exit(),
        ];
        match run_with(insns, &mut NoHelpers, &[1, 2, 3, 4, 5]).unwrap() {
            ExecOutcome::Return(v) => assert_eq!(v, 15),
            _ => panic!(),
        }
    }

    #[test]
    fn reading_host_buffer_region() {
        // Program reads a big-endian u32 from a read-only host buffer whose
        // address arrives in r1, then byte-swaps it to host order.
        let prog = Program::new(vec![
            build::ldxw(0, 1, 0),
            Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_X, 0, 0, 0, 32),
            build::exit(),
        ]);
        let mut mem = MemoryMap::new();
        mem.map(Region::new(
            RegionKind::HostBuf,
            crate::HOST_BUF_BASE,
            0xc0a8_0101u32.to_be_bytes().to_vec(), // 192.168.1.1 in NBO
            false,
        ));
        let out = Vm::new(&prog).run(&mut mem, &mut NoHelpers, &[crate::HOST_BUF_BASE]).unwrap();
        assert_eq!(out, ExecOutcome::Return(0xc0a8_0101));
    }

    #[test]
    fn run_metered_counts_instructions_and_helpers() {
        // mov, call(×2 — one Value, then exit): 4 instructions retired,
        // 2 helper calls.
        let prog = Program::new(vec![
            build::mov_imm(1, 21),
            build::call(1),
            build::call(1),
            build::exit(),
        ]);
        let mut mem = MemoryMap::new();
        let (out, m) = Vm::new(&prog).run_metered(&mut mem, &mut Doubler, &[]);
        assert!(matches!(out, Ok(ExecOutcome::Return(_))));
        assert_eq!(m.insns_retired, 4);
        assert_eq!(m.helper_calls, 2);
        assert_eq!(m.fuel_consumed, m.insns_retired);
    }

    #[test]
    fn run_metered_counts_lddw_once() {
        let [lo, hi] = build::lddw(0, 7);
        let prog = Program::new(vec![lo, hi, build::exit()]);
        let mut mem = MemoryMap::new();
        let (out, m) = Vm::new(&prog).run_metered(&mut mem, &mut NoHelpers, &[]);
        assert_eq!(out, Ok(ExecOutcome::Return(7)));
        assert_eq!(m.insns_retired, 2, "lddw retires as one instruction");
    }

    #[test]
    fn run_metered_reports_full_fuel_on_exhaustion() {
        let prog = Program::new(vec![build::ja(-1)]);
        let mut mem = MemoryMap::new();
        let vm = Vm::with_config(&prog, VmConfig { fuel: 123 });
        let (out, m) = vm.run_metered(&mut mem, &mut NoHelpers, &[]);
        assert_eq!(out, Err(VmError::FuelExhausted { pc: 0 }));
        assert_eq!(m.fuel_consumed, 123);
        assert_eq!(m.insns_retired, 123);
        assert_eq!(m.helper_calls, 0);
    }

    #[test]
    fn straight_line_code_is_not_stopped_between_checks() {
        // Fuel is only enforced at back-edges and calls: a loop-free,
        // call-free program runs to completion even on an empty budget,
        // overshooting by exactly its own length.
        let prog = Program::new(vec![build::mov_imm(0, 9), build::exit()]);
        let mut mem = MemoryMap::new();
        let vm = Vm::with_config(&prog, VmConfig { fuel: 0 });
        let (out, m) = vm.run_metered(&mut mem, &mut NoHelpers, &[]);
        assert_eq!(out, Ok(ExecOutcome::Return(9)));
        assert_eq!(m.insns_retired, 2);
    }

    #[test]
    fn helper_calls_are_fuel_check_points() {
        // A program that only ever jumps *forward* to a call still cannot
        // run for free: the call site enforces the budget.
        let prog = Program::new(vec![build::call(1), build::exit()]);
        let mut mem = MemoryMap::new();
        let vm = Vm::with_config(&prog, VmConfig { fuel: 0 });
        let (out, _) = vm.run_metered(&mut mem, &mut Doubler, &[]);
        assert_eq!(out, Err(VmError::FuelExhausted { pc: 0 }));
    }

    #[test]
    fn verified_programs_execute_clean() {
        // Everything the verifier accepts in its own tests must also run
        // without BadInstruction.
        let progs: Vec<Vec<Insn>> = vec![
            vec![build::mov_imm(0, 0), build::exit()],
            vec![build::mov_imm(0, 0), build::ja(-2)],
        ];
        let helpers: HashSet<u32> = HashSet::new();
        for insns in progs {
            let p = Program::new(insns);
            verify(&p, &helpers).unwrap();
            let mut mem = MemoryMap::new();
            let vm = Vm::with_config(&p, VmConfig { fuel: 100 });
            match vm.run(&mut mem, &mut NoHelpers, &[]) {
                Ok(_) | Err(VmError::FuelExhausted { .. }) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
    }
}
