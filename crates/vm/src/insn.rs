//! eBPF instruction encoding.
//!
//! Instructions are the standard 8-byte eBPF slots:
//!
//! ```text
//! +--------+----+----+--------+------------+
//! | opcode |dst |src | offset | immediate  |
//! |  8 bit |4bit|4bit| 16 bit |   32 bit   |
//! +--------+----+----+--------+------------+
//! ```
//!
//! `lddw` (load 64-bit immediate) occupies two consecutive slots; the second
//! slot must have a zero opcode and carries the upper 32 bits in its
//! immediate field.

use std::fmt;

/// Opcode class and operation constants (mirrors `linux/bpf.h`).
pub mod op {
    // Instruction classes (low 3 bits).
    pub const CLS_LD: u8 = 0x00;
    pub const CLS_LDX: u8 = 0x01;
    pub const CLS_ST: u8 = 0x02;
    pub const CLS_STX: u8 = 0x03;
    pub const CLS_ALU: u8 = 0x04;
    pub const CLS_JMP: u8 = 0x05;
    pub const CLS_JMP32: u8 = 0x06;
    pub const CLS_ALU64: u8 = 0x07;

    /// Mask extracting the class.
    pub const CLS_MASK: u8 = 0x07;

    // Source modifier (bit 3) for ALU/JMP.
    pub const SRC_K: u8 = 0x00;
    pub const SRC_X: u8 = 0x08;

    // Size modifier (bits 3-4) for LD/LDX/ST/STX.
    pub const SIZE_W: u8 = 0x00;
    pub const SIZE_H: u8 = 0x08;
    pub const SIZE_B: u8 = 0x10;
    pub const SIZE_DW: u8 = 0x18;
    pub const SIZE_MASK: u8 = 0x18;

    // Mode modifier (bits 5-7) for LD/LDX/ST/STX.
    pub const MODE_IMM: u8 = 0x00;
    pub const MODE_MEM: u8 = 0x60;
    pub const MODE_MASK: u8 = 0xe0;

    // ALU / ALU64 operations (bits 4-7).
    pub const ALU_ADD: u8 = 0x00;
    pub const ALU_SUB: u8 = 0x10;
    pub const ALU_MUL: u8 = 0x20;
    pub const ALU_DIV: u8 = 0x30;
    pub const ALU_OR: u8 = 0x40;
    pub const ALU_AND: u8 = 0x50;
    pub const ALU_LSH: u8 = 0x60;
    pub const ALU_RSH: u8 = 0x70;
    pub const ALU_NEG: u8 = 0x80;
    pub const ALU_MOD: u8 = 0x90;
    pub const ALU_XOR: u8 = 0xa0;
    pub const ALU_MOV: u8 = 0xb0;
    pub const ALU_ARSH: u8 = 0xc0;
    pub const ALU_END: u8 = 0xd0;
    pub const ALU_OP_MASK: u8 = 0xf0;

    // JMP / JMP32 operations (bits 4-7).
    pub const JMP_JA: u8 = 0x00;
    pub const JMP_JEQ: u8 = 0x10;
    pub const JMP_JGT: u8 = 0x20;
    pub const JMP_JGE: u8 = 0x30;
    pub const JMP_JSET: u8 = 0x40;
    pub const JMP_JNE: u8 = 0x50;
    pub const JMP_JSGT: u8 = 0x60;
    pub const JMP_JSGE: u8 = 0x70;
    pub const JMP_CALL: u8 = 0x80;
    pub const JMP_EXIT: u8 = 0x90;
    pub const JMP_JLT: u8 = 0xa0;
    pub const JMP_JLE: u8 = 0xb0;
    pub const JMP_JSLT: u8 = 0xc0;
    pub const JMP_JSLE: u8 = 0xd0;

    /// `lddw`: 64-bit immediate load, two slots.
    pub const LDDW: u8 = CLS_LD | SIZE_DW | MODE_IMM; // 0x18
}

/// One decoded eBPF instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Insn {
    pub opcode: u8,
    pub dst: u8,
    pub src: u8,
    pub offset: i16,
    pub imm: i32,
}

impl Insn {
    /// Construct an instruction slot.
    pub fn new(opcode: u8, dst: u8, src: u8, offset: i16, imm: i32) -> Insn {
        Insn { opcode, dst, src, offset, imm }
    }

    /// Opcode class (low 3 bits).
    pub fn class(&self) -> u8 {
        self.opcode & op::CLS_MASK
    }

    /// Encode to the canonical 8-byte little-endian slot layout.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.opcode;
        b[1] = (self.src << 4) | (self.dst & 0x0f);
        b[2..4].copy_from_slice(&self.offset.to_le_bytes());
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Decode from an 8-byte slot.
    pub fn from_bytes(b: &[u8; 8]) -> Insn {
        Insn {
            opcode: b[0],
            dst: b[1] & 0x0f,
            src: b[1] >> 4,
            offset: i16::from_le_bytes([b[2], b[3]]),
            imm: i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dst=r{} src=r{} off={} imm={}",
            mnemonic(self.opcode),
            self.dst,
            self.src,
            self.offset,
            self.imm
        )
    }
}

/// Assembler mnemonic for an opcode byte, or `"?"` for anything outside the
/// implemented ISA. Diagnostics (verifier errors, lint output, runtime
/// postmortems) use this so operators never have to decode raw bytes.
pub fn mnemonic(opcode: u8) -> &'static str {
    let w32 = opcode & op::CLS_MASK == op::CLS_ALU || opcode & op::CLS_MASK == op::CLS_JMP32;
    match opcode & op::CLS_MASK {
        op::CLS_LD if opcode == op::LDDW => "lddw",
        op::CLS_LD => "?",
        op::CLS_LDX if opcode & op::MODE_MASK == op::MODE_MEM => match opcode & op::SIZE_MASK {
            op::SIZE_B => "ldxb",
            op::SIZE_H => "ldxh",
            op::SIZE_W => "ldxw",
            _ => "ldxdw",
        },
        op::CLS_ST if opcode & op::MODE_MASK == op::MODE_MEM => match opcode & op::SIZE_MASK {
            op::SIZE_B => "stb",
            op::SIZE_H => "sth",
            op::SIZE_W => "stw",
            _ => "stdw",
        },
        op::CLS_STX if opcode & op::MODE_MASK == op::MODE_MEM => match opcode & op::SIZE_MASK {
            op::SIZE_B => "stxb",
            op::SIZE_H => "stxh",
            op::SIZE_W => "stxw",
            _ => "stxdw",
        },
        op::CLS_ALU | op::CLS_ALU64 => match opcode & op::ALU_OP_MASK {
            op::ALU_ADD => {
                if w32 {
                    "add32"
                } else {
                    "add"
                }
            }
            op::ALU_SUB => {
                if w32 {
                    "sub32"
                } else {
                    "sub"
                }
            }
            op::ALU_MUL => {
                if w32 {
                    "mul32"
                } else {
                    "mul"
                }
            }
            op::ALU_DIV => {
                if w32 {
                    "div32"
                } else {
                    "div"
                }
            }
            op::ALU_OR => {
                if w32 {
                    "or32"
                } else {
                    "or"
                }
            }
            op::ALU_AND => {
                if w32 {
                    "and32"
                } else {
                    "and"
                }
            }
            op::ALU_LSH => {
                if w32 {
                    "lsh32"
                } else {
                    "lsh"
                }
            }
            op::ALU_RSH => {
                if w32 {
                    "rsh32"
                } else {
                    "rsh"
                }
            }
            op::ALU_NEG => {
                if w32 {
                    "neg32"
                } else {
                    "neg"
                }
            }
            op::ALU_MOD => {
                if w32 {
                    "mod32"
                } else {
                    "mod"
                }
            }
            op::ALU_XOR => {
                if w32 {
                    "xor32"
                } else {
                    "xor"
                }
            }
            op::ALU_MOV => {
                if w32 {
                    "mov32"
                } else {
                    "mov"
                }
            }
            op::ALU_ARSH => {
                if w32 {
                    "arsh32"
                } else {
                    "arsh"
                }
            }
            op::ALU_END => {
                if opcode & op::SRC_X != 0 {
                    "be"
                } else {
                    "le"
                }
            }
            _ => "?",
        },
        op::CLS_JMP | op::CLS_JMP32 => match opcode & op::ALU_OP_MASK {
            op::JMP_JA if !w32 => "ja",
            op::JMP_CALL if !w32 => "call",
            op::JMP_EXIT if !w32 => "exit",
            op::JMP_JEQ => {
                if w32 {
                    "jeq32"
                } else {
                    "jeq"
                }
            }
            op::JMP_JNE => {
                if w32 {
                    "jne32"
                } else {
                    "jne"
                }
            }
            op::JMP_JGT => {
                if w32 {
                    "jgt32"
                } else {
                    "jgt"
                }
            }
            op::JMP_JGE => {
                if w32 {
                    "jge32"
                } else {
                    "jge"
                }
            }
            op::JMP_JLT => {
                if w32 {
                    "jlt32"
                } else {
                    "jlt"
                }
            }
            op::JMP_JLE => {
                if w32 {
                    "jle32"
                } else {
                    "jle"
                }
            }
            op::JMP_JSET => {
                if w32 {
                    "jset32"
                } else {
                    "jset"
                }
            }
            op::JMP_JSGT => {
                if w32 {
                    "jsgt32"
                } else {
                    "jsgt"
                }
            }
            op::JMP_JSGE => {
                if w32 {
                    "jsge32"
                } else {
                    "jsge"
                }
            }
            op::JMP_JSLT => {
                if w32 {
                    "jslt32"
                } else {
                    "jslt"
                }
            }
            op::JMP_JSLE => {
                if w32 {
                    "jsle32"
                } else {
                    "jsle"
                }
            }
            _ => "?",
        },
        _ => "?",
    }
}

/// A verified-or-not sequence of instructions plus its bytecode form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    pub insns: Vec<Insn>,
}

impl Program {
    pub fn new(insns: Vec<Insn>) -> Program {
        Program { insns }
    }

    /// Total slot count (each `lddw` counts as two).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Serialize to flat bytecode (slot-per-8-bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.insns.len() * 8);
        for i in &self.insns {
            out.extend_from_slice(&i.to_bytes());
        }
        out
    }

    /// Deserialize from flat bytecode. Fails if the length is not a
    /// multiple of 8.
    pub fn from_bytes(data: &[u8]) -> Result<Program, String> {
        if !data.len().is_multiple_of(8) {
            return Err(format!("bytecode length {} not a multiple of 8", data.len()));
        }
        let insns = data
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                Insn::from_bytes(&b)
            })
            .collect();
        Ok(Program { insns })
    }
}

/// Convenience constructors used by tests and the assembler's builder API.
pub mod build {
    use super::{op, Insn};

    /// `mov dst, imm` (64-bit).
    pub fn mov_imm(dst: u8, imm: i32) -> Insn {
        Insn::new(op::CLS_ALU64 | op::ALU_MOV | op::SRC_K, dst, 0, 0, imm)
    }
    /// `mov dst, src` (64-bit).
    pub fn mov_reg(dst: u8, src: u8) -> Insn {
        Insn::new(op::CLS_ALU64 | op::ALU_MOV | op::SRC_X, dst, src, 0, 0)
    }
    /// `add dst, imm` (64-bit).
    pub fn add_imm(dst: u8, imm: i32) -> Insn {
        Insn::new(op::CLS_ALU64 | op::ALU_ADD | op::SRC_K, dst, 0, 0, imm)
    }
    /// `add dst, src` (64-bit).
    pub fn add_reg(dst: u8, src: u8) -> Insn {
        Insn::new(op::CLS_ALU64 | op::ALU_ADD | op::SRC_X, dst, src, 0, 0)
    }
    /// `lddw dst, imm64` — expands to two slots.
    pub fn lddw(dst: u8, imm: u64) -> [Insn; 2] {
        [
            Insn::new(op::LDDW, dst, 0, 0, imm as u32 as i32),
            Insn::new(0, 0, 0, 0, (imm >> 32) as u32 as i32),
        ]
    }
    /// `ldxdw dst, [src+off]`.
    pub fn ldxdw(dst: u8, src: u8, off: i16) -> Insn {
        Insn::new(op::CLS_LDX | op::SIZE_DW | op::MODE_MEM, dst, src, off, 0)
    }
    /// `ldxw dst, [src+off]`.
    pub fn ldxw(dst: u8, src: u8, off: i16) -> Insn {
        Insn::new(op::CLS_LDX | op::SIZE_W | op::MODE_MEM, dst, src, off, 0)
    }
    /// `ldxb dst, [src+off]`.
    pub fn ldxb(dst: u8, src: u8, off: i16) -> Insn {
        Insn::new(op::CLS_LDX | op::SIZE_B | op::MODE_MEM, dst, src, off, 0)
    }
    /// `stxdw [dst+off], src`.
    pub fn stxdw(dst: u8, src: u8, off: i16) -> Insn {
        Insn::new(op::CLS_STX | op::SIZE_DW | op::MODE_MEM, dst, src, off, 0)
    }
    /// `stxw [dst+off], src`.
    pub fn stxw(dst: u8, src: u8, off: i16) -> Insn {
        Insn::new(op::CLS_STX | op::SIZE_W | op::MODE_MEM, dst, src, off, 0)
    }
    /// `stb [dst+off], imm`.
    pub fn stb(dst: u8, off: i16, imm: i32) -> Insn {
        Insn::new(op::CLS_ST | op::SIZE_B | op::MODE_MEM, dst, 0, off, imm)
    }
    /// `ja +off`.
    pub fn ja(off: i16) -> Insn {
        Insn::new(op::CLS_JMP | op::JMP_JA, 0, 0, off, 0)
    }
    /// `jeq dst, imm, +off`.
    pub fn jeq_imm(dst: u8, imm: i32, off: i16) -> Insn {
        Insn::new(op::CLS_JMP | op::JMP_JEQ | op::SRC_K, dst, 0, off, imm)
    }
    /// `jne dst, imm, +off`.
    pub fn jne_imm(dst: u8, imm: i32, off: i16) -> Insn {
        Insn::new(op::CLS_JMP | op::JMP_JNE | op::SRC_K, dst, 0, off, imm)
    }
    /// `call helper_id`.
    pub fn call(helper: u32) -> Insn {
        Insn::new(op::CLS_JMP | op::JMP_CALL, 0, 0, 0, helper as i32)
    }
    /// `exit`.
    pub fn exit() -> Insn {
        Insn::new(op::CLS_JMP | op::JMP_EXIT, 0, 0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slot_encoding_round_trip() {
        let i = Insn::new(op::CLS_ALU64 | op::ALU_ADD | op::SRC_X, 3, 7, -42, 0x1234_5678);
        assert_eq!(Insn::from_bytes(&i.to_bytes()), i);
    }

    #[test]
    fn program_bytes_round_trip() {
        let p = Program::new(vec![build::mov_imm(0, 7), build::exit()]);
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 16);
        assert_eq!(Program::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn odd_length_bytecode_rejected() {
        assert!(Program::from_bytes(&[0u8; 7]).is_err());
    }

    #[test]
    fn lddw_builder_produces_two_slots() {
        let [a, b] = build::lddw(1, 0xdead_beef_cafe_f00d);
        assert_eq!(a.opcode, op::LDDW);
        assert_eq!(a.imm as u32, 0xcafe_f00d);
        assert_eq!(b.opcode, 0);
        assert_eq!(b.imm as u32, 0xdead_beef);
    }

    proptest! {
        #[test]
        fn prop_insn_round_trip(opcode: u8, dst in 0u8..16, src in 0u8..16, offset: i16, imm: i32) {
            let i = Insn::new(opcode, dst, src, offset, imm);
            prop_assert_eq!(Insn::from_bytes(&i.to_bytes()), i);
        }
    }
}
