//! # xbgp-vm — a sandboxed eBPF virtual machine
//!
//! From-scratch implementation of the eBPF instruction set used by xBGP to
//! run operator-supplied extension code inside a BGP daemon. It mirrors the
//! role of the modified uBPF machine in the paper:
//!
//! * **Full BPF ISA**: 64/32-bit ALU, conditional jumps (JMP and JMP32
//!   classes), byte/half/word/double-word loads and stores, `lddw`,
//!   byte-swap (`END`) instructions, helper calls and `exit`.
//! * **Static verifier** ([`verify`]): jump-target validation, opcode
//!   validation, register bounds, constant div/mod-by-zero rejection,
//!   helper-id whitelisting, `lddw` pairing, and guaranteed absence of
//!   fall-through past the last instruction.
//! * **Sandboxed memory** ([`mem::MemoryMap`]): extension code addresses a
//!   segmented virtual address space; every access is bounds-checked
//!   against the regions the host registered (stack, arguments, ephemeral
//!   heap, per-program shared heap, host buffers). This provides the
//!   isolation property of §2.1 — "an extension code has its own dedicated
//!   memory space and cannot directly access the memory of other extension
//!   codes or the host implementation".
//! * **Monitored execution**: a fuel budget bounds the number of executed
//!   instructions; any fault (out-of-bounds access, division by zero, fuel
//!   exhaustion, helper failure) aborts the program cleanly so the VMM can
//!   fall back to the host's native behaviour.
//!
//! Memory accesses use little-endian byte order (the common choice of
//! deployed eBPF targets); the `be16/be32/be64` END instructions and the
//! `bpf_htonl`-family helpers in `xbgp-core` perform network-order
//! conversions, exactly as xBGP extension code does in the paper.

pub mod absint;
pub mod compile;
pub mod error;
pub mod insn;
pub mod interp;
pub mod mem;
pub mod prep;
pub mod verify;

pub use absint::{Analysis, AnalysisOptions, HelperContract, HelperRet, MemKind, Warning};
pub use compile::{CompiledProgram, Engine};
pub use error::VmError;
pub use insn::{Insn, Program};
pub use interp::{ExecOutcome, HelperDispatcher, NoHelpers, RunMetrics, Vm, VmConfig};
pub use mem::{MemoryMap, Region, RegionKind};
pub use prep::LoadedProgram;
pub use verify::{verify, verify_and_load, verify_and_load_with, VerifyError};

/// Virtual base address of the 512-byte eBPF stack region.
pub const STACK_BASE: u64 = 0x1000_0000;
/// Size of the eBPF stack in bytes.
pub const STACK_SIZE: usize = 512;
/// Virtual base address of the argument area (host-marshalled structs).
pub const ARGS_BASE: u64 = 0x2000_0000;
/// Virtual base address of the per-invocation ephemeral heap.
pub const HEAP_BASE: u64 = 0x3000_0000;
/// Virtual base address of the per-program persistent (shared) heap.
pub const SHARED_BASE: u64 = 0x4000_0000;
/// Virtual base address of read-only host buffers (message bytes, etc.).
pub const HOST_BUF_BASE: u64 = 0x5000_0000;
