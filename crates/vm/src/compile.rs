//! Compiled execution engine: basic-block lowering of pre-decoded programs.
//!
//! The interpreter in [`crate::interp`] dispatches one [`DOp`] at a time:
//! every executed instruction pays for a bounds-checked fetch from the dense
//! code array, a ~110-way match, a fuel decrement and a pc update. All of
//! that bookkeeping is static — the verifier proves the jump-target set, so
//! the basic-block structure (and with it each block's fuel cost) is known
//! at load time.
//!
//! This module lowers a [`LoadedProgram`] into composed basic blocks:
//!
//! * every straight-line run of instructions becomes a [`Block`]: a vector
//!   of *pre-bound micro-ops* — operands (dst/src/imm/off) resolved to
//!   constants and the operation narrowed to a small inline kernel, so a
//!   body executes with no opcode decoding, no pc arithmetic and no
//!   per-instruction fuel bookkeeping — plus one [`Terminator`] describing
//!   how control leaves the block,
//! * fuel is charged **once per block** at entry instead of once per
//!   instruction, and checked exactly where the interpreter checks it —
//!   taken back-edges and helper calls — using back-edge flags computed
//!   statically at compile time,
//! * single-block loops (a conditional branch back to its own block head —
//!   the shape of every counted loop and attribute-scan loop extensions
//!   write) get a specialized spin executor: the loop body's kernels and
//!   the branch predicate run with all descriptors hoisted into locals,
//!   with only the per-back-edge fuel check remaining inside the loop,
//! * fault pcs are pre-stamped: each fallible micro-op carries its original
//!   slot index, so errors surface with the same program counters the
//!   interpreter reports.
//!
//! # The bit-for-bit contract
//!
//! Compiled and interpreted runs of the same program on the same inputs
//! must be indistinguishable: identical [`ExecOutcome`]s, byte-identical
//! memory, identical typed faults at identical slot pcs, and identical
//! [`RunMetrics`] — including `fuel_consumed`, which the conformance suite
//! asserts instruction-exactly. Two details make the fuel ledger exact:
//!
//! * a block's `cost` counts its body ops plus its terminator (synthetic
//!   fall-throughs introduced by block splitting cost nothing, since the
//!   interpreter executes no instruction there), and
//! * when a body op faults mid-block, the charge for the instructions after
//!   it is refunded, so a run that dies at op `j` reports exactly `j + 1`
//!   instructions for that block — what the per-instruction ledger would
//!   have said.

use crate::error::VmError;
use crate::interp::{ExecOutcome, HelperDispatcher, HelperOutcome, RunMetrics, VmConfig};
use crate::mem::{ElideCtx, MemoryMap, Region, RegionKind};
use crate::prep::{elide, DInsn, DOp, LoadedProgram};
use crate::{STACK_BASE, STACK_SIZE};
use std::fmt;
use std::str::FromStr;

/// Which execution engine runs extension bytecode. Selection is an
/// operational knob (daemon config / harness spec / `--engine` flag); the
/// two engines are contractually bit-for-bit equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The per-instruction dispatch loop in [`crate::interp`].
    #[default]
    Interp,
    /// Pre-bound basic blocks with block-entry fuel accounting.
    Compiled,
}

impl Engine {
    /// Stable lowercase name, matching [`Engine::from_str`] input.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Compiled => "compiled",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "interp" => Ok(Engine::Interp),
            "compiled" => Ok(Engine::Compiled),
            other => Err(format!("unknown engine {other:?} (expected interp|compiled)")),
        }
    }
}

/// The compiled engine's register file. Architecturally there are eleven
/// registers (r0–r10); the five trailing slots are dead scratch that exist
/// so every access can be masked (`& 15`), which lets safe Rust elide the
/// bounds check in the hot paths. The decoder guarantees register fields
/// are <= 10, so the scratch slots are never addressed.
type Regs = [u64; 16];
const REG_MASK: usize = 15;

/// Memory access width. Dispatched with a 4-way match so the
/// [`MemoryMap`] accessors stay direct (inlinable) calls — a function
/// pointer here costs an opaque call returning a multi-word `Result`
/// through memory on every load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemW {
    B,
    H,
    W,
    Dw,
}

#[inline(always)]
fn mem_read(w: MemW, mem: &MemoryMap, a: u64) -> Result<u64, VmError> {
    match w {
        MemW::B => mem.load8(a),
        MemW::H => mem.load16(a),
        MemW::W => mem.load32(a),
        MemW::Dw => mem.load64(a),
    }
}

#[inline(always)]
fn mem_write(w: MemW, mem: &mut MemoryMap, a: u64, v: u64) -> Result<(), VmError> {
    match w {
        MemW::B => mem.store8(a, v as u8),
        MemW::H => mem.store16(a, v as u16),
        MemW::W => mem.store32(a, v as u32),
        MemW::Dw => mem.store64(a, v),
    }
}

#[inline(always)]
fn fast_read(w: MemW, mem: &MemoryMap, ectx: &ElideCtx, kind: u8, a: u64) -> Option<u64> {
    match w {
        MemW::B => mem.fast_load8(ectx, kind, a),
        MemW::H => mem.fast_load16(ectx, kind, a),
        MemW::W => mem.fast_load32(ectx, kind, a),
        MemW::Dw => mem.fast_load64(ectx, kind, a),
    }
}

#[inline(always)]
fn fast_write(w: MemW, mem: &mut MemoryMap, ectx: &ElideCtx, kind: u8, a: u64, v: u64) -> bool {
    match w {
        MemW::B => mem.fast_store8(ectx, kind, a, v as u8),
        MemW::H => mem.fast_store16(ectx, kind, a, v as u16),
        MemW::W => mem.fast_store32(ectx, kind, a, v as u32),
        MemW::Dw => mem.fast_store64(ectx, kind, a, v),
    }
}

/// Infallible ALU kernel selector: `alu_apply(k, dst_value, operand)`.
/// Every pure instruction — 64/32-bit ALU, moves, `lddw`, negation,
/// byteswaps — lowers to one of these with operand routing resolved at
/// compile time. Division kernels require a non-zero operand; the zero
/// check (or the decoder's constant proof) happens before dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AluK {
    Add64,
    Add32,
    Sub64,
    Sub32,
    Mul64,
    Mul32,
    Div64,
    Div32,
    Mod64,
    Mod32,
    Or64,
    Or32,
    And64,
    And32,
    Xor64,
    Xor32,
    Lsh64,
    Lsh32,
    Rsh64,
    Rsh32,
    Arsh64,
    Arsh32,
    Mov64,
    Mov32,
    Neg64,
    Neg32,
    Be16,
    Be32,
    Be64,
    Le16,
    Le32,
    Le64,
}

/// The kernels mirror the interpreter arm for arm (same wrapping,
/// truncation and sign rules); the conformance suite cross-checks them
/// instruction-exactly.
#[inline(always)]
fn alu_apply(k: AluK, d: u64, s: u64) -> u64 {
    match k {
        AluK::Add64 => d.wrapping_add(s),
        AluK::Add32 => u64::from((d as u32).wrapping_add(s as u32)),
        AluK::Sub64 => d.wrapping_sub(s),
        AluK::Sub32 => u64::from((d as u32).wrapping_sub(s as u32)),
        AluK::Mul64 => d.wrapping_mul(s),
        AluK::Mul32 => u64::from((d as u32).wrapping_mul(s as u32)),
        AluK::Div64 => d / s,
        AluK::Div32 => u64::from(d as u32 / s as u32),
        AluK::Mod64 => d % s,
        AluK::Mod32 => u64::from(d as u32 % s as u32),
        AluK::Or64 => d | s,
        AluK::Or32 => u64::from(d as u32 | s as u32),
        AluK::And64 => d & s,
        AluK::And32 => u64::from(d as u32 & s as u32),
        AluK::Xor64 => d ^ s,
        AluK::Xor32 => u64::from(d as u32 ^ s as u32),
        // Shift amounts wrap modulo the operand width, as in the interpreter.
        AluK::Lsh64 => d.wrapping_shl(s as u32),
        AluK::Lsh32 => u64::from((d as u32).wrapping_shl(s as u32)),
        AluK::Rsh64 => d.wrapping_shr(s as u32),
        AluK::Rsh32 => u64::from((d as u32).wrapping_shr(s as u32)),
        AluK::Arsh64 => (d as i64).wrapping_shr(s as u32) as u64,
        AluK::Arsh32 => u64::from((d as u32 as i32).wrapping_shr(s as u32) as u32),
        AluK::Mov64 => s,
        AluK::Mov32 => u64::from(s as u32),
        AluK::Neg64 => (d as i64).wrapping_neg() as u64,
        AluK::Neg32 => (d as u32 as i32).wrapping_neg() as u32 as u64,
        AluK::Be16 => u64::from((d as u16).to_be()),
        AluK::Be32 => u64::from((d as u32).to_be()),
        AluK::Be64 => d.to_be(),
        AluK::Le16 => u64::from((d as u16).to_le()),
        AluK::Le32 => u64::from((d as u32).to_le()),
        AluK::Le64 => d.to_le(),
    }
}

/// Branch predicate selector: `cond_apply(k, dst_value, operand)`. Raw
/// 64-bit register values go in; JMP32 truncation and signedness live
/// inside the kernel, exactly mirroring the interpreter's
/// `jmp64*`/`jmp32*` macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CondK {
    Eq64,
    Eq32,
    Ne64,
    Ne32,
    Gt64,
    Gt32,
    Ge64,
    Ge32,
    Lt64,
    Lt32,
    Le64,
    Le32,
    Set64,
    Set32,
    Sgt64,
    Sgt32,
    Sge64,
    Sge32,
    Slt64,
    Slt32,
    Sle64,
    Sle32,
}

#[inline(always)]
fn cond_apply(k: CondK, a: u64, b: u64) -> bool {
    match k {
        CondK::Eq64 => a == b,
        CondK::Eq32 => a as u32 == b as u32,
        CondK::Ne64 => a != b,
        CondK::Ne32 => a as u32 != b as u32,
        CondK::Gt64 => a > b,
        CondK::Gt32 => a as u32 > b as u32,
        CondK::Ge64 => a >= b,
        CondK::Ge32 => a as u32 >= b as u32,
        CondK::Lt64 => a < b,
        CondK::Lt32 => (a as u32) < (b as u32),
        CondK::Le64 => a <= b,
        CondK::Le32 => a as u32 <= b as u32,
        CondK::Set64 => a & b != 0,
        CondK::Set32 => a as u32 & b as u32 != 0,
        CondK::Sgt64 => (a as i64) > (b as i64),
        CondK::Sgt32 => (a as u32 as i32) > (b as u32 as i32),
        CondK::Sge64 => (a as i64) >= (b as i64),
        CondK::Sge32 => (a as u32 as i32) >= (b as u32 as i32),
        CondK::Slt64 => (a as i64) < (b as i64),
        CondK::Slt32 => (a as u32 as i32) < (b as u32 as i32),
        CondK::Sle64 => (a as i64) <= (b as i64),
        CondK::Sle32 => (a as u32 as i32) <= (b as u32 as i32),
    }
}

/// One pre-bound micro-op. `use_src` routes the second kernel operand:
/// `r[src]` when set, the captured immediate otherwise.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `r[dst] = alu_apply(k, r[dst], operand)`. Cannot fault.
    Alu {
        k: AluK,
        dst: u8,
        src: u8,
        use_src: bool,
        imm: u64,
    },
    /// `r[dst] = load<w>(mem, r[src] + off)?`, fault stamped with `slot`.
    /// `flags` carries the verifier's bounds-proof bits ([`elide`]).
    Load {
        w: MemW,
        dst: u8,
        src: u8,
        off: u64,
        slot: u32,
        flags: u8,
    },
    /// `store<w>(mem, r[dst] + off, operand)?`, fault stamped with `slot`.
    /// `flags` carries the verifier's bounds-proof bits ([`elide`]).
    Store {
        w: MemW,
        dst: u8,
        src: u8,
        use_src: bool,
        off: u64,
        imm: u64,
        slot: u32,
        flags: u8,
    },
    /// Runtime-checked `div`/`mod` by a register: zero divisor faults at
    /// `slot`, otherwise `r[dst] = alu_apply(k, r[dst], r[src])`. `w32`
    /// selects the 32-bit zero test (the kernel truncates internally).
    DivRem {
        k: AluK,
        w32: bool,
        dst: u8,
        src: u8,
        slot: u32,
    },
}

/// How control leaves a block. Fuel is checked exactly where the
/// interpreter checks it: taken back-edges and calls.
#[derive(Debug, Clone, Copy)]
enum Terminator {
    /// Synthetic fall-through created by block splitting (the next
    /// instruction is a jump target). Not a real instruction: costs no fuel.
    Fall { next: u32 },
    /// Unconditional jump.
    Ja {
        target: u32,
        back_edge: bool,
        slot: u32,
    },
    /// Conditional jump: `target` when the predicate holds, else `fall`.
    Branch {
        cond: CondK,
        dst: u8,
        src: u8,
        use_src: bool,
        imm: u64,
        target: u32,
        back_edge: bool,
        slot: u32,
        fall: u32,
    },
    /// Helper call; always a fuel check point.
    Call { helper: u32, slot: u32, next: u32 },
    /// `exit`: return r0.
    Exit,
    /// Undecodable slot reached (unverified programs only).
    Trap { slot: u32, opcode: u8 },
    /// Constant zero divisor folded at decode time.
    DivZero { slot: u32 },
}

#[derive(Debug)]
struct Block {
    /// Static fuel cost: body ops plus the terminator (0 for [`Terminator::Fall`]).
    cost: i64,
    /// All-[`Op::Alu`] body whose terminator branches back to this very
    /// block: eligible for the specialized spin executor (no faults
    /// possible inside, so the only loop-carried obligation is the
    /// back-edge fuel check).
    spin: bool,
    /// Body micro-ops: `ops[start..start + len]` in the program's shared
    /// op pool (one flat allocation, so walking branchy code stays on
    /// sequential cache lines instead of hopping per-block heap buffers).
    start: u32,
    len: u32,
    term: Terminator,
}

/// A [`LoadedProgram`] lowered to pre-bound basic blocks. Build once per
/// extension (the VMM caches it next to the pre-decoded form) and run as
/// many times as you like.
#[derive(Debug)]
pub struct CompiledProgram {
    ops: Vec<Op>,
    blocks: Vec<Block>,
    /// Static worst-case fuel bound proven by the verifier's abstract
    /// interpretation, copied from the source [`LoadedProgram`].
    worst_fuel: Option<u64>,
    /// Whether proof-carrying check elision is armed (mirrors
    /// [`LoadedProgram`]'s flag at compile time).
    elide: bool,
    /// Whether any access actually carries a proof bit (mirrors
    /// [`LoadedProgram`]; gates the per-run region snapshot).
    has_elided: bool,
}

fn alu(k: AluK, ins: &DInsn, use_src: bool) -> Op {
    Op::Alu { k, dst: ins.dst, src: ins.src, use_src, imm: ins.imm }
}

fn div_rem(k: AluK, w32: bool, ins: &DInsn) -> Op {
    Op::DivRem { k, w32, dst: ins.dst, src: ins.src, slot: ins.slot }
}

fn mem_load(w: MemW, ins: &DInsn) -> Op {
    Op::Load {
        w,
        dst: ins.dst,
        src: ins.src,
        off: ins.off as i64 as u64,
        slot: ins.slot,
        flags: ins.flags,
    }
}

fn mem_store(w: MemW, ins: &DInsn, use_src: bool) -> Op {
    Op::Store {
        w,
        dst: ins.dst,
        src: ins.src,
        use_src,
        off: ins.off as i64 as u64,
        imm: ins.imm,
        slot: ins.slot,
        flags: ins.flags,
    }
}

/// Lower one non-control instruction into a pre-bound micro-op.
fn lower_op(ins: &DInsn) -> Op {
    match ins.op {
        DOp::Add64Imm => alu(AluK::Add64, ins, false),
        DOp::Add64Reg => alu(AluK::Add64, ins, true),
        DOp::Add32Imm => alu(AluK::Add32, ins, false),
        DOp::Add32Reg => alu(AluK::Add32, ins, true),
        DOp::Sub64Imm => alu(AluK::Sub64, ins, false),
        DOp::Sub64Reg => alu(AluK::Sub64, ins, true),
        DOp::Sub32Imm => alu(AluK::Sub32, ins, false),
        DOp::Sub32Reg => alu(AluK::Sub32, ins, true),
        DOp::Mul64Imm => alu(AluK::Mul64, ins, false),
        DOp::Mul64Reg => alu(AluK::Mul64, ins, true),
        DOp::Mul32Imm => alu(AluK::Mul32, ins, false),
        DOp::Mul32Reg => alu(AluK::Mul32, ins, true),
        // Constant divisors are proven non-zero at decode time (zero
        // decodes to DivZero), exactly as in the interpreter, so the
        // immediate forms use the unchecked kernels directly.
        DOp::Div64Imm => alu(AluK::Div64, ins, false),
        DOp::Div32Imm => alu(AluK::Div32, ins, false),
        DOp::Mod64Imm => alu(AluK::Mod64, ins, false),
        DOp::Mod32Imm => alu(AluK::Mod32, ins, false),
        DOp::Div64Reg => div_rem(AluK::Div64, false, ins),
        DOp::Div32Reg => div_rem(AluK::Div32, true, ins),
        DOp::Mod64Reg => div_rem(AluK::Mod64, false, ins),
        DOp::Mod32Reg => div_rem(AluK::Mod32, true, ins),
        DOp::Or64Imm => alu(AluK::Or64, ins, false),
        DOp::Or64Reg => alu(AluK::Or64, ins, true),
        DOp::Or32Imm => alu(AluK::Or32, ins, false),
        DOp::Or32Reg => alu(AluK::Or32, ins, true),
        DOp::And64Imm => alu(AluK::And64, ins, false),
        DOp::And64Reg => alu(AluK::And64, ins, true),
        DOp::And32Imm => alu(AluK::And32, ins, false),
        DOp::And32Reg => alu(AluK::And32, ins, true),
        DOp::Xor64Imm => alu(AluK::Xor64, ins, false),
        DOp::Xor64Reg => alu(AluK::Xor64, ins, true),
        DOp::Xor32Imm => alu(AluK::Xor32, ins, false),
        DOp::Xor32Reg => alu(AluK::Xor32, ins, true),
        DOp::Lsh64Imm => alu(AluK::Lsh64, ins, false),
        DOp::Lsh64Reg => alu(AluK::Lsh64, ins, true),
        DOp::Lsh32Imm => alu(AluK::Lsh32, ins, false),
        DOp::Lsh32Reg => alu(AluK::Lsh32, ins, true),
        DOp::Rsh64Imm => alu(AluK::Rsh64, ins, false),
        DOp::Rsh64Reg => alu(AluK::Rsh64, ins, true),
        DOp::Rsh32Imm => alu(AluK::Rsh32, ins, false),
        DOp::Rsh32Reg => alu(AluK::Rsh32, ins, true),
        DOp::Arsh64Imm => alu(AluK::Arsh64, ins, false),
        DOp::Arsh64Reg => alu(AluK::Arsh64, ins, true),
        DOp::Arsh32Imm => alu(AluK::Arsh32, ins, false),
        DOp::Arsh32Reg => alu(AluK::Arsh32, ins, true),
        DOp::Mov64Imm => alu(AluK::Mov64, ins, false),
        DOp::Mov64Reg => alu(AluK::Mov64, ins, true),
        DOp::Mov32Imm => alu(AluK::Mov32, ins, false),
        DOp::Mov32Reg => alu(AluK::Mov32, ins, true),
        DOp::Neg64 => alu(AluK::Neg64, ins, false),
        DOp::Neg32 => alu(AluK::Neg32, ins, false),
        DOp::Be16 => alu(AluK::Be16, ins, false),
        DOp::Be32 => alu(AluK::Be32, ins, false),
        DOp::Be64 => alu(AluK::Be64, ins, false),
        DOp::Le16 => alu(AluK::Le16, ins, false),
        DOp::Le32 => alu(AluK::Le32, ins, false),
        DOp::Le64 => alu(AluK::Le64, ins, false),
        DOp::LdDw => alu(AluK::Mov64, ins, false),
        DOp::LdxDw => mem_load(MemW::Dw, ins),
        DOp::LdxW => mem_load(MemW::W, ins),
        DOp::LdxH => mem_load(MemW::H, ins),
        DOp::LdxB => mem_load(MemW::B, ins),
        DOp::StDw => mem_store(MemW::Dw, ins, false),
        DOp::StW => mem_store(MemW::W, ins, false),
        DOp::StH => mem_store(MemW::H, ins, false),
        DOp::StB => mem_store(MemW::B, ins, false),
        DOp::StxDw => mem_store(MemW::Dw, ins, true),
        DOp::StxW => mem_store(MemW::W, ins, true),
        DOp::StxH => mem_store(MemW::H, ins, true),
        DOp::StxB => mem_store(MemW::B, ins, true),
        _ => unreachable!("control instructions lower to terminators"),
    }
}

/// The predicate kernel and operand routing for a conditional jump.
fn lower_cond(op: DOp) -> (CondK, bool) {
    match op {
        DOp::Jeq64Imm => (CondK::Eq64, false),
        DOp::Jeq64Reg => (CondK::Eq64, true),
        DOp::Jeq32Imm => (CondK::Eq32, false),
        DOp::Jeq32Reg => (CondK::Eq32, true),
        DOp::Jne64Imm => (CondK::Ne64, false),
        DOp::Jne64Reg => (CondK::Ne64, true),
        DOp::Jne32Imm => (CondK::Ne32, false),
        DOp::Jne32Reg => (CondK::Ne32, true),
        DOp::Jgt64Imm => (CondK::Gt64, false),
        DOp::Jgt64Reg => (CondK::Gt64, true),
        DOp::Jgt32Imm => (CondK::Gt32, false),
        DOp::Jgt32Reg => (CondK::Gt32, true),
        DOp::Jge64Imm => (CondK::Ge64, false),
        DOp::Jge64Reg => (CondK::Ge64, true),
        DOp::Jge32Imm => (CondK::Ge32, false),
        DOp::Jge32Reg => (CondK::Ge32, true),
        DOp::Jlt64Imm => (CondK::Lt64, false),
        DOp::Jlt64Reg => (CondK::Lt64, true),
        DOp::Jlt32Imm => (CondK::Lt32, false),
        DOp::Jlt32Reg => (CondK::Lt32, true),
        DOp::Jle64Imm => (CondK::Le64, false),
        DOp::Jle64Reg => (CondK::Le64, true),
        DOp::Jle32Imm => (CondK::Le32, false),
        DOp::Jle32Reg => (CondK::Le32, true),
        DOp::Jset64Imm => (CondK::Set64, false),
        DOp::Jset64Reg => (CondK::Set64, true),
        DOp::Jset32Imm => (CondK::Set32, false),
        DOp::Jset32Reg => (CondK::Set32, true),
        DOp::Jsgt64Imm => (CondK::Sgt64, false),
        DOp::Jsgt64Reg => (CondK::Sgt64, true),
        DOp::Jsgt32Imm => (CondK::Sgt32, false),
        DOp::Jsgt32Reg => (CondK::Sgt32, true),
        DOp::Jsge64Imm => (CondK::Sge64, false),
        DOp::Jsge64Reg => (CondK::Sge64, true),
        DOp::Jsge32Imm => (CondK::Sge32, false),
        DOp::Jsge32Reg => (CondK::Sge32, true),
        DOp::Jslt64Imm => (CondK::Slt64, false),
        DOp::Jslt64Reg => (CondK::Slt64, true),
        DOp::Jslt32Imm => (CondK::Slt32, false),
        DOp::Jslt32Reg => (CondK::Slt32, true),
        DOp::Jsle64Imm => (CondK::Sle64, false),
        DOp::Jsle64Reg => (CondK::Sle64, true),
        DOp::Jsle32Imm => (CondK::Sle32, false),
        DOp::Jsle32Reg => (CondK::Sle32, true),
        _ => unreachable!("not a conditional jump"),
    }
}

/// True for conditional jumps (the forms with a predicate and a fall-through).
fn is_cond_jump(op: DOp) -> bool {
    matches!(
        op,
        DOp::Jeq64Imm
            | DOp::Jeq64Reg
            | DOp::Jeq32Imm
            | DOp::Jeq32Reg
            | DOp::Jne64Imm
            | DOp::Jne64Reg
            | DOp::Jne32Imm
            | DOp::Jne32Reg
            | DOp::Jgt64Imm
            | DOp::Jgt64Reg
            | DOp::Jgt32Imm
            | DOp::Jgt32Reg
            | DOp::Jge64Imm
            | DOp::Jge64Reg
            | DOp::Jge32Imm
            | DOp::Jge32Reg
            | DOp::Jlt64Imm
            | DOp::Jlt64Reg
            | DOp::Jlt32Imm
            | DOp::Jlt32Reg
            | DOp::Jle64Imm
            | DOp::Jle64Reg
            | DOp::Jle32Imm
            | DOp::Jle32Reg
            | DOp::Jset64Imm
            | DOp::Jset64Reg
            | DOp::Jset32Imm
            | DOp::Jset32Reg
            | DOp::Jsgt64Imm
            | DOp::Jsgt64Reg
            | DOp::Jsgt32Imm
            | DOp::Jsgt32Reg
            | DOp::Jsge64Imm
            | DOp::Jsge64Reg
            | DOp::Jsge32Imm
            | DOp::Jsge32Reg
            | DOp::Jslt64Imm
            | DOp::Jslt64Reg
            | DOp::Jslt32Imm
            | DOp::Jslt32Reg
            | DOp::Jsle64Imm
            | DOp::Jsle64Reg
            | DOp::Jsle32Imm
            | DOp::Jsle32Reg
    )
}

/// True for instructions that end a basic block.
fn ends_block(op: DOp) -> bool {
    is_cond_jump(op) || matches!(op, DOp::Ja | DOp::Call | DOp::Exit | DOp::Trap | DOp::DivZero)
}

/// Operand routing inside a scalarized spin loop: the loop keeps the one
/// or two written registers in locals (`a`, `b`), so an operand is either
/// one of those or a value that cannot change while the loop spins (an
/// immediate, or a register the body never writes) captured as a constant.
#[derive(Debug, Clone, Copy)]
enum Sel {
    A,
    B,
    K(u64),
}

#[inline(always)]
fn sel(s: Sel, a: u64, b: u64) -> u64 {
    match s {
        Sel::A => a,
        Sel::B => b,
        Sel::K(v) => v,
    }
}

/// Loop-invariant operands and bookkeeping for a scalarized two-op spin
/// loop (`a`/`b` are the initial values of the two written registers).
#[derive(Clone, Copy)]
struct Spin2 {
    o1: Sel,
    o2: Sel,
    cl: Sel,
    cr: Sel,
    a: u64,
    b: u64,
    cost: i64,
    slot: u32,
}

/// The fully monomorphized spin loop: `f1`/`f2`/`c` are closure types, so
/// each hot (kernel, kernel, predicate) combination compiles to a
/// dedicated loop with the ALU work and the branch predicate inlined —
/// no dispatch of any kind left inside. Returns the final register pair
/// on fall-through.
#[inline(always)]
fn spin2_loop(
    f1: impl Fn(u64, u64) -> u64,
    f2: impl Fn(u64, u64) -> u64,
    c: impl Fn(u64, u64) -> bool,
    p: Spin2,
    fuel: &mut i64,
) -> Result<(u64, u64), VmError> {
    let Spin2 { o1, o2, cl, cr, mut a, mut b, cost, slot } = p;
    loop {
        *fuel -= cost;
        a = f1(a, sel(o1, a, b));
        b = f2(b, sel(o2, a, b));
        if !c(sel(cl, a, b), sel(cr, a, b)) {
            return Ok((a, b));
        }
        if *fuel <= 0 {
            return Err(VmError::FuelExhausted { pc: slot as usize });
        }
    }
}

/// Single-op variant of [`spin2_loop`] (`b` stays 0 and unused).
#[inline(always)]
fn spin1_loop(
    f1: impl Fn(u64, u64) -> u64,
    c: impl Fn(u64, u64) -> bool,
    p: Spin2,
    fuel: &mut i64,
) -> Result<(u64, u64), VmError> {
    spin2_loop(f1, |b, _| b, c, p, fuel)
}

// Nested generic dispatch: each level matches one runtime kind onto a
// closure type and recurses, so the source stays linear while the
// compiler instantiates the full hot-combination product. Kernels and
// predicates outside the hot set return None and take the data-driven
// loop instead.

macro_rules! dispatch_hot_alu {
    ($k:expr, $next:expr) => {
        match $k {
            AluK::Add64 => $next(|d: u64, s: u64| d.wrapping_add(s)),
            AluK::Sub64 => $next(|d: u64, s: u64| d.wrapping_sub(s)),
            AluK::Mov64 => $next(|_: u64, s: u64| s),
            AluK::And64 => $next(|d: u64, s: u64| d & s),
            AluK::Or64 => $next(|d: u64, s: u64| d | s),
            AluK::Xor64 => $next(|d: u64, s: u64| d ^ s),
            _ => None,
        }
    };
}

macro_rules! dispatch_hot_cond {
    ($k:expr, $next:expr) => {
        match $k {
            CondK::Eq64 => $next(|x: u64, y: u64| x == y),
            CondK::Ne64 => $next(|x: u64, y: u64| x != y),
            CondK::Gt64 => $next(|x: u64, y: u64| x > y),
            CondK::Ge64 => $next(|x: u64, y: u64| x >= y),
            CondK::Lt64 => $next(|x: u64, y: u64| x < y),
            CondK::Le64 => $next(|x: u64, y: u64| x <= y),
            _ => None,
        }
    };
}

fn spin2_hot(
    k1: AluK,
    k2: AluK,
    ck: CondK,
    p: Spin2,
    fuel: &mut i64,
) -> Option<Result<(u64, u64), VmError>> {
    fn level2<F1: Fn(u64, u64) -> u64 + Copy>(
        f1: F1,
        k2: AluK,
        ck: CondK,
        p: Spin2,
        fuel: &mut i64,
    ) -> Option<Result<(u64, u64), VmError>> {
        fn level3<F1: Fn(u64, u64) -> u64 + Copy, F2: Fn(u64, u64) -> u64 + Copy>(
            f1: F1,
            f2: F2,
            ck: CondK,
            p: Spin2,
            fuel: &mut i64,
        ) -> Option<Result<(u64, u64), VmError>> {
            dispatch_hot_cond!(ck, |c| Some(spin2_loop(f1, f2, c, p, fuel)))
        }
        dispatch_hot_alu!(k2, |f2| level3(f1, f2, ck, p, fuel))
    }
    dispatch_hot_alu!(k1, |f1| level2(f1, k2, ck, p, fuel))
}

fn spin1_hot(k1: AluK, ck: CondK, p: Spin2, fuel: &mut i64) -> Option<Result<(u64, u64), VmError>> {
    fn level2<F1: Fn(u64, u64) -> u64 + Copy>(
        f1: F1,
        ck: CondK,
        p: Spin2,
        fuel: &mut i64,
    ) -> Option<Result<(u64, u64), VmError>> {
        dispatch_hot_cond!(ck, |c| Some(spin1_loop(f1, c, p, fuel)))
    }
    dispatch_hot_alu!(k1, |f1| level2(f1, ck, p, fuel))
}

/// Execute an all-ALU self-loop block until its branch falls through.
/// Scalarizes the written registers for one- and two-op bodies (the shape
/// of every counted loop) so the loop-carried values live in machine
/// registers instead of round-tripping through the register file; hot
/// kernel/predicate combinations additionally run monomorphized
/// ([`spin2_hot`]), and larger bodies run in-array. The fuel ledger is
/// identical to the generic path: one block cost per iteration, checked
/// at each taken back-edge.
#[inline(never)]
fn run_spin(b: &Block, ops: &[Op], reg: &mut Regs, fuel: &mut i64) -> Result<(), VmError> {
    let Terminator::Branch { cond, dst, src, use_src, imm, slot, .. } = b.term else {
        unreachable!("spin blocks end in a self-branch")
    };
    let cd = usize::from(dst) & REG_MASK;
    let cs = usize::from(src) & REG_MASK;
    let cost = b.cost;

    // Operand router for the scalarized arms: locals `a`/`b` shadow the
    // registers written at `da`/`db`; everything else is loop-invariant.
    let route = |use_src: bool, src: usize, imm: u64, da: usize, db: Option<usize>| {
        if !use_src {
            Sel::K(imm)
        } else if src == da {
            Sel::A
        } else if Some(src) == db {
            Sel::B
        } else {
            Sel::K(reg[src])
        }
    };

    match *ops {
        [Op::Alu { k: k1, dst: d1, src: s1, use_src: u1, imm: i1 }] => {
            let da = usize::from(d1) & REG_MASK;
            let o1 = route(u1, usize::from(s1) & REG_MASK, i1, da, None);
            let cl = route(true, cd, 0, da, None);
            let cr = route(use_src, cs, imm, da, None);
            let p = Spin2 { o1, o2: Sel::B, cl, cr, a: reg[da], b: 0, cost, slot };
            let (a, _) = match spin1_hot(k1, cond, p, fuel) {
                Some(r) => r?,
                None => {
                    let mut a = p.a;
                    loop {
                        *fuel -= cost;
                        a = alu_apply(k1, a, sel(o1, a, 0));
                        if !cond_apply(cond, sel(cl, a, 0), sel(cr, a, 0)) {
                            break;
                        }
                        if *fuel <= 0 {
                            return Err(VmError::FuelExhausted { pc: slot as usize });
                        }
                    }
                    (a, 0)
                }
            };
            reg[da] = a;
        }
        [Op::Alu { k: k1, dst: d1, src: s1, use_src: u1, imm: i1 }, Op::Alu { k: k2, dst: d2, src: s2, use_src: u2, imm: i2 }]
            if d1 != d2 =>
        {
            let da = usize::from(d1) & REG_MASK;
            let db = usize::from(d2) & REG_MASK;
            let o1 = route(u1, usize::from(s1) & REG_MASK, i1, da, Some(db));
            let o2 = route(u2, usize::from(s2) & REG_MASK, i2, da, Some(db));
            let cl = route(true, cd, 0, da, Some(db));
            let cr = route(use_src, cs, imm, da, Some(db));
            let p = Spin2 { o1, o2, cl, cr, a: reg[da], b: reg[db], cost, slot };
            let (a, b2) = match spin2_hot(k1, k2, cond, p, fuel) {
                Some(r) => r?,
                None => {
                    let (mut a, mut b2) = (p.a, p.b);
                    loop {
                        *fuel -= cost;
                        a = alu_apply(k1, a, sel(o1, a, b2));
                        b2 = alu_apply(k2, b2, sel(o2, a, b2));
                        if !cond_apply(cond, sel(cl, a, b2), sel(cr, a, b2)) {
                            break;
                        }
                        if *fuel <= 0 {
                            return Err(VmError::FuelExhausted { pc: slot as usize });
                        }
                    }
                    (a, b2)
                }
            };
            reg[da] = a;
            reg[db] = b2;
        }
        _ => loop {
            *fuel -= cost;
            for op in ops {
                let Op::Alu { k, dst, src, use_src, imm } = *op else {
                    unreachable!("spin bodies are pure")
                };
                let d = usize::from(dst) & REG_MASK;
                let s = if use_src { reg[usize::from(src) & REG_MASK] } else { imm };
                reg[d] = alu_apply(k, reg[d], s);
            }
            let s = if use_src { reg[cs] } else { imm };
            if !cond_apply(cond, reg[cd], s) {
                break;
            }
            if *fuel <= 0 {
                return Err(VmError::FuelExhausted { pc: slot as usize });
            }
        },
    }
    Ok(())
}

impl CompiledProgram {
    /// Lower a pre-decoded program into basic blocks. Total, like
    /// [`LoadedProgram::load`]: undecodable slots become [`Terminator::Trap`]
    /// blocks that fault when (and only when) reached. Run [`crate::verify`]
    /// first for the no-trap guarantee.
    pub fn compile(prog: &LoadedProgram) -> CompiledProgram {
        let code = &prog.code;
        let n = code.len(); // always >= 1: prep appends the trap sentinel

        // Pass 1: block leaders. The entry, every jump target, and the
        // instruction after every control transfer start a block. Jump
        // targets are dense and in range (prep resolves strays to the
        // sentinel), so no bounds handling is needed.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, ins) in code.iter().enumerate() {
            if ends_block(ins.op) {
                if i + 1 < n {
                    leader[i + 1] = true;
                }
                if ins.op == DOp::Ja || is_cond_jump(ins.op) {
                    leader[ins.target as usize] = true;
                }
            }
        }

        // Pass 2: block index of each dense instruction.
        let mut block_of = vec![0u32; n];
        let mut next_block = 0u32;
        for (i, is_leader) in leader.iter().enumerate() {
            if *is_leader {
                next_block += 1;
            }
            block_of[i] = next_block - 1;
        }

        // Pass 3: lower each leader span. The branch's *dense index*
        // decides back-edge-ness (`target <= pc`), matching the
        // interpreter's check site exactly.
        let mut blocks = Vec::with_capacity(next_block as usize);
        let mut pool: Vec<Op> = Vec::with_capacity(n);
        let mut s = 0usize;
        while s < n {
            let mut e = s + 1;
            while e < n && !leader[e] {
                e += 1;
            }
            let this_block = blocks.len() as u32;
            let last = &code[e - 1];
            let (body, term) = if ends_block(last.op) {
                let i = e - 1;
                let term = match last.op {
                    DOp::Ja => Terminator::Ja {
                        target: block_of[last.target as usize],
                        back_edge: last.target as usize <= i,
                        slot: last.slot,
                    },
                    DOp::Call => Terminator::Call {
                        helper: last.target,
                        slot: last.slot,
                        next: block_of[i + 1],
                    },
                    DOp::Exit => Terminator::Exit,
                    DOp::Trap => Terminator::Trap { slot: last.slot, opcode: last.dst },
                    DOp::DivZero => Terminator::DivZero { slot: last.slot },
                    _ => {
                        let (cond, use_src) = lower_cond(last.op);
                        Terminator::Branch {
                            cond,
                            dst: last.dst,
                            src: last.src,
                            use_src,
                            imm: last.imm,
                            target: block_of[last.target as usize],
                            back_edge: last.target as usize <= i,
                            slot: last.slot,
                            fall: block_of[i + 1],
                        }
                    }
                };
                (&code[s..e - 1], term)
            } else {
                // Span ends because the next instruction is a jump target;
                // the sentinel is a Trap, so this never runs off the end.
                (&code[s..e], Terminator::Fall { next: block_of[e] })
            };
            let start = pool.len() as u32;
            pool.extend(body.iter().map(lower_op));
            let len = pool.len() as u32 - start;
            let cost = i64::from(len) + if matches!(term, Terminator::Fall { .. }) { 0 } else { 1 };
            // A branch whose taken edge re-enters this very block, over a
            // body that cannot fault, is a self-contained loop: the spin
            // executor runs it without re-dispatching blocks. Such a branch
            // is necessarily a back-edge (its target leads its own span).
            let spin = matches!(term, Terminator::Branch { target, .. } if target == this_block)
                && pool[start as usize..].iter().all(|o| matches!(o, Op::Alu { .. }));
            blocks.push(Block { cost, spin, start, len, term });
            s = e;
        }
        CompiledProgram {
            ops: pool,
            blocks,
            worst_fuel: prog.worst_fuel(),
            elide: prog.elide(),
            has_elided: prog.has_elided,
        }
    }

    /// Number of basic blocks (diagnostics).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Execute the compiled program. Same contract as [`LoadedProgram::run`].
    pub fn run(
        &self,
        config: VmConfig,
        mem: &mut MemoryMap,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> Result<ExecOutcome, VmError> {
        self.run_metered(config, mem, helpers, args).0
    }

    /// Execute the compiled program and report [`RunMetrics`]. Bit-for-bit
    /// equivalent to [`LoadedProgram::run_metered`] on the same program:
    /// same outcome, same memory, same faults at the same slot pcs, same
    /// metrics (see the module docs for the fuel-ledger argument).
    pub fn run_metered(
        &self,
        config: VmConfig,
        mem: &mut MemoryMap,
        helpers: &mut dyn HelperDispatcher,
        args: &[u64],
    ) -> (Result<ExecOutcome, VmError>, RunMetrics) {
        assert!(args.len() <= 5, "at most five argument registers");
        let mut reg: Regs = [0; 16];
        for (i, a) in args.iter().enumerate() {
            reg[i + 1] = *a;
        }
        if mem.region_of(RegionKind::Stack).is_none() {
            mem.map(Region::new(RegionKind::Stack, STACK_BASE, vec![0; STACK_SIZE], true));
        }
        reg[10] = STACK_BASE + STACK_SIZE as u64;

        let mut fuel: i64 = config.fuel.min(i64::MAX as u64) as i64;
        let budget = fuel;
        // Same fuel-ledger elision as the interpreter: a proven worst case
        // strictly under the budget means exhaustion cannot fire, so the
        // ledger starts saturated and metrics come from `start - fuel`.
        if self.elide && self.worst_fuel.is_some_and(|w| w < budget as u64) {
            fuel = i64::MAX;
        }
        let start = fuel;
        let mut helper_calls: u64 = 0;
        let elide_on = self.elide && self.has_elided;
        let mut ectx = if elide_on { mem.elide_ctx() } else { ElideCtx::default() };

        let result = (|| -> Result<ExecOutcome, VmError> {
            let mut bi = 0usize;
            'blocks: loop {
                let b = &self.blocks[bi];
                let ops = &self.ops[b.start as usize..(b.start + b.len) as usize];
                if b.spin {
                    // Self-loop fast path: descriptors hoisted, kernels
                    // inlined, fuel checked once per taken back-edge —
                    // the same ledger, without per-block dispatch.
                    run_spin(b, ops, &mut reg, &mut fuel)?;
                    let Terminator::Branch { fall, .. } = b.term else {
                        unreachable!("spin blocks end in a self-branch")
                    };
                    bi = fall as usize;
                    continue 'blocks;
                }
                fuel -= b.cost;
                for (j, op) in ops.iter().enumerate() {
                    // Every early exit below is a fault at op `j`: refund
                    // the not-executed tail so the fuel ledger matches the
                    // interpreter's per-instruction accounting.
                    let e = match *op {
                        Op::Alu { k, dst, src, use_src, imm } => {
                            let d = usize::from(dst) & REG_MASK;
                            let s = if use_src { reg[usize::from(src) & REG_MASK] } else { imm };
                            reg[d] = alu_apply(k, reg[d], s);
                            continue;
                        }
                        Op::Load { w, dst, src, off, slot, flags } => {
                            let a = reg[usize::from(src) & REG_MASK].wrapping_add(off);
                            if elide_on && flags & elide::BOUNDS != 0 {
                                if let Some(v) = fast_read(w, mem, &ectx, elide::kind(flags), a) {
                                    reg[usize::from(dst) & REG_MASK] = v;
                                    continue;
                                }
                            }
                            match mem_read(w, mem, a) {
                                Ok(v) => {
                                    reg[usize::from(dst) & REG_MASK] = v;
                                    continue;
                                }
                                Err(e) => e.at_pc(slot as usize),
                            }
                        }
                        Op::Store { w, dst, src, use_src, off, imm, slot, flags } => {
                            let a = reg[usize::from(dst) & REG_MASK].wrapping_add(off);
                            let v = if use_src { reg[usize::from(src) & REG_MASK] } else { imm };
                            if elide_on
                                && flags & elide::BOUNDS != 0
                                && fast_write(w, mem, &ectx, elide::kind(flags), a, v)
                            {
                                continue;
                            }
                            match mem_write(w, mem, a, v) {
                                Ok(()) => continue,
                                Err(e) => e.at_pc(slot as usize),
                            }
                        }
                        Op::DivRem { k, w32, dst, src, slot } => {
                            let d = usize::from(dst) & REG_MASK;
                            let s = reg[usize::from(src) & REG_MASK];
                            if if w32 { s as u32 != 0 } else { s != 0 } {
                                reg[d] = alu_apply(k, reg[d], s);
                                continue;
                            }
                            VmError::DivByZero { pc: slot as usize }
                        }
                    };
                    fuel += b.cost - (j as i64 + 1);
                    return Err(e);
                }
                match b.term {
                    Terminator::Fall { next } => bi = next as usize,
                    Terminator::Ja { target, back_edge, slot } => {
                        if back_edge && fuel <= 0 {
                            return Err(VmError::FuelExhausted { pc: slot as usize });
                        }
                        bi = target as usize;
                    }
                    Terminator::Branch {
                        cond,
                        dst,
                        src,
                        use_src,
                        imm,
                        target,
                        back_edge,
                        slot,
                        fall,
                    } => {
                        let s = if use_src { reg[usize::from(src) & REG_MASK] } else { imm };
                        if cond_apply(cond, reg[usize::from(dst) & REG_MASK], s) {
                            if back_edge && fuel <= 0 {
                                return Err(VmError::FuelExhausted { pc: slot as usize });
                            }
                            bi = target as usize;
                        } else {
                            bi = fall as usize;
                        }
                    }
                    Terminator::Call { helper, slot, next } => {
                        if fuel <= 0 {
                            return Err(VmError::FuelExhausted { pc: slot as usize });
                        }
                        helper_calls += 1;
                        let args5 = [reg[1], reg[2], reg[3], reg[4], reg[5]];
                        match helpers.call(helper, args5, mem) {
                            Ok(HelperOutcome::Value(v)) => {
                                reg[0] = v;
                                reg[1] = 0;
                                reg[2] = 0;
                                reg[3] = 0;
                                reg[4] = 0;
                                reg[5] = 0;
                                // Helpers may remap regions; track.
                                if elide_on {
                                    ectx.refresh(mem);
                                }
                                bi = next as usize;
                            }
                            Ok(HelperOutcome::Next) => return Ok(ExecOutcome::Next),
                            Err(e) => return Err(e.at_pc(slot as usize)),
                        }
                    }
                    Terminator::Exit => return Ok(ExecOutcome::Return(reg[0])),
                    Terminator::Trap { slot, opcode } => {
                        return Err(VmError::BadInstruction { pc: slot as usize, opcode })
                    }
                    Terminator::DivZero { slot } => {
                        return Err(VmError::DivByZero { pc: slot as usize })
                    }
                }
            }
        })();
        let fuel_consumed = (start - fuel) as u64;
        (result, RunMetrics { insns_retired: fuel_consumed, helper_calls, fuel_consumed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{build, Insn, Program};
    use crate::interp::NoHelpers;

    fn compiled(insns: &[Insn]) -> CompiledProgram {
        CompiledProgram::compile(&LoadedProgram::load(&Program::new(insns.to_vec())))
    }

    /// Run both engines on a fresh memory map and assert identical outcome
    /// and metrics; returns the compiled result for further assertions.
    fn both(insns: &[Insn], fuel: u64, args: &[u64]) -> (Result<ExecOutcome, VmError>, RunMetrics) {
        let lp = LoadedProgram::load(&Program::new(insns.to_vec()));
        let cp = CompiledProgram::compile(&lp);
        let cfg = VmConfig { fuel };
        let mut mi = MemoryMap::new();
        let mut mc = MemoryMap::new();
        let ri = lp.run_metered(cfg, &mut mi, &mut NoHelpers, args);
        let rc = cp.run_metered(cfg, &mut mc, &mut NoHelpers, args);
        assert_eq!(ri, rc, "engines diverged");
        rc
    }

    #[test]
    fn straight_line_and_loops_match_interpreter() {
        // r0 = sum of 1..=10 via a backward jump.
        let insns = [
            build::mov_imm(0, 0),
            build::mov_imm(1, 10),
            build::add_reg(0, 1),
            Insn::new(
                crate::insn::op::CLS_ALU64 | crate::insn::op::ALU_SUB | crate::insn::op::SRC_K,
                1,
                0,
                0,
                1,
            ),
            build::jne_imm(1, 0, -3),
            build::exit(),
        ];
        let (out, _) = both(&insns, 1_000_000, &[]);
        assert_eq!(out, Ok(ExecOutcome::Return(55)));
    }

    #[test]
    fn fuel_exhaustion_pc_is_the_branch_slot_not_the_target() {
        // Regression for the FuelExhausted pc contract: the back-edge at
        // slot 2 targets slot 1, and the reported pc must be the *branching
        // instruction's* slot (2) — not the jump target — on both engines.
        let insns = [
            build::mov_imm(0, 0),
            build::add_imm(0, 1),
            build::ja(-2), // slot 2, back-edge to slot 1
        ];
        let lp = LoadedProgram::load(&Program::new(insns.to_vec()));
        let cp = CompiledProgram::compile(&lp);
        let cfg = VmConfig { fuel: 100 };
        let mut mi = MemoryMap::new();
        let mut mc = MemoryMap::new();
        let ri = lp.run_metered(cfg, &mut mi, &mut NoHelpers, &[]);
        let rc = cp.run_metered(cfg, &mut mc, &mut NoHelpers, &[]);
        assert_eq!(ri.0, Err(VmError::FuelExhausted { pc: 2 }));
        assert_eq!(rc.0, Err(VmError::FuelExhausted { pc: 2 }));
        assert_eq!(ri.1, rc.1, "fuel ledgers diverged");
        // 1 prologue mov + 50 two-instruction iterations: the check fires
        // on the ja once the balance dips non-positive.
        assert_eq!(ri.1.fuel_consumed, 101);
    }

    #[test]
    fn spin_loop_fuel_exhaustion_matches_interpreter() {
        // The spin fast path (all-ALU self-loop) must keep the same
        // per-back-edge ledger: an infinite counted loop dies with the pc
        // of the branch and the exact fuel balance on both engines.
        let insns = [
            build::mov_imm(0, 0),
            build::mov_imm(1, 1),
            build::add_imm(0, 1),
            build::add_imm(1, 1), // r1 only grows, so the jne is always taken
            build::jne_imm(1, 0, -2),
            build::exit(),
        ];
        let (out, m) = both(&insns, 997, &[]);
        assert_eq!(out, Err(VmError::FuelExhausted { pc: 4 }));
        assert_eq!(m.fuel_consumed, 997);
    }

    #[test]
    fn tight_loop_exhausts_with_exact_ledger() {
        let (out, m) = both(&[build::ja(-1)], 123, &[]);
        assert_eq!(out, Err(VmError::FuelExhausted { pc: 0 }));
        assert_eq!(m.fuel_consumed, 123);
        assert_eq!(m.insns_retired, 123);
    }

    #[test]
    fn straight_line_code_overshoots_like_the_interpreter() {
        let (out, m) = both(&[build::mov_imm(0, 9), build::exit()], 0, &[]);
        assert_eq!(out, Ok(ExecOutcome::Return(9)));
        assert_eq!(m.insns_retired, 2);
    }

    #[test]
    fn mem_fault_refunds_the_uncharged_tail() {
        // Block: mov, bad load (slot 1), mov, exit. The fault at op index 1
        // must report exactly 2 instructions consumed, as the interpreter's
        // per-instruction ledger would.
        let insns =
            [build::mov_imm(0, 0), build::ldxb(0, 10, 0), build::mov_imm(0, 7), build::exit()];
        let (out, m) = both(&insns, 1000, &[]);
        match out {
            Err(VmError::MemFault { pc, write: false, .. }) => assert_eq!(pc, 1),
            other => panic!("expected load fault at pc 1, got {other:?}"),
        }
        assert_eq!(m.fuel_consumed, 2);
    }

    #[test]
    fn runtime_div_by_zero_matches() {
        let insns = [
            build::mov_imm(0, 1),
            build::mov_imm(1, 0),
            Insn::new(
                crate::insn::op::CLS_ALU64 | crate::insn::op::ALU_DIV | crate::insn::op::SRC_X,
                0,
                1,
                0,
                0,
            ),
            build::exit(),
        ];
        let (out, m) = both(&insns, 1000, &[]);
        assert_eq!(out, Err(VmError::DivByZero { pc: 2 }));
        assert_eq!(m.fuel_consumed, 3);
    }

    #[test]
    fn call_is_a_fuel_check_point() {
        struct Doubler;
        impl HelperDispatcher for Doubler {
            fn call(
                &mut self,
                id: u32,
                args: [u64; 5],
                _mem: &mut MemoryMap,
            ) -> Result<HelperOutcome, VmError> {
                match id {
                    1 => Ok(HelperOutcome::Value(args[0] * 2)),
                    2 => Ok(HelperOutcome::Next),
                    other => Err(VmError::UnknownHelper { pc: 0, helper: other }),
                }
            }
        }
        let insns = [build::call(1), build::exit()];
        let cp = compiled(&insns);
        let mut mem = MemoryMap::new();
        let (out, m) = cp.run_metered(VmConfig { fuel: 0 }, &mut mem, &mut Doubler, &[]);
        assert_eq!(out, Err(VmError::FuelExhausted { pc: 0 }));
        assert_eq!(m.fuel_consumed, 1);
        assert_eq!(m.helper_calls, 0, "the check fires before the dispatch");

        // With fuel, the call clobbers r1..r5 and continues.
        let insns = [
            build::mov_imm(1, 21),
            build::call(1),
            build::add_reg(0, 1), // r1 is 0 after the call
            build::exit(),
        ];
        let cp = compiled(&insns);
        let mut mem = MemoryMap::new();
        let (out, m) = cp.run_metered(VmConfig::default(), &mut mem, &mut Doubler, &[]);
        assert_eq!(out, Ok(ExecOutcome::Return(42)));
        assert_eq!(m.helper_calls, 1);
        assert_eq!(m.insns_retired, 4);

        // next() delegation short-circuits.
        let cp = compiled(&[build::call(2), build::mov_imm(0, 99), build::exit()]);
        let mut mem = MemoryMap::new();
        let (out, _) = cp.run_metered(VmConfig::default(), &mut mem, &mut Doubler, &[]);
        assert_eq!(out, Ok(ExecOutcome::Next));
    }

    #[test]
    fn unverified_trap_and_fallthrough_match_interpreter() {
        // Undecodable slot.
        let bogus = Insn::new(0xff, 0, 0, 0, 0);
        let (out, _) = both(&[bogus, build::exit()], 100, &[]);
        assert_eq!(out, Err(VmError::BadInstruction { pc: 0, opcode: 0xff }));
        // Falling off the end reaches the sentinel.
        let (out, _) = both(&[build::mov_imm(0, 0)], 100, &[]);
        assert_eq!(out, Err(VmError::BadInstruction { pc: 1, opcode: 0 }));
        // Constant zero divisor.
        let div0 = Insn::new(
            crate::insn::op::CLS_ALU64 | crate::insn::op::ALU_DIV | crate::insn::op::SRC_K,
            0,
            0,
            0,
            0,
        );
        let (out, _) = both(&[build::mov_imm(0, 1), div0, build::exit()], 100, &[]);
        assert_eq!(out, Err(VmError::DivByZero { pc: 1 }));
    }

    #[test]
    #[ignore = "manual perf probe: cargo test -p xbgp-vm --release -- --ignored perf_probe --nocapture"]
    fn perf_probe() {
        let insns = [
            build::mov_imm(0, 0),
            build::mov_imm(1, 1000),
            build::add_reg(0, 1),
            Insn::new(
                crate::insn::op::CLS_ALU64 | crate::insn::op::ALU_SUB | crate::insn::op::SRC_K,
                1,
                0,
                0,
                1,
            ),
            build::jne_imm(1, 0, -3),
            build::exit(),
        ];
        let lp = LoadedProgram::load(&Program::new(insns.to_vec()));
        let cp = CompiledProgram::compile(&lp);
        let cfg = VmConfig::default();
        let reps = 2000u32;
        for _ in 0..3 {
            let mut mem = MemoryMap::new();
            let t = std::time::Instant::now();
            for _ in 0..reps {
                let (o, _) = lp.run_metered(cfg, &mut mem, &mut NoHelpers, &[]);
                std::hint::black_box(o.unwrap());
            }
            let interp_ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
            let mut mem = MemoryMap::new();
            let t = std::time::Instant::now();
            for _ in 0..reps {
                let (o, _) = cp.run_metered(cfg, &mut mem, &mut NoHelpers, &[]);
                std::hint::black_box(o.unwrap());
            }
            let comp_ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
            println!(
                "interp {interp_ns:.0} ns/run  compiled {comp_ns:.0} ns/run  speedup {:.2}x",
                interp_ns / comp_ns
            );
        }
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("interp".parse::<Engine>(), Ok(Engine::Interp));
        assert_eq!("compiled".parse::<Engine>(), Ok(Engine::Compiled));
        assert!("jit".parse::<Engine>().is_err());
        assert_eq!(Engine::Compiled.to_string(), "compiled");
        assert_eq!(Engine::default(), Engine::Interp);
    }
}
