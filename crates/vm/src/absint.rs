//! Abstract interpretation over the pre-decoded [`DInsn`] stream.
//!
//! Runs after structural verification (see [`crate::verify`]) and derives
//! load-time proofs that let the execution engines drop dynamic checks:
//!
//! * **Memory safety** — every `LDX`/`STX` whose address is provably inside
//!   its region gets an [`elide::BOUNDS`] proof bit; the engines then read
//!   the backing slice directly instead of walking the region table.
//! * **Loop bounds** — counted self-loops (induction-variable patterns over
//!   the verifier-proven back-edge set) yield a static worst-case fuel cost
//!   for the whole program ([`LoadedProgram::worst_fuel`]); when that bound
//!   fits under the configured budget the engines may start from a saturated
//!   fuel ledger, knowing exhaustion cannot fire.
//! * **Hard errors** — reads of never-written registers, structurally
//!   unreachable code, and helper-contract violations (disallowed helper at
//!   an insertion point, provably-bad pointer argument) become
//!   [`VerifyError`]s at load time instead of runtime faults.
//! * **Lint facts** — dead register stores, constant-condition branches and
//!   the stack high-water mark are reported as [`Warning`]s for `xbgp-lint`.
//!
//! Everything is proof-carrying and **fail-open**: an instruction the
//! analysis cannot prove simply keeps its dynamic check (`flags == 0`), so
//! elision-on and elision-off runs are byte-identical by construction.
//!
//! # Abstract domain
//!
//! Each register holds an [`Av`]:
//!
//! * `Uninit` — may not have been written (join-absorbing, so "maybe
//!   uninitialized" propagates as must-not-read).
//! * `Scalar(Iv)` — unsigned 64-bit interval.
//! * `FailOr(Iv)` — `Iv ∪ {u64::MAX}`, the shape of length-or-fail helper
//!   returns; branch refinement against `-1` splits it exactly.
//! * `Ptr(Pv)` / `ZeroOrPtr(Pv)` — pointer (resp. nullable pointer) with
//!   provenance: region kind, an allocation *root* (the frame, or a helper
//!   call site), a delta interval relative to that root, and the window of
//!   valid bytes `[w_lo, w_hi)` relative to the root. Deltas are relational:
//!   two pointers with the same (non-anonymous) root can refine each other
//!   through compares, which is what proves guarded cursor loops.
//!
//! Roots are scrubbed at each helper call: values rooted at *that* call site
//! demote to the anonymous root (windows re-based onto the pointer itself),
//! because re-executing the site returns a fresh allocation. The previous
//! allocation stays mapped for the rest of the run — the dispatcher's heap
//! is bump-allocated — so the re-based window remains valid.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::insn::{mnemonic, Program};
use crate::prep::{elide, DInsn, DOp, LoadedProgram};
use crate::verify::VerifyError;
use crate::{STACK_BASE, STACK_SIZE};

/// Region kind a helper contract may hand out pointers into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    Stack,
    Heap,
    Shared,
}

impl MemKind {
    fn elide_kind(self) -> u8 {
        match self {
            MemKind::Stack => elide::KIND_STACK,
            MemKind::Heap => elide::KIND_HEAP,
            MemKind::Shared => elide::KIND_SHARED,
        }
    }
}

/// Abstract return value of a helper.
#[derive(Debug, Clone, Copy)]
pub enum HelperRet {
    /// Arbitrary scalar.
    Scalar,
    /// Length in `[0, cap]` where `cap` is argument `cap_arg`'s value, or
    /// `u64::MAX` on failure (the `get_attr` family).
    LenOrFail { cap_arg: u8 },
    /// Null, or a pointer to a fresh allocation of `size` bytes (`None` =
    /// unknown size: provenance tracked, nothing elidable).
    ZeroOrPtr { kind: MemKind, size: Option<u64> },
    /// Null, or a pointer to an allocation whose size is argument
    /// `size_arg`'s value (`ctx_malloc`-style). The provable window is the
    /// *guaranteed minimum* of that argument.
    ZeroOrPtrSizedByArg { kind: MemKind, size_arg: u8 },
}

/// Per-helper contract, resolved by the host layer for one insertion point.
#[derive(Debug, Clone)]
pub struct HelperContract {
    /// Whether this helper may be called at the insertion point at all.
    pub allowed: bool,
    /// Argument indices (0 = r1) that must be pointers when non-null.
    pub ptr_args: Vec<u8>,
    pub ret: HelperRet,
}

/// Analysis configuration. Helpers absent from `contracts` are treated
/// fail-open: unknown scalar return, no argument constraints, allowed.
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    pub contracts: BTreeMap<u32, HelperContract>,
}

/// Lint-grade diagnostics (never fatal).
#[derive(Debug, Clone)]
pub enum Warning {
    /// A side-effect-free register write whose value is never read.
    DeadStore {
        pc: usize,
        reg: u8,
        mnemonic: &'static str,
    },
    /// A conditional branch the analysis proves always goes one way.
    ConstBranch {
        pc: usize,
        mnemonic: &'static str,
        taken: bool,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::DeadStore { pc, reg, mnemonic } => {
                write!(f, "pc {pc}: dead store to r{reg} (`{mnemonic}`): value is never read")
            }
            Warning::ConstBranch { pc, mnemonic, taken } => {
                let way = if *taken { "taken" } else { "fall through" };
                write!(
                    f,
                    "pc {pc}: branch `{mnemonic}` always {way}s under the inferred value ranges"
                )
            }
        }
    }
}

/// Facts the fixpoint proved about one program.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Static worst-case fuel for a complete run, when every cycle is a
    /// counted self-loop. `None` = at least one unbounded/unrecognized loop.
    pub worst_fuel: Option<u64>,
    /// Loads whose bounds check was proven elidable.
    pub elided_loads: usize,
    /// Stores whose bounds + writability checks were proven elidable.
    pub elided_stores: usize,
    /// Total reachable loads and stores (elided + dynamically checked).
    pub mem_accesses: usize,
    /// Counted self-loops with an inferred trip bound.
    pub bounded_loops: usize,
    /// Deepest proven frame access, in bytes below `r10` (0..=512).
    pub stack_high_water: i64,
    pub warnings: Vec<Warning>,
}

const FRAME_ROOT: u32 = 0;
const ANON_ROOT: u32 = u32::MAX;
/// Widen a block's entry state after this many re-visits.
const WIDEN_AFTER: u32 = 8;
/// Relational (same-root) delta refinement is only sound while `base + delta`
/// cannot wrap; region bases sit well below 2^31, windows are tiny.
const DELTA_SANE: i64 = 1 << 30;

/// Unsigned 64-bit interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: u64,
    hi: u64,
}

impl Iv {
    const TOP: Iv = Iv { lo: 0, hi: u64::MAX };

    fn exact(k: u64) -> Iv {
        Iv { lo: k, hi: k }
    }

    fn is_exact(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    fn join(a: Iv, b: Iv) -> Iv {
        Iv { lo: a.lo.min(b.lo), hi: a.hi.max(b.hi) }
    }

    fn widen(old: Iv, new: Iv) -> Iv {
        Iv {
            lo: if new.lo < old.lo { 0 } else { new.lo },
            hi: if new.hi > old.hi { u64::MAX } else { new.hi },
        }
    }
}

/// Pointer provenance: `value = root_base + delta`, with `[w_lo, w_hi)` the
/// valid byte window relative to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pv {
    kind: u8,
    root: u32,
    d_lo: i64,
    d_hi: i64,
    w_lo: i64,
    w_hi: i64,
}

impl Pv {
    fn frame() -> Pv {
        Pv {
            kind: elide::KIND_STACK,
            root: FRAME_ROOT,
            d_lo: 0,
            d_hi: 0,
            w_lo: -(STACK_SIZE as i64),
            w_hi: 0,
        }
    }

    /// Re-base the window onto the pointer value itself and drop relations.
    /// Sound for every concrete delta in `[d_lo, d_hi]` (intersection).
    fn anonymize(self) -> Pv {
        let w_lo = self.w_lo.saturating_sub(self.d_lo);
        let w_hi = self.w_hi.saturating_sub(self.d_hi);
        let (w_lo, w_hi) = if w_lo <= w_hi { (w_lo, w_hi) } else { (0, 0) };
        Pv {
            kind: self.kind,
            root: ANON_ROOT,
            d_lo: 0,
            d_hi: 0,
            w_lo,
            w_hi,
        }
    }

    fn shift(self, k: i64) -> Option<Pv> {
        Some(Pv {
            d_lo: self.d_lo.checked_add(k)?,
            d_hi: self.d_hi.checked_add(k)?,
            ..self
        })
    }

    fn shift_iv(self, iv: Iv, negate: bool) -> Option<Pv> {
        if iv.hi > i64::MAX as u64 {
            return None;
        }
        let (a, b) = if negate {
            (self.d_lo.checked_sub(iv.hi as i64)?, self.d_hi.checked_sub(iv.lo as i64)?)
        } else {
            (self.d_lo.checked_add(iv.lo as i64)?, self.d_hi.checked_add(iv.hi as i64)?)
        };
        Some(Pv { d_lo: a, d_hi: b, ..self })
    }
}

/// Abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Av {
    Uninit,
    Scalar(Iv),
    FailOr(Iv),
    Ptr(Pv),
    ZeroOrPtr(Pv),
}

impl Av {
    const TOP: Av = Av::Scalar(Iv::TOP);

    /// The scalar view of a value, for arithmetic that consumes it as a
    /// number. Pointers and maybe-uninit values give the full range.
    fn as_iv(&self) -> Iv {
        match self {
            Av::Scalar(iv) => *iv,
            Av::FailOr(iv) => Iv { lo: iv.lo, hi: u64::MAX },
            _ => Iv::TOP,
        }
    }
}

type State = [Av; 11];

fn entry_state() -> State {
    let mut st = [Av::Uninit; 11];
    // r1-r5 carry the host-marshalled arguments — addresses included — so
    // they enter as unknown scalars, not uninitialized.
    for r in st.iter_mut().take(6).skip(1) {
        *r = Av::TOP;
    }
    st[10] = Av::Ptr(Pv::frame());
    st
}

fn join_ptr(p: Pv, q: Pv) -> Av {
    if p.kind != q.kind {
        return Av::TOP;
    }
    if p.root == q.root && p.root != ANON_ROOT {
        return Av::Ptr(Pv {
            kind: p.kind,
            root: p.root,
            d_lo: p.d_lo.min(q.d_lo),
            d_hi: p.d_hi.max(q.d_hi),
            w_lo: p.w_lo.max(q.w_lo),
            w_hi: p.w_hi.min(q.w_hi),
        });
    }
    let (a, b) = (p.anonymize(), q.anonymize());
    let w_lo = a.w_lo.max(b.w_lo);
    let w_hi = a.w_hi.min(b.w_hi);
    let (w_lo, w_hi) = if w_lo <= w_hi { (w_lo, w_hi) } else { (0, 0) };
    Av::Ptr(Pv { kind: p.kind, root: ANON_ROOT, d_lo: 0, d_hi: 0, w_lo, w_hi })
}

fn join_av(a: Av, b: Av) -> Av {
    use Av::*;
    match (a, b) {
        (Uninit, _) | (_, Uninit) => Uninit,
        (Scalar(x), Scalar(y)) => Scalar(Iv::join(x, y)),
        (Scalar(x), FailOr(y)) | (FailOr(y), Scalar(x)) | (FailOr(x), FailOr(y)) => {
            FailOr(Iv::join(x, y))
        }
        (Ptr(p), Ptr(q)) => join_ptr(p, q),
        (ZeroOrPtr(p), ZeroOrPtr(q)) | (Ptr(p), ZeroOrPtr(q)) | (ZeroOrPtr(p), Ptr(q)) => {
            match join_ptr(p, q) {
                Ptr(r) => ZeroOrPtr(r),
                other => other,
            }
        }
        (Scalar(x), Ptr(p) | ZeroOrPtr(p)) | (Ptr(p) | ZeroOrPtr(p), Scalar(x)) => {
            if x == Iv::exact(0) {
                ZeroOrPtr(p)
            } else {
                Av::TOP
            }
        }
        (FailOr(_), Ptr(_) | ZeroOrPtr(_)) | (Ptr(_) | ZeroOrPtr(_), FailOr(_)) => Av::TOP,
    }
}

/// Windows at most this wide let their pointer deltas ascend exactly
/// instead of widening: the chain is bounded by the window size, so the
/// fixpoint terminates, and guard refinement (`refine_deltas`) keeps its
/// precision — this is what proves a cursor-vs-end-pointer memory walk.
/// The frame (512 B) and every helper-contract window fit; anything
/// larger jumps to the window edge, then ±∞.
const WIDEN_FREE_WINDOW: i64 = 1024;

/// Widening for pointer deltas. A delta still inside its root's window
/// either ascends exactly (small windows, see [`WIDEN_FREE_WINDOW`]) or
/// jumps to the window edge — both keep it within [`DELTA_SANE`], so
/// same-root guard refinement can still bound a walk. Only deltas already
/// outside the window widen to ±∞.
fn widen_delta(o: &Pv, n: &Pv) -> (i64, i64) {
    let small = n.w_hi.saturating_sub(n.w_lo) <= WIDEN_FREE_WINDOW;
    let d_lo = if n.d_lo >= o.d_lo {
        n.d_lo
    } else if n.d_lo >= n.w_lo {
        if small {
            n.d_lo
        } else {
            n.w_lo
        }
    } else {
        i64::MIN
    };
    let d_hi = if n.d_hi <= o.d_hi {
        n.d_hi
    } else if n.d_hi <= n.w_hi {
        if small {
            n.d_hi
        } else {
            n.w_hi
        }
    } else {
        i64::MAX
    };
    (d_lo, d_hi)
}

fn widen_av(old: Av, new: Av) -> Av {
    use Av::*;
    match (old, new) {
        (Scalar(o), Scalar(n)) => Scalar(Iv::widen(o, n)),
        (FailOr(o), FailOr(n)) => FailOr(Iv::widen(o, n)),
        (Ptr(o), Ptr(n)) | (Ptr(o), ZeroOrPtr(n)) if o.kind == n.kind && o.root == n.root => {
            let (d_lo, d_hi) = widen_delta(&o, &n);
            let widened = Pv { d_lo, d_hi, ..n };
            if matches!(new, Ptr(_)) {
                Ptr(widened)
            } else {
                ZeroOrPtr(widened)
            }
        }
        (ZeroOrPtr(o), ZeroOrPtr(n)) if o.kind == n.kind && o.root == n.root => {
            let (d_lo, d_hi) = widen_delta(&o, &n);
            ZeroOrPtr(Pv { d_lo, d_hi, ..n })
        }
        // Shape changed between visits: give up on precision for this slot.
        _ if old == new => new,
        (_, Uninit) => Uninit,
        (_, Ptr(p) | ZeroOrPtr(p)) => {
            // Collapse to an anonymous, windowless pointer so the chain ends.
            ZeroOrPtr(Pv { d_lo: 0, d_hi: 0, w_lo: 0, w_hi: 0, root: ANON_ROOT, ..p })
        }
        _ => Av::TOP,
    }
}

fn join_state(a: &State, b: &State) -> State {
    let mut out = [Av::Uninit; 11];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = join_av(a[i], b[i]);
    }
    out
}

fn widen_state(old: &State, new: &State) -> State {
    let mut out = [Av::Uninit; 11];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = widen_av(old[i], new[i]);
    }
    out
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Block {
    start: usize,
    /// Exclusive end: `end - 1` is the terminator slot.
    end: usize,
}

fn is_branch(op: DOp) -> bool {
    branch_parts(op).is_some()
}

fn build_blocks(code: &[DInsn], n: usize) -> (Vec<Block>, Vec<usize>) {
    let mut leaders = vec![false; n + 1];
    leaders[0] = true;
    for (i, ins) in code.iter().enumerate().take(n) {
        match ins.op {
            DOp::Ja => {
                leaders[ins.target as usize] = true;
                leaders[i + 1] = true;
            }
            DOp::Call | DOp::Exit | DOp::Trap | DOp::DivZero => leaders[i + 1] = true,
            op if is_branch(op) => {
                leaders[ins.target as usize] = true;
                leaders[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut blocks = Vec::new();
    let mut block_of = vec![0usize; n];
    let mut start = 0;
    // `pc == n` is the sentinel that closes the final block, so the range
    // intentionally runs one past the `leaders` table.
    #[allow(clippy::needless_range_loop)]
    for pc in 1..=n {
        if pc == n || leaders[pc] {
            let b = blocks.len();
            blocks.push(Block { start, end: pc });
            for s in block_of.iter_mut().take(pc).skip(start) {
                *s = b;
            }
            start = pc;
        }
    }
    (blocks, block_of)
}

/// Structural successor dense-pcs of a block (all branch edges possible).
fn structural_succs(code: &[DInsn], b: Block, n: usize) -> Vec<usize> {
    let t = &code[b.end - 1];
    match t.op {
        DOp::Ja => vec![t.target as usize],
        DOp::Exit | DOp::Trap | DOp::DivZero => vec![],
        DOp::Call => {
            if b.end < n {
                vec![b.end]
            } else {
                vec![]
            }
        }
        op if is_branch(op) => {
            let mut v = vec![t.target as usize];
            if b.end < n {
                v.push(b.end);
            }
            v
        }
        _ => {
            if b.end < n {
                vec![b.end]
            } else {
                vec![]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Branch classification and refinement
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ck {
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
    Sgt,
    Sge,
    Slt,
    Sle,
    Set,
}

/// `(condition, is_32bit, is_imm)` for conditional jumps; `None` otherwise.
fn branch_parts(op: DOp) -> Option<(Ck, bool, bool)> {
    use DOp::*;
    Some(match op {
        Jeq64Imm => (Ck::Eq, false, true),
        Jeq64Reg => (Ck::Eq, false, false),
        Jeq32Imm => (Ck::Eq, true, true),
        Jeq32Reg => (Ck::Eq, true, false),
        Jne64Imm => (Ck::Ne, false, true),
        Jne64Reg => (Ck::Ne, false, false),
        Jne32Imm => (Ck::Ne, true, true),
        Jne32Reg => (Ck::Ne, true, false),
        Jgt64Imm => (Ck::Gt, false, true),
        Jgt64Reg => (Ck::Gt, false, false),
        Jgt32Imm => (Ck::Gt, true, true),
        Jgt32Reg => (Ck::Gt, true, false),
        Jge64Imm => (Ck::Ge, false, true),
        Jge64Reg => (Ck::Ge, false, false),
        Jge32Imm => (Ck::Ge, true, true),
        Jge32Reg => (Ck::Ge, true, false),
        Jlt64Imm => (Ck::Lt, false, true),
        Jlt64Reg => (Ck::Lt, false, false),
        Jlt32Imm => (Ck::Lt, true, true),
        Jlt32Reg => (Ck::Lt, true, false),
        Jle64Imm => (Ck::Le, false, true),
        Jle64Reg => (Ck::Le, false, false),
        Jle32Imm => (Ck::Le, true, true),
        Jle32Reg => (Ck::Le, true, false),
        Jsgt64Imm => (Ck::Sgt, false, true),
        Jsgt64Reg => (Ck::Sgt, false, false),
        Jsgt32Imm => (Ck::Sgt, true, true),
        Jsgt32Reg => (Ck::Sgt, true, false),
        Jsge64Imm => (Ck::Sge, false, true),
        Jsge64Reg => (Ck::Sge, false, false),
        Jsge32Imm => (Ck::Sge, true, true),
        Jsge32Reg => (Ck::Sge, true, false),
        Jslt64Imm => (Ck::Slt, false, true),
        Jslt64Reg => (Ck::Slt, false, false),
        Jslt32Imm => (Ck::Slt, true, true),
        Jslt32Reg => (Ck::Slt, true, false),
        Jsle64Imm => (Ck::Sle, false, true),
        Jsle64Reg => (Ck::Sle, false, false),
        Jsle32Imm => (Ck::Sle, true, true),
        Jsle32Reg => (Ck::Sle, true, false),
        Jset64Imm => (Ck::Set, false, true),
        Jset64Reg => (Ck::Set, false, false),
        Jset32Imm => (Ck::Set, true, true),
        Jset32Reg => (Ck::Set, true, false),
        _ => return None,
    })
}

fn invert(ck: Ck) -> Option<Ck> {
    Some(match ck {
        Ck::Eq => Ck::Ne,
        Ck::Ne => Ck::Eq,
        Ck::Gt => Ck::Le,
        Ck::Ge => Ck::Lt,
        Ck::Lt => Ck::Ge,
        Ck::Le => Ck::Gt,
        Ck::Sgt => Ck::Sle,
        Ck::Sge => Ck::Slt,
        Ck::Slt => Ck::Sge,
        Ck::Sle => Ck::Sgt,
        Ck::Set => return None,
    })
}

/// Map a signed compare to its unsigned twin when every involved value is
/// provably in the non-negative `i64` range.
fn designed(ck: Ck, ivs: &[Iv], k: Option<u64>) -> Option<Ck> {
    let unsigned = match ck {
        Ck::Sgt => Ck::Gt,
        Ck::Sge => Ck::Ge,
        Ck::Slt => Ck::Lt,
        Ck::Sle => Ck::Le,
        other => return Some(other),
    };
    let sane =
        ivs.iter().all(|iv| iv.hi <= i64::MAX as u64) && k.is_none_or(|k| k <= i64::MAX as u64);
    sane.then_some(unsigned)
}

/// Refine `iv` under `iv <ck> k` holding. `None` = condition cannot hold.
fn refine_iv(iv: Iv, ck: Ck, k: u64) -> Option<Iv> {
    let out = match ck {
        Ck::Eq => Iv { lo: iv.lo.max(k), hi: iv.hi.min(k) },
        Ck::Ne => {
            if iv.is_exact() == Some(k) {
                return None;
            }
            let mut o = iv;
            if o.lo == k {
                o.lo = o.lo.checked_add(1)?;
            }
            if o.hi == k {
                o.hi = o.hi.checked_sub(1)?;
            }
            o
        }
        Ck::Gt => Iv { lo: iv.lo.max(k.checked_add(1)?), hi: iv.hi },
        Ck::Ge => Iv { lo: iv.lo.max(k), hi: iv.hi },
        Ck::Lt => Iv { lo: iv.lo, hi: iv.hi.min(k.checked_sub(1)?) },
        Ck::Le => Iv { lo: iv.lo, hi: iv.hi.min(k) },
        // `Set` with a non-zero mask implies the value is non-zero only for
        // mask == value cases; not worth modelling. Signed forms reach here
        // only when `designed` already mapped them away.
        _ => iv,
    };
    (out.lo <= out.hi).then_some(out)
}

/// Refine both sides of `a <ck> b`. `None` = condition cannot hold.
fn refine_pair(a: Iv, b: Iv, ck: Ck) -> Option<(Iv, Iv)> {
    let out = match ck {
        Ck::Eq => {
            let m = Iv { lo: a.lo.max(b.lo), hi: a.hi.min(b.hi) };
            (m, m)
        }
        Ck::Ne => {
            if a.is_exact().is_some() && a.is_exact() == b.is_exact() {
                return None;
            }
            (a, b)
        }
        Ck::Gt => (
            Iv { lo: a.lo.max(b.lo.checked_add(1)?), hi: a.hi },
            Iv { lo: b.lo, hi: b.hi.min(a.hi.checked_sub(1)?) },
        ),
        Ck::Ge => (Iv { lo: a.lo.max(b.lo), hi: a.hi }, Iv { lo: b.lo, hi: b.hi.min(a.hi) }),
        Ck::Lt => (
            Iv { lo: a.lo, hi: a.hi.min(b.hi.checked_sub(1)?) },
            Iv { lo: b.lo.max(a.lo.checked_add(1)?), hi: b.hi },
        ),
        Ck::Le => (Iv { lo: a.lo, hi: a.hi.min(b.hi) }, Iv { lo: b.lo.max(a.lo), hi: b.hi }),
        _ => (a, b),
    };
    (out.0.lo <= out.0.hi && out.1.lo <= out.1.hi).then_some(out)
}

/// Same-root pointer-delta refinement (signed `i64` mirror of `refine_pair`).
fn refine_deltas(a: (i64, i64), b: (i64, i64), ck: Ck) -> Option<((i64, i64), (i64, i64))> {
    let out = match ck {
        Ck::Eq => {
            let m = (a.0.max(b.0), a.1.min(b.1));
            (m, m)
        }
        Ck::Ne => {
            if a.0 == a.1 && b.0 == b.1 && a.0 == b.0 {
                return None;
            }
            (a, b)
        }
        Ck::Gt => ((a.0.max(b.0.checked_add(1)?), a.1), (b.0, b.1.min(a.1.checked_sub(1)?))),
        Ck::Ge => ((a.0.max(b.0), a.1), (b.0, b.1.min(a.1))),
        Ck::Lt => ((a.0, a.1.min(b.1.checked_sub(1)?)), (b.0.max(a.0.checked_add(1)?), b.1)),
        Ck::Le => ((a.0, a.1.min(b.1)), (b.0.max(a.0), b.1)),
        _ => (a, b),
    };
    (out.0 .0 <= out.0 .1 && out.1 .0 <= out.1 .1).then_some(out)
}

/// Refine a `FailOr` as the two-part union `iv ∪ {MAX}` under an imm compare.
fn refine_failor(iv: Iv, ck: Ck, k: u64) -> Option<Av> {
    let iv_part = refine_iv(iv, ck, k);
    let max_part = refine_iv(Iv::exact(u64::MAX), ck, k).is_some();
    match (iv_part, max_part) {
        (Some(v), true) => Some(Av::FailOr(v)),
        (Some(v), false) => Some(Av::Scalar(v)),
        (None, true) => Some(Av::Scalar(Iv::exact(u64::MAX))),
        (None, false) => None,
    }
}

/// Refine the branch operands in `st` under the branch at `ins` going
/// `taken`-ward. `None` = that edge is infeasible.
fn refine_edge(st: &State, ins: &DInsn, taken: bool) -> Option<State> {
    let (ck, is32, is_imm) = branch_parts(ins.op)?;
    let ck = if taken {
        ck
    } else {
        match invert(ck) {
            Some(c) => c,
            None => return Some(*st), // Jset fall: no refinement
        }
    };
    let mut out = *st;
    let dst = ins.dst as usize;
    if is_imm {
        let k = ins.imm;
        match st[dst] {
            Av::Scalar(iv) => {
                if is32 {
                    if iv.hi <= u32::MAX as u64 {
                        let ck = designed(ck, &[iv], Some(k as u32 as u64))?;
                        out[dst] = Av::Scalar(refine_iv(iv, ck, k as u32 as u64)?);
                    }
                } else {
                    let ck = match designed(ck, &[iv], Some(k)) {
                        Some(c) => c,
                        None => return Some(out),
                    };
                    out[dst] = Av::Scalar(refine_iv(iv, ck, k)?);
                }
            }
            Av::FailOr(iv) if !is32 => {
                // The implicit MAX element is -1 signed, so the
                // signed-to-unsigned mapping is unsound here: refine only
                // genuinely unsigned compares.
                if matches!(ck, Ck::Sgt | Ck::Sge | Ck::Slt | Ck::Sle | Ck::Set) {
                    return Some(out);
                }
                out[dst] = refine_failor(iv, ck, k)?;
            }
            Av::ZeroOrPtr(pv) if !is32 && k == 0 => match ck {
                Ck::Eq => out[dst] = Av::Scalar(Iv::exact(0)),
                Ck::Ne => out[dst] = Av::Ptr(pv),
                _ => {}
            },
            Av::Ptr(_) if !is32 && k == 0 && ck == Ck::Eq => {
                // A proven pointer is never null: regions start above 0.
                return None;
            }
            _ => {}
        }
    } else {
        let src = ins.src as usize;
        match (st[dst], st[src]) {
            (Av::Scalar(a), Av::Scalar(b)) => {
                if is32 {
                    if a.hi <= u32::MAX as u64 && b.hi <= u32::MAX as u64 {
                        let ck = designed(ck, &[a, b], None)?;
                        let (ra, rb) = refine_pair(a, b, ck)?;
                        out[dst] = Av::Scalar(ra);
                        out[src] = Av::Scalar(rb);
                    }
                } else {
                    let ck = match designed(ck, &[a, b], None) {
                        Some(c) => c,
                        None => return Some(out),
                    };
                    let (ra, rb) = refine_pair(a, b, ck)?;
                    out[dst] = Av::Scalar(ra);
                    out[src] = Av::Scalar(rb);
                }
            }
            (Av::Ptr(p), Av::Ptr(q))
                if !is32
                    && p.root == q.root
                    && p.root != ANON_ROOT
                    && p.d_lo.abs() < DELTA_SANE
                    && p.d_hi.abs() < DELTA_SANE
                    && q.d_lo.abs() < DELTA_SANE
                    && q.d_hi.abs() < DELTA_SANE =>
            {
                // Same allocation: unsigned address order == delta order
                // (bases are well under 2^31, deltas sanity-bounded).
                let ck = match ck {
                    Ck::Sgt | Ck::Sge | Ck::Slt | Ck::Sle | Ck::Set => return Some(out),
                    c => c,
                };
                let ((al, ah), (bl, bh)) = refine_deltas((p.d_lo, p.d_hi), (q.d_lo, q.d_hi), ck)?;
                out[dst] = Av::Ptr(Pv { d_lo: al, d_hi: ah, ..p });
                out[src] = Av::Ptr(Pv { d_lo: bl, d_hi: bh, ..q });
            }
            _ => {}
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Transfer function
// ---------------------------------------------------------------------------

fn truncate32(av: Av) -> Av {
    match av {
        Av::Scalar(iv) if iv.hi <= u32::MAX as u64 => Av::Scalar(iv),
        _ => Av::Scalar(Iv { lo: 0, hi: u32::MAX as u64 }),
    }
}

fn add_iv(a: Iv, b: Iv) -> Iv {
    match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
        (Some(lo), Some(hi)) => Iv { lo, hi },
        _ => Iv::TOP,
    }
}

fn sub_iv(a: Iv, b: Iv) -> Iv {
    match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
        (Some(lo), Some(hi)) => Iv { lo, hi },
        _ => Iv::TOP,
    }
}

fn signed_k(imm: u64) -> i64 {
    imm as i64
}

/// Abstract effect of one non-terminator, non-call instruction.
fn step(st: &mut State, ins: &DInsn) {
    use DOp::*;
    let dst = ins.dst as usize;
    let k = ins.imm;
    let src_av = st[ins.src as usize];
    let d_iv = st[dst].as_iv();
    let s_iv = src_av.as_iv();
    let new: Av = match ins.op {
        Mov64Imm | LdDw => Av::Scalar(Iv::exact(k)),
        Mov64Reg => src_av,
        Mov32Imm => Av::Scalar(Iv::exact(k as u32 as u64)),
        Mov32Reg => truncate32(src_av),
        Add64Imm => match st[dst] {
            Av::Ptr(p) => p.shift(signed_k(k)).map_or(Av::TOP, Av::Ptr),
            _ => {
                let kk = signed_k(k);
                match (d_iv.lo.checked_add_signed(kk), d_iv.hi.checked_add_signed(kk)) {
                    (Some(lo), Some(hi)) => Av::Scalar(Iv { lo, hi }),
                    _ => Av::TOP,
                }
            }
        },
        Add64Reg => match (st[dst], src_av) {
            (Av::Ptr(p), _) => p.shift_iv(s_iv, false).map_or(Av::TOP, Av::Ptr),
            (_, Av::Ptr(p)) => p.shift_iv(d_iv, false).map_or(Av::TOP, Av::Ptr),
            _ => Av::Scalar(add_iv(d_iv, s_iv)),
        },
        Sub64Imm => match st[dst] {
            Av::Ptr(p) => {
                p.shift(signed_k(k).checked_neg().unwrap_or(i64::MAX)).map_or(Av::TOP, Av::Ptr)
            }
            _ => {
                let kk = signed_k(k);
                match (d_iv.lo.checked_add_signed(-kk), d_iv.hi.checked_add_signed(-kk)) {
                    (Some(lo), Some(hi)) if kk != i64::MIN => Av::Scalar(Iv { lo, hi }),
                    _ => Av::TOP,
                }
            }
        },
        Sub64Reg => match (st[dst], src_av) {
            (Av::Ptr(p), Av::Ptr(q)) if p.root == q.root && p.root != ANON_ROOT => {
                // Same-allocation pointer difference is the delta difference.
                let lo = p.d_lo.saturating_sub(q.d_hi);
                let hi = p.d_hi.saturating_sub(q.d_lo);
                if lo >= 0 {
                    Av::Scalar(Iv { lo: lo as u64, hi: hi as u64 })
                } else {
                    Av::TOP
                }
            }
            (Av::Ptr(p), _) => p.shift_iv(s_iv, true).map_or(Av::TOP, Av::Ptr),
            _ => Av::Scalar(sub_iv(d_iv, s_iv)),
        },
        Mul64Imm | Mul64Reg => {
            let b = if matches!(ins.op, Mul64Imm) { Iv::exact(k) } else { s_iv };
            match (d_iv.lo.checked_mul(b.lo), d_iv.hi.checked_mul(b.hi)) {
                (Some(lo), Some(hi)) => Av::Scalar(Iv { lo, hi }),
                _ => Av::TOP,
            }
        }
        Div64Imm => {
            // Structural verify rejects constant zero divisors.
            Av::Scalar(Iv { lo: d_iv.lo / k.max(1), hi: d_iv.hi / k.max(1) })
        }
        Div64Reg => Av::Scalar(Iv { lo: 0, hi: d_iv.hi }),
        Mod64Imm => Av::Scalar(Iv { lo: 0, hi: (k.max(1) - 1).min(d_iv.hi) }),
        Mod64Reg => Av::Scalar(Iv { lo: 0, hi: d_iv.hi }),
        And64Imm => Av::Scalar(Iv { lo: 0, hi: k.min(d_iv.hi) }),
        And64Reg => Av::Scalar(Iv { lo: 0, hi: d_iv.hi.min(s_iv.hi) }),
        Or64Imm | Or64Reg | Xor64Imm | Xor64Reg => match (d_iv.is_exact(), ins.op) {
            (Some(a), Or64Imm) => Av::Scalar(Iv::exact(a | k)),
            (Some(a), Xor64Imm) => Av::Scalar(Iv::exact(a ^ k)),
            _ => Av::TOP,
        },
        Lsh64Imm => {
            let sh = (k & 63) as u32;
            match (d_iv.lo.checked_shl(sh), d_iv.hi.checked_shl(sh)) {
                (Some(lo), Some(hi)) if d_iv.hi.leading_zeros() >= sh => Av::Scalar(Iv { lo, hi }),
                _ => Av::TOP,
            }
        }
        Rsh64Imm => {
            let sh = (k & 63) as u32;
            Av::Scalar(Iv { lo: d_iv.lo >> sh, hi: d_iv.hi >> sh })
        }
        Arsh64Imm => {
            let sh = (k & 63) as u32;
            if d_iv.hi <= i64::MAX as u64 {
                Av::Scalar(Iv { lo: d_iv.lo >> sh, hi: d_iv.hi >> sh })
            } else {
                Av::TOP
            }
        }
        Lsh64Reg | Rsh64Reg | Arsh64Reg => Av::TOP,
        Neg64 => match d_iv.is_exact() {
            Some(a) => Av::Scalar(Iv::exact(a.wrapping_neg())),
            None => Av::TOP,
        },
        // 32-bit ALU: exact when both operands are constants, else the
        // 32-bit range.
        Add32Imm | Sub32Imm | Mul32Imm | Div32Imm | Mod32Imm | Or32Imm | And32Imm | Xor32Imm
        | Lsh32Imm | Rsh32Imm | Arsh32Imm => {
            let r32 = |x: u32| -> Option<u32> {
                let kk = k as u32;
                Some(match ins.op {
                    Add32Imm => x.wrapping_add(kk),
                    Sub32Imm => x.wrapping_sub(kk),
                    Mul32Imm => x.wrapping_mul(kk),
                    Div32Imm => x / kk.max(1),
                    Mod32Imm => x % kk.max(1),
                    Or32Imm => x | kk,
                    And32Imm => x & kk,
                    Xor32Imm => x ^ kk,
                    Lsh32Imm => x.wrapping_shl(kk & 31),
                    Rsh32Imm => x.wrapping_shr(kk & 31),
                    Arsh32Imm => ((x as i32).wrapping_shr(kk & 31)) as u32,
                    _ => return None,
                })
            };
            match d_iv.is_exact().filter(|v| *v <= u32::MAX as u64) {
                Some(a) => match r32(a as u32) {
                    Some(v) => Av::Scalar(Iv::exact(v as u64)),
                    None => Av::Scalar(Iv { lo: 0, hi: u32::MAX as u64 }),
                },
                None => match ins.op {
                    And32Imm => Av::Scalar(Iv { lo: 0, hi: (k as u32 as u64).min(d_iv.hi) }),
                    Mod32Imm => Av::Scalar(Iv { lo: 0, hi: (k as u32).saturating_sub(1) as u64 }),
                    _ => Av::Scalar(Iv { lo: 0, hi: u32::MAX as u64 }),
                },
            }
        }
        Add32Reg | Sub32Reg | Mul32Reg | Div32Reg | Mod32Reg | Or32Reg | And32Reg | Xor32Reg
        | Lsh32Reg | Rsh32Reg | Arsh32Reg | Neg32 => Av::Scalar(Iv { lo: 0, hi: u32::MAX as u64 }),
        Be16 | Le16 => Av::Scalar(Iv { lo: 0, hi: 0xFFFF }),
        Be32 | Le32 => Av::Scalar(Iv { lo: 0, hi: u32::MAX as u64 }),
        Be64 | Le64 => Av::TOP,
        LdxDw => Av::TOP,
        LdxW => Av::Scalar(Iv { lo: 0, hi: u32::MAX as u64 }),
        LdxH => Av::Scalar(Iv { lo: 0, hi: 0xFFFF }),
        LdxB => Av::Scalar(Iv { lo: 0, hi: 0xFF }),
        // Stores have no register effect; terminators are handled by the
        // caller.
        _ => return,
    };
    st[dst] = new;
}

/// Abstract effect of a helper call at dense pc `pc`.
fn step_call(st: &mut State, ins: &DInsn, pc: usize, opts: &AnalysisOptions) {
    let root = (pc + 1) as u32;
    // A re-executed call site returns a fresh allocation: demote survivors
    // of the previous execution to anonymous provenance.
    for av in st.iter_mut() {
        match av {
            Av::Ptr(p) if p.root == root => *av = Av::Ptr(p.anonymize()),
            Av::ZeroOrPtr(p) if p.root == root => *av = Av::ZeroOrPtr(p.anonymize()),
            _ => {}
        }
    }
    let ret = match opts.contracts.get(&ins.target) {
        Some(c) => c.ret,
        None => HelperRet::Scalar,
    };
    let r0 = match ret {
        HelperRet::Scalar => Av::TOP,
        HelperRet::LenOrFail { cap_arg } => {
            let cap = st[(1 + cap_arg.min(4)) as usize].as_iv();
            Av::FailOr(Iv { lo: 0, hi: cap.hi })
        }
        HelperRet::ZeroOrPtr { kind, size } => Av::ZeroOrPtr(Pv {
            kind: kind.elide_kind(),
            root,
            d_lo: 0,
            d_hi: 0,
            w_lo: 0,
            w_hi: size.map_or(0, |s| s.min(i64::MAX as u64) as i64),
        }),
        HelperRet::ZeroOrPtrSizedByArg { kind, size_arg } => {
            let min = match st[(1 + size_arg.min(4)) as usize] {
                Av::Scalar(iv) => iv.lo.min(i64::MAX as u64) as i64,
                _ => 0,
            };
            Av::ZeroOrPtr(Pv {
                kind: kind.elide_kind(),
                root,
                d_lo: 0,
                d_hi: 0,
                w_lo: 0,
                w_hi: min,
            })
        }
    };
    st[0] = r0;
    // Both engines zero r1-r5 after a successful helper return.
    for r in st.iter_mut().take(6).skip(1) {
        *r = Av::Scalar(Iv::exact(0));
    }
}

/// Width in bytes of a memory access op, with `true` for stores.
fn mem_parts(op: DOp) -> Option<(i64, bool)> {
    use DOp::*;
    Some(match op {
        LdxB => (1, false),
        LdxH => (2, false),
        LdxW => (4, false),
        LdxDw => (8, false),
        StB | StxB => (1, true),
        StH | StxH => (2, true),
        StW | StxW => (4, true),
        StDw | StxDw => (8, true),
        _ => return None,
    })
}

/// Registers read by an instruction, as a bitmask, for uninit detection.
/// `Call` is deliberately empty (argument arity is unknown — fail open).
fn uses_mask(ins: &DInsn) -> u16 {
    use DOp::*;
    let d = 1u16 << ins.dst;
    let s = 1u16 << ins.src;
    match ins.op {
        Mov64Imm | Mov32Imm | LdDw | Ja | Call | Trap | DivZero => 0,
        Mov64Reg | Mov32Reg => s,
        Exit => 1, // r0
        LdxDw | LdxW | LdxH | LdxB => s,
        StDw | StW | StH | StB => d,
        StxDw | StxW | StxH | StxB => d | s,
        op if branch_parts(op).is_some() => {
            if branch_parts(op).is_some_and(|(_, _, imm)| imm) {
                d
            } else {
                d | s
            }
        }
        // Remaining ALU/byteswap forms read dst, reg forms also read src.
        Add64Reg | Sub64Reg | Mul64Reg | Div64Reg | Mod64Reg | Or64Reg | And64Reg | Xor64Reg
        | Lsh64Reg | Rsh64Reg | Arsh64Reg | Add32Reg | Sub32Reg | Mul32Reg | Div32Reg
        | Mod32Reg | Or32Reg | And32Reg | Xor32Reg | Lsh32Reg | Rsh32Reg | Arsh32Reg => d | s,
        _ => d,
    }
}

/// Register defined by an instruction (excluding `Call`'s clobbers).
fn def_reg(ins: &DInsn) -> Option<u8> {
    use DOp::*;
    match ins.op {
        StDw | StW | StH | StB | StxDw | StxW | StxH | StxB | Ja | Exit | Trap | DivZero => None,
        op if branch_parts(op).is_some() => None,
        Call => Some(0),
        _ => Some(ins.dst),
    }
}

/// Whether a def is side-effect-free (safe to call "dead" in lint output).
fn pure_def(op: DOp) -> bool {
    use DOp::*;
    !matches!(
        op,
        LdxDw
            | LdxW
            | LdxH
            | LdxB
            | Call
            | StDw
            | StW
            | StH
            | StB
            | StxDw
            | StxW
            | StxH
            | StxB
            | Ja
            | Exit
            | Trap
            | DivZero
    ) && branch_parts(op).is_none()
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Cfg {
    blocks: Vec<Block>,
    block_of: Vec<usize>,
    n: usize,
}

/// Compute the per-edge successor states of one block: the body transfer
/// followed by terminator-specific edge refinement.
fn out_edges(
    cfg: &Cfg,
    code: &[DInsn],
    b: usize,
    entry: &State,
    opts: &AnalysisOptions,
) -> Vec<(usize, State)> {
    let blk = cfg.blocks[b];
    let mut st = *entry;
    for ins in code.iter().take(blk.end - 1).skip(blk.start) {
        step(&mut st, ins);
    }
    let term = &code[blk.end - 1];
    let succ_block = |pc: usize| cfg.block_of[pc];
    match term.op {
        DOp::Ja => vec![(succ_block(term.target as usize), st)],
        DOp::Exit | DOp::Trap | DOp::DivZero => vec![],
        DOp::Call => {
            step_call(&mut st, term, blk.end - 1, opts);
            if blk.end < cfg.n {
                vec![(succ_block(blk.end), st)]
            } else {
                vec![]
            }
        }
        op if is_branch(op) => {
            let mut v = Vec::with_capacity(2);
            if let Some(t) = refine_edge(&st, term, true) {
                v.push((succ_block(term.target as usize), t));
            }
            if blk.end < cfg.n {
                if let Some(f) = refine_edge(&st, term, false) {
                    v.push((succ_block(blk.end), f));
                }
            }
            v
        }
        _ => {
            step(&mut st, term);
            if blk.end < cfg.n {
                vec![(succ_block(blk.end), st)]
            } else {
                vec![]
            }
        }
    }
}

/// Run the abstract interpreter over a structurally-verified program,
/// stamping proof bits into `lp` and recording `worst_fuel`.
///
/// `prog` is the original slot-indexed program, used only to render
/// mnemonics in diagnostics.
pub fn analyze(
    lp: &mut LoadedProgram,
    prog: &Program,
    opts: &AnalysisOptions,
) -> Result<Analysis, VerifyError> {
    let n = lp.len();
    if n == 0 {
        return Ok(Analysis::default());
    }
    let code: Vec<DInsn> = lp.code[..n].to_vec();
    let (blocks, block_of) = build_blocks(&code, n);
    let cfg = Cfg { blocks: blocks.clone(), block_of, n };
    let slot_mn = |i: usize| -> &'static str { mnemonic(prog.insns[code[i].slot as usize].opcode) };
    let slot_pc = |i: usize| code[i].slot as usize;

    // Structural reachability: every block must be reachable with all branch
    // edges considered possible. (Semantically-dead blocks under the inferred
    // value ranges are *not* errors — they just keep their dynamic checks.)
    let mut struct_reach = vec![false; blocks.len()];
    let mut queue = VecDeque::from([0usize]);
    struct_reach[0] = true;
    while let Some(b) = queue.pop_front() {
        for pc in structural_succs(&code, blocks[b], n) {
            let s = cfg.block_of[pc];
            if !struct_reach[s] {
                struct_reach[s] = true;
                queue.push_back(s);
            }
        }
    }
    if let Some(dead) = struct_reach.iter().position(|r| !r) {
        return Err(VerifyError::UnreachableCode { pc: slot_pc(blocks[dead].start) });
    }

    // Worklist fixpoint over block entry states.
    let mut entry: Vec<Option<State>> = vec![None; blocks.len()];
    entry[0] = Some(entry_state());
    let mut visits = vec![0u32; blocks.len()];
    let mut work = VecDeque::from([0usize]);
    let mut queued = vec![false; blocks.len()];
    queued[0] = true;
    // Safety valve: widening guarantees termination, but if the ascent is
    // ever pathologically long, fail open (no proofs, no errors) rather
    // than stall the load path. Sized so byte-granular pointer walks over
    // the frame (up to [`WIDEN_FREE_WINDOW`] exact ascent steps per loop,
    // a few block visits each) converge comfortably.
    let mut budget = 256usize.saturating_mul(blocks.len()).max(16384);
    while let Some(b) = work.pop_front() {
        if budget == 0 {
            return Ok(Analysis::default());
        }
        budget -= 1;
        queued[b] = false;
        let st = entry[b].expect("queued blocks have entry states");
        for (succ, new_st) in out_edges(&cfg, &code, b, &st, opts) {
            let merged = match &entry[succ] {
                None => new_st,
                Some(old) => {
                    let joined = join_state(old, &new_st);
                    if visits[succ] >= WIDEN_AFTER {
                        widen_state(old, &joined)
                    } else {
                        joined
                    }
                }
            };
            if entry[succ] != Some(merged) {
                visits[succ] += 1;
                entry[succ] = Some(merged);
                if !queued[succ] {
                    queued[succ] = true;
                    work.push_back(succ);
                }
            }
        }
    }

    // Final annotation pass: hard errors, proof bits, warnings.
    let mut analysis = Analysis::default();
    for (b, blk) in blocks.iter().enumerate() {
        let Some(mut st) = entry[b] else { continue };
        for (i, &ins) in code.iter().enumerate().take(blk.end).skip(blk.start) {
            // Uninitialized reads are hard errors.
            let used = uses_mask(&ins);
            for r in 0..11u8 {
                if used & (1 << r) != 0 && st[r as usize] == Av::Uninit {
                    return Err(VerifyError::UninitRead {
                        pc: slot_pc(i),
                        reg: r,
                        mnemonic: slot_mn(i),
                    });
                }
            }
            match ins.op {
                DOp::Call => {
                    let helper = ins.target;
                    if let Some(c) = opts.contracts.get(&helper) {
                        if !c.allowed {
                            return Err(VerifyError::HelperNotAllowed { pc: slot_pc(i), helper });
                        }
                        for &a in &c.ptr_args {
                            if a > 4 {
                                continue;
                            }
                            // Only reject what is *provably* a bad pointer: a
                            // nonzero constant below every mapped region.
                            if let Av::Scalar(iv) = st[(1 + a) as usize] {
                                if let Some(v) = iv.is_exact() {
                                    if v != 0 && v < STACK_BASE {
                                        return Err(VerifyError::BadHelperArg {
                                            pc: slot_pc(i),
                                            helper,
                                            arg: a,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    step_call(&mut st, &ins, i, opts);
                }
                op if is_branch(op) => {
                    let t = refine_edge(&st, &ins, true).is_some();
                    let f = blk.end < n && refine_edge(&st, &ins, false).is_some();
                    if t != f {
                        analysis.warnings.push(Warning::ConstBranch {
                            pc: slot_pc(i),
                            mnemonic: slot_mn(i),
                            taken: t,
                        });
                    }
                }
                _ => {
                    if let Some((size, is_store)) = mem_parts(ins.op) {
                        analysis.mem_accesses += 1;
                        let addr_reg = if is_store { ins.dst } else { ins.src } as usize;
                        if let Av::Ptr(p) = st[addr_reg] {
                            let off = ins.off as i64;
                            if p.kind == elide::KIND_STACK && p.root == FRAME_ROOT {
                                let depth = -(p.d_lo + off);
                                analysis.stack_high_water = analysis.stack_high_water.max(depth);
                            }
                            let lo = p.d_lo.checked_add(off);
                            let hi = p.d_hi.checked_add(off).and_then(|v| v.checked_add(size));
                            if let (Some(lo), Some(hi)) = (lo, hi) {
                                if lo >= p.w_lo && hi <= p.w_hi {
                                    lp.code[i].flags = elide::pack(p.kind);
                                    if is_store {
                                        analysis.elided_stores += 1;
                                    } else {
                                        analysis.elided_loads += 1;
                                    }
                                }
                            }
                        }
                    }
                    step(&mut st, &ins);
                }
            }
        }
    }

    // Register-level liveness for dead-store warnings (structural edges).
    let mut live_in: Vec<u16> = vec![0; blocks.len()];
    loop {
        let mut changed = false;
        for (b, blk) in blocks.iter().enumerate().rev() {
            let mut live: u16 = structural_succs(&code, *blk, n)
                .iter()
                .map(|&pc| live_in[cfg.block_of[pc]])
                .fold(0, |acc, l| acc | l);
            for i in (blk.start..blk.end).rev() {
                let ins = &code[i];
                if ins.op == DOp::Call {
                    live &= !0x3F; // defs r0-r5
                    live |= 0x3E; // uses r1-r5 (conservative arity)
                } else {
                    if let Some(d) = def_reg(ins) {
                        live &= !(1 << d);
                    }
                    live |= uses_mask(ins);
                }
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (b, blk) in blocks.iter().enumerate() {
        if entry[b].is_none() {
            continue;
        }
        let mut live: u16 = structural_succs(&code, *blk, n)
            .iter()
            .map(|&pc| live_in[cfg.block_of[pc]])
            .fold(0, |acc, l| acc | l);
        for i in (blk.start..blk.end).rev() {
            let ins = &code[i];
            if ins.op == DOp::Call {
                live &= !0x3F;
                live |= 0x3E;
            } else {
                if let Some(d) = def_reg(ins) {
                    if pure_def(ins.op) && live & (1 << d) == 0 {
                        analysis.warnings.push(Warning::DeadStore {
                            pc: slot_pc(i),
                            reg: d,
                            mnemonic: slot_mn(i),
                        });
                    }
                    live &= !(1 << d);
                }
                live |= uses_mask(ins);
            }
        }
    }

    // Loop bounds: counted self-loops, then a longest path over the DAG.
    analysis.worst_fuel = infer_worst_fuel(&cfg, &code, &entry, opts, &mut analysis.bounded_loops);
    lp.worst_fuel = analysis.worst_fuel;
    lp.has_elided = analysis.elided_loads + analysis.elided_stores > 0;
    analysis.warnings.sort_by_key(|w| match w {
        Warning::DeadStore { pc, .. } | Warning::ConstBranch { pc, .. } => *pc,
    });
    Ok(analysis)
}

/// Trip bound of the self-loop block `b`, from its entry state over
/// non-back-edge predecessors. Recognizes the two counted patterns:
/// decrement-to-zero (`c -= 1; jne c, 0, loop`) and increment-to-limit
/// (`c += d; jlt/jle c, K, loop`).
fn self_loop_trips(cfg: &Cfg, code: &[DInsn], b: usize, outside: &State) -> Option<u128> {
    let blk = cfg.blocks[b];
    let term = &code[blk.end - 1];
    let (ck, is32, is_imm) = branch_parts(term.op)?;
    if is32 || !is_imm || cfg.block_of[term.target as usize] != b {
        return None;
    }
    let c = term.dst;
    // Exactly one write to the counter inside the block, and no other def
    // may alias it.
    let mut write: Option<&DInsn> = None;
    for ins in code.iter().take(blk.end - 1).skip(blk.start) {
        if def_reg(ins) == Some(c) || (ins.op == DOp::Call && c <= 5) {
            if write.is_some() || ins.op == DOp::Call {
                return None;
            }
            write = Some(ins);
        }
    }
    let w = write?;
    let entry_c = match outside[c as usize] {
        Av::Scalar(iv) => iv,
        _ => return None,
    };
    let kk = signed_k(w.imm);
    match (w.op, ck) {
        // while (--c != 0): trips bounded by the entry value.
        (DOp::Add64Imm, Ck::Ne) if kk == -1 && term.imm == 0 => {
            (entry_c.lo >= 1 && entry_c.hi < u64::MAX).then_some(entry_c.hi as u128)
        }
        (DOp::Sub64Imm, Ck::Ne) if kk == 1 && term.imm == 0 => {
            (entry_c.lo >= 1 && entry_c.hi < u64::MAX).then_some(entry_c.hi as u128)
        }
        // while ((c += d) < K): ceil((K - lo) / d), at least one execution.
        (DOp::Add64Imm, Ck::Lt | Ck::Le) if kk >= 1 => {
            let d = kk as u64;
            let k_excl = if ck == Ck::Lt {
                term.imm
            } else {
                term.imm.checked_add(1)?
            };
            // Neither the first increment nor the step past K may wrap.
            entry_c.hi.checked_add(d)?;
            k_excl.checked_add(d)?;
            let span = k_excl.saturating_sub(entry_c.lo);
            Some(((span.div_ceil(d)) as u128).max(1))
        }
        _ => None,
    }
}

fn infer_worst_fuel(
    cfg: &Cfg,
    code: &[DInsn],
    entry: &[Option<State>],
    opts: &AnalysisOptions,
    bounded_loops: &mut usize,
) -> Option<u64> {
    let nb = cfg.blocks.len();
    // Per-block weight: instruction count × trip bound for self-loops.
    let mut weight: Vec<u128> = Vec::with_capacity(nb);
    // Entry-from-outside states for self-loop trip inference.
    let mut outside: Vec<Option<State>> = vec![None; nb];
    for (p, e) in entry.iter().enumerate().take(nb) {
        let Some(st) = e else { continue };
        for (succ, edge_st) in out_edges(cfg, code, p, st, opts) {
            if succ == p {
                continue;
            }
            outside[succ] = Some(match &outside[succ] {
                None => edge_st,
                Some(old) => join_state(old, &edge_st),
            });
        }
    }
    outside[0] = Some(match &outside[0] {
        None => entry_state(),
        Some(st) => join_state(st, &entry_state()),
    });

    let mut self_loop = vec![false; nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let cost = (blk.end - blk.start) as u128;
        let term = &code[blk.end - 1];
        let loops_to_self = match term.op {
            DOp::Ja => cfg.block_of[term.target as usize] == b,
            op if is_branch(op) => cfg.block_of[term.target as usize] == b,
            _ => false,
        };
        if loops_to_self {
            self_loop[b] = true;
            let trips = outside[b].as_ref().and_then(|st| self_loop_trips(cfg, code, b, st))?;
            *bounded_loops += 1;
            weight.push(cost.checked_mul(trips)?);
        } else {
            weight.push(cost);
        }
    }

    // Kahn topological sort with self-loop edges removed; any remaining
    // cycle means a multi-block loop we cannot bound.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut indeg = vec![0usize; nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for pc in structural_succs(code, *blk, cfg.n) {
            let s = cfg.block_of[pc];
            if s == b && self_loop[b] {
                continue;
            }
            succs[b].push(s);
            indeg[s] += 1;
        }
    }
    let mut order = VecDeque::new();
    for (b, &d) in indeg.iter().enumerate() {
        if d == 0 {
            order.push_back(b);
        }
    }
    let mut dist: Vec<u128> = weight.clone();
    let mut seen = 0;
    while let Some(b) = order.pop_front() {
        seen += 1;
        for &s in &succs[b] {
            let cand = dist[b].checked_add(weight[s])?;
            if cand > dist[s] {
                dist[s] = cand;
            }
            indeg[s] -= 1;
            if indeg[s] == 0 {
                order.push_back(s);
            }
        }
    }
    if seen != nb {
        return None; // irreducible or multi-block cycle
    }
    let max = dist.iter().copied().max().unwrap_or(0);
    Some(max.min(u64::MAX as u128) as u64)
}
