//! Static verifier run before any extension bytecode is attached.
//!
//! The checks are structural (the style of uBPF's verifier rather than the
//! Linux kernel's symbolic one): they guarantee the interpreter can never
//! leave the program text, execute an undefined opcode, touch an invalid
//! register, or divide by a constant zero. Memory safety is enforced
//! dynamically by [`crate::mem::MemoryMap`]; termination is enforced
//! dynamically by the fuel budget.

use crate::insn::{op, Program};
use crate::prep::LoadedProgram;
use std::collections::HashSet;
use std::fmt;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    Empty,
    TooManyInstructions(usize),
    /// `pc` holds an opcode outside the implemented ISA.
    BadOpcode {
        pc: usize,
        opcode: u8,
    },
    /// A register operand outside r0..r10, or a write to r10.
    BadRegister {
        pc: usize,
        reg: u8,
    },
    WriteToFramePointer {
        pc: usize,
    },
    /// Jump to a target outside the program or into an `lddw` second slot.
    BadJumpTarget {
        pc: usize,
        target: i64,
    },
    /// Constant division/modulo by zero.
    ConstDivByZero {
        pc: usize,
    },
    /// `lddw` missing its second slot or second slot malformed.
    BadLddw {
        pc: usize,
    },
    /// Execution can fall through past the last instruction.
    FallThrough,
    /// `call` names a helper the host did not register.
    UnknownHelper {
        pc: usize,
        helper: u32,
    },
    /// Constant shift amount ≥ operand width.
    BadShift {
        pc: usize,
    },
    /// Constant-offset frame access provably outside `[r10-512, r10)`.
    OobStackAccess {
        pc: usize,
        mnemonic: &'static str,
        off: i32,
        size: u32,
    },
    /// A register is (or may be) read before any write ([`crate::absint`]).
    UninitRead {
        pc: usize,
        reg: u8,
        mnemonic: &'static str,
    },
    /// A block no path can reach, even with every branch edge considered
    /// possible ([`crate::absint`]).
    UnreachableCode {
        pc: usize,
    },
    /// The helper contract forbids this helper at this insertion point.
    HelperNotAllowed {
        pc: usize,
        helper: u32,
    },
    /// A pointer argument is a provably-invalid non-null constant.
    BadHelperArg {
        pc: usize,
        helper: u32,
        arg: u8,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty program"),
            VerifyError::TooManyInstructions(n) => write!(f, "program too large: {n} slots"),
            VerifyError::BadOpcode { pc, opcode } => {
                write!(f, "invalid opcode {opcode:#04x} at pc {pc}")
            }
            VerifyError::BadRegister { pc, reg } => write!(f, "invalid register r{reg} at pc {pc}"),
            VerifyError::WriteToFramePointer { pc } => write!(f, "write to r10 at pc {pc}"),
            VerifyError::BadJumpTarget { pc, target } => {
                write!(f, "jump from pc {pc} to invalid target {target}")
            }
            VerifyError::ConstDivByZero { pc } => write!(f, "constant division by zero at pc {pc}"),
            VerifyError::BadLddw { pc } => write!(f, "malformed lddw at pc {pc}"),
            VerifyError::FallThrough => write!(f, "control can fall through past the program end"),
            VerifyError::UnknownHelper { pc, helper } => {
                write!(f, "call to unregistered helper {helper} at pc {pc}")
            }
            VerifyError::BadShift { pc } => write!(f, "oversized constant shift at pc {pc}"),
            VerifyError::OobStackAccess { pc, mnemonic, off, size } => {
                write!(
                    f,
                    "`{mnemonic}` at pc {pc}: frame access r10{off:+} of {size} bytes is outside [r10-512, r10)"
                )
            }
            VerifyError::UninitRead { pc, reg, mnemonic } => {
                write!(f, "`{mnemonic}` at pc {pc} reads r{reg} before any write")
            }
            VerifyError::UnreachableCode { pc } => {
                write!(f, "unreachable code starting at pc {pc}")
            }
            VerifyError::HelperNotAllowed { pc, helper } => {
                write!(f, "call at pc {pc}: helper {helper} is not allowed at this insertion point")
            }
            VerifyError::BadHelperArg { pc, helper, arg } => {
                write!(
                    f,
                    "call at pc {pc}: helper {helper} argument {arg} is a provably-invalid pointer"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Maximum program size in slots (same order as kernel eBPF's historic 4k).
pub const MAX_INSNS: usize = 65_536;

fn valid_alu_op(op_bits: u8) -> bool {
    matches!(
        op_bits,
        op::ALU_ADD
            | op::ALU_SUB
            | op::ALU_MUL
            | op::ALU_DIV
            | op::ALU_OR
            | op::ALU_AND
            | op::ALU_LSH
            | op::ALU_RSH
            | op::ALU_NEG
            | op::ALU_MOD
            | op::ALU_XOR
            | op::ALU_MOV
            | op::ALU_ARSH
            | op::ALU_END
    )
}

fn valid_jmp_op(op_bits: u8, cls: u8) -> bool {
    match op_bits {
        op::JMP_JA | op::JMP_CALL | op::JMP_EXIT => cls == op::CLS_JMP,
        op::JMP_JEQ
        | op::JMP_JGT
        | op::JMP_JGE
        | op::JMP_JSET
        | op::JMP_JNE
        | op::JMP_JSGT
        | op::JMP_JSGE
        | op::JMP_JLT
        | op::JMP_JLE
        | op::JMP_JSLT
        | op::JMP_JSLE => true,
        _ => false,
    }
}

/// Reject constant-offset frame accesses that can only fault: `r10` is
/// fixed at load time, so `[r10+off, r10+off+size)` must sit inside the
/// 512-byte frame `[r10-512, r10)`.
fn check_frame_offset(pc: usize, insn: &crate::insn::Insn) -> Result<(), VerifyError> {
    let size: i32 = match insn.opcode & op::SIZE_MASK {
        op::SIZE_B => 1,
        op::SIZE_H => 2,
        op::SIZE_W => 4,
        _ => 8,
    };
    let off = i32::from(insn.offset);
    if off < -(crate::STACK_SIZE as i32) || off + size > 0 {
        return Err(VerifyError::OobStackAccess {
            pc,
            mnemonic: crate::insn::mnemonic(insn.opcode),
            off,
            size: size as u32,
        });
    }
    Ok(())
}

/// Verify `prog` against the set of helper ids the host will provide.
///
/// Returns `Ok(())` when the program is structurally safe to interpret.
pub fn verify(prog: &Program, known_helpers: &HashSet<u32>) -> Result<(), VerifyError> {
    let insns = &prog.insns;
    if insns.is_empty() {
        return Err(VerifyError::Empty);
    }
    if insns.len() > MAX_INSNS {
        return Err(VerifyError::TooManyInstructions(insns.len()));
    }

    // First pass: identify lddw second slots (not directly executable).
    let mut is_lddw_hi = vec![false; insns.len()];
    let mut pc = 0;
    while pc < insns.len() {
        if insns[pc].opcode == op::LDDW {
            if pc + 1 >= insns.len() {
                return Err(VerifyError::BadLddw { pc });
            }
            let hi = &insns[pc + 1];
            if hi.opcode != 0 || hi.dst != 0 || hi.src != 0 || hi.offset != 0 {
                return Err(VerifyError::BadLddw { pc });
            }
            is_lddw_hi[pc + 1] = true;
            pc += 2;
        } else {
            pc += 1;
        }
    }

    let check_reg = |pc: usize, reg: u8| -> Result<(), VerifyError> {
        if reg > 10 {
            Err(VerifyError::BadRegister { pc, reg })
        } else {
            Ok(())
        }
    };
    let check_dst_writable = |pc: usize, reg: u8| -> Result<(), VerifyError> {
        check_reg(pc, reg)?;
        if reg == 10 {
            Err(VerifyError::WriteToFramePointer { pc })
        } else {
            Ok(())
        }
    };

    for (pc, insn) in insns.iter().enumerate() {
        if is_lddw_hi[pc] {
            continue;
        }
        let cls = insn.class();
        match cls {
            op::CLS_ALU | op::CLS_ALU64 => {
                let opb = insn.opcode & op::ALU_OP_MASK;
                if !valid_alu_op(opb) {
                    return Err(VerifyError::BadOpcode { pc, opcode: insn.opcode });
                }
                check_dst_writable(pc, insn.dst)?;
                if insn.opcode & op::SRC_X != 0 {
                    check_reg(pc, insn.src)?;
                }
                if matches!(opb, op::ALU_DIV | op::ALU_MOD)
                    && insn.opcode & op::SRC_X == 0
                    && insn.imm == 0
                {
                    return Err(VerifyError::ConstDivByZero { pc });
                }
                if matches!(opb, op::ALU_LSH | op::ALU_RSH | op::ALU_ARSH)
                    && insn.opcode & op::SRC_X == 0
                {
                    let width: i64 = if cls == op::CLS_ALU64 { 64 } else { 32 };
                    if i64::from(insn.imm) >= width || insn.imm < 0 {
                        return Err(VerifyError::BadShift { pc });
                    }
                }
                if opb == op::ALU_END && !matches!(insn.imm, 16 | 32 | 64) {
                    return Err(VerifyError::BadOpcode { pc, opcode: insn.opcode });
                }
            }
            op::CLS_JMP | op::CLS_JMP32 => {
                let opb = insn.opcode & op::ALU_OP_MASK;
                if !valid_jmp_op(opb, cls) {
                    return Err(VerifyError::BadOpcode { pc, opcode: insn.opcode });
                }
                match opb {
                    op::JMP_CALL => {
                        let helper = insn.imm as u32;
                        if !known_helpers.contains(&helper) {
                            return Err(VerifyError::UnknownHelper { pc, helper });
                        }
                    }
                    op::JMP_EXIT => {}
                    _ => {
                        // JA and all conditionals: validate target.
                        let target = pc as i64 + 1 + i64::from(insn.offset);
                        if target < 0 || target >= insns.len() as i64 || is_lddw_hi[target as usize]
                        {
                            return Err(VerifyError::BadJumpTarget { pc, target });
                        }
                        if opb != op::JMP_JA {
                            check_reg(pc, insn.dst)?;
                            if insn.opcode & op::SRC_X != 0 {
                                check_reg(pc, insn.src)?;
                            }
                        }
                    }
                }
            }
            op::CLS_LD => {
                if insn.opcode != op::LDDW {
                    return Err(VerifyError::BadOpcode { pc, opcode: insn.opcode });
                }
                check_dst_writable(pc, insn.dst)?;
            }
            op::CLS_LDX => {
                if insn.opcode & op::MODE_MASK != op::MODE_MEM {
                    return Err(VerifyError::BadOpcode { pc, opcode: insn.opcode });
                }
                check_dst_writable(pc, insn.dst)?;
                check_reg(pc, insn.src)?;
                if insn.src == 10 {
                    check_frame_offset(pc, insn)?;
                }
            }
            op::CLS_ST | op::CLS_STX => {
                if insn.opcode & op::MODE_MASK != op::MODE_MEM {
                    return Err(VerifyError::BadOpcode { pc, opcode: insn.opcode });
                }
                check_reg(pc, insn.dst)?;
                if cls == op::CLS_STX {
                    check_reg(pc, insn.src)?;
                }
                if insn.dst == 10 {
                    check_frame_offset(pc, insn)?;
                }
            }
            _ => unreachable!("class mask covers 0..=7"),
        }
    }

    // Fall-through check: the last real instruction must be EXIT or an
    // unconditional backward JA.
    let last = insns.len() - 1;
    let last_real = if is_lddw_hi[last] { last - 1 } else { last };
    let li = &insns[last_real];
    let terminal = li.class() == op::CLS_JMP
        && matches!(li.opcode & op::ALU_OP_MASK, op::JMP_EXIT | op::JMP_JA)
        && last_real == last;
    if !terminal {
        return Err(VerifyError::FallThrough);
    }
    Ok(())
}

/// Verify `prog` and, on success, pre-decode it into the dense executable
/// form. This is the load-time entry point the VMM uses: all decoding and
/// jump-target resolution happens exactly once here, and the returned
/// [`LoadedProgram`] is guaranteed free of trap instructions.
pub fn verify_and_load(
    prog: &Program,
    known_helpers: &HashSet<u32>,
) -> Result<LoadedProgram, VerifyError> {
    verify_and_load_with(prog, known_helpers, &crate::absint::AnalysisOptions::default())
}

/// [`verify_and_load`] with explicit [`crate::absint`] options: the host
/// supplies per-insertion-point helper contracts so the analysis can prove
/// helper-returned pointers and reject contract violations at load time.
pub fn verify_and_load_with(
    prog: &Program,
    known_helpers: &HashSet<u32>,
    opts: &crate::absint::AnalysisOptions,
) -> Result<LoadedProgram, VerifyError> {
    verify(prog, known_helpers)?;
    let mut lp = LoadedProgram::load(prog);
    crate::absint::analyze(&mut lp, prog, opts)?;
    Ok(lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{build, Insn};

    fn helpers(ids: &[u32]) -> HashSet<u32> {
        ids.iter().copied().collect()
    }

    fn ok(insns: Vec<Insn>) -> Result<(), VerifyError> {
        verify(&Program::new(insns), &helpers(&[1, 2, 3]))
    }

    #[test]
    fn minimal_program_verifies() {
        assert_eq!(ok(vec![build::mov_imm(0, 0), build::exit()]), Ok(()));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(ok(vec![]), Err(VerifyError::Empty));
    }

    #[test]
    fn fall_through_rejected() {
        assert_eq!(ok(vec![build::mov_imm(0, 0)]), Err(VerifyError::FallThrough));
    }

    #[test]
    fn jump_out_of_range_rejected() {
        assert!(matches!(
            ok(vec![build::ja(5), build::exit()]),
            Err(VerifyError::BadJumpTarget { .. })
        ));
        assert!(matches!(
            ok(vec![build::jeq_imm(0, 0, -3), build::exit()]),
            Err(VerifyError::BadJumpTarget { .. })
        ));
    }

    #[test]
    fn jump_into_lddw_second_slot_rejected() {
        let [lo, hi] = build::lddw(1, 42);
        assert!(matches!(
            ok(vec![build::ja(1), lo, hi, build::exit()]),
            Err(VerifyError::BadJumpTarget { .. })
        ));
    }

    #[test]
    fn lddw_missing_half_rejected() {
        let [lo, _] = build::lddw(1, 42);
        assert!(matches!(ok(vec![lo]), Err(VerifyError::BadLddw { .. })));
    }

    #[test]
    fn write_to_r10_rejected() {
        assert!(matches!(
            ok(vec![build::mov_imm(10, 0), build::exit()]),
            Err(VerifyError::WriteToFramePointer { .. })
        ));
    }

    #[test]
    fn const_div_by_zero_rejected() {
        let div0 = Insn::new(op::CLS_ALU64 | op::ALU_DIV | op::SRC_K, 1, 0, 0, 0);
        assert!(matches!(ok(vec![div0, build::exit()]), Err(VerifyError::ConstDivByZero { .. })));
    }

    #[test]
    fn oversized_const_shift_rejected() {
        let sh = Insn::new(op::CLS_ALU64 | op::ALU_LSH | op::SRC_K, 1, 0, 0, 64);
        assert!(matches!(ok(vec![sh, build::exit()]), Err(VerifyError::BadShift { .. })));
        let sh32 = Insn::new(op::CLS_ALU | op::ALU_LSH | op::SRC_K, 1, 0, 0, 32);
        assert!(matches!(ok(vec![sh32, build::exit()]), Err(VerifyError::BadShift { .. })));
        let fine = Insn::new(op::CLS_ALU64 | op::ALU_LSH | op::SRC_K, 1, 0, 0, 63);
        assert_eq!(ok(vec![fine, build::exit()]), Ok(()));
    }

    #[test]
    fn unknown_helper_rejected() {
        assert!(matches!(
            ok(vec![build::call(99), build::exit()]),
            Err(VerifyError::UnknownHelper { helper: 99, .. })
        ));
        assert_eq!(ok(vec![build::call(2), build::exit()]), Ok(()));
    }

    #[test]
    fn undefined_opcode_rejected() {
        let bogus = Insn::new(0xff, 0, 0, 0, 0);
        assert!(matches!(ok(vec![bogus, build::exit()]), Err(VerifyError::BadOpcode { .. })));
        let bogus_alu = Insn::new(op::CLS_ALU64 | 0xe0, 0, 0, 0, 0);
        assert!(matches!(ok(vec![bogus_alu, build::exit()]), Err(VerifyError::BadOpcode { .. })));
    }

    #[test]
    fn bad_register_rejected() {
        let i = Insn::new(op::CLS_ALU64 | op::ALU_MOV | op::SRC_X, 3, 12, 0, 0);
        assert!(matches!(ok(vec![i, build::exit()]), Err(VerifyError::BadRegister { .. })));
    }

    #[test]
    fn backward_ja_as_terminal_is_allowed() {
        // A self-contained loop ending in `ja -n` cannot fall through; the
        // fuel budget bounds it at runtime.
        let prog = vec![build::mov_imm(0, 0), build::ja(-2)];
        assert_eq!(ok(prog), Ok(()));
    }

    #[test]
    fn end_requires_valid_width() {
        let be = Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_X, 1, 0, 0, 16);
        assert_eq!(ok(vec![be, build::exit()]), Ok(()));
        let bad = Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_X, 1, 0, 0, 24);
        assert!(matches!(ok(vec![bad, build::exit()]), Err(VerifyError::BadOpcode { .. })));
    }
}
