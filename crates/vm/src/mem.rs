//! Segmented, bounds-checked memory for extension code.
//!
//! The VM never sees host pointers. Instead the host (the Virtual Machine
//! Manager) registers *regions* — each a `(virtual base, byte buffer,
//! writability)` triple — before running a program. Every load and store is
//! resolved against the region table; an access that misses every region,
//! straddles a region end, or writes to a read-only region raises
//! [`VmError::MemFault`] and aborts the program.

use crate::error::VmError;

/// What a region is used for (for diagnostics and selective clearing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// The eBPF stack (always present, read-write).
    Stack,
    /// Host-marshalled insertion-point arguments.
    Args,
    /// Per-invocation scratch heap (`ctx_malloc`), cleared between runs.
    Heap,
    /// Per-program persistent heap (`ctx_shared_malloc`).
    Shared,
    /// Read-only host data such as the raw BGP message.
    HostBuf,
}

/// One mapped region of the extension's virtual address space.
#[derive(Debug, Clone)]
pub struct Region {
    pub base: u64,
    pub data: Vec<u8>,
    pub writable: bool,
    pub kind: RegionKind,
}

impl Region {
    pub fn new(kind: RegionKind, base: u64, data: Vec<u8>, writable: bool) -> Region {
        Region { base, data, writable, kind }
    }

    fn contains(&self, addr: u64, size: usize) -> bool {
        addr >= self.base
            && addr
                .checked_add(size as u64)
                .is_some_and(|end| end <= self.base + self.data.len() as u64)
    }
}

/// The region table for one program invocation.
#[derive(Debug, Default)]
pub struct MemoryMap {
    regions: Vec<Region>,
    /// Bumped whenever the region *table* changes shape (map/unmap).
    /// In-place data mutation does not count: region indices and bases
    /// stay valid across it, which is what [`ElideCtx`] caches.
    epoch: u64,
    /// Memoized elision snapshot; valid while its epoch matches. A fresh
    /// map (epoch 0, no regions) is exactly the default snapshot, so the
    /// initial state is already consistent.
    cached_elide: ElideCtx,
}

impl MemoryMap {
    pub fn new() -> MemoryMap {
        MemoryMap::default()
    }

    /// The current elision snapshot, rescanned only when the region table
    /// changed shape since the last call. Sandboxes are pooled across
    /// runs, so the per-run cost is one compare instead of a region scan.
    #[inline]
    pub(crate) fn elide_ctx(&mut self) -> ElideCtx {
        if self.cached_elide.epoch != self.epoch {
            self.cached_elide = ElideCtx::capture(self);
        }
        self.cached_elide
    }

    /// Map a region. Panics if it overlaps an existing one (host bug, not
    /// extension bug).
    pub fn map(&mut self, region: Region) {
        let new_end = region.base + region.data.len() as u64;
        for r in &self.regions {
            let end = r.base + r.data.len() as u64;
            assert!(
                new_end <= r.base || region.base >= end,
                "region overlap: [{:#x},{:#x}) vs [{:#x},{:#x})",
                region.base,
                new_end,
                r.base,
                end
            );
        }
        self.regions.push(region);
        self.epoch += 1;
    }

    /// Remove all regions of a kind, returning them (used to reclaim the
    /// shared heap after a run).
    pub fn unmap_kind(&mut self, kind: RegionKind) -> Vec<Region> {
        let mut out = Vec::new();
        self.regions.retain_mut(|r| {
            if r.kind == kind {
                out.push(Region {
                    base: r.base,
                    data: std::mem::take(&mut r.data),
                    writable: r.writable,
                    kind: r.kind,
                });
                false
            } else {
                true
            }
        });
        if !out.is_empty() {
            self.epoch += 1;
        }
        out
    }

    /// Borrow the region of a given kind (first match).
    pub fn region_of(&self, kind: RegionKind) -> Option<&Region> {
        self.regions.iter().find(|r| r.kind == kind)
    }

    /// Mutably borrow the region of a given kind (first match).
    pub fn region_of_mut(&mut self, kind: RegionKind) -> Option<&mut Region> {
        self.regions.iter_mut().find(|r| r.kind == kind)
    }

    /// Index of the first region of `kind` in mapping order. Lets per-run
    /// reset paths (the VMM's arena refresh) address pooled regions without
    /// repeating the kind scan on every invocation.
    pub fn region_index(&self, kind: RegionKind) -> Option<usize> {
        self.regions.iter().position(|r| r.kind == kind)
    }

    /// The region at `idx` (mapping order). Panics if out of range — pair
    /// with [`MemoryMap::region_index`].
    pub fn region_at_mut(&mut self, idx: usize) -> &mut Region {
        &mut self.regions[idx]
    }

    fn find(&self, addr: u64, size: usize, write: bool) -> Result<(usize, usize), VmError> {
        for (idx, r) in self.regions.iter().enumerate() {
            if r.contains(addr, size) {
                if write && !r.writable {
                    // pc is a placeholder; the interpreter stamps the real
                    // load/store site via `VmError::at_pc`.
                    return Err(VmError::MemFault { pc: 0, addr, size, write });
                }
                return Ok((idx, (addr - r.base) as usize));
            }
        }
        Err(VmError::MemFault { pc: 0, addr, size, write })
    }

    /// Read `size` bytes at `addr` as a little-endian unsigned integer.
    pub fn load(&self, addr: u64, size: usize) -> Result<u64, VmError> {
        match size {
            1 => self.load8(addr),
            2 => self.load16(addr),
            4 => self.load32(addr),
            8 => self.load64(addr),
            _ => {
                let bytes = self.slice(addr, size)?;
                let mut v: u64 = 0;
                for (i, b) in bytes.iter().enumerate() {
                    v |= u64::from(*b) << (8 * i);
                }
                Ok(v)
            }
        }
    }

    /// Store the low `size` bytes of `value` at `addr`, little-endian.
    pub fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), VmError> {
        match size {
            1 => self.store8(addr, value as u8),
            2 => self.store16(addr, value as u16),
            4 => self.store32(addr, value as u32),
            8 => self.store64(addr, value),
            _ => {
                let bytes = self.slice_mut(addr, size)?;
                for (i, b) in bytes.iter_mut().enumerate() {
                    *b = (value >> (8 * i)) as u8;
                }
                Ok(())
            }
        }
    }

    // Fixed-width accessors: the interpreter knows the access size from the
    // pre-decoded opcode, so these skip the size dispatch and assemble the
    // value with a single unaligned-safe from_le_bytes.

    #[inline]
    pub fn load8(&self, addr: u64) -> Result<u64, VmError> {
        Ok(u64::from(self.slice(addr, 1)?[0]))
    }

    #[inline]
    pub fn load16(&self, addr: u64) -> Result<u64, VmError> {
        let s = self.slice(addr, 2)?;
        Ok(u64::from(u16::from_le_bytes([s[0], s[1]])))
    }

    #[inline]
    pub fn load32(&self, addr: u64) -> Result<u64, VmError> {
        let s = self.slice(addr, 4)?;
        Ok(u64::from(u32::from_le_bytes([s[0], s[1], s[2], s[3]])))
    }

    #[inline]
    pub fn load64(&self, addr: u64) -> Result<u64, VmError> {
        let s = self.slice(addr, 8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    #[inline]
    pub fn store8(&mut self, addr: u64, v: u8) -> Result<(), VmError> {
        self.slice_mut(addr, 1)?[0] = v;
        Ok(())
    }

    #[inline]
    pub fn store16(&mut self, addr: u64, v: u16) -> Result<(), VmError> {
        self.slice_mut(addr, 2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    #[inline]
    pub fn store32(&mut self, addr: u64, v: u32) -> Result<(), VmError> {
        self.slice_mut(addr, 4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    #[inline]
    pub fn store64(&mut self, addr: u64, v: u64) -> Result<(), VmError> {
        self.slice_mut(addr, 8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Borrow `len` readable bytes at `addr` (helper-side bulk access).
    pub fn slice(&self, addr: u64, len: usize) -> Result<&[u8], VmError> {
        let (idx, off) = self.find(addr, len, false)?;
        Ok(&self.regions[idx].data[off..off + len])
    }

    /// Borrow `len` writable bytes at `addr` (helper-side bulk access).
    pub fn slice_mut(&mut self, addr: u64, len: usize) -> Result<&mut [u8], VmError> {
        let (idx, off) = self.find(addr, len, true)?;
        Ok(&mut self.regions[idx].data[off..off + len])
    }

    /// Copy a host buffer into extension memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), VmError> {
        self.slice_mut(addr, data.len())?.copy_from_slice(data);
        Ok(())
    }

    /// Copy extension memory out to a host buffer.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, VmError> {
        Ok(self.slice(addr, len)?.to_vec())
    }

    // ------------------------------------------------------------------
    // Proof-carrying fast path
    //
    // Accesses the abstract interpreter proved in-bounds skip the region
    // scan and bounds/writability checks: the engine resolves the region
    // once per run (per helper call, really — helpers may remap) into an
    // `ElideCtx` and then reads the backing slice directly. The `get`
    // below is a pure safety net: if the proof were ever wrong the access
    // falls back to the checked path and faults identically, so elision
    // can change performance but never behaviour.
    // ------------------------------------------------------------------

    #[inline]
    fn fast_slice(&self, ctx: &ElideCtx, kind: u8, addr: u64, len: usize) -> Option<&[u8]> {
        // `kind` comes from `elide::pack` and is 0..=2; slot 3 is a
        // permanent miss, so the mask needs no bounds check. A stale or
        // absent slot has `idx == u32::MAX` and misses on `regions.get`.
        let s = ctx.slots[(kind & 3) as usize];
        let r = self.regions.get(s.idx as usize)?;
        let off = addr.wrapping_sub(s.base) as usize;
        // A wrapped end lands below `off`, and `get` rejects inverted or
        // out-of-range windows, so one range check covers everything.
        r.data.get(off..off.wrapping_add(len))
    }

    #[inline]
    fn fast_slice_mut(
        &mut self,
        ctx: &ElideCtx,
        kind: u8,
        addr: u64,
        len: usize,
    ) -> Option<&mut [u8]> {
        let s = ctx.slots[(kind & 3) as usize];
        let r = self.regions.get_mut(s.idx as usize)?;
        if !r.writable {
            return None;
        }
        let off = addr.wrapping_sub(s.base) as usize;
        r.data.get_mut(off..off.wrapping_add(len))
    }

    #[inline]
    pub(crate) fn fast_load8(&self, ctx: &ElideCtx, kind: u8, addr: u64) -> Option<u64> {
        self.fast_slice(ctx, kind, addr, 1).map(|s| u64::from(s[0]))
    }

    #[inline]
    pub(crate) fn fast_load16(&self, ctx: &ElideCtx, kind: u8, addr: u64) -> Option<u64> {
        self.fast_slice(ctx, kind, addr, 2)
            .map(|s| u64::from(u16::from_le_bytes([s[0], s[1]])))
    }

    #[inline]
    pub(crate) fn fast_load32(&self, ctx: &ElideCtx, kind: u8, addr: u64) -> Option<u64> {
        self.fast_slice(ctx, kind, addr, 4)
            .map(|s| u64::from(u32::from_le_bytes([s[0], s[1], s[2], s[3]])))
    }

    #[inline]
    pub(crate) fn fast_load64(&self, ctx: &ElideCtx, kind: u8, addr: u64) -> Option<u64> {
        self.fast_slice(ctx, kind, addr, 8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    #[inline]
    pub(crate) fn fast_store8(&mut self, ctx: &ElideCtx, kind: u8, addr: u64, v: u8) -> bool {
        match self.fast_slice_mut(ctx, kind, addr, 1) {
            Some(s) => {
                s[0] = v;
                true
            }
            None => false,
        }
    }

    #[inline]
    pub(crate) fn fast_store16(&mut self, ctx: &ElideCtx, kind: u8, addr: u64, v: u16) -> bool {
        match self.fast_slice_mut(ctx, kind, addr, 2) {
            Some(s) => {
                s.copy_from_slice(&v.to_le_bytes());
                true
            }
            None => false,
        }
    }

    #[inline]
    pub(crate) fn fast_store32(&mut self, ctx: &ElideCtx, kind: u8, addr: u64, v: u32) -> bool {
        match self.fast_slice_mut(ctx, kind, addr, 4) {
            Some(s) => {
                s.copy_from_slice(&v.to_le_bytes());
                true
            }
            None => false,
        }
    }

    #[inline]
    pub(crate) fn fast_store64(&mut self, ctx: &ElideCtx, kind: u8, addr: u64, v: u64) -> bool {
        match self.fast_slice_mut(ctx, kind, addr, 8) {
            Some(s) => {
                s.copy_from_slice(&v.to_le_bytes());
                true
            }
            None => false,
        }
    }

    /// Copy `len` bytes inside extension memory (the `ebpf_memcpy` helper).
    ///
    /// Allocation-free: a same-region copy is a single (overlap-safe)
    /// `copy_within` on the backing buffer, and a cross-region copy splits
    /// the region table to borrow source and destination simultaneously.
    pub fn copy_within(&mut self, dst: u64, src: u64, len: usize) -> Result<(), VmError> {
        let (si, so) = self.find(src, len, false)?;
        let (di, dofs) = self.find(dst, len, true)?;
        if si == di {
            self.regions[si].data.copy_within(so..so + len, dofs);
        } else {
            let lo = si.min(di);
            let hi = si.max(di);
            let (head, tail) = self.regions.split_at_mut(hi);
            let (src_data, dst_data): (&[u8], &mut [u8]) = if si == lo {
                (&head[lo].data, &mut tail[0].data)
            } else {
                (&tail[0].data, &mut head[lo].data)
            };
            dst_data[dofs..dofs + len].copy_from_slice(&src_data[so..so + len]);
        }
        Ok(())
    }
}

/// One resolved elision slot: where a provable region kind sits in the
/// table. `idx == u32::MAX` marks an absent kind; it always misses the
/// `regions.get` in the fast path, with no `Option` layer in between.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ElideSlot {
    idx: u32,
    base: u64,
}

const NO_SLOT: ElideSlot = ElideSlot { idx: u32::MAX, base: 0 };

/// Snapshot of where the provable region kinds sit in the table, taken at
/// run start and revalidated after helper returns (dispatchers may map
/// regions). Slots are indexed by [`crate::prep::elide`] kind codes; the
/// fourth entry is a permanent miss so the index can be masked.
///
/// The snapshot caches the map's [`MemoryMap::epoch`]; [`ElideCtx::refresh`]
/// and [`MemoryMap::elide_ctx`] only rescan when the region table changed
/// shape, so the steady state costs one integer compare.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ElideCtx {
    slots: [ElideSlot; 4],
    epoch: u64,
}

impl Default for ElideCtx {
    fn default() -> ElideCtx {
        ElideCtx { slots: [NO_SLOT; 4], epoch: 0 }
    }
}

impl ElideCtx {
    pub(crate) fn capture(mem: &MemoryMap) -> ElideCtx {
        let mut slots = [NO_SLOT; 4];
        for (i, r) in mem.regions.iter().enumerate() {
            let k = match r.kind {
                RegionKind::Stack => 0usize,
                RegionKind::Heap => 1,
                RegionKind::Shared => 2,
                _ => continue,
            };
            if slots[k].idx == u32::MAX {
                slots[k] = ElideSlot { idx: i as u32, base: r.base };
            }
        }
        ElideCtx { slots, epoch: mem.epoch }
    }

    /// Recapture only if the region table changed since this snapshot.
    #[inline]
    pub(crate) fn refresh(&mut self, mem: &mut MemoryMap) {
        if self.epoch != mem.epoch {
            *self = mem.elide_ctx();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map_with(base: u64, len: usize, writable: bool) -> MemoryMap {
        let mut m = MemoryMap::new();
        m.map(Region::new(RegionKind::Heap, base, vec![0; len], writable));
        m
    }

    #[test]
    fn load_store_round_trip_all_sizes() {
        let mut m = map_with(0x1000, 64, true);
        for (size, val) in
            [(1usize, 0xabu64), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)]
        {
            m.store(0x1000, size, val).unwrap();
            assert_eq!(m.load(0x1000, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = map_with(0, 8, true);
        m.store(0, 4, 0x0102_0304).unwrap();
        assert_eq!(m.slice(0, 4).unwrap(), &[4, 3, 2, 1]);
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = map_with(0x1000, 16, true);
        assert!(m.load(0x0fff, 1).is_err());
        assert!(m.load(0x1010, 1).is_err());
        // Straddling the end.
        assert!(m.load(0x100c, 8).is_err());
        // Address wraparound must not panic or succeed.
        assert!(m.load(u64::MAX, 8).is_err());
    }

    #[test]
    fn read_only_rejects_stores_but_serves_loads() {
        let mut m = MemoryMap::new();
        m.map(Region::new(RegionKind::HostBuf, 0x2000, vec![7; 8], false));
        assert_eq!(m.load(0x2000, 1).unwrap(), 7);
        assert!(matches!(m.store(0x2000, 1, 0), Err(VmError::MemFault { write: true, .. })));
    }

    #[test]
    #[should_panic(expected = "region overlap")]
    fn overlapping_regions_panic() {
        let mut m = map_with(0x1000, 16, true);
        m.map(Region::new(RegionKind::Args, 0x1008, vec![0; 16], true));
    }

    #[test]
    fn adjacent_regions_do_not_overlap() {
        let mut m = map_with(0x1000, 16, true);
        m.map(Region::new(RegionKind::Args, 0x1010, vec![0; 16], true));
        assert!(m.load(0x1010, 8).is_ok());
        // But an access crossing the seam is rejected: region isolation.
        assert!(m.load(0x100c, 8).is_err());
    }

    #[test]
    fn unmap_kind_reclaims_buffers() {
        let mut m = map_with(0x1000, 16, true);
        m.map(Region::new(RegionKind::Shared, 0x4000, vec![9; 4], true));
        let shared = m.unmap_kind(RegionKind::Shared);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].data, vec![9; 4]);
        assert!(m.load(0x4000, 1).is_err());
    }

    #[test]
    fn bulk_copies() {
        let mut m = map_with(0, 32, true);
        m.write_bytes(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), vec![1, 2, 3, 4]);
        m.copy_within(16, 4, 4).unwrap();
        assert_eq!(m.read_bytes(16, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(m.copy_within(30, 0, 4).is_err());
    }

    #[test]
    fn copy_within_across_regions_both_directions() {
        let mut m = map_with(0, 32, true);
        m.map(Region::new(RegionKind::Shared, 0x100, vec![0; 32], true));
        m.write_bytes(0, &[1, 2, 3, 4]).unwrap();
        // Lower-indexed region → higher-indexed region.
        m.copy_within(0x100, 0, 4).unwrap();
        assert_eq!(m.read_bytes(0x100, 4).unwrap(), vec![1, 2, 3, 4]);
        // And back the other way.
        m.write_bytes(0x110, &[9, 8, 7]).unwrap();
        m.copy_within(8, 0x110, 3).unwrap();
        assert_eq!(m.read_bytes(8, 3).unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn copy_within_overlapping_ranges() {
        let mut m = map_with(0, 16, true);
        m.write_bytes(0, &[1, 2, 3, 4]).unwrap();
        m.copy_within(2, 0, 4).unwrap();
        assert_eq!(m.read_bytes(2, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn copy_within_to_read_only_region_faults() {
        let mut m = map_with(0, 16, true);
        m.map(Region::new(RegionKind::HostBuf, 0x100, vec![0; 8], false));
        assert!(matches!(m.copy_within(0x100, 0, 4), Err(VmError::MemFault { write: true, .. })));
    }

    #[test]
    fn fixed_width_accessors_round_trip() {
        let mut m = map_with(0x1000, 64, true);
        m.store8(0x1000, 0xab).unwrap();
        m.store16(0x1008, 0xbeef).unwrap();
        m.store32(0x1010, 0xdead_beef).unwrap();
        m.store64(0x1018, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.load8(0x1000).unwrap(), 0xab);
        assert_eq!(m.load16(0x1008).unwrap(), 0xbeef);
        assert_eq!(m.load32(0x1010).unwrap(), 0xdead_beef);
        assert_eq!(m.load64(0x1018).unwrap(), 0x0123_4567_89ab_cdef);
        // Unaligned accesses are fine; straddling the end is not.
        assert_eq!(m.load32(0x1001).unwrap(), m.load(0x1001, 4).unwrap());
        assert!(m.load64(0x1039).is_err());
    }

    proptest! {
        #[test]
        fn prop_store_then_load(off in 0u64..56, size in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)], val: u64) {
            let mut m = map_with(0x1000, 64, true);
            let masked = if size == 8 { val } else { val & ((1u64 << (8 * size)) - 1) };
            m.store(0x1000 + off, size, val).unwrap();
            prop_assert_eq!(m.load(0x1000 + off, size).unwrap(), masked);
        }

        #[test]
        fn prop_random_access_never_panics(addr: u64, size in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)]) {
            let m = map_with(0x1000, 64, true);
            let _ = m.load(addr, size);
        }
    }
}
