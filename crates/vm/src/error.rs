//! Runtime fault types for the eBPF interpreter.

use std::fmt;

/// A fault raised while executing extension bytecode.
///
/// Any of these aborts the program; the Virtual Machine Manager reacts by
/// falling back to the host implementation's native behaviour and recording
/// the failure (paper §2.1: "the VMM also monitors their execution and
/// stops them in case of error").
///
/// Every variant carries the faulting program counter (original slot
/// index, matching the verifier's numbering) so postmortem tooling can
/// point at the offending instruction: [`VmError::pc`] is the uniform
/// accessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A memory access fell outside every registered region, crossed a
    /// region boundary, or wrote to a read-only region.
    MemFault {
        pc: usize,
        /// Virtual address of the access.
        addr: u64,
        /// Access width in bytes.
        size: usize,
        /// True for a store, false for a load.
        write: bool,
    },
    /// Division or modulo by zero at runtime.
    DivByZero { pc: usize },
    /// An opcode the interpreter does not implement (should be unreachable
    /// for verified programs).
    BadInstruction { pc: usize, opcode: u8 },
    /// The fuel budget was exhausted: the program ran too long. `pc` is
    /// the slot of the instruction where the check fired: the **branching
    /// instruction** of a taken back-edge (never the jump target) or the
    /// `call` site. Both execution engines report the same slot for the
    /// same exhaustion point — the compiled engine's conformance suite
    /// asserts it.
    FuelExhausted { pc: usize },
    /// `call` referenced a helper id with no registered implementation.
    UnknownHelper { pc: usize, helper: u32 },
    /// A helper function reported a failure.
    HelperFault {
        pc: usize,
        helper: u32,
        reason: String,
    },
    /// Shift amount >= operand width with the strict config enabled.
    BadShift { pc: usize, amount: u64 },
}

impl VmError {
    /// Stamp the faulting site onto errors constructed outside the
    /// interpreter loop.
    ///
    /// Helper dispatchers and the memory map cannot know the program
    /// counter, so they construct `UnknownHelper`/`HelperFault`/`MemFault`
    /// with a placeholder pc. The interpreter rewrites it at the
    /// call/load/store site; every other variant already carries its own
    /// pc and passes through.
    #[must_use]
    pub fn at_pc(self, pc: usize) -> VmError {
        match self {
            VmError::UnknownHelper { helper, .. } => VmError::UnknownHelper { pc, helper },
            VmError::HelperFault { helper, reason, .. } => {
                VmError::HelperFault { pc, helper, reason }
            }
            VmError::MemFault { addr, size, write, .. } => {
                VmError::MemFault { pc, addr, size, write }
            }
            other => other,
        }
    }

    /// The faulting program counter (original slot index).
    pub fn pc(&self) -> usize {
        match self {
            VmError::MemFault { pc, .. }
            | VmError::DivByZero { pc }
            | VmError::BadInstruction { pc, .. }
            | VmError::FuelExhausted { pc }
            | VmError::UnknownHelper { pc, .. }
            | VmError::HelperFault { pc, .. }
            | VmError::BadShift { pc, .. } => *pc,
        }
    }

    /// Small stable code for telemetry payloads (trace events).
    pub fn code(&self) -> u64 {
        match self {
            VmError::MemFault { .. } => 1,
            VmError::DivByZero { .. } => 2,
            VmError::BadInstruction { .. } => 3,
            VmError::FuelExhausted { .. } => 4,
            VmError::UnknownHelper { .. } => 5,
            VmError::HelperFault { .. } => 6,
            VmError::BadShift { .. } => 7,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MemFault { pc, addr, size, write } => write!(
                f,
                "memory fault: {} of {size} bytes at {addr:#x} (pc {pc})",
                if *write { "store" } else { "load" }
            ),
            VmError::DivByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VmError::BadInstruction { pc, opcode } => {
                write!(
                    f,
                    "illegal instruction {opcode:#04x} (`{}`) at pc {pc}",
                    crate::insn::mnemonic(*opcode)
                )
            }
            VmError::FuelExhausted { pc } => {
                write!(f, "instruction budget exhausted at pc {pc}")
            }
            VmError::UnknownHelper { pc, helper } => {
                write!(f, "unknown helper {helper} called at pc {pc}")
            }
            VmError::HelperFault { pc, helper, reason } => {
                write!(f, "helper {helper} failed at pc {pc}: {reason}")
            }
            VmError::BadShift { pc, amount } => {
                write!(f, "oversized shift by {amount} at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_direction() {
        let e = VmError::MemFault { pc: 0, addr: 0x10, size: 4, write: true };
        assert!(e.to_string().contains("store"));
        let e = VmError::MemFault { pc: 0, addr: 0x10, size: 4, write: false };
        assert!(e.to_string().contains("load"));
    }

    #[test]
    fn at_pc_stamps_externally_constructed_faults() {
        let e = VmError::MemFault { pc: 0, addr: 0x10, size: 8, write: false }.at_pc(42);
        assert_eq!(e.pc(), 42);
        let e = VmError::HelperFault { pc: 0, helper: 7, reason: "x".into() }.at_pc(9);
        assert_eq!(e.pc(), 9);
        // Variants stamped at construction pass through unchanged.
        let e = VmError::DivByZero { pc: 3 }.at_pc(99);
        assert_eq!(e.pc(), 3);
    }

    #[test]
    fn codes_are_distinct() {
        let errs = [
            VmError::MemFault { pc: 0, addr: 0, size: 0, write: false },
            VmError::DivByZero { pc: 0 },
            VmError::BadInstruction { pc: 0, opcode: 0 },
            VmError::FuelExhausted { pc: 0 },
            VmError::UnknownHelper { pc: 0, helper: 0 },
            VmError::HelperFault { pc: 0, helper: 0, reason: String::new() },
            VmError::BadShift { pc: 0, amount: 0 },
        ];
        let mut codes: Vec<u64> = errs.iter().map(VmError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }
}
