//! Runtime fault types for the eBPF interpreter.

use std::fmt;

/// A fault raised while executing extension bytecode.
///
/// Any of these aborts the program; the Virtual Machine Manager reacts by
/// falling back to the host implementation's native behaviour and recording
/// the failure (paper §2.1: "the VMM also monitors their execution and
/// stops them in case of error").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A memory access fell outside every registered region, crossed a
    /// region boundary, or wrote to a read-only region.
    MemFault {
        /// Virtual address of the access.
        addr: u64,
        /// Access width in bytes.
        size: usize,
        /// True for a store, false for a load.
        write: bool,
    },
    /// Division or modulo by zero at runtime.
    DivByZero { pc: usize },
    /// An opcode the interpreter does not implement (should be unreachable
    /// for verified programs).
    BadInstruction { pc: usize, opcode: u8 },
    /// The fuel budget was exhausted: the program ran too long.
    FuelExhausted,
    /// `call` referenced a helper id with no registered implementation.
    UnknownHelper { pc: usize, helper: u32 },
    /// A helper function reported a failure.
    HelperFault {
        pc: usize,
        helper: u32,
        reason: String,
    },
    /// Shift amount >= operand width with the strict config enabled.
    BadShift { pc: usize, amount: u64 },
}

impl VmError {
    /// Stamp the faulting `call` site onto helper-originated errors.
    ///
    /// Helper dispatchers run outside the interpreter loop and cannot know
    /// the program counter, so they construct `UnknownHelper`/`HelperFault`
    /// with a placeholder pc. The interpreter rewrites it at the call site;
    /// every other variant already carries its own pc and passes through.
    #[must_use]
    pub fn at_pc(self, pc: usize) -> VmError {
        match self {
            VmError::UnknownHelper { helper, .. } => VmError::UnknownHelper { pc, helper },
            VmError::HelperFault { helper, reason, .. } => {
                VmError::HelperFault { pc, helper, reason }
            }
            other => other,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MemFault { addr, size, write } => write!(
                f,
                "memory fault: {} of {size} bytes at {addr:#x}",
                if *write { "store" } else { "load" }
            ),
            VmError::DivByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VmError::BadInstruction { pc, opcode } => {
                write!(f, "illegal instruction {opcode:#04x} at pc {pc}")
            }
            VmError::FuelExhausted => write!(f, "instruction budget exhausted"),
            VmError::UnknownHelper { pc, helper } => {
                write!(f, "unknown helper {helper} called at pc {pc}")
            }
            VmError::HelperFault { pc, helper, reason } => {
                write!(f, "helper {helper} failed at pc {pc}: {reason}")
            }
            VmError::BadShift { pc, amount } => {
                write!(f, "oversized shift by {amount} at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_direction() {
        let e = VmError::MemFault { addr: 0x10, size: 4, write: true };
        assert!(e.to_string().contains("store"));
        let e = VmError::MemFault { addr: 0x10, size: 4, write: false };
        assert!(e.to_string().contains("load"));
    }
}
