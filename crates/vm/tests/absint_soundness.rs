//! Soundness of proof-carrying check elision: on every verifier-accepted
//! program, running with elision armed (the default) must be bit-for-bit
//! identical to running with every dynamic check in place — same outcome
//! or typed fault at the same slot pc, same `RunMetrics` ledger, same
//! final stack bytes — on **both** engines. The generator is the
//! conformance suite's (ALU/shift/byteswap bodies, guarded skips, counted
//! loops, in-bounds stack traffic, wild faulting accesses), so elided
//! stack loads sit next to accesses the analysis cannot prove.
//!
//! Also here: the must-reject corpus (uninitialized reads, constant
//! out-of-bounds frame slots) and the loop-bound inference contracts
//! (counted loops get a static worst case, wrap-prone or data-dependent
//! loops must stay `None`).

use proptest::prelude::*;
use std::collections::HashSet;
use xbgp_vm::insn::{build, op, Insn, Program};
use xbgp_vm::interp::NoHelpers;
use xbgp_vm::verify::VerifyError;
use xbgp_vm::{
    verify_and_load, CompiledProgram, ExecOutcome, MemoryMap, RunMetrics, VmConfig, VmError,
    STACK_BASE, STACK_SIZE,
};

const GEN_REGS: u8 = 6;

fn reg() -> impl Strategy<Value = u8> {
    0u8..GEN_REGS
}

fn alu_insn() -> impl Strategy<Value = Insn> {
    let ops = prop_oneof![
        Just(op::ALU_ADD),
        Just(op::ALU_SUB),
        Just(op::ALU_MUL),
        Just(op::ALU_DIV),
        Just(op::ALU_OR),
        Just(op::ALU_AND),
        Just(op::ALU_XOR),
        Just(op::ALU_MOD),
        Just(op::ALU_MOV),
    ];
    (any::<bool>(), ops, any::<bool>(), reg(), reg(), any::<i32>()).prop_map(
        |(is64, opb, use_src, dst, src, imm)| {
            let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
            let srcbit = if use_src { op::SRC_X } else { op::SRC_K };
            let imm = if matches!(opb, op::ALU_DIV | op::ALU_MOD) && !use_src && imm == 0 {
                1
            } else {
                imm
            };
            Insn::new(cls | opb | srcbit, dst, src, 0, imm)
        },
    )
}

fn shift_insn() -> impl Strategy<Value = Insn> {
    let ops = prop_oneof![Just(op::ALU_LSH), Just(op::ALU_RSH), Just(op::ALU_ARSH)];
    (any::<bool>(), ops, any::<bool>(), reg(), reg(), 0i32..64).prop_map(
        |(is64, opb, use_src, dst, src, amt)| {
            let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
            let srcbit = if use_src { op::SRC_X } else { op::SRC_K };
            let amt = if !use_src && !is64 { amt % 32 } else { amt };
            Insn::new(cls | opb | srcbit, dst, src, 0, amt)
        },
    )
}

/// In-bounds stack traffic through r10 — the accesses the analysis
/// proves and elides.
fn stack_insn() -> impl Strategy<Value = Insn> {
    let slots = (STACK_SIZE / 8) as i16;
    (any::<bool>(), reg(), 0i16..slots).prop_map(|(store, r, slot)| {
        let off = -8 * (slot + 1);
        if store {
            build::stxdw(10, r, off)
        } else {
            build::ldxdw(r, 10, off)
        }
    })
}

/// An access through a data register: usually faults, never elidable —
/// the fault must be identical with elision on and off.
fn wild_mem_insn() -> impl Strategy<Value = Insn> {
    (any::<bool>(), reg(), reg(), any::<i16>()).prop_map(|(store, a, b, off)| {
        if store {
            build::stxdw(a, b, off)
        } else {
            build::ldxb(a, b, off)
        }
    })
}

fn body_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        alu_insn(),
        alu_insn(),
        alu_insn(),
        shift_insn(),
        stack_insn(),
        stack_insn(),
        stack_insn(),
        wild_mem_insn(),
    ]
}

#[derive(Debug, Clone, Copy)]
struct Guard {
    cls32: bool,
    opb: u8,
    use_src: bool,
    dst: u8,
    src: u8,
    imm: i32,
}

fn guard() -> impl Strategy<Value = Guard> {
    let ops = prop_oneof![
        Just(op::JMP_JEQ),
        Just(op::JMP_JGT),
        Just(op::JMP_JGE),
        Just(op::JMP_JSET),
        Just(op::JMP_JNE),
        Just(op::JMP_JLT),
        Just(op::JMP_JLE),
        Just(op::JMP_JSLT),
        Just(op::JMP_JSLE),
    ];
    (any::<bool>(), ops, any::<bool>(), reg(), reg(), any::<i32>()).prop_map(
        |(cls32, opb, use_src, dst, src, imm)| Guard { cls32, opb, use_src, dst, src, imm },
    )
}

type Segment = (Option<Guard>, Vec<Insn>);

fn segments() -> impl Strategy<Value = Vec<Segment>> {
    proptest::collection::vec(
        (proptest::option::of(guard()), proptest::collection::vec(body_insn(), 0..12)),
        0..6,
    )
}

fn assemble(seeds: [u64; GEN_REGS as usize], segs: &[Segment], loop_iters: Option<u8>) -> Program {
    let mut p: Vec<Insn> = Vec::new();
    for (r, s) in seeds.iter().enumerate() {
        p.extend(build::lddw(r as u8, *s));
    }
    if let Some(iters) = loop_iters {
        p.push(build::mov_imm(5, i32::from(iters)));
    }
    let body_start = p.len();
    for (g, body) in segs {
        if let Some(g) = g {
            let cls = if g.cls32 { op::CLS_JMP32 } else { op::CLS_JMP };
            let srcbit = if g.use_src { op::SRC_X } else { op::SRC_K };
            p.push(Insn::new(cls | g.opb | srcbit, g.dst, g.src, body.len() as i16, g.imm));
        }
        p.extend(body.iter().copied());
    }
    if loop_iters.is_some() {
        p.push(build::add_imm(5, -1));
        let jne_slot = p.len() as i64;
        let off = body_start as i64 - (jne_slot + 1);
        p.push(build::jne_imm(5, 0, off as i16));
    }
    for r in 0..GEN_REGS {
        p.push(build::stxdw(10, r, -8 * (i16::from(r) + 1)));
    }
    p.push(build::exit());
    Program::new(p)
}

type RunResult = (Result<ExecOutcome, VmError>, RunMetrics, Vec<u8>);
type RunFn<'a> = &'a dyn Fn(&mut MemoryMap) -> (Result<ExecOutcome, VmError>, RunMetrics);

/// Run all four configurations (engine × elision) of the same program and
/// assert they are byte-identical.
fn assert_elision_sound(prog: &Program, fuel: u64, args: &[u64]) -> Result<(), TestCaseError> {
    let helpers = HashSet::new();
    let lp_on = match verify_and_load(prog, &helpers) {
        Ok(lp) => lp,
        Err(e) => {
            return Err(TestCaseError::fail(format!("generator emitted rejected program: {e}")))
        }
    };
    let mut lp_off = verify_and_load(prog, &helpers).expect("same program verified twice");
    lp_off.set_elide(false);
    let cp_on = CompiledProgram::compile(&lp_on);
    let cp_off = CompiledProgram::compile(&lp_off);
    let cfg = VmConfig { fuel };

    let run = |f: RunFn| -> RunResult {
        let mut mem = MemoryMap::new();
        let (out, metrics) = f(&mut mem);
        let stack = mem.read_bytes(STACK_BASE, STACK_SIZE).expect("stack mapped");
        (out, metrics, stack)
    };
    let base = run(&|m| lp_off.run_metered(cfg, m, &mut NoHelpers, args));
    let elided = run(&|m| lp_on.run_metered(cfg, m, &mut NoHelpers, args));
    let comp_base = run(&|m| cp_off.run_metered(cfg, m, &mut NoHelpers, args));
    let comp_elided = run(&|m| cp_on.run_metered(cfg, m, &mut NoHelpers, args));
    prop_assert_eq!(&base, &elided, "interpreter diverged with elision on");
    prop_assert_eq!(&base, &comp_base, "engines diverged with elision off");
    prop_assert_eq!(&base, &comp_elided, "compiled engine diverged with elision on");
    Ok(())
}

proptest! {
    /// Straight-line and guarded programs under generous fuel.
    #[test]
    fn elision_is_invisible_on_random_programs(
        seeds in any::<[u64; GEN_REGS as usize]>(),
        segs in segments(),
        args in proptest::collection::vec(any::<u64>(), 0..5),
    ) {
        let prog = assemble(seeds, &segs, None);
        assert_elision_sound(&prog, 1_000_000, &args)?;
    }

    /// Counted loops: exercises the static-fuel ledger (when the bound is
    /// proven under the budget, exhaustion checks are elided too).
    #[test]
    fn elision_is_invisible_on_looped_programs(
        seeds in any::<[u64; GEN_REGS as usize]>(),
        segs in segments(),
        iters in 1u8..6,
    ) {
        let prog = assemble(seeds, &segs, Some(iters));
        assert_elision_sound(&prog, 1_000_000, &[])?;
    }

    /// Tight budgets: `FuelExhausted` at arbitrary points must be
    /// identical in all four configurations — the fuel-ledger elision may
    /// only arm when exhaustion is provably impossible.
    #[test]
    fn fuel_exhaustion_is_identical_with_elision(
        seeds in any::<[u64; GEN_REGS as usize]>(),
        segs in segments(),
        iters in proptest::option::of(1u8..6),
        fuel in 0u64..400,
    ) {
        let prog = assemble(seeds, &segs, iters);
        assert_elision_sound(&prog, fuel, &[])?;
    }
}

// ----- deterministic anchors -----

/// The analysis must actually prove something on the canonical shape —
/// otherwise the proptests above pass vacuously.
#[test]
fn stack_traffic_is_elided_and_still_identical() {
    let mut p: Vec<Insn> = Vec::new();
    p.push(build::mov_imm(0, 7));
    for slot in 0..8i16 {
        p.push(build::stxdw(10, 0, -8 * (slot + 1)));
    }
    for slot in 0..8i16 {
        p.push(build::ldxdw(1, 10, -8 * (slot + 1)));
    }
    p.push(build::mov_reg(0, 1));
    p.push(build::exit());
    let prog = Program::new(p);
    let lp = verify_and_load(&prog, &HashSet::new()).unwrap();
    let mut mem = MemoryMap::new();
    let (out, metrics) = lp.run_metered(VmConfig { fuel: 1000 }, &mut mem, &mut NoHelpers, &[]);
    assert_eq!(out, Ok(ExecOutcome::Return(7)));
    assert_eq!(metrics.insns_retired, 19, "metrics survive the saturated ledger");
}

/// A counted decrement loop gets a static worst-case fuel bound.
#[test]
fn counted_loop_has_static_fuel_bound() {
    let p = vec![
        build::mov_imm(1, 1000),
        build::add_imm(1, -1),
        build::jne_imm(1, 0, -2),
        build::mov_imm(0, 0),
        build::exit(),
    ];
    let lp = verify_and_load(&Program::new(p), &HashSet::new()).unwrap();
    let w = lp.worst_fuel().expect("counted loop must be bounded");
    // 1 seed + 1000 × (add + jne) + mov + exit.
    assert_eq!(w, 1 + 2 * 1000 + 2);
    // Budget above the bound: the run must complete and meter exactly.
    let mut mem = MemoryMap::new();
    let (out, metrics) = lp.run_metered(VmConfig { fuel: w + 1 }, &mut mem, &mut NoHelpers, &[]);
    assert_eq!(out, Ok(ExecOutcome::Return(0)));
    assert_eq!(metrics.fuel_consumed, w);
}

/// An increment loop whose counter can wrap before reaching the bound
/// must NOT be claimed bounded (the first-iteration wrap hole).
#[test]
fn wrapping_increment_loop_is_unbounded() {
    let mut p: Vec<Insn> = Vec::new();
    p.extend(build::lddw(1, u64::MAX));
    p.push(build::add_imm(1, 1)); // wraps to 0 on the first iteration
    p.push(Insn::new(op::CLS_JMP | op::JMP_JLT | op::SRC_K, 1, 0, -2, 5));
    p.push(build::mov_imm(0, 0));
    p.push(build::exit());
    let lp = verify_and_load(&Program::new(p), &HashSet::new()).unwrap();
    assert!(
        lp.worst_fuel().is_none(),
        "wrap-prone loop claimed bounded: {:?}",
        lp.worst_fuel()
    );
}

/// A data-dependent loop (counter from an argument register) stays
/// unbounded.
#[test]
fn data_dependent_loop_is_unbounded() {
    let p = vec![
        build::mov_reg(2, 1),
        build::add_imm(2, -1),
        build::jne_imm(2, 0, -2),
        build::mov_imm(0, 0),
        build::exit(),
    ];
    let lp = verify_and_load(&Program::new(p), &HashSet::new()).unwrap();
    assert!(lp.worst_fuel().is_none());
}

// ----- must-reject corpus -----

#[test]
fn uninit_read_is_rejected() {
    // r6 is callee-saved and never written.
    let p = vec![build::mov_reg(0, 6), build::exit()];
    let err = verify_and_load(&Program::new(p), &HashSet::new()).unwrap_err();
    assert!(matches!(err, VerifyError::UninitRead { pc: 0, reg: 6, .. }), "{err:?}");
}

#[test]
fn uninit_r0_at_exit_is_rejected() {
    // `exit` returns r0, which was never written.
    let p = vec![build::exit()];
    let err = verify_and_load(&Program::new(p), &HashSet::new()).unwrap_err();
    assert!(matches!(err, VerifyError::UninitRead { reg: 0, .. }), "{err:?}");
}

#[test]
fn oob_constant_stack_slot_is_rejected() {
    // One slot below the 512-byte frame.
    let p = vec![build::mov_imm(0, 0), build::stxdw(10, 0, -520), build::exit()];
    let err = verify_and_load(&Program::new(p), &HashSet::new()).unwrap_err();
    assert!(
        matches!(err, VerifyError::OobStackAccess { pc: 1, off: -520, size: 8, .. }),
        "{err:?}"
    );
    // At the boundary (r10-512, 8 bytes): legal.
    let p = vec![build::mov_imm(0, 0), build::stxdw(10, 0, -512), build::exit()];
    assert!(verify_and_load(&Program::new(p), &HashSet::new()).is_ok());
    // Positive offsets (above the frame) are equally out.
    let p = vec![build::mov_imm(0, 0), build::ldxdw(0, 10, 0), build::exit()];
    let err = verify_and_load(&Program::new(p), &HashSet::new()).unwrap_err();
    assert!(matches!(err, VerifyError::OobStackAccess { pc: 1, off: 0, .. }), "{err:?}");
}

#[test]
fn unreachable_code_is_rejected() {
    let p = vec![
        build::mov_imm(0, 0),
        build::exit(),
        build::mov_imm(0, 1), // dead
        build::exit(),
    ];
    let err = verify_and_load(&Program::new(p), &HashSet::new()).unwrap_err();
    assert!(matches!(err, VerifyError::UnreachableCode { pc: 2 }), "{err:?}");
}
