//! Differential conformance: the block-compiled engine must be
//! observationally identical to the stepping interpreter on every
//! verifier-accepted program.
//!
//! The generator below is the randomized counterpart of `prep.rs`'s
//! decode corpus: it draws programs over the full lowered ISA — div/mod
//! in both imm and reg forms, the 32-bit ALU variants, shifts (constant
//! amounts kept in-range for the verifier, register amounts unrestricted
//! since both engines wrap), byteswaps at all three widths, stack
//! loads/stores, guarded forward skips in both JMP classes, counted
//! back-edge loops, and occasional wild loads/stores through data
//! registers that fault mid-program. Every generated program is checked
//! against the verifier first, then run on both engines under the same
//! fuel budget, asserting byte-identical:
//!
//!   * outcome (`Return`/`Next` value, or the typed fault and its pc),
//!   * the full `RunMetrics` ledger (`fuel_consumed` == insns retired),
//!   * register state (the epilogue spills r0..r5 to the stack), and
//!   * the entire stack region, byte for byte.

use proptest::prelude::*;
use std::collections::HashSet;
use xbgp_vm::insn::{build, op, Insn, Program};
use xbgp_vm::interp::NoHelpers;
use xbgp_vm::{
    verify, CompiledProgram, ExecOutcome, LoadedProgram, MemoryMap, VmConfig, STACK_BASE,
    STACK_SIZE,
};

/// Registers the generator reads and writes; r6..r9 stay zero and r10 is
/// the frame pointer.
const GEN_REGS: u8 = 6;

fn reg() -> impl Strategy<Value = u8> {
    0u8..GEN_REGS
}

/// Binary ALU ops where any operand value is verifier-acceptable (the
/// constant div/mod-by-zero hole is patched in the map).
fn alu_insn() -> impl Strategy<Value = Insn> {
    let ops = prop_oneof![
        Just(op::ALU_ADD),
        Just(op::ALU_SUB),
        Just(op::ALU_MUL),
        Just(op::ALU_DIV),
        Just(op::ALU_OR),
        Just(op::ALU_AND),
        Just(op::ALU_XOR),
        Just(op::ALU_MOD),
        Just(op::ALU_MOV),
    ];
    (any::<bool>(), ops, any::<bool>(), reg(), reg(), any::<i32>()).prop_map(
        |(is64, opb, use_src, dst, src, imm)| {
            let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
            let srcbit = if use_src { op::SRC_X } else { op::SRC_K };
            // The verifier rejects constant division by zero; runtime
            // zero divisors still arise through the reg forms.
            let imm = if matches!(opb, op::ALU_DIV | op::ALU_MOD) && !use_src && imm == 0 {
                1
            } else {
                imm
            };
            Insn::new(cls | opb | srcbit, dst, src, 0, imm)
        },
    )
}

/// Shifts: constant amounts must be in `0..width` to pass the verifier;
/// register amounts are free (both engines use wrapping shifts).
fn shift_insn() -> impl Strategy<Value = Insn> {
    let ops = prop_oneof![Just(op::ALU_LSH), Just(op::ALU_RSH), Just(op::ALU_ARSH)];
    (any::<bool>(), ops, any::<bool>(), reg(), reg(), 0i32..64).prop_map(
        |(is64, opb, use_src, dst, src, amt)| {
            let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
            let srcbit = if use_src { op::SRC_X } else { op::SRC_K };
            let amt = if !use_src && !is64 { amt % 32 } else { amt };
            Insn::new(cls | opb | srcbit, dst, src, 0, amt)
        },
    )
}

fn neg_insn() -> impl Strategy<Value = Insn> {
    (any::<bool>(), reg()).prop_map(|(is64, dst)| {
        let cls = if is64 { op::CLS_ALU64 } else { op::CLS_ALU };
        Insn::new(cls | op::ALU_NEG, dst, 0, 0, 0)
    })
}

/// Byteswaps: `be16/32/64` (SRC bit set) and `le16/32/64`.
fn end_insn() -> impl Strategy<Value = Insn> {
    (prop_oneof![Just(16), Just(32), Just(64)], any::<bool>(), reg()).prop_map(
        |(width, to_be, dst)| {
            let srcbit = if to_be { op::SRC_X } else { op::SRC_K };
            Insn::new(op::CLS_ALU | op::ALU_END | srcbit, dst, 0, 0, width)
        },
    )
}

/// In-bounds, aligned stack traffic through r10: deterministic memory
/// effects the end-of-run byte comparison can observe.
fn stack_insn() -> impl Strategy<Value = Insn> {
    let slots = (STACK_SIZE / 8) as i16;
    (any::<bool>(), reg(), 0i16..slots).prop_map(|(store, r, slot)| {
        let off = -8 * (slot + 1);
        if store {
            build::stxdw(10, r, off)
        } else {
            build::ldxdw(r, 10, off)
        }
    })
}

/// A load or store through a *data* register: the address is whatever the
/// program computed, so this usually faults — the engines must agree on
/// the fault kind, pc, and the fuel ledger at that point.
fn wild_mem_insn() -> impl Strategy<Value = Insn> {
    (any::<bool>(), reg(), reg(), any::<i16>()).prop_map(|(store, a, b, off)| {
        if store {
            build::stxdw(a, b, off)
        } else {
            build::ldxb(a, b, off)
        }
    })
}

fn body_insn() -> impl Strategy<Value = Insn> {
    // The shim's `prop_oneof!` is unweighted; repetition stands in for
    // weights (ALU-heavy, with rare wild memory ops so most programs get
    // past their first segment).
    prop_oneof![
        alu_insn(),
        alu_insn(),
        alu_insn(),
        alu_insn(),
        shift_insn(),
        shift_insn(),
        neg_insn(),
        end_insn(),
        stack_insn(),
        stack_insn(),
        wild_mem_insn(),
    ]
}

/// A conditional guard that skips the segment it precedes.
#[derive(Debug, Clone, Copy)]
struct Guard {
    cls32: bool,
    opb: u8,
    use_src: bool,
    dst: u8,
    src: u8,
    imm: i32,
}

fn guard() -> impl Strategy<Value = Guard> {
    let ops = prop_oneof![
        Just(op::JMP_JEQ),
        Just(op::JMP_JGT),
        Just(op::JMP_JGE),
        Just(op::JMP_JSET),
        Just(op::JMP_JNE),
        Just(op::JMP_JSGT),
        Just(op::JMP_JSGE),
        Just(op::JMP_JLT),
        Just(op::JMP_JLE),
        Just(op::JMP_JSLT),
        Just(op::JMP_JSLE),
    ];
    (any::<bool>(), ops, any::<bool>(), reg(), reg(), any::<i32>()).prop_map(
        |(cls32, opb, use_src, dst, src, imm)| Guard { cls32, opb, use_src, dst, src, imm },
    )
}

type Segment = (Option<Guard>, Vec<Insn>);

fn segments() -> impl Strategy<Value = Vec<Segment>> {
    proptest::collection::vec(
        (proptest::option::of(guard()), proptest::collection::vec(body_insn(), 0..12)),
        0..6,
    )
}

/// Assemble prologue (seed r0..r5 via `lddw`), optionally loop-wrapped
/// body segments, and an epilogue that spills every generated register to
/// the stack before `exit`. The layout is lddw-free outside the prologue,
/// so all jump offsets are plain slot counts.
fn assemble(seeds: [u64; GEN_REGS as usize], segs: &[Segment], loop_iters: Option<u8>) -> Program {
    let mut p: Vec<Insn> = Vec::new();
    for (r, s) in seeds.iter().enumerate() {
        p.extend(build::lddw(r as u8, *s));
    }
    if let Some(iters) = loop_iters {
        // r5 becomes the loop counter; the body may clobber it, in which
        // case fuel is the terminator and the engines must still agree.
        p.push(build::mov_imm(5, i32::from(iters)));
    }
    let body_start = p.len();
    for (g, body) in segs {
        if let Some(g) = g {
            let cls = if g.cls32 { op::CLS_JMP32 } else { op::CLS_JMP };
            let srcbit = if g.use_src { op::SRC_X } else { op::SRC_K };
            p.push(Insn::new(cls | g.opb | srcbit, g.dst, g.src, body.len() as i16, g.imm));
        }
        p.extend(body.iter().copied());
    }
    if loop_iters.is_some() {
        p.push(build::add_imm(5, -1));
        let jne_slot = p.len() as i64;
        let off = body_start as i64 - (jne_slot + 1);
        p.push(build::jne_imm(5, 0, off as i16));
    }
    for r in 0..GEN_REGS {
        p.push(build::stxdw(10, r, -8 * (i16::from(r) + 1)));
    }
    p.push(build::exit());
    Program::new(p)
}

/// Run `prog` on both engines and assert identical outcome, metrics, and
/// final stack bytes.
fn assert_parity(prog: &Program, fuel: u64, args: &[u64]) -> Result<(), TestCaseError> {
    let no_helpers = HashSet::new();
    prop_assert!(
        verify(prog, &no_helpers).is_ok(),
        "generator must emit verifier-accepted programs: {:?}",
        verify(prog, &no_helpers)
    );
    let lp = LoadedProgram::load(prog);
    let cp = CompiledProgram::compile(&lp);
    let cfg = VmConfig { fuel };
    let mut mem_i = MemoryMap::new();
    let mut mem_c = MemoryMap::new();
    let ri = lp.run_metered(cfg, &mut mem_i, &mut NoHelpers, args);
    let rc = cp.run_metered(cfg, &mut mem_c, &mut NoHelpers, args);
    prop_assert_eq!(&ri, &rc, "engine outcomes or fuel ledgers diverged");
    prop_assert_eq!(
        mem_i.read_bytes(STACK_BASE, STACK_SIZE),
        mem_c.read_bytes(STACK_BASE, STACK_SIZE),
        "stack memory diverged"
    );
    Ok(())
}

proptest! {
    /// Straight-line and guarded-skip programs under generous fuel: the
    /// common case, where most runs return normally through the epilogue.
    #[test]
    fn compiled_matches_interpreter_on_random_programs(
        seeds in any::<[u64; GEN_REGS as usize]>(),
        segs in segments(),
        args in proptest::collection::vec(any::<u64>(), 0..5),
    ) {
        let prog = assemble(seeds, &segs, None);
        assert_parity(&prog, 1_000_000, &args)?;
    }

    /// Counted back-edge loops: exercises the taken-back-edge fuel check
    /// and the all-ALU spin fast path against the stepping ledger.
    #[test]
    fn compiled_matches_interpreter_on_looped_programs(
        seeds in any::<[u64; GEN_REGS as usize]>(),
        segs in segments(),
        iters in 1u8..6,
    ) {
        let prog = assemble(seeds, &segs, Some(iters));
        assert_parity(&prog, 1_000_000, &[])?;
    }

    /// Tight fuel budgets: programs die mid-flight at arbitrary points,
    /// and both engines must report the same `FuelExhausted` slot pc and
    /// the same consumed-fuel figure.
    #[test]
    fn fuel_exhaustion_is_bit_identical_across_engines(
        seeds in any::<[u64; GEN_REGS as usize]>(),
        segs in segments(),
        iters in proptest::option::of(1u8..6),
        fuel in 0u64..400,
    ) {
        let prog = assemble(seeds, &segs, iters);
        assert_parity(&prog, fuel, &[])?;
    }
}

/// Deterministic kitchen-sink program touching every op family the
/// generator draws from (div/mod imm+reg, 32-bit forms, all three shifts
/// in both forms, all byteswap widths) — a fixed regression anchor that
/// does not depend on proptest's seed.
#[test]
fn kitchen_sink_parity() {
    let mut p: Vec<Insn> = Vec::new();
    p.extend(build::lddw(0, 0xdead_beef_cafe_f00d));
    p.extend(build::lddw(1, 0x0123_4567_89ab_cdef));
    p.extend(build::lddw(2, 7));
    p.extend(build::lddw(3, u64::MAX));
    for cls in [op::CLS_ALU64, op::CLS_ALU] {
        for opb in [op::ALU_DIV, op::ALU_MOD] {
            p.push(Insn::new(cls | opb | op::SRC_K, 0, 0, 0, 13));
            p.push(Insn::new(cls | opb | op::SRC_X, 0, 2, 0, 0));
        }
        for opb in [op::ALU_LSH, op::ALU_RSH, op::ALU_ARSH] {
            p.push(Insn::new(cls | opb | op::SRC_K, 1, 0, 0, 5));
            p.push(Insn::new(cls | opb | op::SRC_X, 1, 2, 0, 0));
        }
        for opb in [op::ALU_ADD, op::ALU_SUB, op::ALU_MUL, op::ALU_XOR] {
            p.push(Insn::new(cls | opb | op::SRC_X, 3, 1, 0, 0));
        }
        p.push(Insn::new(cls | op::ALU_NEG, 3, 0, 0, 0));
    }
    for width in [16, 32, 64] {
        p.push(Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_X, 0, 0, 0, width));
        p.push(Insn::new(op::CLS_ALU | op::ALU_END | op::SRC_K, 0, 0, 0, width));
    }
    for r in 0..4 {
        p.push(build::stxdw(10, r, -8 * (i16::from(r) + 1)));
    }
    p.push(build::exit());
    let prog = Program::new(p);

    assert!(verify(&prog, &HashSet::new()).is_ok());
    let lp = LoadedProgram::load(&prog);
    let cp = CompiledProgram::compile(&lp);
    let cfg = VmConfig { fuel: 10_000 };
    let mut mem_i = MemoryMap::new();
    let mut mem_c = MemoryMap::new();
    let ri = lp.run_metered(cfg, &mut mem_i, &mut NoHelpers, &[]);
    let rc = cp.run_metered(cfg, &mut mem_c, &mut NoHelpers, &[]);
    assert_eq!(ri, rc, "kitchen sink diverged");
    assert!(
        matches!(ri.0, Ok(ExecOutcome::Return(_))),
        "sink must run to completion: {:?}",
        ri.0
    );
    assert_eq!(
        mem_i.read_bytes(STACK_BASE, STACK_SIZE).unwrap(),
        mem_c.read_bytes(STACK_BASE, STACK_SIZE).unwrap(),
    );
}
