//! # xbgp-wire — RFC 4271 BGP message codec
//!
//! This crate implements the *neutral representation* of BGP messages used
//! throughout the xBGP reproduction: everything is encoded and decoded in
//! network byte order, exactly as it appears on the wire. Both host BGP
//! implementations (`bgp-fir` and `bgp-wren`) translate between this neutral
//! form and their own internal representations, mirroring how the paper's
//! xBGP API "always manipulates \[messages and attributes\] in network byte
//! order (the neutral xBGP representation)".
//!
//! The codec covers the message types and path attributes exercised by the
//! paper's use cases:
//!
//! * OPEN (with capabilities, including 4-octet AS numbers),
//! * UPDATE (withdrawn routes, path attributes, NLRI),
//! * NOTIFICATION and KEEPALIVE,
//! * the standard path attributes ORIGIN, AS_PATH, NEXT_HOP,
//!   MULTI_EXIT_DISC, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR,
//!   COMMUNITIES, ORIGINATOR_ID and CLUSTER_LIST,
//! * arbitrary unknown attributes (such as the GeoLoc attribute from the
//!   paper's running example), preserved byte-for-byte.
//!
//! Incremental framing over a byte stream is provided by [`msg::MsgReader`].

pub mod attr;
pub mod capability;
pub mod error;
pub mod msg;
pub mod prefix;
pub mod session;

pub use attr::{AsPath, AsSegment, AttrCode, AttrFlags, PathAttr, RawAttr, RawAttrIter};
pub use capability::Capability;
pub use error::WireError;
pub use msg::{Message, MsgReader, MsgType, NotificationMsg, OpenMsg, UpdateMsg};
pub use prefix::Ipv4Prefix;
pub use session::{CloseReason, Session, SessionConfig, SessionEvent, SessionState};

/// BGP protocol version implemented by every daemon in this workspace.
pub const BGP_VERSION: u8 = 4;

/// The well-known BGP port. The simulator uses it as the listening "port"
/// identifier on stream links.
pub const BGP_PORT: u16 = 179;

/// Maximum BGP message size in octets (RFC 4271 §4.1).
pub const MAX_MSG_LEN: usize = 4096;

/// Size of the fixed BGP message header (marker + length + type).
pub const HEADER_LEN: usize = 19;
