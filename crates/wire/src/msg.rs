//! BGP message framing and the four RFC 4271 message types.

use crate::attr::{decode_attrs, encode_attrs, PathAttr};
use crate::capability::Capability;
use crate::error::WireError;
use crate::prefix::Ipv4Prefix;
use crate::{BGP_VERSION, HEADER_LEN, MAX_MSG_LEN};

/// Transitional 2-octet ASN used in the OPEN "My Autonomous System" field
/// by 4-octet-AS speakers (RFC 6793).
pub const AS_TRANS: u16 = 23456;

/// BGP message type octet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    Open = 1,
    Update = 2,
    Notification = 3,
    Keepalive = 4,
}

impl MsgType {
    pub fn from_u8(v: u8) -> Result<MsgType, WireError> {
        match v {
            1 => Ok(MsgType::Open),
            2 => Ok(MsgType::Update),
            3 => Ok(MsgType::Notification),
            4 => Ok(MsgType::Keepalive),
            other => Err(WireError::BadType(other)),
        }
    }
}

/// An OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    pub version: u8,
    /// The speaker's real ASN. Encoded as `AS_TRANS` in the 2-octet field
    /// when it does not fit; the true value always travels in the
    /// four-octet-AS capability.
    pub asn: u32,
    pub hold_time: u16,
    /// BGP identifier (router id) in host byte order.
    pub router_id: u32,
    pub capabilities: Vec<Capability>,
}

impl OpenMsg {
    /// Build a standard OPEN for the daemons in this workspace: version 4,
    /// IPv4-unicast + route-refresh + 4-octet-AS capabilities.
    pub fn standard(asn: u32, hold_time: u16, router_id: u32) -> OpenMsg {
        OpenMsg {
            version: BGP_VERSION,
            asn,
            hold_time,
            router_id,
            capabilities: vec![
                Capability::Multiprotocol { afi: 1, safi: 1 },
                Capability::RouteRefresh,
                Capability::FourOctetAs(asn),
            ],
        }
    }

    /// The ASN negotiated from this OPEN: the four-octet capability value if
    /// present, else the 2-octet field.
    pub fn negotiated_asn(&self) -> u32 {
        self.capabilities
            .iter()
            .find_map(|c| match c {
                Capability::FourOctetAs(a) => Some(*a),
                _ => None,
            })
            .unwrap_or(self.asn)
    }

    /// Did the speaker advertise 4-octet AS support?
    pub fn supports_four_octet_as(&self) -> bool {
        self.capabilities.iter().any(|c| matches!(c, Capability::FourOctetAs(_)))
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        out.push(self.version);
        let my_as = if self.asn <= u32::from(u16::MAX) {
            self.asn as u16
        } else {
            AS_TRANS
        };
        out.extend_from_slice(&my_as.to_be_bytes());
        out.extend_from_slice(&self.hold_time.to_be_bytes());
        out.extend_from_slice(&self.router_id.to_be_bytes());
        // Optional parameters: a single RFC 5492 capabilities parameter.
        let mut caps = Vec::new();
        for c in &self.capabilities {
            c.encode(&mut caps);
        }
        if caps.is_empty() {
            out.push(0);
        } else {
            out.push((caps.len() + 2) as u8); // opt params total length
            out.push(2); // param type: capabilities
            out.push(caps.len() as u8);
            out.extend_from_slice(&caps);
        }
    }

    fn decode_body(buf: &[u8]) -> Result<OpenMsg, WireError> {
        if buf.len() < 10 {
            return Err(WireError::Truncated { what: "OPEN body" });
        }
        let version = buf[0];
        if version != BGP_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let asn2 = u16::from_be_bytes([buf[1], buf[2]]);
        let hold_time = u16::from_be_bytes([buf[3], buf[4]]);
        if hold_time == 1 || hold_time == 2 {
            return Err(WireError::BadHoldTime(hold_time));
        }
        let router_id = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]);
        let opt_len = usize::from(buf[9]);
        if buf.len() < 10 + opt_len {
            return Err(WireError::Truncated { what: "OPEN optional parameters" });
        }
        let mut caps = Vec::new();
        let mut params = &buf[10..10 + opt_len];
        while !params.is_empty() {
            if params.len() < 2 {
                return Err(WireError::Truncated { what: "OPEN parameter header" });
            }
            let ptype = params[0];
            let plen = usize::from(params[1]);
            if params.len() < 2 + plen {
                return Err(WireError::Truncated { what: "OPEN parameter body" });
            }
            if ptype == 2 {
                let mut body = &params[2..2 + plen];
                while !body.is_empty() {
                    let (cap, used) = Capability::decode(body)?;
                    caps.push(cap);
                    body = &body[used..];
                }
            }
            params = &params[2 + plen..];
        }
        Ok(OpenMsg {
            version,
            asn: u32::from(asn2),
            hold_time,
            router_id,
            capabilities: caps,
        })
    }
}

/// An UPDATE message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMsg {
    pub withdrawn: Vec<Ipv4Prefix>,
    pub attrs: Vec<PathAttr>,
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMsg {
    /// An UPDATE announcing `nlri` with the given attributes.
    pub fn announce(attrs: Vec<PathAttr>, nlri: Vec<Ipv4Prefix>) -> UpdateMsg {
        UpdateMsg { withdrawn: Vec::new(), attrs, nlri }
    }

    /// An UPDATE withdrawing the given prefixes.
    pub fn withdraw(withdrawn: Vec<Ipv4Prefix>) -> UpdateMsg {
        UpdateMsg { withdrawn, attrs: Vec::new(), nlri: Vec::new() }
    }

    fn encode_body(&self, out: &mut Vec<u8>, asn_width: usize) {
        let mut wd = Vec::new();
        for p in &self.withdrawn {
            p.encode(&mut wd);
        }
        out.extend_from_slice(&(wd.len() as u16).to_be_bytes());
        out.extend_from_slice(&wd);
        let attrs = encode_attrs(&self.attrs, asn_width);
        out.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
        out.extend_from_slice(&attrs);
        for p in &self.nlri {
            p.encode(out);
        }
    }

    /// Decode an UPDATE body. `asn_width` reflects the session's 4-octet-AS
    /// negotiation.
    pub fn decode_body(buf: &[u8], asn_width: usize) -> Result<UpdateMsg, WireError> {
        if buf.len() < 2 {
            return Err(WireError::Truncated { what: "UPDATE withdrawn length" });
        }
        let wd_len = usize::from(u16::from_be_bytes([buf[0], buf[1]]));
        if buf.len() < 2 + wd_len + 2 {
            return Err(WireError::Truncated { what: "UPDATE withdrawn routes" });
        }
        let withdrawn = Ipv4Prefix::decode_run(&buf[2..2 + wd_len])?;
        let at = 2 + wd_len;
        let attr_len = usize::from(u16::from_be_bytes([buf[at], buf[at + 1]]));
        if buf.len() < at + 2 + attr_len {
            return Err(WireError::Truncated { what: "UPDATE path attributes" });
        }
        let attrs = decode_attrs(&buf[at + 2..at + 2 + attr_len], asn_width)?;
        let nlri = Ipv4Prefix::decode_run(&buf[at + 2 + attr_len..])?;
        Ok(UpdateMsg { withdrawn, attrs, nlri })
    }

    /// Encode a complete UPDATE frame whose attribute section additionally
    /// carries `extra_attr_tlvs` — pre-encoded raw attribute TLVs written
    /// by xBGP extensions at the encode-message insertion point.
    pub fn encode_with_extra(
        &self,
        extra_attr_tlvs: &[u8],
        asn_width: usize,
    ) -> Result<Vec<u8>, WireError> {
        let mut body = Vec::new();
        let mut wd = Vec::new();
        for p in &self.withdrawn {
            p.encode(&mut wd);
        }
        body.extend_from_slice(&(wd.len() as u16).to_be_bytes());
        body.extend_from_slice(&wd);
        let mut attrs = encode_attrs(&self.attrs, asn_width);
        attrs.extend_from_slice(extra_attr_tlvs);
        body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
        body.extend_from_slice(&attrs);
        for p in &self.nlri {
            p.encode(&mut body);
        }
        frame(MsgType::Update, &body)
    }

    /// Raw byte range of the path-attribute section inside an UPDATE body,
    /// used by the xBGP neutral message view.
    pub fn attr_section(body: &[u8]) -> Result<&[u8], WireError> {
        if body.len() < 2 {
            return Err(WireError::Truncated { what: "UPDATE withdrawn length" });
        }
        let wd_len = usize::from(u16::from_be_bytes([body[0], body[1]]));
        let at = 2 + wd_len;
        if body.len() < at + 2 {
            return Err(WireError::Truncated { what: "UPDATE attribute length" });
        }
        let attr_len = usize::from(u16::from_be_bytes([body[at], body[at + 1]]));
        if body.len() < at + 2 + attr_len {
            return Err(WireError::Truncated { what: "UPDATE path attributes" });
        }
        Ok(&body[at + 2..at + 2 + attr_len])
    }
}

/// A NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    pub code: u8,
    pub subcode: u8,
    pub data: Vec<u8>,
}

impl NotificationMsg {
    pub fn new(code: u8, subcode: u8) -> NotificationMsg {
        NotificationMsg { code, subcode, data: Vec::new() }
    }

    /// Cease notification (administrative shutdown).
    pub fn cease() -> NotificationMsg {
        NotificationMsg::new(6, 2)
    }

    /// Build the NOTIFICATION that answers a codec error.
    pub fn from_error(e: &WireError) -> NotificationMsg {
        let (code, subcode) = e.notification_codes();
        NotificationMsg::new(code, subcode)
    }
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    Open(OpenMsg),
    Update(UpdateMsg),
    Notification(NotificationMsg),
    Keepalive,
}

impl Message {
    pub fn msg_type(&self) -> MsgType {
        match self {
            Message::Open(_) => MsgType::Open,
            Message::Update(_) => MsgType::Update,
            Message::Notification(_) => MsgType::Notification,
            Message::Keepalive => MsgType::Keepalive,
        }
    }

    /// Encode the full message including the 19-octet header.
    pub fn encode(&self, asn_width: usize) -> Result<Vec<u8>, WireError> {
        let mut body = Vec::new();
        match self {
            Message::Open(o) => o.encode_body(&mut body),
            Message::Update(u) => u.encode_body(&mut body, asn_width),
            Message::Notification(n) => {
                body.push(n.code);
                body.push(n.subcode);
                body.extend_from_slice(&n.data);
            }
            Message::Keepalive => {}
        }
        frame(self.msg_type(), &body)
    }

    /// Decode a message from a complete frame (header + body).
    pub fn decode(frame: &[u8], asn_width: usize) -> Result<Message, WireError> {
        let (ty, body) = deframe(frame)?;
        Message::decode_body(ty, body, asn_width)
    }

    /// Decode a message body whose type is already known.
    pub fn decode_body(ty: MsgType, body: &[u8], asn_width: usize) -> Result<Message, WireError> {
        Ok(match ty {
            MsgType::Open => Message::Open(OpenMsg::decode_body(body)?),
            MsgType::Update => Message::Update(UpdateMsg::decode_body(body, asn_width)?),
            MsgType::Notification => {
                if body.len() < 2 {
                    return Err(WireError::Truncated { what: "NOTIFICATION body" });
                }
                Message::Notification(NotificationMsg {
                    code: body[0],
                    subcode: body[1],
                    data: body[2..].to_vec(),
                })
            }
            MsgType::Keepalive => {
                if !body.is_empty() {
                    return Err(WireError::BadLength((HEADER_LEN + body.len()) as u16));
                }
                Message::Keepalive
            }
        })
    }
}

/// Prepend the BGP header (all-ones marker, length, type) to a body.
pub fn frame(ty: MsgType, body: &[u8]) -> Result<Vec<u8>, WireError> {
    let total = HEADER_LEN + body.len();
    if total > MAX_MSG_LEN {
        return Err(WireError::TooLong(total));
    }
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&[0xff; 16]);
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.push(ty as u8);
    out.extend_from_slice(body);
    Ok(out)
}

/// Validate the header of a complete frame and return `(type, body)`.
pub fn deframe(frame: &[u8]) -> Result<(MsgType, &[u8]), WireError> {
    if frame.len() < HEADER_LEN {
        return Err(WireError::Truncated { what: "message header" });
    }
    if frame[..16] != [0xff; 16] {
        return Err(WireError::BadMarker);
    }
    let len = u16::from_be_bytes([frame[16], frame[17]]);
    if usize::from(len) != frame.len() || usize::from(len) < HEADER_LEN {
        return Err(WireError::BadLength(len));
    }
    let ty = MsgType::from_u8(frame[18])?;
    let min = match ty {
        MsgType::Open => HEADER_LEN + 10,
        MsgType::Update => HEADER_LEN + 4,
        MsgType::Notification => HEADER_LEN + 2,
        MsgType::Keepalive => HEADER_LEN,
    };
    if usize::from(len) < min {
        return Err(WireError::BadLength(len));
    }
    Ok((ty, &frame[HEADER_LEN..]))
}

/// Incremental reassembler of BGP frames from a byte stream.
///
/// Feed arbitrary chunks with [`MsgReader::push`], then drain complete
/// frames with [`MsgReader::next_frame`]. The reader only validates the
/// header enough to find frame boundaries; message-level validation happens
/// in [`Message::decode`].
#[derive(Debug, Default)]
pub struct MsgReader {
    buf: Vec<u8>,
    cursor: usize,
}

impl MsgReader {
    pub fn new() -> MsgReader {
        MsgReader::default()
    }

    /// Append freshly received bytes.
    pub fn push(&mut self, data: &[u8]) {
        // Compact lazily so the buffer does not grow without bound.
        if self.cursor > 0 && self.cursor == self.buf.len() {
            self.buf.clear();
            self.cursor = 0;
        } else if self.cursor > 64 * 1024 {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed octets.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.cursor
    }

    /// Pop the next complete frame, if one is buffered.
    ///
    /// Returns `Ok(Some(frame))` with a full header+body frame,
    /// `Ok(None)` if more bytes are needed, or `Err` if the stream is
    /// unsynchronized (bad marker / absurd length) and must be reset.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.cursor..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[..16] != [0xff; 16] {
            return Err(WireError::BadMarker);
        }
        let len = usize::from(u16::from_be_bytes([avail[16], avail[17]]));
        if !(HEADER_LEN..=MAX_MSG_LEN).contains(&len) {
            return Err(WireError::BadLength(len as u16));
        }
        if avail.len() < len {
            return Ok(None);
        }
        let frame = avail[..len].to_vec();
        self.cursor += len;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AsPath, Origin};
    use proptest::prelude::*;

    fn round_trip(m: Message) -> Message {
        let buf = m.encode(4).unwrap();
        Message::decode(&buf, 4).unwrap()
    }

    #[test]
    fn keepalive_round_trip() {
        assert_eq!(round_trip(Message::Keepalive), Message::Keepalive);
        let buf = Message::Keepalive.encode(4).unwrap();
        assert_eq!(buf.len(), HEADER_LEN);
    }

    #[test]
    fn open_round_trip_preserves_capabilities() {
        let o = OpenMsg::standard(65001, 90, 0x0101_0101);
        let m = round_trip(Message::Open(o.clone()));
        assert_eq!(m, Message::Open(o));
    }

    #[test]
    fn open_with_big_asn_uses_as_trans() {
        let o = OpenMsg::standard(4_200_000_000, 90, 1);
        let buf = Message::Open(o).encode(4).unwrap();
        let body = &buf[HEADER_LEN..];
        assert_eq!(u16::from_be_bytes([body[1], body[2]]), AS_TRANS);
        if let Message::Open(d) = Message::decode(&buf, 4).unwrap() {
            assert_eq!(d.negotiated_asn(), 4_200_000_000);
            assert!(d.supports_four_octet_as());
        } else {
            panic!("expected OPEN");
        }
    }

    #[test]
    fn open_rejects_bad_version_and_hold_time() {
        let o = OpenMsg::standard(1, 90, 1);
        let mut buf = Message::Open(o).encode(4).unwrap();
        buf[HEADER_LEN] = 3; // version
        assert!(matches!(Message::decode(&buf, 4), Err(WireError::UnsupportedVersion(3))));

        let o = OpenMsg { hold_time: 2, ..OpenMsg::standard(1, 90, 1) };
        let buf = Message::Open(o).encode(4).unwrap();
        assert!(matches!(Message::decode(&buf, 4), Err(WireError::BadHoldTime(2))));
    }

    #[test]
    fn update_round_trip() {
        let u = UpdateMsg {
            withdrawn: vec!["10.9.0.0/16".parse().unwrap()],
            attrs: vec![
                PathAttr::Origin(Origin::Igp),
                PathAttr::AsPath(AsPath::sequence(vec![65001, 65002])),
                PathAttr::NextHop(0x0a00_0001),
                PathAttr::LocalPref(100),
            ],
            nlri: vec!["192.0.2.0/24".parse().unwrap(), "198.51.100.0/24".parse().unwrap()],
        };
        assert_eq!(round_trip(Message::Update(u.clone())), Message::Update(u));
    }

    #[test]
    fn attr_section_finds_attribute_bytes() {
        let u = UpdateMsg::announce(
            vec![PathAttr::Origin(Origin::Egp)],
            vec!["203.0.113.0/24".parse().unwrap()],
        );
        let buf = Message::Update(u).encode(4).unwrap();
        let body = &buf[HEADER_LEN..];
        let attrs = UpdateMsg::attr_section(body).unwrap();
        assert_eq!(attrs, &[0x40, 1, 1, 1][..]); // ORIGIN=EGP TLV
    }

    #[test]
    fn encode_with_extra_appends_raw_tlvs() {
        // The encode-message insertion point appends extension-written
        // attribute TLVs; the receiver must decode them as ordinary
        // attributes alongside the typed ones.
        let u = UpdateMsg::announce(
            vec![
                PathAttr::Origin(Origin::Igp),
                PathAttr::AsPath(AsPath::sequence(vec![65001])),
                PathAttr::NextHop(7),
            ],
            vec!["203.0.113.0/24".parse().unwrap()],
        );
        let extra = {
            let mut t = Vec::new();
            crate::attr::encode_attr_tlv(
                &mut t,
                crate::attr::AttrFlags::OPT_TRANS,
                66,
                &[1, 2, 3, 4],
            );
            t
        };
        let frame = u.encode_with_extra(&extra, 4).unwrap();
        match Message::decode(&frame, 4).unwrap() {
            Message::Update(got) => {
                assert_eq!(got.nlri, u.nlri);
                assert_eq!(got.attrs.len(), 4);
                assert_eq!(
                    got.attrs[3],
                    PathAttr::Unknown {
                        flags: crate::attr::AttrFlags::OPT_TRANS,
                        code: 66,
                        value: vec![1, 2, 3, 4],
                    }
                );
            }
            other => panic!("expected UPDATE, got {other:?}"),
        }
        // No extra bytes: identical to the plain encoder.
        assert_eq!(u.encode_with_extra(&[], 4).unwrap(), Message::Update(u).encode(4).unwrap());
    }

    #[test]
    fn notification_round_trip() {
        let n = NotificationMsg { code: 6, subcode: 2, data: vec![1, 2, 3] };
        assert_eq!(round_trip(Message::Notification(n.clone())), Message::Notification(n));
    }

    #[test]
    fn deframe_rejects_bad_marker_length_type() {
        let mut good = Message::Keepalive.encode(4).unwrap();
        good[0] = 0xfe;
        assert!(matches!(deframe(&good), Err(WireError::BadMarker)));

        let mut good = Message::Keepalive.encode(4).unwrap();
        good[17] = 18; // < HEADER_LEN
        assert!(matches!(deframe(&good), Err(WireError::BadLength(_))));

        let mut good = Message::Keepalive.encode(4).unwrap();
        good[18] = 9;
        assert!(matches!(deframe(&good), Err(WireError::BadType(9))));
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let buf = frame(MsgType::Keepalive, &[0]).unwrap();
        assert!(Message::decode(&buf, 4).is_err());
    }

    #[test]
    fn too_long_message_rejected_at_encode() {
        let u = UpdateMsg::announce(
            vec![PathAttr::Unknown {
                flags: crate::attr::AttrFlags::OPT_TRANS,
                code: 99,
                value: vec![0; MAX_MSG_LEN],
            }],
            vec![],
        );
        assert!(matches!(Message::Update(u).encode(4), Err(WireError::TooLong(_))));
    }

    #[test]
    fn reader_reassembles_split_frames() {
        let m1 = Message::Keepalive.encode(4).unwrap();
        let m2 = Message::Open(OpenMsg::standard(65001, 90, 7)).encode(4).unwrap();
        let mut all = m1.clone();
        all.extend_from_slice(&m2);

        let mut r = MsgReader::new();
        // Feed one byte at a time: frames must still come out whole.
        for b in &all {
            r.push(&[*b]);
        }
        assert_eq!(r.next_frame().unwrap().unwrap(), m1);
        assert_eq!(r.next_frame().unwrap().unwrap(), m2);
        assert_eq!(r.next_frame().unwrap(), None);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reader_detects_desync() {
        let mut r = MsgReader::new();
        r.push(&[0u8; 32]);
        assert!(matches!(r.next_frame(), Err(WireError::BadMarker)));
    }

    proptest! {
        #[test]
        fn prop_reader_equals_whole_frames(
            msgs in proptest::collection::vec(0u8..3, 1..8),
            chunk in 1usize..40,
        ) {
            // Build a stream of random known messages and feed it in fixed
            // size chunks; the reader must reproduce the frame sequence.
            let frames: Vec<Vec<u8>> = msgs.iter().map(|k| match k {
                0 => Message::Keepalive.encode(4).unwrap(),
                1 => Message::Open(OpenMsg::standard(65000, 180, 42)).encode(4).unwrap(),
                _ => Message::Notification(NotificationMsg::cease()).encode(4).unwrap(),
            }).collect();
            let stream: Vec<u8> = frames.concat();
            let mut r = MsgReader::new();
            let mut got = Vec::new();
            for c in stream.chunks(chunk) {
                r.push(c);
                while let Some(f) = r.next_frame().unwrap() {
                    got.push(f);
                }
            }
            prop_assert_eq!(got, frames);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Message::decode(&data, 4);
            let _ = UpdateMsg::decode_body(&data, 4);
            let _ = UpdateMsg::decode_body(&data, 2);
            let _ = UpdateMsg::attr_section(&data);
            let _ = OpenMsg::decode_body(&data);
            let _ = deframe(&data);
            let mut r = MsgReader::new();
            r.push(&data);
            while let Ok(Some(_)) = r.next_frame() {}
        }

        #[test]
        fn prop_mutated_valid_update_never_panics(
            flip in proptest::collection::vec((0usize..512, any::<u8>()), 1..8),
        ) {
            // Start from a well-formed UPDATE frame and corrupt arbitrary
            // bytes: every decode path must fail cleanly, never panic.
            let u = UpdateMsg {
                withdrawn: vec!["10.9.0.0/16".parse().unwrap()],
                attrs: vec![
                    PathAttr::Origin(Origin::Igp),
                    PathAttr::AsPath(AsPath::sequence(vec![65001, 65002])),
                    PathAttr::NextHop(0x0a00_0001),
                    PathAttr::Communities(vec![0x0001_0002]),
                ],
                nlri: vec!["192.0.2.0/24".parse().unwrap()],
            };
            let mut buf = Message::Update(u).encode(4).unwrap();
            for (pos, val) in flip {
                let n = buf.len();
                buf[pos % n] = val;
            }
            let _ = Message::decode(&buf, 4);
            let _ = Message::decode(&buf, 2);
            if buf.len() > HEADER_LEN {
                let body = &buf[HEADER_LEN..];
                let _ = UpdateMsg::decode_body(body, 4);
                let _ = UpdateMsg::attr_section(body);
            }
        }
    }
}
