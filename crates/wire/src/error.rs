//! Error type shared by the wire codec.

use std::fmt;

/// Errors produced while encoding or decoding BGP messages.
///
/// Each variant maps onto the RFC 4271 NOTIFICATION error space where one
/// exists; [`WireError::notification_codes`] performs that mapping so a
/// daemon can answer a malformed message with the correct NOTIFICATION.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The 16-octet marker was not all-ones.
    BadMarker,
    /// Header length field outside `[19, 4096]` or inconsistent with type.
    BadLength(u16),
    /// Unknown message type octet.
    BadType(u8),
    /// Fewer octets available than the structure requires.
    Truncated {
        /// What was being decoded when the input ran out.
        what: &'static str,
    },
    /// OPEN carried an unsupported protocol version.
    UnsupportedVersion(u8),
    /// OPEN carried an unacceptable hold time (1 or 2 seconds).
    BadHoldTime(u16),
    /// A path attribute had inconsistent flags for its type code.
    AttributeFlags {
        /// Attribute type code.
        code: u8,
        /// Flag octet observed on the wire.
        flags: u8,
    },
    /// A path attribute body had the wrong length for its type code.
    AttributeLength {
        /// Attribute type code.
        code: u8,
        /// Body length observed on the wire.
        len: usize,
    },
    /// A well-known mandatory attribute is missing from an UPDATE.
    MissingWellKnown(&'static str),
    /// ORIGIN attribute carried an undefined value.
    InvalidOrigin(u8),
    /// AS_PATH was malformed (bad segment type or truncated segment).
    MalformedAsPath,
    /// A prefix length exceeded 32 bits.
    BadPrefixLength(u8),
    /// The encoded message would exceed the 4096-octet maximum.
    TooLong(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMarker => write!(f, "connection not synchronized: bad marker"),
            WireError::BadLength(l) => write!(f, "bad message length {l}"),
            WireError::BadType(t) => write!(f, "bad message type {t}"),
            WireError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported BGP version {v}"),
            WireError::BadHoldTime(h) => write!(f, "unacceptable hold time {h}"),
            WireError::AttributeFlags { code, flags } => {
                write!(f, "attribute flags error: code {code}, flags {flags:#04x}")
            }
            WireError::AttributeLength { code, len } => {
                write!(f, "attribute length error: code {code}, len {len}")
            }
            WireError::MissingWellKnown(name) => {
                write!(f, "missing well-known attribute {name}")
            }
            WireError::InvalidOrigin(v) => write!(f, "invalid ORIGIN value {v}"),
            WireError::MalformedAsPath => write!(f, "malformed AS_PATH"),
            WireError::BadPrefixLength(l) => write!(f, "invalid prefix length {l}"),
            WireError::TooLong(l) => write!(f, "encoded message length {l} exceeds maximum"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Map the error to RFC 4271 NOTIFICATION `(error code, subcode)`.
    pub fn notification_codes(&self) -> (u8, u8) {
        use WireError::*;
        match self {
            BadMarker => (1, 1),
            BadLength(_) | TooLong(_) => (1, 2),
            BadType(_) => (1, 3),
            UnsupportedVersion(_) => (2, 1),
            BadHoldTime(_) => (2, 6),
            AttributeFlags { .. } => (3, 4),
            AttributeLength { .. } => (3, 5),
            MissingWellKnown(_) => (3, 3),
            InvalidOrigin(_) => (3, 6),
            MalformedAsPath => (3, 11),
            BadPrefixLength(_) => (3, 10),
            Truncated { .. } => (3, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::AttributeLength { code: 2, len: 3 };
        assert!(e.to_string().contains("code 2"));
        assert!(e.to_string().contains("len 3"));
    }

    #[test]
    fn notification_mapping_covers_update_errors() {
        assert_eq!(WireError::MalformedAsPath.notification_codes(), (3, 11));
        assert_eq!(WireError::MissingWellKnown("ORIGIN").notification_codes(), (3, 3));
        assert_eq!(WireError::BadMarker.notification_codes(), (1, 1));
    }
}
