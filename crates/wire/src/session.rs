//! Per-neighbor BGP session FSM for socket transports.
//!
//! The netsim daemons carry their own session handling, entangled with
//! simulator links and timers. A real transport (the `xbgp-serve` TCP
//! runtime) needs the same OPEN/KEEPALIVE/NOTIFICATION choreography at
//! the socket edge, *before* frames reach a daemon core — so it lives
//! here, next to the codec, as a pure state machine:
//!
//! * no I/O — byte chunks go in via [`Session::on_bytes`], frames to
//!   write come back as [`SessionEvent::Send`];
//! * no clock — every entry point takes `now_ns`, and the caller drives
//!   liveness by calling [`Session::tick`] at (or after)
//!   [`Session::next_deadline`]. Tests substitute a mock clock by just
//!   passing numbers.
//!
//! Malformed input never panics: any codec error is answered with the
//! NOTIFICATION mapped by [`WireError::notification_codes`] and the
//! session closes. Messages that are well-formed but wrong for the
//! current state close with an FSM error (code 5) whose subcode names
//! the state, per RFC 4271 §6.6.

use crate::error::WireError;
use crate::msg::{deframe, Message, MsgReader, MsgType, NotificationMsg, OpenMsg, UpdateMsg};

/// Static description of one session endpoint.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub local_asn: u32,
    /// BGP identifier sent in our OPEN.
    pub router_id: u32,
    /// Hold time proposed in OPEN (seconds); the negotiated value is the
    /// minimum of both sides. `0` proposes no liveness enforcement.
    pub hold_time_secs: u16,
    /// When set, the peer's OPEN must carry exactly this ASN; anything
    /// else closes with Bad Peer AS (2, 2).
    pub expect_asn: Option<u32>,
}

/// RFC 4271 session states (the subset a pre-established TCP transport
/// needs: the Connect/Active dance belongs to the socket layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Created, OPEN not yet sent.
    Idle,
    /// Our OPEN is out; waiting for the peer's.
    OpenSent,
    /// Peer's OPEN accepted and our KEEPALIVE sent; waiting for theirs.
    OpenConfirm,
    Established,
    /// Terminal; the transport should be torn down.
    Closed,
}

/// Why a session reached [`SessionState::Closed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// We detected an error and sent a NOTIFICATION with these codes.
    LocalError { code: u8, subcode: u8 },
    /// The peer sent us a NOTIFICATION.
    PeerNotification { code: u8, subcode: u8 },
    /// No message inside the negotiated hold time; we sent (4, 0).
    HoldTimerExpired,
    /// [`Session::shutdown`] — we sent Cease.
    AdminShutdown,
}

/// What the FSM asks of its caller. Ordering within one returned batch is
/// significant (e.g. a `Send` of a NOTIFICATION precedes its `Closed`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// Write these bytes (one complete BGP frame) to the transport.
    Send(Vec<u8>),
    /// The session reached Established.
    Established {
        peer_asn: u32,
        peer_router_id: u32,
        hold_ns: u64,
    },
    /// A validated UPDATE frame (header + body, exactly as received) to
    /// forward into the daemon core.
    Update(Vec<u8>),
    /// The session is over; close the transport after flushing.
    Closed(CloseReason),
}

/// FSM-error subcode naming the state a misplaced message arrived in
/// (RFC 4271 §6.6).
fn fsm_subcode(state: SessionState) -> u8 {
    match state {
        SessionState::OpenSent => 1,
        SessionState::OpenConfirm => 2,
        _ => 3, // Established
    }
}

const SEC: u64 = 1_000_000_000;

/// One BGP session over a pre-established stream transport.
pub struct Session {
    cfg: SessionConfig,
    state: SessionState,
    reader: MsgReader,
    /// AS-number width for UPDATE bodies: 4 once the peer confirms the
    /// four-octet capability (we always offer it), else 2.
    asn_width: usize,
    /// Negotiated hold time (ns); 0 = liveness disabled.
    hold_ns: u64,
    /// Clock of the most recent well-formed inbound message.
    last_rx_ns: u64,
    /// When the next KEEPALIVE is due (hold/3 cadence); `u64::MAX` until
    /// the handshake arms it or when hold is 0.
    next_keepalive_ns: u64,
    peer_asn: u32,
    peer_router_id: u32,
}

impl Session {
    pub fn new(cfg: SessionConfig) -> Session {
        Session {
            cfg,
            state: SessionState::Idle,
            reader: MsgReader::new(),
            asn_width: 2,
            hold_ns: 0,
            last_rx_ns: 0,
            next_keepalive_ns: u64::MAX,
            peer_asn: 0,
            peer_router_id: 0,
        }
    }

    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Negotiated hold time in ns (0 until OPEN exchange, or when
    /// negotiated off).
    pub fn hold_ns(&self) -> u64 {
        self.hold_ns
    }

    /// Peer ASN learned from its OPEN (0 before then).
    pub fn peer_asn(&self) -> u32 {
        self.peer_asn
    }

    /// Begin the handshake: emit our OPEN. Idle → OpenSent.
    pub fn start(&mut self, now_ns: u64) -> Vec<SessionEvent> {
        if self.state != SessionState::Idle {
            return Vec::new();
        }
        self.state = SessionState::OpenSent;
        self.last_rx_ns = now_ns;
        // Until negotiation the proposed hold bounds the wait for the
        // peer's OPEN, so a silent peer cannot hold the slot forever.
        self.hold_ns = u64::from(self.cfg.hold_time_secs) * SEC;
        let open =
            OpenMsg::standard(self.cfg.local_asn, self.cfg.hold_time_secs, self.cfg.router_id);
        vec![SessionEvent::Send(Message::Open(open).encode(4).expect("OPEN encodes"))]
    }

    /// Feed raw bytes read from the transport.
    pub fn on_bytes(&mut self, now_ns: u64, data: &[u8]) -> Vec<SessionEvent> {
        let mut out = Vec::new();
        if matches!(self.state, SessionState::Idle | SessionState::Closed) {
            return out;
        }
        self.reader.push(data);
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => self.handle_frame(now_ns, frame, &mut out),
                Ok(None) => break,
                Err(e) => {
                    self.close_with_error(&e, &mut out);
                    break;
                }
            }
            if self.state == SessionState::Closed {
                break;
            }
        }
        out
    }

    /// Drive timers: hold-timer enforcement and the KEEPALIVE cadence.
    /// Call at (or any time after) [`Session::next_deadline`].
    pub fn tick(&mut self, now_ns: u64) -> Vec<SessionEvent> {
        let mut out = Vec::new();
        if matches!(self.state, SessionState::Idle | SessionState::Closed) || self.hold_ns == 0 {
            return out;
        }
        if now_ns.saturating_sub(self.last_rx_ns) >= self.hold_ns {
            out.push(SessionEvent::Send(
                Message::Notification(NotificationMsg::new(4, 0))
                    .encode(self.asn_width)
                    .expect("NOTIFICATION encodes"),
            ));
            out.push(SessionEvent::Closed(CloseReason::HoldTimerExpired));
            self.state = SessionState::Closed;
            return out;
        }
        if now_ns >= self.next_keepalive_ns {
            out.push(SessionEvent::Send(
                Message::Keepalive.encode(self.asn_width).expect("KEEPALIVE encodes"),
            ));
            self.next_keepalive_ns = now_ns + self.hold_ns / 3;
        }
        out
    }

    /// The next clock value at which [`Session::tick`] has work to do,
    /// if liveness is armed.
    pub fn next_deadline(&self) -> Option<u64> {
        if matches!(self.state, SessionState::Idle | SessionState::Closed) || self.hold_ns == 0 {
            return None;
        }
        Some((self.last_rx_ns + self.hold_ns).min(self.next_keepalive_ns))
    }

    /// Administrative shutdown: send Cease and close.
    pub fn shutdown(&mut self) -> Vec<SessionEvent> {
        if matches!(self.state, SessionState::Idle | SessionState::Closed) {
            self.state = SessionState::Closed;
            return vec![SessionEvent::Closed(CloseReason::AdminShutdown)];
        }
        self.state = SessionState::Closed;
        vec![
            SessionEvent::Send(
                Message::Notification(NotificationMsg::cease())
                    .encode(self.asn_width)
                    .expect("NOTIFICATION encodes"),
            ),
            SessionEvent::Closed(CloseReason::AdminShutdown),
        ]
    }

    fn close_with_error(&mut self, e: &WireError, out: &mut Vec<SessionEvent>) {
        let n = NotificationMsg::from_error(e);
        let (code, subcode) = (n.code, n.subcode);
        out.push(SessionEvent::Send(
            Message::Notification(n).encode(self.asn_width).expect("NOTIFICATION encodes"),
        ));
        out.push(SessionEvent::Closed(CloseReason::LocalError { code, subcode }));
        self.state = SessionState::Closed;
    }

    fn close_with_codes(&mut self, code: u8, subcode: u8, out: &mut Vec<SessionEvent>) {
        out.push(SessionEvent::Send(
            Message::Notification(NotificationMsg::new(code, subcode))
                .encode(self.asn_width)
                .expect("NOTIFICATION encodes"),
        ));
        out.push(SessionEvent::Closed(CloseReason::LocalError { code, subcode }));
        self.state = SessionState::Closed;
    }

    fn handle_frame(&mut self, now_ns: u64, frame: Vec<u8>, out: &mut Vec<SessionEvent>) {
        let (ty, body) = match deframe(&frame) {
            Ok(x) => x,
            Err(e) => return self.close_with_error(&e, out),
        };
        self.last_rx_ns = now_ns;
        match (self.state, ty) {
            (SessionState::OpenSent, MsgType::Open) => {
                let open = match Message::decode_body(MsgType::Open, body, self.asn_width) {
                    Ok(Message::Open(o)) => o,
                    Ok(_) => unreachable!("Open type decodes to Open"),
                    Err(e) => return self.close_with_error(&e, out),
                };
                let peer_asn = open.negotiated_asn();
                if self.cfg.expect_asn.is_some_and(|a| a != peer_asn) {
                    // Bad Peer AS (RFC 4271 §6.2).
                    return self.close_with_codes(2, 2, out);
                }
                self.peer_asn = peer_asn;
                self.peer_router_id = open.router_id;
                self.asn_width = if open.supports_four_octet_as() { 4 } else { 2 };
                self.hold_ns = u64::from(open.hold_time.min(self.cfg.hold_time_secs)) * SEC;
                self.next_keepalive_ns = if self.hold_ns > 0 {
                    now_ns + self.hold_ns / 3
                } else {
                    u64::MAX
                };
                self.state = SessionState::OpenConfirm;
                out.push(SessionEvent::Send(
                    Message::Keepalive.encode(self.asn_width).expect("KEEPALIVE encodes"),
                ));
            }
            (SessionState::OpenConfirm, MsgType::Keepalive) => {
                self.state = SessionState::Established;
                out.push(SessionEvent::Established {
                    peer_asn: self.peer_asn,
                    peer_router_id: self.peer_router_id,
                    hold_ns: self.hold_ns,
                });
            }
            (SessionState::Established, MsgType::Update) => {
                // Full-body validation at the edge: the daemon core never
                // sees an UPDATE this session could not decode.
                if let Err(e) = UpdateMsg::decode_body(body, self.asn_width) {
                    return self.close_with_error(&e, out);
                }
                out.push(SessionEvent::Update(frame));
            }
            (SessionState::Established, MsgType::Keepalive) => {} // liveness only
            (_, MsgType::Notification) => {
                let (code, subcode) = if body.len() >= 2 { (body[0], body[1]) } else { (0, 0) };
                out.push(SessionEvent::Closed(CloseReason::PeerNotification { code, subcode }));
                self.state = SessionState::Closed;
            }
            (state, _) => {
                // Well-formed but wrong for this state: FSM error, subcode
                // naming the state (RFC 4271 §6.6).
                self.close_with_codes(5, fsm_subcode(state), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(asn: u32, id: u32) -> SessionConfig {
        SessionConfig {
            local_asn: asn,
            router_id: id,
            hold_time_secs: 90,
            expect_asn: None,
        }
    }

    /// Collect the `Send` payloads of an event batch into one stream.
    fn sent(events: &[SessionEvent]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in events {
            if let SessionEvent::Send(b) = e {
                out.extend_from_slice(b);
            }
        }
        out
    }

    fn notification_codes(events: &[SessionEvent]) -> Option<(u8, u8)> {
        events.iter().find_map(|e| match e {
            SessionEvent::Closed(CloseReason::LocalError { code, subcode }) => {
                Some((*code, *subcode))
            }
            _ => None,
        })
    }

    /// Drive two sessions against each other until neither emits bytes.
    fn handshake(a: &mut Session, b: &mut Session) -> (Vec<SessionEvent>, Vec<SessionEvent>) {
        let mut ev_a = a.start(0);
        let mut ev_b = b.start(0);
        loop {
            let bytes_a: Vec<u8> = sent(&ev_a);
            let bytes_b: Vec<u8> = sent(&ev_b);
            ev_a.retain(|e| !matches!(e, SessionEvent::Send(_)));
            ev_b.retain(|e| !matches!(e, SessionEvent::Send(_)));
            if bytes_a.is_empty() && bytes_b.is_empty() {
                return (ev_a, ev_b);
            }
            let more_b = b.on_bytes(1, &bytes_a);
            let more_a = a.on_bytes(1, &bytes_b);
            ev_a.extend(more_a);
            ev_b.extend(more_b);
        }
    }

    #[test]
    fn two_sessions_reach_established() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        let (ev_a, ev_b) = handshake(&mut a, &mut b);
        assert_eq!(a.state(), SessionState::Established);
        assert_eq!(b.state(), SessionState::Established);
        assert!(ev_a.iter().any(|e| matches!(
            e,
            SessionEvent::Established { peer_asn: 65002, peer_router_id: 2, .. }
        )));
        assert!(ev_b
            .iter()
            .any(|e| matches!(e, SessionEvent::Established { peer_asn: 65001, .. })));
        assert_eq!(a.hold_ns(), 90 * SEC);
        assert_eq!(a.peer_asn(), 65002);
    }

    #[test]
    fn expected_asn_mismatch_closes_with_bad_peer_as() {
        let mut a = Session::new(SessionConfig { expect_asn: Some(64999), ..cfg(65001, 1) });
        let mut b = Session::new(cfg(65002, 2));
        let (ev_a, _) = handshake(&mut a, &mut b);
        assert_eq!(a.state(), SessionState::Closed);
        assert_eq!(notification_codes(&ev_a), Some((2, 2)));
    }

    #[test]
    fn updates_flow_only_when_established() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        handshake(&mut a, &mut b);
        let upd = Message::Update(UpdateMsg::withdraw(vec!["10.0.0.0/24".parse().unwrap()]))
            .encode(4)
            .unwrap();
        let ev = b.on_bytes(2, &upd);
        assert!(matches!(&ev[..], [SessionEvent::Update(f)] if *f == upd));
    }

    #[test]
    fn update_in_open_sent_is_fsm_error_subcode_1() {
        let mut s = Session::new(cfg(65001, 1));
        s.start(0);
        let upd = Message::Update(UpdateMsg::withdraw(vec!["10.0.0.0/24".parse().unwrap()]))
            .encode(4)
            .unwrap();
        let ev = s.on_bytes(1, &upd);
        assert_eq!(s.state(), SessionState::Closed);
        assert_eq!(notification_codes(&ev), Some((5, 1)));
    }

    #[test]
    fn open_in_open_confirm_is_fsm_error_subcode_2() {
        let mut s = Session::new(cfg(65001, 1));
        s.start(0);
        let open = Message::Open(OpenMsg::standard(65002, 90, 2)).encode(4).unwrap();
        s.on_bytes(1, &open); // → OpenConfirm
        let ev = s.on_bytes(2, &open); // second OPEN is misplaced
        assert_eq!(notification_codes(&ev), Some((5, 2)));
    }

    #[test]
    fn open_in_established_is_fsm_error_subcode_3() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        handshake(&mut a, &mut b);
        let open = Message::Open(OpenMsg::standard(65001, 90, 1)).encode(4).unwrap();
        let ev = b.on_bytes(2, &open);
        assert_eq!(notification_codes(&ev), Some((5, 3)));
    }

    #[test]
    fn hold_timer_expiry_with_mock_clock() {
        // The clock here is just the numbers we pass in — a mock clock.
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        handshake(&mut a, &mut b);
        assert_eq!(a.hold_ns(), 90 * SEC);

        // One keepalive keeps it alive… (our own outbound keepalive may
        // fire here too; the point is the session does not close)
        let t1 = 40 * SEC;
        let ev1 = a.tick(t1);
        assert!(
            !ev1.iter().any(|e| matches!(e, SessionEvent::Closed(_))),
            "hold not yet expired"
        );
        let ka = Message::Keepalive.encode(4).unwrap();
        a.on_bytes(t1, &ka);

        // …then silence past the negotiated hold expires it exactly once.
        let t2 = t1 + 90 * SEC;
        let ev = a.tick(t2);
        assert_eq!(a.state(), SessionState::Closed);
        assert!(matches!(ev[0], SessionEvent::Send(_)));
        let SessionEvent::Send(frame) = &ev[0] else {
            unreachable!()
        };
        let Message::Notification(n) = Message::decode(frame, 4).unwrap() else {
            panic!("expected NOTIFICATION, got {frame:?}");
        };
        assert_eq!((n.code, n.subcode), (4, 0));
        assert_eq!(ev[1], SessionEvent::Closed(CloseReason::HoldTimerExpired));
        assert!(a.tick(t2 + SEC).is_empty(), "closed sessions are silent");
    }

    #[test]
    fn keepalives_emitted_at_a_third_of_hold() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        handshake(&mut a, &mut b);
        let deadline = a.next_deadline().expect("liveness armed");
        assert!(deadline <= 1 + 30 * SEC, "keepalive due at hold/3, got {deadline}");
        let ev = a.tick(deadline);
        assert!(
            matches!(&ev[..], [SessionEvent::Send(f)] if f.len() == crate::HEADER_LEN),
            "a bare KEEPALIVE goes out"
        );
        assert!(a.tick(deadline + 1).is_empty(), "cadence re-armed, not due again");
    }

    #[test]
    fn peer_notification_closes_without_reply() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        handshake(&mut a, &mut b);
        let n = Message::Notification(NotificationMsg::cease()).encode(4).unwrap();
        let ev = a.on_bytes(2, &n);
        assert_eq!(
            ev,
            vec![SessionEvent::Closed(CloseReason::PeerNotification { code: 6, subcode: 2 })]
        );
        assert_eq!(a.state(), SessionState::Closed);
    }

    #[test]
    fn shutdown_sends_cease() {
        let mut a = Session::new(cfg(65001, 1));
        a.start(0);
        let ev = a.shutdown();
        assert!(matches!(ev[0], SessionEvent::Send(_)));
        assert_eq!(ev[1], SessionEvent::Closed(CloseReason::AdminShutdown));
    }

    /// A valid handshake byte stream (peer OPEN + KEEPALIVE) as one buffer.
    fn peer_handshake_bytes() -> Vec<u8> {
        let mut bytes = Message::Open(OpenMsg::standard(65002, 90, 2)).encode(4).unwrap();
        bytes.extend_from_slice(&Message::Keepalive.encode(4).unwrap());
        bytes
    }

    proptest! {
        /// Truncated inbound streams never panic and never falsely
        /// establish: the FSM either waits for more bytes or closes.
        #[test]
        fn truncated_handshake_never_panics(cut in 0usize..48) {
            let bytes = peer_handshake_bytes();
            let cut = cut.min(bytes.len());
            let mut s = Session::new(cfg(65001, 1));
            s.start(0);
            let ev = s.on_bytes(1, &bytes[..cut]);
            prop_assert!(!ev.iter().any(|e| matches!(e, SessionEvent::Update(_))));
            if cut < bytes.len() {
                // A prefix alone can at most reach OpenConfirm (the full
                // OPEN is in, the KEEPALIVE is not).
                prop_assert!(!ev
                    .iter()
                    .any(|e| matches!(e, SessionEvent::Established { .. })));
            }
            // Feeding the remainder afterwards either completes the
            // handshake or the session had already (legitimately) closed.
            let ev2 = s.on_bytes(2, &bytes[cut..]);
            let established = ev
                .iter()
                .chain(ev2.iter())
                .any(|e| matches!(e, SessionEvent::Established { .. }));
            prop_assert!(established || s.state() == SessionState::Closed
                || s.state() == SessionState::Established);
            if s.state() == SessionState::Established {
                prop_assert!(established);
            }
        }

        /// Byte-flipped handshake streams never panic; every local close
        /// carries a NOTIFICATION whose codes are in the RFC error space;
        /// and flips inside the first frame's marker close with exactly
        /// (1, 1) — connection not synchronized.
        #[test]
        fn mutated_handshake_closes_with_mapped_codes(pos in 0usize..48, flip in 1u8..=255) {
            let mut bytes = peer_handshake_bytes();
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= flip; // guaranteed to change the byte
            let mut s = Session::new(cfg(65001, 1));
            s.start(0);
            let ev = s.on_bytes(1, &bytes);
            if let Some((code, subcode)) = notification_codes(&ev) {
                prop_assert!((1..=6).contains(&code), "code {code} outside RFC space");
                // Every emitted pair must be one the codec can produce
                // (or an FSM/open-policy error the FSM itself maps).
                let known = [
                    (1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 6), (3, 1), (3, 3),
                    (3, 4), (3, 5), (3, 6), (3, 10), (3, 11), (5, 1), (5, 2), (5, 3),
                ];
                prop_assert!(
                    known.contains(&(code, subcode)),
                    "unexpected codes ({code}, {subcode})"
                );
            }
            if pos < 16 {
                prop_assert_eq!(
                    notification_codes(&ev),
                    Some((1, 1)),
                    "marker corruption must close as not-synchronized"
                );
            }
            // Whatever happened, a closed session stays closed and silent.
            if s.state() == SessionState::Closed {
                prop_assert!(s.on_bytes(2, &peer_handshake_bytes()).is_empty());
            }
        }

        /// Mutated single KEEPALIVEs after establishment: any corruption
        /// that surfaces an error closes the session with mapped codes —
        /// and never panics.
        #[test]
        fn mutated_keepalive_in_established_never_panics(pos in 0usize..19, flip in 1u8..=255) {
            let mut a = Session::new(cfg(65001, 1));
            let mut b = Session::new(cfg(65002, 2));
            handshake(&mut a, &mut b);
            let mut ka = Message::Keepalive.encode(4).unwrap();
            let pos = pos.min(ka.len() - 1);
            ka[pos] ^= flip;
            let ev = a.on_bytes(2, &ka);
            prop_assert!(ev.iter().all(|e| !matches!(e, SessionEvent::Update(_))));
            if let Some((code, _)) = notification_codes(&ev) {
                prop_assert!((1..=6).contains(&code));
                prop_assert_eq!(a.state(), SessionState::Closed);
            }
        }
    }
}
