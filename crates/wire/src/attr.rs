//! BGP path attributes: typed representation, raw views, and wire codec.
//!
//! Two levels of access are provided, matching how xBGP programs and host
//! implementations see attributes:
//!
//! * [`PathAttr`] — fully decoded, typed attributes used by the daemons'
//!   neutral boundary.
//! * [`RawAttr`] / [`RawAttrIter`] — zero-copy views over the wire bytes,
//!   used by the xBGP `get_attr` helper so extension code can read
//!   attributes in network byte order without the host parsing them first.

use crate::error::WireError;
use std::fmt;

/// Attribute flag octet bits (RFC 4271 §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrFlags(pub u8);

impl AttrFlags {
    /// Optional (bit 0 set) vs well-known.
    pub const OPTIONAL: u8 = 0x80;
    /// Transitive.
    pub const TRANSITIVE: u8 = 0x40;
    /// Partial (set when an unrecognised optional transitive passed through).
    pub const PARTIAL: u8 = 0x20;
    /// Extended (two-octet) length field.
    pub const EXT_LEN: u8 = 0x10;

    /// Flags for a well-known mandatory attribute.
    pub const WELL_KNOWN: AttrFlags = AttrFlags(Self::TRANSITIVE);
    /// Flags for an optional transitive attribute.
    pub const OPT_TRANS: AttrFlags = AttrFlags(Self::OPTIONAL | Self::TRANSITIVE);
    /// Flags for an optional non-transitive attribute.
    pub const OPT_NON_TRANS: AttrFlags = AttrFlags(Self::OPTIONAL);

    pub fn is_optional(self) -> bool {
        self.0 & Self::OPTIONAL != 0
    }
    pub fn is_transitive(self) -> bool {
        self.0 & Self::TRANSITIVE != 0
    }
    pub fn is_partial(self) -> bool {
        self.0 & Self::PARTIAL != 0
    }
    pub fn has_ext_len(self) -> bool {
        self.0 & Self::EXT_LEN != 0
    }

    /// Return a copy with the PARTIAL bit set.
    pub fn with_partial(self) -> AttrFlags {
        AttrFlags(self.0 | Self::PARTIAL)
    }
}

/// Well-known attribute type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AttrCode {
    Origin = 1,
    AsPath = 2,
    NextHop = 3,
    Med = 4,
    LocalPref = 5,
    AtomicAggregate = 6,
    Aggregator = 7,
    Communities = 8,
    OriginatorId = 9,
    ClusterList = 10,
}

impl AttrCode {
    /// Canonical flag octet for this attribute type (without EXT_LEN).
    pub fn canonical_flags(self) -> AttrFlags {
        match self {
            AttrCode::Origin
            | AttrCode::AsPath
            | AttrCode::NextHop
            | AttrCode::LocalPref
            | AttrCode::AtomicAggregate => AttrFlags::WELL_KNOWN,
            AttrCode::Med | AttrCode::OriginatorId | AttrCode::ClusterList => {
                AttrFlags::OPT_NON_TRANS
            }
            AttrCode::Aggregator | AttrCode::Communities => AttrFlags::OPT_TRANS,
        }
    }
}

/// ORIGIN attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Origin {
    /// Learned from an IGP (best).
    Igp = 0,
    /// Learned from EGP.
    Egp = 1,
    /// Incomplete (worst).
    Incomplete = 2,
}

impl Origin {
    pub fn from_u8(v: u8) -> Result<Origin, WireError> {
        match v {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(WireError::InvalidOrigin(v)),
        }
    }
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsSegment {
    /// Ordered sequence of ASNs.
    Sequence(Vec<u32>),
    /// Unordered set of ASNs (from aggregation).
    Set(Vec<u32>),
}

impl AsSegment {
    /// ASNs in the segment regardless of kind.
    pub fn asns(&self) -> &[u32] {
        match self {
            AsSegment::Sequence(v) | AsSegment::Set(v) => v,
        }
    }

    /// RFC 4271 path-length contribution: a SET counts as 1, a SEQUENCE as
    /// its number of elements.
    pub fn hop_count(&self) -> usize {
        match self {
            AsSegment::Sequence(v) => v.len(),
            AsSegment::Set(_) => 1,
        }
    }
}

/// The AS_PATH attribute: an ordered list of segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    pub segments: Vec<AsSegment>,
}

impl AsPath {
    /// Empty path (locally originated route).
    pub fn empty() -> AsPath {
        AsPath { segments: Vec::new() }
    }

    /// A single-sequence path.
    pub fn sequence(asns: Vec<u32>) -> AsPath {
        if asns.is_empty() {
            AsPath::empty()
        } else {
            AsPath { segments: vec![AsSegment::Sequence(asns)] }
        }
    }

    /// RFC 4271 §9.1.2.2 path length used by the decision process.
    pub fn hop_count(&self) -> usize {
        self.segments.iter().map(AsSegment::hop_count).sum()
    }

    /// All ASNs in traversal order (sets flattened).
    pub fn asns(&self) -> impl Iterator<Item = u32> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// Does the path contain `asn` anywhere? Used for loop detection.
    pub fn contains(&self, asn: u32) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// First (most recently prepended) ASN, i.e. the neighbouring AS.
    pub fn first_asn(&self) -> Option<u32> {
        self.segments.first().and_then(|s| match s {
            AsSegment::Sequence(v) => v.first().copied(),
            AsSegment::Set(v) => v.first().copied(),
        })
    }

    /// Last ASN: the origin AS of the route (None for AS_SET-terminated or
    /// empty paths, matching RPKI origin-validation rules).
    pub fn origin_asn(&self) -> Option<u32> {
        match self.segments.last() {
            Some(AsSegment::Sequence(v)) => v.last().copied(),
            _ => None,
        }
    }

    /// Return a copy with `asn` prepended (as done when advertising over
    /// an eBGP session).
    pub fn prepend(&self, asn: u32) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(AsSegment::Sequence(v)) if v.len() < 255 => v.insert(0, asn),
            _ => segments.insert(0, AsSegment::Sequence(vec![asn])),
        }
        AsPath { segments }
    }

    /// Iterate over consecutive (a, b) pairs of the flattened path; the
    /// valley-free data-centre filter (paper §3.3) checks these pairs.
    pub fn consecutive_pairs(&self) -> Vec<(u32, u32)> {
        let flat: Vec<u32> = self.asns().collect();
        flat.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Encode the attribute body with the given ASN width (2 or 4 octets).
    pub fn encode_body(&self, out: &mut Vec<u8>, asn_width: usize) {
        debug_assert!(asn_width == 2 || asn_width == 4);
        for seg in &self.segments {
            let (ty, asns) = match seg {
                AsSegment::Set(v) => (1u8, v),
                AsSegment::Sequence(v) => (2u8, v),
            };
            out.push(ty);
            out.push(asns.len() as u8);
            for &a in asns {
                if asn_width == 4 {
                    out.extend_from_slice(&a.to_be_bytes());
                } else {
                    out.extend_from_slice(&(a.min(u32::from(u16::MAX)) as u16).to_be_bytes());
                }
            }
        }
    }

    /// Decode the attribute body with the given ASN width.
    pub fn decode_body(mut buf: &[u8], asn_width: usize) -> Result<AsPath, WireError> {
        // A hard check, not a debug_assert: with any other width the octet
        // arithmetic below would index out of bounds on untrusted input.
        if asn_width != 2 && asn_width != 4 {
            return Err(WireError::MalformedAsPath);
        }
        let mut segments = Vec::new();
        while !buf.is_empty() {
            if buf.len() < 2 {
                return Err(WireError::MalformedAsPath);
            }
            let ty = buf[0];
            let count = usize::from(buf[1]);
            let body_len = count * asn_width;
            if buf.len() < 2 + body_len {
                return Err(WireError::MalformedAsPath);
            }
            let mut asns = Vec::with_capacity(count);
            for i in 0..count {
                let off = 2 + i * asn_width;
                let a = if asn_width == 4 {
                    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
                } else {
                    u32::from(u16::from_be_bytes([buf[off], buf[off + 1]]))
                };
                asns.push(a);
            }
            segments.push(match ty {
                1 => AsSegment::Set(asns),
                2 => AsSegment::Sequence(asns),
                _ => return Err(WireError::MalformedAsPath),
            });
            buf = &buf[2 + body_len..];
        }
        Ok(AsPath { segments })
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsSegment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(u32::to_string).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                AsSegment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(u32::to_string).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// A fully decoded path attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathAttr {
    Origin(Origin),
    AsPath(AsPath),
    /// Next hop address in host byte order.
    NextHop(u32),
    Med(u32),
    LocalPref(u32),
    AtomicAggregate,
    /// Aggregating AS and router id.
    Aggregator {
        asn: u32,
        router_id: u32,
    },
    Communities(Vec<u32>),
    OriginatorId(u32),
    ClusterList(Vec<u32>),
    /// Any attribute this codec does not model natively — preserved verbatim
    /// so optional transitive attributes (like xBGP's GeoLoc) survive a hop
    /// through a daemon that does not understand them.
    Unknown {
        flags: AttrFlags,
        code: u8,
        value: Vec<u8>,
    },
}

impl PathAttr {
    /// The wire type code of this attribute.
    pub fn code(&self) -> u8 {
        match self {
            PathAttr::Origin(_) => AttrCode::Origin as u8,
            PathAttr::AsPath(_) => AttrCode::AsPath as u8,
            PathAttr::NextHop(_) => AttrCode::NextHop as u8,
            PathAttr::Med(_) => AttrCode::Med as u8,
            PathAttr::LocalPref(_) => AttrCode::LocalPref as u8,
            PathAttr::AtomicAggregate => AttrCode::AtomicAggregate as u8,
            PathAttr::Aggregator { .. } => AttrCode::Aggregator as u8,
            PathAttr::Communities(_) => AttrCode::Communities as u8,
            PathAttr::OriginatorId(_) => AttrCode::OriginatorId as u8,
            PathAttr::ClusterList(_) => AttrCode::ClusterList as u8,
            PathAttr::Unknown { code, .. } => *code,
        }
    }

    /// The flag octet this attribute is encoded with.
    pub fn flags(&self) -> AttrFlags {
        match self {
            PathAttr::Unknown { flags, .. } => *flags,
            PathAttr::Origin(_) => AttrCode::Origin.canonical_flags(),
            PathAttr::AsPath(_) => AttrCode::AsPath.canonical_flags(),
            PathAttr::NextHop(_) => AttrCode::NextHop.canonical_flags(),
            PathAttr::Med(_) => AttrCode::Med.canonical_flags(),
            PathAttr::LocalPref(_) => AttrCode::LocalPref.canonical_flags(),
            PathAttr::AtomicAggregate => AttrCode::AtomicAggregate.canonical_flags(),
            PathAttr::Aggregator { .. } => AttrCode::Aggregator.canonical_flags(),
            PathAttr::Communities(_) => AttrCode::Communities.canonical_flags(),
            PathAttr::OriginatorId(_) => AttrCode::OriginatorId.canonical_flags(),
            PathAttr::ClusterList(_) => AttrCode::ClusterList.canonical_flags(),
        }
    }

    /// Encode the attribute body only (no flags/code/length header).
    pub fn encode_body(&self, out: &mut Vec<u8>, asn_width: usize) {
        match self {
            PathAttr::Origin(o) => out.push(*o as u8),
            PathAttr::AsPath(p) => p.encode_body(out, asn_width),
            PathAttr::NextHop(nh) => out.extend_from_slice(&nh.to_be_bytes()),
            PathAttr::Med(v) | PathAttr::LocalPref(v) | PathAttr::OriginatorId(v) => {
                out.extend_from_slice(&v.to_be_bytes())
            }
            PathAttr::AtomicAggregate => {}
            PathAttr::Aggregator { asn, router_id } => {
                out.extend_from_slice(&asn.to_be_bytes());
                out.extend_from_slice(&router_id.to_be_bytes());
            }
            PathAttr::Communities(cs) => {
                for c in cs {
                    out.extend_from_slice(&c.to_be_bytes());
                }
            }
            PathAttr::ClusterList(cl) => {
                for c in cl {
                    out.extend_from_slice(&c.to_be_bytes());
                }
            }
            PathAttr::Unknown { value, .. } => out.extend_from_slice(value),
        }
    }

    /// Encode the full TLV (flags, code, length, body).
    pub fn encode(&self, out: &mut Vec<u8>, asn_width: usize) {
        let mut body = Vec::new();
        self.encode_body(&mut body, asn_width);
        encode_attr_tlv(out, self.flags(), self.code(), &body);
    }

    /// Decode one attribute from a raw view.
    pub fn decode(raw: &RawAttr<'_>, asn_width: usize) -> Result<PathAttr, WireError> {
        let code = raw.code;
        let v = raw.value;
        let fixed = |want: usize| -> Result<(), WireError> {
            if v.len() == want {
                Ok(())
            } else {
                Err(WireError::AttributeLength { code, len: v.len() })
            }
        };
        let be32 = |b: &[u8]| u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        Ok(match code {
            1 => {
                fixed(1)?;
                PathAttr::Origin(Origin::from_u8(v[0])?)
            }
            2 => PathAttr::AsPath(AsPath::decode_body(v, asn_width)?),
            3 => {
                fixed(4)?;
                PathAttr::NextHop(be32(v))
            }
            4 => {
                fixed(4)?;
                PathAttr::Med(be32(v))
            }
            5 => {
                fixed(4)?;
                PathAttr::LocalPref(be32(v))
            }
            6 => {
                fixed(0)?;
                PathAttr::AtomicAggregate
            }
            7 => {
                // 4-octet-AS form: 4 + 4; legacy form: 2 + 4.
                match v.len() {
                    8 => PathAttr::Aggregator { asn: be32(&v[0..4]), router_id: be32(&v[4..8]) },
                    6 => PathAttr::Aggregator {
                        asn: u32::from(u16::from_be_bytes([v[0], v[1]])),
                        router_id: be32(&v[2..6]),
                    },
                    len => return Err(WireError::AttributeLength { code, len }),
                }
            }
            8 => {
                if !v.len().is_multiple_of(4) {
                    return Err(WireError::AttributeLength { code, len: v.len() });
                }
                PathAttr::Communities(v.chunks_exact(4).map(be32).collect())
            }
            9 => {
                fixed(4)?;
                PathAttr::OriginatorId(be32(v))
            }
            10 => {
                if !v.len().is_multiple_of(4) {
                    return Err(WireError::AttributeLength { code, len: v.len() });
                }
                PathAttr::ClusterList(v.chunks_exact(4).map(be32).collect())
            }
            _ => PathAttr::Unknown {
                // EXT_LEN is a property of the encoding, not of the
                // attribute; strip it so round-tripping is stable.
                flags: AttrFlags(raw.flags.0 & !AttrFlags::EXT_LEN),
                code,
                value: v.to_vec(),
            },
        })
    }
}

/// Append one attribute TLV with the given flag octet, picking the extended
/// length form automatically when the body exceeds 255 octets.
pub fn encode_attr_tlv(out: &mut Vec<u8>, flags: AttrFlags, code: u8, body: &[u8]) {
    let mut fl = flags.0 & !AttrFlags::EXT_LEN;
    if body.len() > 255 {
        fl |= AttrFlags::EXT_LEN;
    }
    out.push(fl);
    out.push(code);
    if body.len() > 255 {
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    } else {
        out.push(body.len() as u8);
    }
    out.extend_from_slice(body);
}

/// A zero-copy view of one attribute TLV on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawAttr<'a> {
    pub flags: AttrFlags,
    pub code: u8,
    pub value: &'a [u8],
}

impl<'a> RawAttr<'a> {
    /// Decode one TLV from the front of `buf`, returning the view and the
    /// total octets consumed (header + body).
    pub fn decode(buf: &'a [u8]) -> Result<(RawAttr<'a>, usize), WireError> {
        if buf.len() < 3 {
            return Err(WireError::Truncated { what: "attribute header" });
        }
        let flags = AttrFlags(buf[0]);
        let code = buf[1];
        let (len, hdr) = if flags.has_ext_len() {
            if buf.len() < 4 {
                return Err(WireError::Truncated { what: "attribute ext length" });
            }
            (usize::from(u16::from_be_bytes([buf[2], buf[3]])), 4)
        } else {
            (usize::from(buf[2]), 3)
        };
        if buf.len() < hdr + len {
            return Err(WireError::Truncated { what: "attribute body" });
        }
        Ok((RawAttr { flags, code, value: &buf[hdr..hdr + len] }, hdr + len))
    }
}

/// Iterator over the attribute TLVs packed in an UPDATE's path-attribute
/// section. Yields `Err` once (and then stops) if the section is malformed.
pub struct RawAttrIter<'a> {
    buf: &'a [u8],
    failed: bool,
}

impl<'a> RawAttrIter<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        RawAttrIter { buf, failed: false }
    }
}

impl<'a> Iterator for RawAttrIter<'a> {
    type Item = Result<RawAttr<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.buf.is_empty() {
            return None;
        }
        match RawAttr::decode(self.buf) {
            Ok((attr, used)) => {
                self.buf = &self.buf[used..];
                Some(Ok(attr))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Decode a packed attribute section into typed attributes.
pub fn decode_attrs(buf: &[u8], asn_width: usize) -> Result<Vec<PathAttr>, WireError> {
    let mut out = Vec::new();
    for raw in RawAttrIter::new(buf) {
        out.push(PathAttr::decode(&raw?, asn_width)?);
    }
    Ok(out)
}

/// Encode typed attributes into a packed attribute section.
pub fn encode_attrs(attrs: &[PathAttr], asn_width: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for a in attrs {
        a.encode(&mut out, asn_width);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(attr: PathAttr) -> PathAttr {
        let mut buf = Vec::new();
        attr.encode(&mut buf, 4);
        let (raw, used) = RawAttr::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        PathAttr::decode(&raw, 4).unwrap()
    }

    #[test]
    fn origin_round_trip_and_validation() {
        assert_eq!(round_trip(PathAttr::Origin(Origin::Igp)), PathAttr::Origin(Origin::Igp));
        assert!(matches!(Origin::from_u8(3), Err(WireError::InvalidOrigin(3))));
    }

    #[test]
    fn as_path_round_trip_both_widths() {
        let p = AsPath {
            segments: vec![
                AsSegment::Sequence(vec![65001, 65002]),
                AsSegment::Set(vec![64512, 64513]),
            ],
        };
        for width in [2usize, 4] {
            let mut body = Vec::new();
            p.encode_body(&mut body, width);
            assert_eq!(AsPath::decode_body(&body, width).unwrap(), p);
        }
    }

    #[test]
    fn as_path_four_octet_asn_needs_width_4() {
        let p = AsPath::sequence(vec![4_200_000_001]);
        let mut body = Vec::new();
        p.encode_body(&mut body, 4);
        assert_eq!(AsPath::decode_body(&body, 4).unwrap(), p);
    }

    #[test]
    fn as_path_semantics() {
        let p = AsPath::sequence(vec![10, 20, 30]);
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.first_asn(), Some(10));
        assert_eq!(p.origin_asn(), Some(30));
        assert!(p.contains(20));
        assert!(!p.contains(40));
        assert_eq!(p.consecutive_pairs(), vec![(10, 20), (20, 30)]);

        let q = p.prepend(5);
        assert_eq!(q.first_asn(), Some(5));
        assert_eq!(q.hop_count(), 4);
        // Original is untouched.
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn as_set_counts_as_one_hop() {
        let p = AsPath {
            segments: vec![AsSegment::Sequence(vec![1, 2]), AsSegment::Set(vec![3, 4, 5])],
        };
        assert_eq!(p.hop_count(), 3);
        // Origin is undefined when the path ends in a SET.
        assert_eq!(p.origin_asn(), None);
    }

    #[test]
    fn prepend_to_full_segment_starts_new_one() {
        let p = AsPath::sequence(vec![7; 255]);
        let q = p.prepend(9);
        assert_eq!(q.segments.len(), 2);
        assert_eq!(q.first_asn(), Some(9));
    }

    #[test]
    fn empty_as_path_displays_and_counts() {
        let p = AsPath::empty();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.to_string(), "");
        assert_eq!(p.first_asn(), None);
        assert_eq!(p.origin_asn(), None);
    }

    #[test]
    fn display_as_path() {
        let p = AsPath {
            segments: vec![AsSegment::Sequence(vec![65001, 65002]), AsSegment::Set(vec![1, 2])],
        };
        assert_eq!(p.to_string(), "65001 65002 {1,2}");
    }

    #[test]
    fn all_typed_attrs_round_trip() {
        let attrs = vec![
            PathAttr::Origin(Origin::Incomplete),
            PathAttr::AsPath(AsPath::sequence(vec![1, 2, 3])),
            PathAttr::NextHop(0x0a00_0001),
            PathAttr::Med(77),
            PathAttr::LocalPref(200),
            PathAttr::AtomicAggregate,
            PathAttr::Aggregator { asn: 65000, router_id: 0x0101_0101 },
            PathAttr::Communities(vec![0xffff_ff01, 0x0001_0002]),
            PathAttr::OriginatorId(0x0a0a_0a0a),
            PathAttr::ClusterList(vec![1, 2, 3]),
        ];
        for a in attrs {
            assert_eq!(round_trip(a.clone()), a);
        }
    }

    #[test]
    fn unknown_attr_preserved_verbatim() {
        let a = PathAttr::Unknown {
            flags: AttrFlags::OPT_TRANS,
            code: 66,
            value: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        assert_eq!(round_trip(a.clone()), a);
    }

    #[test]
    fn legacy_two_octet_aggregator_decodes() {
        let mut buf = Vec::new();
        let mut body = Vec::new();
        body.extend_from_slice(&65000u16.to_be_bytes());
        body.extend_from_slice(&0x0101_0101u32.to_be_bytes());
        encode_attr_tlv(&mut buf, AttrFlags::OPT_TRANS, 7, &body);
        let (raw, _) = RawAttr::decode(&buf).unwrap();
        assert_eq!(
            PathAttr::decode(&raw, 4).unwrap(),
            PathAttr::Aggregator { asn: 65000, router_id: 0x0101_0101 }
        );
    }

    #[test]
    fn extended_length_auto_selected() {
        let a = PathAttr::Unknown {
            flags: AttrFlags::OPT_TRANS,
            code: 99,
            value: vec![0xab; 300],
        };
        let mut buf = Vec::new();
        a.encode(&mut buf, 4);
        assert!(AttrFlags(buf[0]).has_ext_len());
        let (raw, used) = RawAttr::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(raw.value.len(), 300);
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut buf = Vec::new();
        encode_attr_tlv(&mut buf, AttrFlags::WELL_KNOWN, 3, &[1, 2, 3]); // NEXT_HOP needs 4
        let (raw, _) = RawAttr::decode(&buf).unwrap();
        assert!(matches!(
            PathAttr::decode(&raw, 4),
            Err(WireError::AttributeLength { code: 3, len: 3 })
        ));

        let mut buf = Vec::new();
        encode_attr_tlv(&mut buf, AttrFlags::OPT_TRANS, 8, &[1, 2, 3, 4, 5]); // not %4
        let (raw, _) = RawAttr::decode(&buf).unwrap();
        assert!(PathAttr::decode(&raw, 4).is_err());
    }

    #[test]
    fn truncated_tlv_rejected() {
        assert!(matches!(RawAttr::decode(&[0x40]), Err(WireError::Truncated { .. })));
        assert!(matches!(RawAttr::decode(&[0x40, 1, 5, 0, 0]), Err(WireError::Truncated { .. })));
        // Extended length header cut short.
        assert!(matches!(RawAttr::decode(&[0x50, 1, 0]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn iter_stops_after_error() {
        let mut buf = Vec::new();
        encode_attr_tlv(&mut buf, AttrFlags::WELL_KNOWN, 1, &[0]);
        buf.push(0x40); // dangling header
        let results: Vec<_> = RawAttrIter::new(&buf).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn attrs_section_round_trip() {
        let attrs = vec![
            PathAttr::Origin(Origin::Igp),
            PathAttr::AsPath(AsPath::sequence(vec![65001])),
            PathAttr::NextHop(0x0a00_0001),
        ];
        let buf = encode_attrs(&attrs, 4);
        assert_eq!(decode_attrs(&buf, 4).unwrap(), attrs);
    }

    fn arb_as_path() -> impl Strategy<Value = AsPath> {
        proptest::collection::vec(
            prop_oneof![
                proptest::collection::vec(any::<u32>(), 1..8).prop_map(AsSegment::Sequence),
                proptest::collection::vec(any::<u32>(), 1..8).prop_map(AsSegment::Set),
            ],
            0..4,
        )
        .prop_map(|segments| AsPath { segments })
    }

    fn arb_attr() -> impl Strategy<Value = PathAttr> {
        prop_oneof![
            prop_oneof![Just(Origin::Igp), Just(Origin::Egp), Just(Origin::Incomplete)]
                .prop_map(PathAttr::Origin),
            arb_as_path().prop_map(PathAttr::AsPath),
            any::<u32>().prop_map(PathAttr::NextHop),
            any::<u32>().prop_map(PathAttr::Med),
            any::<u32>().prop_map(PathAttr::LocalPref),
            Just(PathAttr::AtomicAggregate),
            (any::<u32>(), any::<u32>())
                .prop_map(|(asn, router_id)| PathAttr::Aggregator { asn, router_id }),
            proptest::collection::vec(any::<u32>(), 0..16).prop_map(PathAttr::Communities),
            any::<u32>().prop_map(PathAttr::OriginatorId),
            proptest::collection::vec(any::<u32>(), 0..8).prop_map(PathAttr::ClusterList),
            (11u8..=255, proptest::collection::vec(any::<u8>(), 0..300)).prop_map(
                |(code, value)| PathAttr::Unknown { flags: AttrFlags::OPT_TRANS, code, value }
            ),
        ]
    }

    proptest! {
        #[test]
        fn prop_attr_round_trip(attr in arb_attr()) {
            prop_assert_eq!(round_trip(attr.clone()), attr);
        }

        #[test]
        fn prop_attr_section_round_trip(attrs in proptest::collection::vec(arb_attr(), 0..10)) {
            let buf = encode_attrs(&attrs, 4);
            prop_assert_eq!(decode_attrs(&buf, 4).unwrap(), attrs);
        }

        #[test]
        fn prop_as_path_prepend_increases_hops(p in arb_as_path(), asn: u32) {
            let q = p.prepend(asn);
            prop_assert_eq!(q.hop_count(), p.hop_count() + 1);
            prop_assert_eq!(q.first_asn(), Some(asn));
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Whatever the bytes, decoding must return Ok or Err, not panic.
            let _ = decode_attrs(&data, 4);
            let _ = decode_attrs(&data, 2);
            let _ = RawAttr::decode(&data);
            for raw in RawAttrIter::new(&data).flatten() {
                let _ = PathAttr::decode(&raw, 4);
                let _ = PathAttr::decode(&raw, 2);
            }
            // Any width other than 2/4 must be a clean error, not an
            // out-of-bounds read.
            for width in [0usize, 1, 3, 8] {
                prop_assert!(
                    data.is_empty() || AsPath::decode_body(&data, width).is_err()
                );
            }
            let _ = AsPath::decode_body(&data, 2);
            let _ = AsPath::decode_body(&data, 4);
            let _ = crate::capability::Capability::decode(&data);
        }
    }
}
