//! BGP capabilities advertised in OPEN messages (RFC 5492).

use crate::error::WireError;

/// Capabilities understood by the daemons in this workspace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Multiprotocol extensions for `(AFI, SAFI)` (RFC 4760). Only
    /// IPv4/unicast (1, 1) is ever negotiated here, but the capability is
    /// parsed generically.
    Multiprotocol { afi: u16, safi: u8 },
    /// Route refresh (RFC 2918).
    RouteRefresh,
    /// Four-octet AS numbers (RFC 6793) with the speaker's real ASN.
    FourOctetAs(u32),
    /// Anything else, preserved as raw bytes.
    Unknown { code: u8, value: Vec<u8> },
}

impl Capability {
    /// Capability code on the wire.
    pub fn code(&self) -> u8 {
        match self {
            Capability::Multiprotocol { .. } => 1,
            Capability::RouteRefresh => 2,
            Capability::FourOctetAs(_) => 65,
            Capability::Unknown { code, .. } => *code,
        }
    }

    /// Encode as a capability TLV (code, length, body).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Capability::Multiprotocol { afi, safi } => {
                out.extend_from_slice(&[1, 4]);
                out.extend_from_slice(&afi.to_be_bytes());
                out.push(0); // reserved
                out.push(*safi);
            }
            Capability::RouteRefresh => out.extend_from_slice(&[2, 0]),
            Capability::FourOctetAs(asn) => {
                out.extend_from_slice(&[65, 4]);
                out.extend_from_slice(&asn.to_be_bytes());
            }
            Capability::Unknown { code, value } => {
                out.push(*code);
                out.push(value.len() as u8);
                out.extend_from_slice(value);
            }
        }
    }

    /// Decode one capability TLV, returning it and the octets consumed.
    pub fn decode(buf: &[u8]) -> Result<(Capability, usize), WireError> {
        if buf.len() < 2 {
            return Err(WireError::Truncated { what: "capability header" });
        }
        let code = buf[0];
        let len = usize::from(buf[1]);
        if buf.len() < 2 + len {
            return Err(WireError::Truncated { what: "capability body" });
        }
        let v = &buf[2..2 + len];
        let cap = match (code, len) {
            (1, 4) => {
                Capability::Multiprotocol { afi: u16::from_be_bytes([v[0], v[1]]), safi: v[3] }
            }
            (2, 0) => Capability::RouteRefresh,
            (65, 4) => Capability::FourOctetAs(u32::from_be_bytes([v[0], v[1], v[2], v[3]])),
            _ => Capability::Unknown { code, value: v.to_vec() },
        };
        Ok((cap, 2 + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(c: Capability) -> Capability {
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let (d, used) = Capability::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        d
    }

    #[test]
    fn known_capabilities_round_trip() {
        for c in [
            Capability::Multiprotocol { afi: 1, safi: 1 },
            Capability::RouteRefresh,
            Capability::FourOctetAs(4_200_000_000),
            Capability::Unknown { code: 70, value: vec![9, 9] },
        ] {
            assert_eq!(round_trip(c.clone()), c);
        }
    }

    #[test]
    fn truncated_capability_rejected() {
        assert!(Capability::decode(&[65]).is_err());
        assert!(Capability::decode(&[65, 4, 0, 0]).is_err());
    }

    #[test]
    fn unexpected_length_falls_back_to_unknown() {
        // RouteRefresh with a nonzero-length body is not the known form.
        let (c, _) = Capability::decode(&[2, 1, 0xaa]).unwrap();
        assert!(matches!(c, Capability::Unknown { code: 2, .. }));
    }
}
