//! IPv4 prefixes and their RFC 4271 wire encoding.

use crate::error::WireError;
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix: a network address plus a mask length.
///
/// The address is stored in host byte order; the canonical form keeps every
/// bit beyond `len` zero, which [`Ipv4Prefix::new`] enforces so that two
/// prefixes that denote the same network always compare equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Build a prefix, masking off host bits. Panics if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Ipv4Prefix { addr: addr & Self::mask(len), len }
    }

    /// The all-zero default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Network address in host byte order (host bits are zero).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Mask length in bits. Not a container length, so there is no
    /// `is_empty` counterpart (see `is_default` for the /0 route).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The network mask as a `u32` (e.g. `/24` → `0xffff_ff00`).
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Does this prefix cover the given host address?
    pub fn contains_addr(&self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.addr
    }

    /// Does this prefix cover (is equal to or less specific than) `other`?
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && other.addr & Self::mask(self.len) == self.addr
    }

    /// Number of octets the prefix body occupies on the wire.
    pub fn wire_octets(&self) -> usize {
        1 + usize::from(self.len).div_ceil(8)
    }

    /// Append the RFC 4271 `<length, prefix>` encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.len);
        let be = self.addr.to_be_bytes();
        out.extend_from_slice(&be[..usize::from(self.len).div_ceil(8)]);
    }

    /// Decode one `<length, prefix>` tuple from the front of `buf`,
    /// returning the prefix and the number of octets consumed.
    pub fn decode(buf: &[u8]) -> Result<(Ipv4Prefix, usize), WireError> {
        let len = *buf.first().ok_or(WireError::Truncated { what: "prefix" })?;
        if len > 32 {
            return Err(WireError::BadPrefixLength(len));
        }
        let nbytes = usize::from(len).div_ceil(8);
        if buf.len() < 1 + nbytes {
            return Err(WireError::Truncated { what: "prefix body" });
        }
        let mut be = [0u8; 4];
        be[..nbytes].copy_from_slice(&buf[1..1 + nbytes]);
        Ok((Ipv4Prefix::new(u32::from_be_bytes(be), len), 1 + nbytes))
    }

    /// Decode a packed run of prefixes occupying exactly `buf`.
    pub fn decode_run(mut buf: &[u8]) -> Result<Vec<Ipv4Prefix>, WireError> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let (p, used) = Ipv4Prefix::decode(buf)?;
            out.push(p);
            buf = &buf[used..];
        }
        Ok(out)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = String;

    /// Parse `"a.b.c.d/len"` (or a bare address, implying `/32`).
    ///
    /// Every numeric field must be plain decimal digits: sign prefixes
    /// (`+1`, which `u8::from_str` accepts) and anything else non-canonical
    /// are rejected.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = match s.split_once('/') {
            Some((ip, len)) => (ip, parse_decimal_u8(len).map_err(|e| format!("bad length: {e}"))?),
            None => (s, 32),
        };
        if len > 32 {
            return Err(format!("prefix length {len} out of range"));
        }
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in ip.split('.') {
            if n == 4 {
                return Err("too many octets".into());
            }
            octets[n] = parse_decimal_u8(part).map_err(|e| format!("bad octet: {e}"))?;
            n += 1;
        }
        if n != 4 {
            return Err("too few octets".into());
        }
        Ok(Ipv4Prefix::new(u32::from_be_bytes(octets), len))
    }
}

/// Parse a `u8` from decimal digits only — unlike `u8::from_str`, a
/// leading `+` (or any other non-digit) is an error.
fn parse_decimal_u8(s: &str) -> Result<u8, String> {
    if s.is_empty() {
        return Err("empty field".into());
    }
    if !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("non-digit in `{s}`"));
    }
    s.parse::<u8>().map_err(|e| e.to_string())
}

/// Convenience: format a bare IPv4 address (host byte order) as dotted quad.
pub fn fmt_addr(addr: u32) -> String {
    let b = addr.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Convenience: parse a dotted-quad IPv4 address into host byte order.
pub fn parse_addr(s: &str) -> Result<u32, String> {
    let p: Ipv4Prefix = s.parse()?;
    if p.len() != 32 {
        return Err("expected a host address, got a prefix".into());
    }
    Ok(p.addr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_form_masks_host_bits() {
        let p = Ipv4Prefix::new(0xc0a8_01ff, 24);
        assert_eq!(p.addr(), 0xc0a8_0100);
        assert_eq!(p, Ipv4Prefix::new(0xc0a8_0100, 24));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let p: Ipv4Prefix = "192.168.1.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "192.168.1.0/24");
        let host: Ipv4Prefix = "10.0.0.1".parse().unwrap();
        assert_eq!(host.len(), 32);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("300.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        // Non-canonical octets: u8::from_str tolerates a leading `+`, the
        // prefix parser must not.
        assert!("10.+1.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("+10.1.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.1.0.0/+8".parse::<Ipv4Prefix>().is_err());
        assert!("10.-1.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10..0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/ 8".parse::<Ipv4Prefix>().is_err());
        assert!("1 0.0.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn covers_and_contains() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let q: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(p.covers(&p));
        assert!(p.contains_addr(0x0a01_0203));
        assert!(!p.contains_addr(0x0b00_0000));
    }

    #[test]
    fn default_route() {
        assert!(Ipv4Prefix::DEFAULT.is_default());
        assert!(Ipv4Prefix::DEFAULT.covers(&"10.0.0.0/8".parse().unwrap()));
        assert_eq!(Ipv4Prefix::mask(0), 0);
        assert_eq!(Ipv4Prefix::mask(32), u32::MAX);
    }

    #[test]
    fn wire_encoding_is_minimal() {
        let p: Ipv4Prefix = "192.0.2.0/24".parse().unwrap();
        let mut out = Vec::new();
        p.encode(&mut out);
        assert_eq!(out, vec![24, 192, 0, 2]);
        let (q, used) = Ipv4Prefix::decode(&out).unwrap();
        assert_eq!(q, p);
        assert_eq!(used, 4);
    }

    #[test]
    fn decode_rejects_bad_length_and_truncation() {
        assert!(matches!(
            Ipv4Prefix::decode(&[33, 1, 2, 3, 4, 5]),
            Err(WireError::BadPrefixLength(33))
        ));
        assert!(matches!(Ipv4Prefix::decode(&[24, 192, 0]), Err(WireError::Truncated { .. })));
        assert!(matches!(Ipv4Prefix::decode(&[]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn decode_run_round_trips_many() {
        let ps: Vec<Ipv4Prefix> = vec![
            "0.0.0.0/0".parse().unwrap(),
            "10.0.0.0/8".parse().unwrap(),
            "192.0.2.128/25".parse().unwrap(),
            "203.0.113.7/32".parse().unwrap(),
        ];
        let mut buf = Vec::new();
        for p in &ps {
            p.encode(&mut buf);
        }
        assert_eq!(Ipv4Prefix::decode_run(&buf).unwrap(), ps);
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(addr: u32, len in 0u8..=32) {
            let p = Ipv4Prefix::new(addr, len);
            let mut buf = Vec::new();
            p.encode(&mut buf);
            let (q, used) = Ipv4Prefix::decode(&buf).unwrap();
            prop_assert_eq!(p, q);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn prop_covers_is_reflexive_and_antisymmetric(addr: u32, len in 0u8..=32) {
            let p = Ipv4Prefix::new(addr, len);
            prop_assert!(p.covers(&p));
            let wider = Ipv4Prefix::new(addr, len / 2);
            prop_assert!(wider.covers(&p));
        }

        #[test]
        fn prop_display_parse_round_trip(addr: u32, len in 0u8..=32) {
            let p = Ipv4Prefix::new(addr, len);
            let s = p.to_string();
            prop_assert_eq!(s.parse::<Ipv4Prefix>().unwrap(), p);
        }
    }
}
