//! The simulator core: event queue, nodes, links, timers, CPU accounting.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::Instant;

/// Identifies a node in one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a link in one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Behaviour of a simulated host/router.
///
/// All methods receive a [`NodeCtx`] for interacting with the simulation
/// (sending data, arming timers, reading the clock).
pub trait Node {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    /// Stream data arrived on `link`. Chunk boundaries are *not*
    /// meaningful; reassemble with a framing reader.
    fn on_data(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, _data: &[u8]) {}
    /// A timer armed with [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}
    /// `link` changed administrative state.
    fn on_link_event(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, _up: bool) {}
    /// Downcast support so the harness can inspect concrete node types.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Simulator tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Charge measured wall-clock handler time as virtual node busy time.
    /// Off by default (fully deterministic virtual timings); the Fig. 4
    /// harness turns it on to surface extension-vs-native compute cost.
    pub cpu_accounting: bool,
}

#[derive(Debug)]
enum EventKind {
    Start(NodeId),
    Data {
        to: NodeId,
        link: LinkId,
        data: Vec<u8>,
    },
    Timer {
        node: NodeId,
        token: u64,
        timer_id: u64,
    },
    LinkEvent {
        node: NodeId,
        link: LinkId,
        up: bool,
    },
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct Link {
    a: NodeId,
    b: NodeId,
    latency: u64,
    up: bool,
}

struct NodeSlot {
    node: Box<dyn Node>,
    links: Vec<LinkId>,
    busy_until: u64,
    cpu_ns: u64,
    /// Still-armed timer instances: token → unique timer ids.
    active_timers: HashMap<u64, HashSet<u64>>,
}

/// Actions a node can take while handling an event.
pub struct NodeCtx<'a> {
    now: u64,
    node: NodeId,
    links: &'a [LinkId],
    actions: Vec<Action>,
}

pub(crate) enum Action {
    Send { link: LinkId, data: Vec<u8> },
    SetTimer { delay: u64, token: u64 },
    CancelTimer { token: u64 },
}

impl<'a> NodeCtx<'a> {
    /// Build a context for a node hosted outside a [`Sim`] (see
    /// [`crate::driver::NodeDriver`]). The caller supplies the clock and
    /// applies the queued actions itself via [`NodeCtx::into_actions`].
    pub(crate) fn standalone(now: u64, node: NodeId, links: &'a [LinkId]) -> NodeCtx<'a> {
        NodeCtx { now, node, links, actions: Vec::new() }
    }

    /// Consume the context, returning the actions the handler queued.
    pub(crate) fn into_actions(self) -> Vec<Action> {
        self.actions
    }
}

impl NodeCtx<'_> {
    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Links attached to this node, in attachment order.
    pub fn links(&self) -> &[LinkId] {
        self.links
    }

    /// Queue stream data on `link`. Delivered after the link latency
    /// (dropped if the link is or goes down first).
    pub fn send(&mut self, link: LinkId, data: &[u8]) {
        self.actions.push(Action::Send { link, data: data.to_vec() });
    }

    /// Arm a timer firing after `delay` ns, tagged with `token`.
    /// Re-arming the same token is allowed; each firing carries the token.
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Cancel every pending timer with this token.
    pub fn cancel_timer(&mut self, token: u64) {
        self.actions.push(Action::CancelTimer { token });
    }
}

/// The discrete-event simulator. See the crate documentation.
pub struct Sim {
    config: SimConfig,
    nodes: Vec<NodeSlot>,
    links: Vec<Link>,
    queue: BinaryHeap<Reverse<Event>>,
    now: u64,
    seq: u64,
    started: bool,
}

impl Sim {
    pub fn new(config: SimConfig) -> Sim {
        Sim {
            config,
            nodes: Vec::new(),
            links: Vec::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            started: false,
        }
    }

    /// Register a node. Its `on_start` runs when the simulation starts.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            node,
            links: Vec::new(),
            busy_until: 0,
            cpu_ns: 0,
            active_timers: HashMap::new(),
        });
        id
    }

    /// Replace a node's behaviour. Used while wiring topologies: link ids
    /// must exist before daemon configurations that reference them can be
    /// built, so harnesses add placeholders first and swap in the real
    /// daemons before the simulation starts.
    pub fn replace_node(&mut self, id: NodeId, node: Box<dyn Node>) {
        assert!(!self.started, "cannot replace a node after the simulation started");
        self.nodes[id.0].node = node;
    }

    /// Create a full-duplex link between `a` and `b` with the given one-way
    /// propagation latency in nanoseconds.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency: u64) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link { a, b, latency, up: true });
        self.nodes[a.0].links.push(id);
        self.nodes[b.0].links.push(id);
        id
    }

    /// Administratively raise or lower a link. Lowering drops all in-flight
    /// data on it and notifies both endpoints; raising notifies only.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        if self.links[link.0].up == up {
            return;
        }
        self.links[link.0].up = up;
        if !up {
            // Drop in-flight data on this link.
            let mut rest: Vec<Reverse<Event>> = self.queue.drain().collect();
            rest.retain(
                |Reverse(e)| !matches!(&e.kind, EventKind::Data { link: l, .. } if *l == link),
            );
            self.queue.extend(rest);
        }
        let (a, b) = (self.links[link.0].a, self.links[link.0].b);
        for node in [a, b] {
            self.push(self.now, EventKind::LinkEvent { node, link, up });
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total measured CPU nanoseconds charged to `node` (0 unless CPU
    /// accounting is enabled).
    pub fn cpu_time(&self, node: NodeId) -> u64 {
        self.nodes[node.0].cpu_ns
    }

    /// Borrow a node downcast to its concrete type. Panics on type
    /// mismatch — a harness bug, not a simulation condition.
    pub fn node_ref<T: 'static>(&mut self, id: NodeId) -> &T {
        self.nodes[id.0]
            .node
            .as_any_mut()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0]
            .node
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.push(0, EventKind::Start(NodeId(i)));
        }
    }

    /// Run until the queue is empty or virtual time exceeds `max_time`.
    /// Returns the number of events processed.
    pub fn run_until_idle(&mut self, max_time: u64) -> u64 {
        self.run_inner(max_time, true)
    }

    /// Run all events with `time <= until`, then set the clock to `until`.
    pub fn run_until(&mut self, until: u64) -> u64 {
        let n = self.run_inner(until, false);
        self.now = self.now.max(until);
        n
    }

    fn run_inner(&mut self, max_time: u64, _idle: bool) -> u64 {
        self.start_if_needed();
        let mut processed = 0u64;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.time > max_time {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = self.now.max(ev.time);
            processed += 1;
            self.dispatch(ev);
        }
        processed
    }

    fn dispatch(&mut self, ev: Event) {
        type NodeCall = Box<dyn for<'c> FnOnce(&mut dyn Node, &mut NodeCtx<'c>)>;
        let (node_id, call): (NodeId, NodeCall) = match ev.kind {
            EventKind::Start(n) => (n, Box::new(|node, ctx| node.on_start(ctx))),
            EventKind::Data { to, link, data } => {
                (to, Box::new(move |node, ctx| node.on_data(ctx, link, &data)))
            }
            EventKind::Timer { node, token, timer_id } => {
                // Fire only if this instance is still armed (not
                // cancelled); firing disarms it.
                let slot = &mut self.nodes[node.0];
                let live =
                    slot.active_timers.get_mut(&token).is_some_and(|set| set.remove(&timer_id));
                if !live {
                    return;
                }
                (node, Box::new(move |n, ctx| n.on_timer(ctx, token)))
            }
            EventKind::LinkEvent { node, link, up } => {
                (node, Box::new(move |n, ctx| n.on_link_event(ctx, link, up)))
            }
        };

        let slot = &mut self.nodes[node_id.0];
        let links_snapshot = slot.links.clone();
        let begin = slot.busy_until.max(self.now);
        let mut ctx = NodeCtx {
            now: begin,
            node: node_id,
            links: &links_snapshot,
            actions: Vec::new(),
        };
        let wall_start = self.config.cpu_accounting.then(Instant::now);
        call(slot.node.as_mut(), &mut ctx);
        let cpu = wall_start.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        let finish = begin + cpu;
        let slot = &mut self.nodes[node_id.0];
        slot.cpu_ns += cpu;
        slot.busy_until = finish;

        // Apply queued actions relative to the completion time.
        for action in ctx.actions {
            match action {
                Action::Send { link, data } => {
                    let l = &self.links[link.0];
                    if !l.up {
                        continue;
                    }
                    let to = if l.a == node_id { l.b } else { l.a };
                    let at = finish + l.latency;
                    self.push(at, EventKind::Data { to, link, data });
                }
                Action::SetTimer { delay, token } => {
                    let timer_id = self.seq;
                    self.nodes[node_id.0].active_timers.entry(token).or_default().insert(timer_id);
                    self.push(finish + delay, EventKind::Timer { node: node_id, token, timer_id });
                }
                Action::CancelTimer { token } => {
                    self.nodes[node_id.0].active_timers.remove(&token);
                }
            }
        }
    }
}
