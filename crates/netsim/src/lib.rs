//! # netsim — deterministic discrete-event network simulator
//!
//! Replaces the paper's testbed of three VMs on a laptop (Fig. 3) with a
//! reproducible substrate. Design follows the smoltcp philosophy: an
//! event-driven core with no hidden concurrency, plus explicit fault
//! injection.
//!
//! * **Virtual time** in nanoseconds, advanced only by the event queue.
//! * **Nodes** implement [`Node`] and react to three stimuli: stream data
//!   arriving on a link, timers they armed, and link up/down transitions.
//! * **Links** are reliable, in-order, full-duplex byte streams (the
//!   TCP-like service BGP assumes) with configurable propagation latency.
//!   Taking a link down drops in-flight and future bytes and notifies both
//!   endpoints — the moral equivalent of a TCP reset, used by the Fig. 5
//!   failure scenarios.
//! * **CPU accounting** (optional): when enabled, the wall-clock time spent
//!   inside a node's event handler is charged as virtual busy time of that
//!   node, serializing its event processing. This is how the Fig. 4
//!   experiment turns "extension code is slower/faster than native code"
//!   into a measurable difference of virtual completion times while staying
//!   deterministic in event *order*.
//!
//! The simulator is intentionally synchronous and single-threaded: BGP
//! convergence experiments need determinism more than parallelism (see the
//! guides' advice that async buys nothing for pure computation).

pub mod driver;
pub mod sim;

pub use driver::NodeDriver;
pub use sim::{LinkId, Node, NodeCtx, NodeId, Sim, SimConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Echoes every received chunk back on the same link, once.
    struct Echo {
        received: Vec<Vec<u8>>,
    }

    impl Node for Echo {
        fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, data: &[u8]) {
            self.received.push(data.to_vec());
            ctx.send(link, data);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one message at start, records replies and timer firings.
    struct Pinger {
        link: Option<LinkId>,
        got: Vec<(u64, Vec<u8>)>,
        timer_fired_at: Option<u64>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            let link = ctx.links()[0];
            self.link = Some(link);
            ctx.send(link, b"ping");
            ctx.set_timer(1_000_000, 7);
        }
        fn on_data(&mut self, ctx: &mut NodeCtx<'_>, _link: LinkId, data: &[u8]) {
            self.got.push((ctx.now(), data.to_vec()));
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            assert_eq!(token, 7);
            self.timer_fired_at = Some(ctx.now());
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_with_latency() {
        let mut sim = Sim::new(SimConfig::default());
        let a =
            sim.add_node(Box::new(Pinger { link: None, got: Vec::new(), timer_fired_at: None }));
        let b = sim.add_node(Box::new(Echo { received: Vec::new() }));
        sim.connect(a, b, 500); // 500 ns each way
        sim.run_until_idle(10_000_000);

        let pinger: &Pinger = sim.node_ref(a);
        assert_eq!(pinger.got.len(), 1);
        assert_eq!(pinger.got[0].1, b"ping");
        // Round trip = 2 × 500 ns.
        assert_eq!(pinger.got[0].0, 1000);
        assert_eq!(pinger.timer_fired_at, Some(1_000_000));
    }

    #[test]
    fn link_down_drops_data_and_notifies() {
        struct Watcher {
            events: Vec<(LinkId, bool)>,
            data: usize,
        }
        impl Node for Watcher {
            fn on_data(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, data: &[u8]) {
                self.data += data.len();
            }
            fn on_link_event(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, up: bool) {
                self.events.push((link, up));
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Talker;
        impl Node for Talker {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                let l = ctx.links()[0];
                ctx.send(l, b"hello");
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Sim::new(SimConfig::default());
        let t = sim.add_node(Box::new(Talker));
        let w = sim.add_node(Box::new(Watcher { events: Vec::new(), data: 0 }));
        let l = sim.connect(t, w, 100);
        // Cut the link before the data can arrive.
        sim.set_link_up(l, false);
        sim.run_until_idle(1_000_000);
        let watcher: &Watcher = sim.node_ref(w);
        assert_eq!(watcher.data, 0, "in-flight data dropped on link failure");
        assert_eq!(watcher.events, vec![(l, false)]);
    }

    #[test]
    fn link_restore_allows_traffic_again() {
        struct Repeater;
        impl Node for Repeater {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(50, 1);
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
                let l = ctx.links()[0];
                ctx.send(l, b"x");
                ctx.set_timer(50, 1);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Counter {
            n: usize,
        }
        impl Node for Counter {
            fn on_data(&mut self, _ctx: &mut NodeCtx<'_>, _l: LinkId, data: &[u8]) {
                self.n += data.len();
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Sim::new(SimConfig::default());
        let r = sim.add_node(Box::new(Repeater));
        let c = sim.add_node(Box::new(Counter { n: 0 }));
        let l = sim.connect(r, c, 10);
        sim.set_link_up(l, false);
        sim.run_until(1_000);
        assert_eq!(sim.node_ref::<Counter>(c).n, 0);
        sim.set_link_up(l, true);
        sim.run_until(2_000);
        assert!(sim.node_ref::<Counter>(c).n > 0);
    }

    #[test]
    fn events_process_in_timestamp_order() {
        struct Recorder {
            seen: Vec<u64>,
        }
        impl Node for Recorder {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                // Armed out of order; must fire in order.
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
                self.seen.push(token);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let r = sim.add_node(Box::new(Recorder { seen: Vec::new() }));
        sim.run_until_idle(1_000_000);
        assert_eq!(sim.node_ref::<Recorder>(r).seen, vec![1, 2, 3]);
    }

    #[test]
    fn cancel_timer_suppresses_firing() {
        struct C {
            fired: bool,
        }
        impl Node for C {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(100, 9);
                ctx.cancel_timer(9);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {
                self.fired = true;
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let c = sim.add_node(Box::new(C { fired: false }));
        sim.run_until_idle(10_000);
        assert!(!sim.node_ref::<C>(c).fired);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        // Two simulations built identically must produce identical event
        // outcomes (timestamps included) — the property every experiment
        // in this workspace leans on.
        fn run_once() -> Vec<(u64, Vec<u8>)> {
            let mut sim = Sim::new(SimConfig::default());
            let a = sim.add_node(Box::new(Pinger {
                link: None,
                got: Vec::new(),
                timer_fired_at: None,
            }));
            let b = sim.add_node(Box::new(Echo { received: Vec::new() }));
            sim.connect(a, b, 777);
            sim.run_until_idle(10_000_000);
            sim.node_ref::<Pinger>(a).got.clone()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn cpu_accounting_serializes_node_time() {
        // With accounting on, a node that burns CPU pushes its outputs
        // later in virtual time.
        struct Burner;
        impl Node for Burner {
            fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, _data: &[u8]) {
                // Busy-work the accountant can observe.
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                ctx.send(link, &acc.to_le_bytes());
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Src {
            reply_at: Option<u64>,
        }
        impl Node for Src {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                let l = ctx.links()[0];
                ctx.send(l, b"go");
            }
            fn on_data(&mut self, ctx: &mut NodeCtx<'_>, _l: LinkId, _d: &[u8]) {
                self.reply_at = Some(ctx.now());
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = Sim::new(SimConfig { cpu_accounting: true });
        let s = sim.add_node(Box::new(Src { reply_at: None }));
        let b = sim.add_node(Box::new(Burner));
        sim.connect(s, b, 10);
        sim.run_until_idle(u64::MAX / 2);
        let reply = sim.node_ref::<Src>(s).reply_at.expect("got reply");
        assert!(reply > 20, "busy time must delay the reply, got {reply}");
        assert!(sim.cpu_time(b) > 0);
    }
}
