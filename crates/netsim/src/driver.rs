//! # NodeDriver — drive one node outside a [`Sim`]
//!
//! The discrete-event [`Sim`](crate::Sim) owns the clock: time advances
//! only as queued events drain, which is exactly right for reproducible
//! experiments and exactly wrong for a socket runtime, where time is
//! wall-clock and stimuli arrive from the outside world. `NodeDriver`
//! closes that gap: it hosts a single [`Node`] behind the same `NodeCtx`
//! contract the simulator uses — the node cannot tell the difference —
//! but the *caller* supplies the clock and the inbound bytes, and reads
//! the outbound bytes back out.
//!
//! This is the seam the `xbgp-serve` TCP runtime plugs into: each shard
//! core owns one `NodeDriver` wrapping a daemon, the accept loop's
//! session tasks feed wire frames in over mpsc, and whatever the daemon
//! sends on its links is fanned back out to the sockets. The daemon
//! remains the untouched single-threaded `Rc`-based implementation that
//! runs under `netsim` in the test harness.
//!
//! Semantics mirror [`Sim`] where both apply:
//!
//! * `on_start` runs once, at the time of the first [`NodeDriver::start`].
//! * Timers armed with [`NodeCtx::set_timer`] fire in `(due, arm-order)`
//!   order when [`NodeDriver::advance_to`] moves the clock past them;
//!   cancelling a token disarms every pending instance.
//! * [`NodeCtx::send`] output is captured per link, in emission order,
//!   and returned by [`NodeDriver::drain_outbound`]. There is no latency
//!   model — the transport on the other side of the seam provides one.
//! * The clock never moves backwards: stimuli delivered with a stale
//!   timestamp run at the latest time already observed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::sim::{LinkId, Node, NodeCtx, NodeId};

/// A pending timer instance: fires at `due`, unless its `timer_id` has
/// been cancelled out of the active set.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct PendingTimer {
    due: u64,
    timer_id: u64,
    token: u64,
}

/// Hosts one [`Node`] outside a simulation. See the module docs.
pub struct NodeDriver {
    node: Box<dyn Node>,
    links: Vec<LinkId>,
    now: u64,
    seq: u64,
    timers: BinaryHeap<Reverse<PendingTimer>>,
    active_timers: HashMap<u64, HashSet<u64>>,
    outbound: Vec<(LinkId, Vec<u8>)>,
    started: bool,
}

impl NodeDriver {
    /// Host `node` with `n_links` attached links, numbered
    /// `LinkId(0)..LinkId(n_links)` in [`NodeCtx::links`] order. Build
    /// the node's configuration against those ids.
    pub fn new(node: Box<dyn Node>, n_links: usize) -> NodeDriver {
        NodeDriver {
            node,
            links: (0..n_links).map(LinkId).collect(),
            now: 0,
            seq: 0,
            timers: BinaryHeap::new(),
            active_timers: HashMap::new(),
            outbound: Vec::new(),
            started: false,
        }
    }

    /// The hosted node's links, in attachment order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Latest time observed by the hosted node.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Run `on_start` at time `now_ns` (idempotent; later calls no-op).
    pub fn start(&mut self, now_ns: u64) {
        if self.started {
            return;
        }
        self.started = true;
        self.advance_to(now_ns);
        self.dispatch(|node, ctx| node.on_start(ctx));
    }

    /// Deliver stream bytes on `link` at time `now_ns`, firing any timers
    /// due first.
    pub fn deliver(&mut self, now_ns: u64, link: LinkId, data: &[u8]) {
        debug_assert!(self.started, "deliver before start");
        self.advance_to(now_ns);
        self.dispatch(|node, ctx| node.on_data(ctx, link, data));
    }

    /// Report an administrative link transition at time `now_ns`.
    pub fn link_event(&mut self, now_ns: u64, link: LinkId, up: bool) {
        debug_assert!(self.started, "link event before start");
        self.advance_to(now_ns);
        self.dispatch(|node, ctx| node.on_link_event(ctx, link, up));
    }

    /// Advance the clock to `now_ns`, firing every timer due on the way
    /// in `(due, arm-order)` order. A stale `now_ns` (before the current
    /// clock) leaves the clock unchanged.
    pub fn advance_to(&mut self, now_ns: u64) {
        loop {
            let due = match self.timers.peek() {
                Some(Reverse(t)) if t.due <= now_ns => t.due,
                _ => break,
            };
            let Reverse(t) = self.timers.pop().expect("peeked");
            self.now = self.now.max(due);
            let live =
                self.active_timers.get_mut(&t.token).is_some_and(|set| set.remove(&t.timer_id));
            if live {
                let token = t.token;
                self.dispatch(|node, ctx| node.on_timer(ctx, token));
            }
        }
        self.now = self.now.max(now_ns);
    }

    /// Take the `(link, bytes)` stream chunks the node emitted since the
    /// last drain, in emission order.
    pub fn drain_outbound(&mut self) -> Vec<(LinkId, Vec<u8>)> {
        std::mem::take(&mut self.outbound)
    }

    /// Borrow the hosted node downcast to its concrete type. Panics on
    /// type mismatch — a caller bug, not a runtime condition.
    pub fn node_ref<T: 'static>(&mut self) -> &T {
        self.node.as_any_mut().downcast_ref::<T>().expect("node type mismatch")
    }

    /// Mutably borrow the hosted node downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self) -> &mut T {
        self.node.as_any_mut().downcast_mut::<T>().expect("node type mismatch")
    }

    /// Run one handler at the current clock and apply the actions it
    /// queued (captured sends, armed/cancelled timers).
    fn dispatch(&mut self, call: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        let mut ctx = NodeCtx::standalone(self.now, NodeId(0), &self.links);
        call(self.node.as_mut(), &mut ctx);
        for action in ctx.into_actions() {
            match action {
                crate::sim::Action::Send { link, data } => self.outbound.push((link, data)),
                crate::sim::Action::SetTimer { delay, token } => {
                    let timer_id = self.seq;
                    self.seq += 1;
                    self.active_timers.entry(token).or_default().insert(timer_id);
                    self.timers.push(Reverse(PendingTimer {
                        due: self.now + delay,
                        timer_id,
                        token,
                    }));
                }
                crate::sim::Action::CancelTimer { token } => {
                    self.active_timers.remove(&token);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Records stimuli; echoes data; arms a periodic timer at start.
    struct Probe {
        data: Vec<(u64, LinkId, Vec<u8>)>,
        timers: Vec<(u64, u64)>,
        link_events: Vec<(LinkId, bool)>,
    }

    impl Node for Probe {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(100, 7);
            ctx.send(ctx.links()[0], b"hello");
        }
        fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, data: &[u8]) {
            self.data.push((ctx.now(), link, data.to_vec()));
            ctx.send(link, data);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
            if self.timers.len() < 3 {
                ctx.set_timer(100, token);
            }
        }
        fn on_link_event(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, up: bool) {
            self.link_events.push((link, up));
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn probe() -> Probe {
        Probe {
            data: Vec::new(),
            timers: Vec::new(),
            link_events: Vec::new(),
        }
    }

    #[test]
    fn start_deliver_and_drain_round_trip() {
        let mut d = NodeDriver::new(Box::new(probe()), 2);
        assert_eq!(d.links(), &[LinkId(0), LinkId(1)]);
        d.start(5);
        d.deliver(10, LinkId(1), b"ping");
        let out = d.drain_outbound();
        assert_eq!(out, vec![(LinkId(0), b"hello".to_vec()), (LinkId(1), b"ping".to_vec())]);
        assert!(d.drain_outbound().is_empty(), "drain takes");
        let p: &Probe = d.node_ref();
        assert_eq!(p.data, vec![(10, LinkId(1), b"ping".to_vec())]);
    }

    #[test]
    fn timers_fire_on_advance_in_due_order() {
        let mut d = NodeDriver::new(Box::new(probe()), 1);
        d.start(0);
        // Periodic timer: due at 100, re-arms twice more.
        d.advance_to(1_000);
        let p: &Probe = d.node_ref();
        assert_eq!(p.timers, vec![(100, 7), (200, 7), (300, 7)]);
        assert_eq!(d.now(), 1_000);
    }

    #[test]
    fn stale_clock_never_rewinds() {
        let mut d = NodeDriver::new(Box::new(probe()), 1);
        d.start(500);
        d.deliver(100, LinkId(0), b"late");
        let p: &Probe = d.node_ref();
        assert_eq!(p.data[0].0, 500, "stale timestamp clamps to current clock");
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct C;
        impl Node for C {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(10, 1);
                ctx.cancel_timer(1);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {
                panic!("cancelled timer fired");
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut d = NodeDriver::new(Box::new(C), 0);
        d.start(0);
        d.advance_to(1_000);
    }

    #[test]
    fn link_events_reach_the_node() {
        let mut d = NodeDriver::new(Box::new(probe()), 1);
        d.start(0);
        d.link_event(50, LinkId(0), false);
        d.link_event(60, LinkId(0), true);
        let p: &Probe = d.node_ref();
        assert_eq!(p.link_events, vec![(LinkId(0), false), (LinkId(0), true)]);
    }
}
