//! # Churn stream generation
//!
//! The steady-state benchmarks blast a full table once and measure
//! convergence. Real BGP speakers spend their lives elsewhere: absorbing a
//! continuous trickle (or storm) of UPDATEs against an already-full RIB.
//! This module turns a generated table into a deterministic sequence of
//! churn *rounds*, each a batch of withdrawals and (re-)announcements that
//! a feeder replays against the DUT at a fixed interval.
//!
//! Four churn mechanisms compose, all seeded and all expressed as integer
//! per-mille rates so two runs with the same [`ChurnSpec`] produce the
//! same byte stream:
//!
//! * **Peer flaps** — a fixed subset of the table ([`ChurnSpec::flap_per_mille`])
//!   goes down and comes back together every [`ChurnSpec::flap_period`]
//!   rounds, modelling a session to one upstream bouncing.
//! * **Withdraw/re-announce storms** — each live route is withdrawn with
//!   probability [`ChurnSpec::withdraw_per_mille`] per round and returns
//!   from the withdrawn pool with probability
//!   [`ChurnSpec::reannounce_per_mille`] per round; the ratio of the two
//!   sets the steady-state fraction of the table that is down.
//! * **Path-hunting cascades** — when [`ChurnSpec::path_hunt_depth`] is
//!   non-zero, a withdrawal is preceded by that many successively longer
//!   AS-path announcements (one per round), the way a route is explored
//!   through ever-worse alternatives before it finally disappears.
//! * **ROA delta sweeps** — live routes toggle their origin AS with
//!   probability [`ChurnSpec::roa_sweep_per_mille`] per round (and toggle
//!   back on a later hit), flipping their RPKI validation state and
//!   forcing origin-validation extensions to re-classify them.
//!
//! The generator appends one final **restore round** that re-announces the
//! original route for every prefix not currently live with its original
//! attributes, so the full stream converges back to exactly the initial
//! table. That is what lets the harness pin correctness: at the quiescent
//! point after the last round, the DUT's Loc-RIB must be byte-identical to
//! the Loc-RIB after the initial blast — and to the full-recompute oracle.

use crate::{to_updates, Route};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use xbgp_wire::{Ipv4Prefix, UpdateMsg};

/// Parameters of a churn stream. All rates are integer per-mille so the
/// stream is a pure function of the spec (no float rounding drift).
#[derive(Debug, Clone, Copy)]
pub struct ChurnSpec {
    /// RNG seed — same seed (and table), same stream.
    pub seed: u64,
    /// Number of churn rounds to generate. One restore round is appended
    /// on top, so [`churn_rounds`] returns `rounds + 1` entries.
    pub rounds: usize,
    /// Per-round withdrawal probability (per mille) of each live route.
    pub withdraw_per_mille: u32,
    /// Per-round probability (per mille) that a withdrawn route returns
    /// with its original attributes. Together with `withdraw_per_mille`
    /// this sets the withdraw/re-announce ratio of the storm.
    pub reannounce_per_mille: u32,
    /// Share of the table (per mille) in the flap set.
    pub flap_per_mille: u32,
    /// Rounds between flap transitions: the flap set goes down together,
    /// then comes back together, every `flap_period` rounds. `0` disables
    /// flapping regardless of `flap_per_mille`.
    pub flap_period: usize,
    /// Per-round probability (per mille) that a live route's origin AS
    /// toggles (+1, then back on the next hit), flipping its RPKI
    /// validation state.
    pub roa_sweep_per_mille: u32,
    /// Number of successively longer-path announcements emitted (one per
    /// round) before a storm withdrawal lands. `0` withdraws immediately.
    pub path_hunt_depth: usize,
}

impl ChurnSpec {
    /// A moderate default storm: ~10% of the table cycling, a 5% flap set
    /// bouncing every 4 rounds, a light ROA sweep and 2-step path hunting.
    pub fn new(seed: u64, rounds: usize) -> ChurnSpec {
        ChurnSpec {
            seed,
            rounds,
            withdraw_per_mille: 100,
            reannounce_per_mille: 500,
            flap_per_mille: 50,
            flap_period: 4,
            roa_sweep_per_mille: 20,
            path_hunt_depth: 2,
        }
    }
}

/// One batch of churn: withdrawals first, then announcements, exactly the
/// order [`ChurnRound::to_updates`] encodes them in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnRound {
    pub withdrawals: Vec<Ipv4Prefix>,
    pub announcements: Vec<Route>,
}

impl ChurnRound {
    /// Number of routing updates this round carries (withdrawn prefixes
    /// plus announced NLRI), the unit of the updates/sec benchmarks.
    pub fn update_count(&self) -> usize {
        self.withdrawals.len() + self.announcements.len()
    }

    /// Encode the round as UPDATE messages: withdrawals packed 800 per
    /// message (staying under the 4096-byte limit at 5 bytes/prefix),
    /// then announcements packed by shared attribute set.
    pub fn to_updates(&self, next_hop: u32, local_pref: Option<u32>) -> Vec<UpdateMsg> {
        let mut msgs: Vec<UpdateMsg> =
            self.withdrawals.chunks(800).map(|c| UpdateMsg::withdraw(c.to_vec())).collect();
        msgs.extend(to_updates(&self.announcements, next_hop, local_pref));
        msgs
    }
}

/// Per-route churn state. Flap-set members are tracked separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Up with original attributes.
    Live,
    /// Up with the origin AS toggled by the ROA sweep.
    Shifted,
    /// Mid path-hunt: `stage` longer-path announcements sent so far.
    Hunting(usize),
    /// Down, waiting in the re-announce pool.
    Withdrawn,
}

/// The route announced at path-hunt `stage`: the original path behind
/// `stage` extra (deterministic) transit hops, so each step is strictly
/// worse under shortest-AS-path and the DUT re-runs best-path selection.
fn hunt_route(r: &Route, stage: usize) -> Route {
    let mut hunted = r.clone();
    let filler = 64_000 + (r.prefix.addr() % 512);
    for k in 0..stage {
        hunted.as_path.insert(0, filler + k as u32);
    }
    hunted
}

/// The route with its origin AS toggled (+1): same path length, different
/// origin, so decision outcomes are unchanged but RPKI validation flips.
fn shift_origin(r: &Route) -> Route {
    let mut shifted = r.clone();
    *shifted.as_path.last_mut().expect("generated paths are non-empty") += 1;
    shifted
}

/// Generate the churn stream for `table` per `spec`: `spec.rounds` storm
/// rounds plus the final restore round (see the module docs). Determinism:
/// the result is a pure function of `(table, spec)`.
pub fn churn_rounds(table: &[Route], spec: &ChurnSpec) -> Vec<ChurnRound> {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xc3a5_c85c_97cb_3127);
    let n = table.len();
    // Flap membership is drawn once, up front.
    let flap: Vec<usize> = (0..n)
        .filter(|_| spec.flap_period > 0 && rng.gen_range(0u32..1000) < spec.flap_per_mille)
        .collect();
    let flap_set: HashSet<usize> = flap.iter().copied().collect();
    let mut flap_down = false;

    let mut state = vec![St::Live; n];
    let mut rounds = Vec::with_capacity(spec.rounds + 1);
    for r in 0..spec.rounds {
        let mut wd: Vec<Ipv4Prefix> = Vec::new();
        let mut ann: Vec<Route> = Vec::new();
        // (a) the flap set transitions together on period boundaries.
        if spec.flap_period > 0 && !flap.is_empty() && (r + 1) % spec.flap_period == 0 {
            flap_down = !flap_down;
            for &i in &flap {
                if flap_down {
                    wd.push(table[i].prefix);
                } else {
                    ann.push(table[i].clone());
                }
            }
        }
        // (b)–(d) per-route storm / hunting / pool / ROA-sweep machine.
        for i in 0..n {
            if flap_set.contains(&i) {
                continue; // flap members are driven by (a) only
            }
            match state[i] {
                St::Hunting(stage) => {
                    if stage < spec.path_hunt_depth {
                        ann.push(hunt_route(&table[i], stage + 1));
                        state[i] = St::Hunting(stage + 1);
                    } else {
                        wd.push(table[i].prefix);
                        state[i] = St::Withdrawn;
                    }
                }
                St::Withdrawn => {
                    if rng.gen_range(0u32..1000) < spec.reannounce_per_mille {
                        ann.push(table[i].clone());
                        state[i] = St::Live;
                    }
                }
                St::Live | St::Shifted => {
                    if rng.gen_range(0u32..1000) < spec.withdraw_per_mille {
                        if spec.path_hunt_depth > 0 {
                            ann.push(hunt_route(&table[i], 1));
                            state[i] = St::Hunting(1);
                        } else {
                            wd.push(table[i].prefix);
                            state[i] = St::Withdrawn;
                        }
                    } else if rng.gen_range(0u32..1000) < spec.roa_sweep_per_mille {
                        if state[i] == St::Shifted {
                            ann.push(table[i].clone());
                            state[i] = St::Live;
                        } else {
                            ann.push(shift_origin(&table[i]));
                            state[i] = St::Shifted;
                        }
                    }
                }
            }
        }
        rounds.push(ChurnRound { withdrawals: wd, announcements: ann });
    }
    // Restore round: every route not live-with-original-attrs comes back,
    // so the stream converges to exactly the initial table.
    let mut ann: Vec<Route> = Vec::new();
    for i in 0..n {
        if flap_set.contains(&i) {
            if flap_down {
                ann.push(table[i].clone());
            }
        } else if state[i] != St::Live {
            ann.push(table[i].clone());
        }
    }
    rounds.push(ChurnRound { withdrawals: Vec::new(), announcements: ann });
    rounds
}

/// Total routing updates across a stream (see [`ChurnRound::update_count`]).
pub fn total_updates(rounds: &[ChurnRound]) -> u64 {
    rounds.iter().map(|r| r.update_count() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TableSpec};
    use std::collections::HashMap;

    fn table(n: usize, seed: u64) -> Vec<Route> {
        generate(&TableSpec::new(n, seed))
    }

    #[test]
    fn deterministic_for_a_seed() {
        let t = table(800, 11);
        let spec = ChurnSpec::new(21, 12);
        assert_eq!(churn_rounds(&t, &spec), churn_rounds(&t, &spec));
        let other = ChurnSpec { seed: 22, ..spec };
        assert_ne!(churn_rounds(&t, &spec), churn_rounds(&t, &other));
    }

    #[test]
    fn stream_is_nonempty_and_has_both_kinds() {
        let t = table(1000, 3);
        let rounds = churn_rounds(&t, &ChurnSpec::new(7, 10));
        assert_eq!(rounds.len(), 11, "rounds + restore round");
        assert!(rounds.iter().any(|r| !r.withdrawals.is_empty()));
        assert!(rounds.iter().any(|r| !r.announcements.is_empty()));
        assert!(total_updates(&rounds) > 0);
    }

    /// Replaying the whole stream over the initial table must land back on
    /// exactly the initial table — the invariant the harness oracle check
    /// leans on.
    #[test]
    fn restore_round_converges_to_initial_table() {
        let t = table(1200, 5);
        let rounds = churn_rounds(&t, &ChurnSpec::new(9, 15));
        let mut rib: HashMap<Ipv4Prefix, Route> = t.iter().map(|r| (r.prefix, r.clone())).collect();
        for round in &rounds {
            for p in &round.withdrawals {
                assert!(rib.remove(p).is_some(), "withdrawal of a prefix that is down");
            }
            for r in &round.announcements {
                rib.insert(r.prefix, r.clone());
            }
        }
        assert_eq!(rib.len(), t.len());
        for r in &t {
            assert_eq!(rib.get(&r.prefix), Some(r), "route not restored: {:?}", r.prefix);
        }
    }

    #[test]
    fn flap_set_transitions_on_period_boundaries() {
        let t = table(600, 13);
        let spec = ChurnSpec {
            seed: 31,
            rounds: 8,
            withdraw_per_mille: 0,
            reannounce_per_mille: 0,
            flap_per_mille: 200,
            flap_period: 4,
            roa_sweep_per_mille: 0,
            path_hunt_depth: 0,
        };
        let rounds = churn_rounds(&t, &spec);
        // Only rounds 3 and 7 (period boundaries) carry any churn, plus an
        // empty restore round (the second boundary brought the set back up).
        for (i, r) in rounds.iter().enumerate() {
            match i {
                3 => assert!(!r.withdrawals.is_empty() && r.announcements.is_empty()),
                7 => assert!(r.withdrawals.is_empty() && !r.announcements.is_empty()),
                _ => assert_eq!(r.update_count(), 0, "unexpected churn in round {i}"),
            }
        }
        assert_eq!(rounds[3].withdrawals.len(), rounds[7].announcements.len());
    }

    #[test]
    fn path_hunting_lengthens_then_withdraws() {
        let t = table(400, 17);
        let spec = ChurnSpec {
            seed: 41,
            rounds: 6,
            withdraw_per_mille: 80,
            reannounce_per_mille: 0,
            flap_per_mille: 0,
            flap_period: 0,
            roa_sweep_per_mille: 0,
            path_hunt_depth: 2,
        };
        let rounds = churn_rounds(&t, &spec);
        let originals: HashMap<Ipv4Prefix, &Route> = t.iter().map(|r| (r.prefix, r)).collect();
        // Track per-prefix announcement history: each hunted prefix must
        // announce strictly longer paths before its withdrawal shows up.
        let mut last_len: HashMap<Ipv4Prefix, usize> = HashMap::new();
        let mut saw_hunt = false;
        for round in &rounds[..spec.rounds] {
            for r in &round.announcements {
                let orig = originals[&r.prefix];
                assert!(r.as_path.len() > orig.as_path.len(), "hunt paths are longer");
                assert_eq!(&r.as_path[r.as_path.len() - orig.as_path.len()..], &orig.as_path[..]);
                if let Some(prev) = last_len.insert(r.prefix, r.as_path.len()) {
                    assert!(r.as_path.len() > prev, "each hunt step is strictly longer");
                    saw_hunt = true;
                }
            }
            for p in &round.withdrawals {
                assert!(last_len.contains_key(p), "withdrawal only after hunting");
            }
        }
        assert!(saw_hunt, "expected at least one multi-step hunt");
    }

    #[test]
    fn roa_sweep_toggles_origin_only() {
        let t = table(500, 19);
        let spec = ChurnSpec {
            seed: 51,
            rounds: 10,
            withdraw_per_mille: 0,
            reannounce_per_mille: 0,
            flap_per_mille: 0,
            flap_period: 0,
            roa_sweep_per_mille: 100,
            path_hunt_depth: 0,
        };
        let rounds = churn_rounds(&t, &spec);
        let originals: HashMap<Ipv4Prefix, &Route> = t.iter().map(|r| (r.prefix, r)).collect();
        let mut toggled = false;
        for round in &rounds {
            assert!(round.withdrawals.is_empty());
            for r in &round.announcements {
                let orig = originals[&r.prefix];
                assert_eq!(r.as_path.len(), orig.as_path.len());
                assert_eq!(
                    &r.as_path[..r.as_path.len() - 1],
                    &orig.as_path[..orig.as_path.len() - 1]
                );
                if r.origin_asn() == orig.origin_asn() + 1 {
                    toggled = true;
                } else {
                    assert_eq!(r, orig);
                }
            }
        }
        assert!(toggled, "expected origin toggles");
    }

    #[test]
    fn rounds_encode_within_message_limit() {
        let t = table(3000, 23);
        let spec = ChurnSpec { withdraw_per_mille: 400, ..ChurnSpec::new(29, 4) };
        for round in churn_rounds(&t, &spec) {
            for u in round.to_updates(0x0a00_0001, Some(100)) {
                let frame = xbgp_wire::Message::Update(u).encode(4).unwrap();
                assert!(frame.len() <= xbgp_wire::MAX_MSG_LEN);
            }
        }
    }
}
