//! # routegen — synthetic Internet routing tables
//!
//! The paper feeds its route-reflection and origin-validation benchmarks
//! with a RIPE RIS snapshot of June 2020 (724k IPv4 routes). That data set
//! is not redistributable here, so this crate generates tables with the
//! properties that matter to those benchmarks (see DESIGN.md §1):
//!
//! * a realistic **prefix-length mix** (heavily /24-weighted, as in the
//!   real DFZ),
//! * unique prefixes drawn from unicast space,
//! * AS paths of realistic length (2–7 hops) over a bounded AS pool, so
//!   attribute interning in the FIR daemon sees realistic sharing,
//! * optional COMMUNITIES and MED attributes with DFZ-like frequencies,
//! * a matching **ROA set** marking a configurable fraction of prefixes
//!   valid (75% in §3.4).
//!
//! Everything is deterministic given a seed.
//!
//! Beyond the one-shot table, the [`churn`] module turns a table into a
//! deterministic stream of update *rounds* — withdraw/re-announce storms,
//! peer flaps, ROA delta sweeps and path-hunting cascades — for the
//! steady-state churn benchmarks. The storm's withdraw/re-announce ratio
//! ([`churn::ChurnSpec::withdraw_per_mille`] /
//! [`churn::ChurnSpec::reannounce_per_mille`]) and the flap period
//! ([`churn::ChurnSpec::flap_period`]) are seeded parameters of the spec:
//! same spec, same stream, so every engine/daemon/shard combination in the
//! `ablation_churn` bench replays the identical byte sequence.

pub mod churn;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use xbgp_wire::attr::Origin;
use xbgp_wire::{AsPath, Ipv4Prefix, PathAttr, UpdateMsg};

/// One synthetic route: a prefix plus the attributes it is announced with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    pub prefix: Ipv4Prefix,
    pub as_path: Vec<u32>,
    pub origin: Origin,
    pub med: Option<u32>,
    pub communities: Vec<u32>,
}

impl Route {
    /// Origin AS (last hop of the path).
    pub fn origin_asn(&self) -> u32 {
        *self.as_path.last().expect("generated paths are non-empty")
    }

    /// Materialize the attribute vector for announcing this route from
    /// `next_hop` (host byte order), with `local_pref` on iBGP sessions.
    pub fn attrs(&self, next_hop: u32, local_pref: Option<u32>) -> Vec<PathAttr> {
        let mut attrs = vec![
            PathAttr::Origin(self.origin),
            PathAttr::AsPath(AsPath::sequence(self.as_path.clone())),
            PathAttr::NextHop(next_hop),
        ];
        if let Some(lp) = local_pref {
            attrs.push(PathAttr::LocalPref(lp));
        }
        if let Some(med) = self.med {
            attrs.push(PathAttr::Med(med));
        }
        if !self.communities.is_empty() {
            attrs.push(PathAttr::Communities(self.communities.clone()));
        }
        attrs
    }
}

/// Table generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Number of unique prefixes.
    pub routes: usize,
    /// RNG seed — same seed, same table.
    pub seed: u64,
    /// Size of the origin-AS pool.
    pub origin_as_pool: u32,
    /// Size of the transit-AS pool.
    pub transit_as_pool: u32,
}

impl TableSpec {
    /// A table of `routes` prefixes with DFZ-like AS pools scaled down.
    pub fn new(routes: usize, seed: u64) -> TableSpec {
        TableSpec {
            routes,
            seed,
            origin_as_pool: (routes as u32 / 8).clamp(64, 70_000),
            transit_as_pool: 1_000,
        }
    }
}

/// Cumulative prefix-length distribution approximating the IPv4 DFZ.
/// Pairs of `(length, per-mille share)`.
const LEN_MIX: &[(u8, u32)] = &[
    (24, 590),
    (23, 70),
    (22, 95),
    (21, 40),
    (20, 40),
    (19, 30),
    (18, 20),
    (17, 15),
    (16, 65),
    (15, 10),
    (14, 10),
    (13, 5),
    (12, 5),
    (11, 2),
    (10, 2),
    (9, 1),
];

fn pick_len(rng: &mut SmallRng) -> u8 {
    let mut roll = rng.gen_range(0u32..1000);
    for &(len, share) in LEN_MIX {
        if roll < share {
            return len;
        }
        roll -= share;
    }
    8
}

/// Generate a table per `spec`.
pub fn generate(spec: &TableSpec) -> Vec<Route> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut seen: HashSet<Ipv4Prefix> = HashSet::with_capacity(spec.routes * 2);
    let mut routes = Vec::with_capacity(spec.routes);
    // Real tables share AS paths heavily: an origin AS announces many
    // prefixes through a handful of paths. Cache 1-3 paths per origin.
    let mut paths_of: std::collections::HashMap<u32, Vec<Vec<u32>>> =
        std::collections::HashMap::new();
    while routes.len() < spec.routes {
        let len = pick_len(&mut rng);
        // Unicast space: first octet 1..=223, skipping 10/127 look-alikes
        // is unnecessary for a synthetic table.
        let addr = (rng.gen_range(1u32..=223) << 24) | (rng.gen::<u32>() & 0x00ff_ffff);
        let prefix = Ipv4Prefix::new(addr, len);
        if !seen.insert(prefix) {
            continue;
        }
        let origin_as = 100_000 + rng.gen_range(0..spec.origin_as_pool);
        let cached = paths_of.entry(origin_as).or_default();
        let as_path = if !cached.is_empty() && (cached.len() >= 3 || rng.gen_range(0u32..100) < 85)
        {
            cached[rng.gen_range(0..cached.len())].clone()
        } else {
            let hops = 1 + (rng.gen_range(0u32..100) / 25).min(3) + rng.gen_range(0u32..3);
            let mut path = Vec::with_capacity(hops as usize + 1);
            for _ in 0..hops {
                path.push(1_000 + rng.gen_range(0..spec.transit_as_pool));
            }
            path.push(origin_as);
            cached.push(path.clone());
            path
        };
        // Origin code, MED and communities are functions of the origin AS
        // (as they are in practice: set by the origin's export policy), so
        // routes sharing a path also share the full attribute set — which
        // is what lets update packing and attribute interning work.
        let h = u64::from(origin_as).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let origin = match h % 100 {
            0..=84 => Origin::Igp,
            85..=89 => Origin::Egp,
            _ => Origin::Incomplete,
        };
        let med = ((h >> 8) % 100 < 20).then_some(((h >> 16) % 200) as u32);
        let ncomm = match (h >> 24) % 100 {
            0..=59 => 0,
            60..=84 => 1 + (h >> 32) % 2,
            _ => 3 + (h >> 32) % 5,
        };
        let communities = (0..ncomm)
            .map(|i| {
                let c = h.wrapping_mul(i + 3);
                ((64_512 + (c as u32 % 488)) << 16) | ((c >> 40) as u32 % 1000)
            })
            .collect();
        routes.push(Route { prefix, as_path, origin, med, communities });
    }
    routes
}

/// ROA generation matching §3.4: `valid_fraction` of the prefixes get a
/// ROA authorizing their actual origin; half of the remainder get a ROA
/// for a *different* AS (→ Invalid), the other half get none (→ NotFound).
pub fn make_roas(routes: &[Route], valid_fraction: f64, seed: u64) -> Vec<rpki_entry::Entry> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut roas = Vec::new();
    for r in routes {
        let roll: f64 = rng.gen();
        if roll < valid_fraction {
            roas.push(rpki_entry::Entry {
                prefix: r.prefix,
                max_len: r.prefix.len(),
                asn: r.origin_asn(),
            });
        } else if roll < valid_fraction + (1.0 - valid_fraction) / 2.0 {
            roas.push(rpki_entry::Entry {
                prefix: r.prefix,
                max_len: r.prefix.len(),
                asn: r.origin_asn() + 1,
            });
        }
        // else: no ROA → NotFound.
    }
    roas
}

/// Minimal ROA record, structurally identical to `rpki::Roa` but kept local
/// so this crate does not depend on the `rpki` crate (the harness converts).
pub mod rpki_entry {
    use xbgp_wire::Ipv4Prefix;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Entry {
        pub prefix: Ipv4Prefix,
        pub max_len: u8,
        pub asn: u32,
    }
}

/// Pack routes into UPDATE messages the way real speakers do: routes
/// sharing one attribute set share UPDATEs (split at ~700 NLRI to stay
/// under the 4096-byte message limit). Grouping is by attribute set in
/// first-seen order, which is how a speaker drains its Adj-RIB-Out.
pub fn to_updates(routes: &[Route], next_hop: u32, local_pref: Option<u32>) -> Vec<UpdateMsg> {
    let mut order: Vec<Vec<PathAttr>> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<PathAttr>, Vec<Ipv4Prefix>> =
        std::collections::HashMap::new();
    for r in routes {
        let attrs = r.attrs(next_hop, local_pref);
        let entry = groups.entry(attrs.clone()).or_default();
        if entry.is_empty() {
            order.push(attrs);
        }
        entry.push(r.prefix);
    }
    let mut updates = Vec::new();
    for attrs in order {
        let nlri = groups.remove(&attrs).expect("group exists");
        for chunk in nlri.chunks(700) {
            updates.push(UpdateMsg::announce(attrs.clone(), chunk.to_vec()));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let spec = TableSpec::new(500, 42);
        assert_eq!(generate(&spec), generate(&spec));
        let other = TableSpec::new(500, 43);
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn exact_count_and_unique_prefixes() {
        let routes = generate(&TableSpec::new(2000, 7));
        assert_eq!(routes.len(), 2000);
        let set: HashSet<Ipv4Prefix> = routes.iter().map(|r| r.prefix).collect();
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn prefix_length_mix_is_slash24_heavy() {
        let routes = generate(&TableSpec::new(10_000, 1));
        let n24 = routes.iter().filter(|r| r.prefix.len() == 24).count();
        let frac = n24 as f64 / routes.len() as f64;
        assert!((0.5..0.7).contains(&frac), "/24 share {frac} out of expected band");
        assert!(routes.iter().all(|r| (8..=24).contains(&r.prefix.len())));
    }

    #[test]
    fn paths_are_realistic() {
        let routes = generate(&TableSpec::new(5000, 3));
        for r in &routes {
            assert!(!r.as_path.is_empty());
            assert!(r.as_path.len() <= 8, "path too long: {:?}", r.as_path);
            assert!(r.origin_asn() >= 100_000, "origin drawn from origin pool");
        }
        let avg: f64 =
            routes.iter().map(|r| r.as_path.len() as f64).sum::<f64>() / routes.len() as f64;
        assert!((2.0..6.0).contains(&avg), "average path length {avg}");
    }

    #[test]
    fn roas_hit_requested_valid_fraction() {
        let routes = generate(&TableSpec::new(4000, 9));
        let roas = make_roas(&routes, 0.75, 9);
        let valid = routes
            .iter()
            .filter(|r| roas.iter().any(|roa| roa.prefix == r.prefix && roa.asn == r.origin_asn()))
            .count();
        let frac = valid as f64 / routes.len() as f64;
        assert!((0.72..0.78).contains(&frac), "valid fraction {frac}");
    }

    #[test]
    fn updates_pack_and_round_trip() {
        let routes = generate(&TableSpec::new(3000, 5));
        let updates = to_updates(&routes, 0x0a00_0001, Some(100));
        // Packing must compress: far fewer messages than routes.
        assert!(updates.len() < routes.len());
        // Every prefix appears exactly once across all NLRI.
        let mut seen = HashSet::new();
        for u in &updates {
            assert!(!u.nlri.is_empty());
            for p in &u.nlri {
                assert!(seen.insert(*p));
            }
            // And each encodes within the BGP message limit.
            let frame = xbgp_wire::Message::Update(u.clone()).encode(4).unwrap();
            assert!(frame.len() <= xbgp_wire::MAX_MSG_LEN);
        }
        assert_eq!(seen.len(), routes.len());
    }

    #[test]
    fn attrs_include_optional_fields_when_set() {
        let r = Route {
            prefix: "10.0.0.0/24".parse().unwrap(),
            as_path: vec![1, 2],
            origin: Origin::Igp,
            med: Some(5),
            communities: vec![0xffff_0001],
        };
        let attrs = r.attrs(7, Some(200));
        assert!(attrs.iter().any(|a| matches!(a, PathAttr::Med(5))));
        assert!(attrs.iter().any(|a| matches!(a, PathAttr::LocalPref(200))));
        assert!(attrs.iter().any(|a| matches!(a, PathAttr::Communities(_))));
        let bare = r.attrs(7, None);
        assert!(!bare.iter().any(|a| matches!(a, PathAttr::LocalPref(_))));
    }
}
