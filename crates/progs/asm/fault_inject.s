; Fault-injection probe (② BGP_INBOUND_FILTER). Not one of the paper's
; use cases: this program exists to exercise the transactional execution
; contract (DESIGN.md §4d) under load. A shared-memory counter tracks
; invocations across routes; every PERIOD-th run it stages two attribute
; writes and then dereferences an unmapped address, trapping mid-chain.
; The VMM must discard both staged writes — the Loc-RIB stays
; byte-identical to a native run. All other invocations delegate.
;
; PERIOD is prepended by `fault_inject::source(period)` as an .equ.

        mov r1, 1                   ; shared counter under key 1
        call ctx_shared_get
        jne r0, 0, have
        mov r1, 1
        mov r2, 8
        call ctx_shared_malloc
        jeq r0, 0, pass             ; no shared space: never fault
have:
        mov r6, r0
        ldxdw r7, [r6]
        add r7, 1
        stxdw [r6], r7
        mod r7, PERIOD
        jne r7, 0, pass
        ; Stage two mutations of a scratch attribute, then trap. The
        ; rollback must erase both; nothing may reach the host.
        mov r1, FAULT_ATTR
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 8
        stdw [r10-8], 0xbad
        mov r4, 8
        call set_attr
        mov r1, FAULT_ATTR
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 8
        stdw [r10-8], 0xdead
        mov r4, 8
        call set_attr
        lddw r1, 0x999999999
        ldxb r0, [r1]               ; unmapped: traps
        exit
pass:
        call next
        exit
