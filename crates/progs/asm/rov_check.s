; §3.4 — route-origin validation as extension code, attached to
; BGP_INBOUND_FILTER. "Our extension code checks the validity of the
; origin of each prefix but does not discard the invalid ones": the
; verdict is tallied in the program's persistent memory (shared key 1:
; three u64 counters — valid, invalid, not-found) and the route is always
; delegated onward with next().
;
; The ROA lookup runs through the rpki_check_origin helper, which the
; xBGP layer backs with a *hash table* (like BIRD) regardless of what the
; host's native validation uses — the reason the extension beats
; FRRouting's native trie walk in Fig. 4.

        call get_prefix
        jeq r0, 0, pass
        ldxw r6, [r0+PREFIX_OFF_ADDR]
        ldxw r7, [r0+PREFIX_OFF_LEN]
        ; AS_PATH → ephemeral buffer.
        mov r1, 512
        call ctx_malloc
        jeq r0, 0, pass
        mov r8, r0
        mov r1, ATTR_AS_PATH
        mov r2, r8
        mov r3, 512
        call get_attr
        jeq r0, -1, pass
        jeq r0, 0, pass             ; empty path: no origin to validate
        mov r5, r0
        add r5, r8                  ; end of path
        mov r9, 0                   ; origin candidate
walk:
        mov r1, r8
        add r1, 2
        jgt r1, r5, walked
        ldxb r1, [r8]               ; segment type
        ldxb r2, [r8+1]             ; count
        mov r3, r2
        lsh r3, 2
        add r3, 2
        mov r4, r8
        add r4, r3                  ; next segment
        jgt r4, r5, walked          ; truncated segment
        jne r1, 2, not_seq
        jeq r2, 0, not_seq
        ; last ASN of this sequence
        mov r1, r2
        sub r1, 1
        lsh r1, 2
        add r1, r8
        ldxw r9, [r1+2]
        be32 r9
        ja adv
not_seq:
        mov r9, 0                   ; a trailing SET voids the origin
adv:
        mov r8, r4
        ja walk
walked:
        jeq r9, 0, pass
        mov r1, r6
        mov r2, r7
        mov r3, r9
        call rpki_check_origin
        mov r6, r0                  ; verdict
        ; Persistent counters in the program's shared memory.
        mov r1, 1
        call ctx_shared_get
        jne r0, 0, have_mem
        mov r1, 1
        mov r2, 24
        call ctx_shared_malloc
        jeq r0, 0, pass
have_mem:
        jeq r6, ROV_VALID, bump     ; slot 0
        jeq r6, ROV_INVALID, inv
        add r0, 16                  ; not-found: slot 2
        ja bump
inv:
        add r0, 8                   ; invalid: slot 1
bump:
        ldxdw r1, [r0]
        add r1, 1
        stxdw [r0], r1
pass:
        call next                   ; never discard (§3.4)
        exit
