; Route reflection (§3.2) — inbound half: RFC 4456 loop prevention as
; extension code. Rejects iBGP routes whose ORIGINATOR_ID is this router
; or whose CLUSTER_LIST already contains this cluster (cluster id = local
; router id, the RFC default). Attached to BGP_INBOUND_FILTER.

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        jne r6, IBGP_SESSION, pass
        ldxw r9, [r0+PEER_INFO_OFF_LOCAL_ROUTER_ID]
        ; ORIGINATOR_ID == my router id → the route is my own reflection.
        mov r1, ATTR_ORIGINATOR_ID
        mov r2, r10
        sub r2, 8
        mov r3, 4
        call get_attr
        jeq r0, -1, cluster
        ldxw r7, [r10-8]
        be32 r7
        jeq r7, r9, reject
cluster:
        ; CLUSTER_LIST contains my cluster id → loop through this cluster.
        mov r1, 512
        call ctx_malloc
        jeq r0, 0, pass
        mov r6, r0
        mov r1, ATTR_CLUSTER_LIST
        mov r2, r6
        mov r3, 512
        call get_attr
        jeq r0, -1, pass
        mov r8, r0
        add r8, r6                  ; end of the list
        mov r7, r6                  ; cursor
scan:
        jge r7, r8, pass
        ldxw r1, [r7]
        be32 r1
        jeq r1, r9, reject
        add r7, 4
        ja scan
pass:
        call next
        exit
reject:
        mov r0, FILTER_REJECT
        exit
