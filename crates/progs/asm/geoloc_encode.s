; GeoLoc bytecode ④ (BGP_ENCODE_MESSAGE): write the GeoLoc attribute over
; iBGP sessions (paper §2: "it uses write_buf to write the BGP GeoLoc
; attribute over an iBGP session"). The host implementations do not emit
; attributes they do not model natively, so this bytecode is what puts
; GeoLoc on the wire inside the AS.
.equ GEOLOC_ATTR, 66

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        jne r6, IBGP_SESSION, out
        ; Attribute payload → [r10-8].
        mov r1, GEOLOC_ATTR
        mov r2, r10
        sub r2, 8
        mov r3, 8
        call get_attr
        jeq r0, -1, out
        ; Raw TLV [flags, code, len, payload×8] at [r10-19 .. r10-8).
        stb [r10-19], ATTR_FLAGS_OPT_TRANS
        stb [r10-18], GEOLOC_ATTR
        stb [r10-17], 8
        ldxdw r1, [r10-8]
        stxdw [r10-16], r1
        mov r1, r10
        sub r1, 19
        mov r2, 11
        call write_buf
out:
        mov r0, 0
        exit
