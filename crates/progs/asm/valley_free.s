; §3.3 — valley-free enforcement for BGP-in-the-datacenter, attached to
; BGP_INBOUND_FILTER on every fabric router.
;
; Configuration (get_xtra):
;   "vf_pairs"  — N×8 bytes: (below ASN, above ASN) u32 pairs in network
;                 byte order, one per fabric level-i/level-i+1 adjacency
;                 (the manifest of eBGP sessions from the paper).
;   "dc_prefix" — 8 bytes: covering prefix of the fabric's own address
;                 space (addr u32 BE, length u32 BE). Valley paths toward
;                 internal destinations are allowed (the paper's escape
;                 hatch: "this path should remain valid if the final
;                 destination is a prefix attached below L13").
;
; Logic: when a route arrives from a *lower-level* neighbor (it is moving
; up), reject it if its AS path already contains a down move — i.e. some
; adjacent pair (x, y) of the path is a configured (below, above) pair,
; meaning x learned the route from the level above it — unless the
; destination prefix is inside the datacenter.

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_ASN]
        ldxw r7, [r0+PEER_INFO_OFF_LOCAL_ASN]
        ; Load the pair table into ephemeral memory.
        mov r1, 512
        call ctx_malloc
        jeq r0, 0, pass
        mov r8, r0
        stb [r10-8], 118            ; 'v'
        stb [r10-7], 102            ; 'f'
        stb [r10-6], 95             ; '_'
        stb [r10-5], 112            ; 'p'
        stb [r10-4], 97             ; 'a'
        stb [r10-3], 105            ; 'i'
        stb [r10-2], 114            ; 'r'
        stb [r10-1], 115            ; 's'
        mov r1, r10
        sub r1, 8
        mov r2, 8
        mov r3, r8
        mov r4, 512
        call get_xtra
        jeq r0, -1, pass
        mov r9, r0
        add r9, r8                  ; end of pair table
        ; Is the sender below me? Look for (sender, me) in the table.
        mov r2, r8
chk_up:
        jge r2, r9, pass            ; sender is not below me: down moves ok
        ldxw r1, [r2]
        be32 r1
        jne r1, r6, chk_next
        ldxw r1, [r2+4]
        be32 r1
        jeq r1, r7, from_below
chk_next:
        add r2, 8
        ja chk_up
from_below:
        ; Internal destination? dc_prefix covering the route: allow.
        call get_prefix
        jeq r0, 0, scan_path
        ldxw r6, [r0+PREFIX_OFF_ADDR]
        stb [r10-16], 100           ; 'd'
        stb [r10-15], 99            ; 'c'
        stb [r10-14], 95            ; '_'
        stb [r10-13], 112           ; 'p'
        stb [r10-12], 114           ; 'r'
        stb [r10-11], 101           ; 'e'
        stb [r10-10], 102           ; 'f'
        stb [r10-9], 105            ; 'i'
        stb [r10-8], 120            ; 'x'
        mov r1, r10
        sub r1, 16
        mov r2, 9
        mov r3, r10
        sub r3, 32
        mov r4, 8
        call get_xtra
        jeq r0, -1, scan_path
        ldxw r1, [r10-32]
        be32 r1                     ; dc prefix address
        ldxw r2, [r10-28]
        be32 r2                     ; dc prefix length
        jeq r2, 0, pass             ; /0 covers everything
        mov r3, 32
        sub r3, r2
        mov r4, 1
        lsh r4, r3
        sub r4, 1                   ; host-bit mask
        mov r5, r4
        xor r5, -1
        and r5, r6                  ; route address masked to dc length
        jeq r5, r1, pass            ; internal destination: allow valley
scan_path:
        ; Reject if any adjacent AS-path pair is a (below, above) pair.
        mov r1, 512
        call ctx_malloc
        jeq r0, 0, pass
        mov r6, r0
        mov r1, ATTR_AS_PATH
        mov r2, r6
        mov r3, 512
        call get_attr
        jeq r0, -1, pass
        mov r7, r0
        add r7, r6                  ; end of path
seg:
        mov r1, r6
        add r1, 2
        jgt r1, r7, pass            ; no further segment header
        ldxb r2, [r6+1]             ; ASN count
        mov r3, r2
        lsh r3, 2
        add r3, 2                   ; segment byte length
        mov r4, r6
        add r4, r3
        stxdw [r10-40], r4          ; next segment pointer
        jgt r4, r7, pass            ; truncated: stop scanning
        ldxb r1, [r6]               ; segment type
        jne r1, 2, next_seg         ; only SEQUENCEs order their ASNs
        jlt r2, 2, next_seg
        ; Iterate adjacent pairs within the sequence.
        mov r3, r6
        add r3, 2                   ; first ASN
        mov r4, r3
        mov r5, r2
        sub r5, 2
        lsh r5, 2
        add r4, r5                  ; last pair start
pair:
        jgt r3, r4, next_seg
        ldxw r5, [r3]               ; x (raw network order)
        ldxw r2, [r3+4]             ; y
        mov r0, r8
find:
        jge r0, r9, pair_next
        ldxw r1, [r0]
        jne r1, r5, find_next
        ldxw r1, [r0+4]
        jeq r1, r2, reject          ; down move found in an upward route
find_next:
        add r0, 8
        ja find
pair_next:
        add r3, 4
        ja pair
next_seg:
        ldxdw r6, [r10-40]
        ja seg
pass:
        call next
        exit
reject:
        mov r0, FILTER_REJECT
        exit
