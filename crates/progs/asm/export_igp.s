; §3.1, Listing 1 — an export filter rejecting BGP routes whose nexthop
; IGP metric is too large. Attached to BGP_OUTBOUND_FILTER.
;
; uint64_t export_igp(args) {
;     nexthop = get_nexthop(); peer = get_peer_info();
;     if (peer->peer_type != EBGP_SESSION) next();   // no iBGP filtering
;     if (nexthop->igp_metric <= MAX_METRIC) next(); // accepted here
;     return FILTER_REJECT;
; }
.equ MAX_METRIC, 1000

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        jeq r6, EBGP_SESSION, ebgp
        call next                   ; do not filter on iBGP sessions
ebgp:
        call get_nexthop
        jeq r0, 0, reject           ; nexthop unknown: reject
        ldxw r7, [r0+NEXTHOP_OFF_IGP_METRIC]
        jgt r7, MAX_METRIC, reject
        call next                   ; route accepted by this filter;
                                    ; the next filter decides
reject:
        mov r0, FILTER_REJECT
        exit
