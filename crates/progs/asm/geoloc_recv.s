; GeoLoc bytecode ① (BGP_RECEIVE_MESSAGE): stamp routes learned over eBGP
; sessions with this router's coordinates (paper §2, Fig. 2).
;
; Uses peer_info to find the session type, get_arg to retrieve the raw
; UPDATE in network byte order, and add_attr to attach the new attribute.
.equ GEOLOC_ATTR, 66

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        jne r6, EBGP_SESSION, out   ; stamp only at eBGP ingress
        ; Retrieve the raw UPDATE body into ephemeral memory (the paper's
        ; bytecode reads the message; a sanity check that an UPDATE is in
        ; scope).
        mov r1, 4096
        call ctx_malloc
        jeq r0, 0, out
        mov r6, r0
        mov r1, 0
        mov r2, r6
        mov r3, 4096
        call get_arg
        jeq r0, -1, out
        ; Own coordinates from the router configuration, key "geo":
        ; 8 bytes, lat/lon as signed milli-degrees in network byte order.
        stb [r10-8], 103            ; 'g'
        stb [r10-7], 101            ; 'e'
        stb [r10-6], 111            ; 'o'
        mov r1, r10
        sub r1, 8
        mov r2, 3
        mov r3, r10
        sub r3, 16
        mov r4, 8
        call get_xtra
        jeq r0, -1, out
        ; Attach GeoLoc (optional transitive). add_attr fails harmlessly if
        ; the attribute is already present (route re-stamped upstream).
        mov r1, GEOLOC_ATTR
        mov r2, ATTR_FLAGS_OPT_TRANS
        mov r3, r10
        sub r3, 16
        mov r4, 8
        call add_attr
out:
        mov r0, 0
        exit
