; GeoLoc bytecode ③ (BGP_OUTBOUND_FILTER): per the paper, this bytecode
; "also retrieves the neighbor information and the attribute" — export is
; never blocked by GeoLoc, the bytecode observes and delegates. Whether
; the attribute leaves the router is decided by bytecode ④ at the
; encode-message point (it is written over iBGP sessions only).
.equ GEOLOC_ATTR, 66

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        mov r1, GEOLOC_ATTR
        mov r2, r10
        sub r2, 8
        mov r3, 8
        call get_attr
        call next
        exit
