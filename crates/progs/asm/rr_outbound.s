; Route reflection (§3.2) — outbound half: the RFC 4456 reflection rules
; as extension code, attached to BGP_OUTBOUND_FILTER.
;
; Argument 0 is the peer-info blob of the *source* the route was learned
; from. Reflect iBGP-learned routes when the source or the destination is
; a configured client; everything else falls back to native policy
; (which, with native reflection disabled, refuses iBGP → iBGP).

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        jne r6, IBGP_SESSION, pass  ; eBGP destinations: native policy
        ldxw r9, [r0+PEER_INFO_OFF_FLAGS]
        ; Source peer info → [r10-24].
        mov r1, 0
        mov r2, r10
        sub r2, 24
        mov r3, 24
        call get_arg
        jeq r0, -1, pass
        ldxw r7, [r10-16]           ; source peer_type (offset 8)
        jne r7, IBGP_SESSION, pass  ; learned over eBGP: native policy
        ldxw r8, [r10-4]            ; source flags (offset 20)
        mov r1, r8
        and r1, PEER_FLAG_LOCAL
        jne r1, 0, pass             ; locally originated: native policy
        and r8, PEER_FLAG_RR_CLIENT
        jne r8, 0, accept           ; learned from a client → reflect to all
        mov r1, r9
        and r1, PEER_FLAG_RR_CLIENT
        jne r1, 0, accept           ; destination is a client → reflect
        mov r0, FILTER_REJECT       ; non-client → non-client: refuse
        exit
accept:
        mov r0, FILTER_ACCEPT
        exit
pass:
        call next
        exit
