; GeoLoc bytecode ② (BGP_INBOUND_FILTER): reject routes whose recorded
; learning location is farther than the configured radius (paper §2:
; "filtering away routes that are more than x kilometers away").
;
; Coordinates are signed milli-degrees; the comparison uses the squared
; Euclidean distance in coordinate space against the configured
; "geo_max_dist2" threshold (u64, network byte order) — monotone in
; distance, no square root needed in extension code.
.equ GEOLOC_ATTR, 66

        ; Route's GeoLoc attribute → [r10-8] (lat BE u32, lon BE u32).
        mov r1, GEOLOC_ATTR
        mov r2, r10
        sub r2, 8
        mov r3, 8
        call get_attr
        jeq r0, -1, pass            ; no GeoLoc: nothing to check
        ; Own coordinates, key "geo" → [r10-24].
        stb [r10-32], 103           ; 'g'
        stb [r10-31], 101           ; 'e'
        stb [r10-30], 111           ; 'o'
        mov r1, r10
        sub r1, 32
        mov r2, 3
        mov r3, r10
        sub r3, 24
        mov r4, 8
        call get_xtra
        jeq r0, -1, pass
        ; dlat = route.lat - my.lat (sign-extended 32-bit values)
        ldxw r6, [r10-8]
        be32 r6
        lsh r6, 32
        arsh r6, 32
        ldxw r7, [r10-24]
        be32 r7
        lsh r7, 32
        arsh r7, 32
        sub r6, r7
        ; dlon = route.lon - my.lon
        ldxw r7, [r10-4]
        be32 r7
        lsh r7, 32
        arsh r7, 32
        ldxw r8, [r10-20]
        be32 r8
        lsh r8, 32
        arsh r8, 32
        sub r7, r8
        ; squared distance
        mul r6, r6
        mul r7, r7
        add r6, r7
        ; threshold, key "geo_max_dist2" → [r10-56] (u64 BE).
        stb [r10-48], 103           ; 'g'
        stb [r10-47], 101           ; 'e'
        stb [r10-46], 111           ; 'o'
        stb [r10-45], 95            ; '_'
        stb [r10-44], 109           ; 'm'
        stb [r10-43], 97            ; 'a'
        stb [r10-42], 120           ; 'x'
        stb [r10-41], 95            ; '_'
        stb [r10-40], 100           ; 'd'
        stb [r10-39], 105           ; 'i'
        stb [r10-38], 115           ; 's'
        stb [r10-37], 116           ; 't'
        stb [r10-36], 50            ; '2'
        mov r1, r10
        sub r1, 48
        mov r2, 13
        mov r3, r10
        sub r3, 56
        mov r4, 8
        call get_xtra
        jeq r0, -1, pass
        ldxdw r9, [r10-56]
        be64 r9
        jgt r6, r9, reject          ; too far away
pass:
        call next
        exit
reject:
        mov r0, FILTER_REJECT
        exit
