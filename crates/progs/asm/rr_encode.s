; Route reflection (§3.2) — encode half: write ORIGINATOR_ID and
; CLUSTER_LIST on reflected routes (BGP_ENCODE_MESSAGE). With native
; reflection disabled the host never emits these attributes; this bytecode
; provides "the support for the ORIGINATOR_ID and CLUSTER_LIST BGP
; attributes entirely as an extension code".

        call get_peer_info
        ldxw r6, [r0+PEER_INFO_OFF_TYPE]
        jne r6, IBGP_SESSION, out   ; only iBGP messages carry these
        ldxw r9, [r0+PEER_INFO_OFF_LOCAL_ROUTER_ID]
        ; Source info → [r10-24]; only iBGP-learned, non-local routes are
        ; reflections.
        mov r1, 0
        mov r2, r10
        sub r2, 24
        mov r3, 24
        call get_arg
        jeq r0, -1, out
        ldxw r7, [r10-16]
        jne r7, IBGP_SESSION, out
        ldxw r8, [r10-4]
        and r8, PEER_FLAG_LOCAL
        jne r8, 0, out
        ; ORIGINATOR_ID payload → [r10-32]: keep an existing value, else
        ; stamp the source's router id.
        mov r1, ATTR_ORIGINATOR_ID
        mov r2, r10
        sub r2, 32
        mov r3, 4
        call get_attr
        jne r0, -1, orig_ready
        ldxw r1, [r10-24]           ; source router id (host order)
        call bpf_htonl
        stxw [r10-32], r0
orig_ready:
        ; TLV [0x80, 9, 4, payload] at [r10-39].
        stb [r10-39], ATTR_FLAGS_OPT_NON_TRANS
        stb [r10-38], ATTR_ORIGINATOR_ID
        stb [r10-37], 4
        ldxw r1, [r10-32]
        stxw [r10-36], r1
        mov r1, r10
        sub r1, 39
        mov r2, 7
        call write_buf
        ; CLUSTER_LIST TLV: my cluster id prepended to the existing list.
        mov r1, 512
        call ctx_malloc
        jeq r0, 0, out
        mov r6, r0
        mov r1, ATTR_CLUSTER_LIST
        mov r2, r6
        add r2, 7                   ; old payload lands after the header+id
        mov r3, 255
        call get_attr
        jne r0, -1, have_list
        mov r0, 0                   ; no existing list
have_list:
        mov r7, r0
        add r7, 4                   ; new payload length
        jgt r7, 255, out            ; would need extended length: give up
        stb [r6+0], ATTR_FLAGS_OPT_NON_TRANS
        stb [r6+1], ATTR_CLUSTER_LIST
        stxb [r6+2], r7
        mov r1, r9
        call bpf_htonl
        stxw [r6+3], r0
        mov r1, r6
        mov r2, r7
        add r2, 3
        call write_buf
out:
        mov r0, 0
        exit
