//! xbgp-as — command-line eBPF assembler/disassembler for xBGP programs.
//!
//! ```console
//! $ xbgp-as program.s           # assemble → hex bytecode on stdout
//! $ xbgp-as -d bytecode.hex     # disassemble hex → assembly on stdout
//! ```
//!
//! Assembly resolves the xBGP ABI symbols (helper names, struct offsets,
//! `FILTER_REJECT`, …), so the input is exactly what `crates/progs/asm`
//! contains; the hex output is what a `Manifest` JSON carries in its
//! `bytecode` field.

use std::process::ExitCode;
use xbgp_asm::{assemble_with_symbols, disassemble};
use xbgp_core::api::abi_symbols;
use xbgp_vm::Program;

fn to_hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex input".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (disasm, path) = match args.as_slice() {
        [p] => (false, p.clone()),
        [flag, p] if flag == "-d" => (true, p.clone()),
        _ => {
            xbgp_obs::error!("usage: xbgp-as [-d] <file>");
            return ExitCode::from(2);
        }
    };
    let input = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            xbgp_obs::error!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if disasm {
        let bytes = match from_hex(&input) {
            Ok(b) => b,
            Err(e) => {
                xbgp_obs::error!("bad hex: {e}");
                return ExitCode::from(1);
            }
        };
        match Program::from_bytes(&bytes) {
            Ok(prog) => {
                print!("{}", disassemble(&prog));
                ExitCode::SUCCESS
            }
            Err(e) => {
                xbgp_obs::error!("bad bytecode: {e}");
                ExitCode::from(1)
            }
        }
    } else {
        match assemble_with_symbols(&input, &abi_symbols()) {
            Ok(prog) => {
                println!("{}", to_hex(&prog.to_bytes()));
                ExitCode::SUCCESS
            }
            Err(e) => {
                xbgp_obs::error!("{path}: {e}");
                ExitCode::from(1)
            }
        }
    }
}
