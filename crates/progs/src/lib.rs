//! # xbgp-progs — the paper's extension programs
//!
//! The five xBGP use cases, written in eBPF assembly (see DESIGN.md §1 on
//! the C→asm substitution) and packaged as manifest builders. Every
//! program here is **implementation-agnostic**: the same bytecode loads
//! into `bgp-fir` and `bgp-wren`, which is the paper's central claim.
//!
//! | module | paper section | insertion points |
//! |---|---|---|
//! | [`geoloc`] | §2 running example | ①②④⑤ (receive, inbound, outbound, encode) |
//! | [`igp_filter`] | §3.1 Listing 1 | ④ outbound |
//! | [`route_reflect`] | §3.2 | ②④⑤ |
//! | [`valley_free`] | §3.3 | ② |
//! | [`origin_validation`] | §3.4 | ② |

use xbgp_asm::assemble_with_symbols;
use xbgp_core::api::{abi_symbols, InsertionPoint};
use xbgp_core::{ExtensionSpec, Manifest};
use xbgp_vm::Program;

/// The GeoLoc attribute type code (unassigned space, as in the unadopted
/// draft the paper cites).
pub const GEOLOC_ATTR: u8 = 66;

/// Assemble one of the bundled sources against the xBGP ABI symbols.
/// Panics on assembly errors — the sources are part of this crate, so a
/// failure is a build bug, not an input condition.
pub fn assemble(src: &str) -> Program {
    assemble_with_symbols(src, &abi_symbols()).expect("bundled program assembles")
}

/// §3.1 — the IGP-cost export filter (Listing 1).
pub mod igp_filter {
    use super::*;

    /// The assembly source (Listing 1's logic).
    pub const SOURCE: &str = include_str!("../asm/export_igp.s");

    /// The filter as a loadable extension.
    pub fn extension() -> ExtensionSpec {
        ExtensionSpec::from_program(
            "export_igp",
            "igp_filter",
            InsertionPoint::BgpOutboundFilter,
            &["get_peer_info", "get_nexthop", "next"],
            &assemble(SOURCE),
        )
    }

    /// A manifest containing only this filter.
    pub fn manifest() -> Manifest {
        let mut m = Manifest::new();
        m.push(extension());
        m
    }
}

/// §2 — the GeoLoc attribute: four bytecodes, one program group.
pub mod geoloc {
    use super::*;

    pub const SRC_RECV: &str = include_str!("../asm/geoloc_recv.s");
    pub const SRC_INBOUND: &str = include_str!("../asm/geoloc_inbound.s");
    pub const SRC_OUTBOUND: &str = include_str!("../asm/geoloc_out.s");
    pub const SRC_ENCODE: &str = include_str!("../asm/geoloc_encode.s");

    /// Encode router coordinates for the `"geo"` configuration key:
    /// latitude and longitude in signed milli-degrees, network byte order.
    pub fn coords_bytes(lat_mdeg: i32, lon_mdeg: i32) -> Vec<u8> {
        let mut v = Vec::with_capacity(8);
        v.extend_from_slice(&lat_mdeg.to_be_bytes());
        v.extend_from_slice(&lon_mdeg.to_be_bytes());
        v
    }

    /// Encode the squared-distance threshold for `"geo_max_dist2"`.
    pub fn max_dist2_bytes(max_dist2: u64) -> Vec<u8> {
        max_dist2.to_be_bytes().to_vec()
    }

    /// The four bytecodes as one manifest. Per-router data (own
    /// coordinates under `"geo"`, threshold under `"geo_max_dist2"`) comes
    /// from the router configuration (`HostApi::get_xtra`), which shadows
    /// manifest data; a fleet-wide threshold can be set here instead via
    /// `max_dist2`.
    pub fn manifest(max_dist2: Option<u64>) -> Manifest {
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "geoloc_recv",
            "geoloc",
            InsertionPoint::BgpReceiveMessage,
            &["get_peer_info", "ctx_malloc", "get_arg", "get_xtra", "add_attr"],
            &assemble(SRC_RECV),
        ));
        m.push(ExtensionSpec::from_program(
            "geoloc_inbound",
            "geoloc",
            InsertionPoint::BgpInboundFilter,
            &["get_attr", "get_xtra", "next"],
            &assemble(SRC_INBOUND),
        ));
        m.push(ExtensionSpec::from_program(
            "geoloc_outbound",
            "geoloc",
            InsertionPoint::BgpOutboundFilter,
            &["get_peer_info", "get_attr", "next"],
            &assemble(SRC_OUTBOUND),
        ));
        m.push(ExtensionSpec::from_program(
            "geoloc_encode",
            "geoloc",
            InsertionPoint::BgpEncodeMessage,
            &["get_peer_info", "get_attr", "write_buf"],
            &assemble(SRC_ENCODE),
        ));
        if let Some(d) = max_dist2 {
            m.set_xtra("geo_max_dist2", max_dist2_bytes(d));
        }
        m
    }
}

/// §3.2 — route reflection entirely as extension code.
pub mod route_reflect {
    use super::*;

    pub const SRC_INBOUND: &str = include_str!("../asm/rr_inbound.s");
    pub const SRC_OUTBOUND: &str = include_str!("../asm/rr_outbound.s");
    pub const SRC_ENCODE: &str = include_str!("../asm/rr_encode.s");

    /// The three bytecodes (loop prevention, reflection policy, attribute
    /// emission) as one program group. Load on a router whose *native*
    /// reflection is disabled; client-ness comes from the host's peer
    /// configuration through the peer-info flags.
    pub fn manifest() -> Manifest {
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "rr_inbound",
            "route_reflect",
            InsertionPoint::BgpInboundFilter,
            &["get_peer_info", "get_attr", "ctx_malloc", "next"],
            &assemble(SRC_INBOUND),
        ));
        m.push(ExtensionSpec::from_program(
            "rr_outbound",
            "route_reflect",
            InsertionPoint::BgpOutboundFilter,
            &["get_peer_info", "get_arg", "next"],
            &assemble(SRC_OUTBOUND),
        ));
        m.push(ExtensionSpec::from_program(
            "rr_encode",
            "route_reflect",
            InsertionPoint::BgpEncodeMessage,
            &["get_peer_info", "get_arg", "get_attr", "bpf_htonl", "write_buf", "ctx_malloc"],
            &assemble(SRC_ENCODE),
        ));
        m
    }
}

/// §3.3 — valley-free routing for BGP-in-the-datacenter.
pub mod valley_free {
    use super::*;
    use xbgp_wire::Ipv4Prefix;

    pub const SOURCE: &str = include_str!("../asm/valley_free.s");

    /// Encode the fabric adjacency manifest: `(below, above)` ASN pairs.
    pub fn pairs_bytes(pairs: &[(u32, u32)]) -> Vec<u8> {
        let mut v = Vec::with_capacity(pairs.len() * 8);
        for (below, above) in pairs {
            v.extend_from_slice(&below.to_be_bytes());
            v.extend_from_slice(&above.to_be_bytes());
        }
        v
    }

    /// Encode the datacenter's covering prefix for the internal-destination
    /// escape hatch.
    pub fn dc_prefix_bytes(prefix: Ipv4Prefix) -> Vec<u8> {
        let mut v = Vec::with_capacity(8);
        v.extend_from_slice(&prefix.addr().to_be_bytes());
        v.extend_from_slice(&u32::from(prefix.len()).to_be_bytes());
        v
    }

    /// Build the manifest: the filter plus its static tables.
    pub fn manifest(pairs: &[(u32, u32)], dc_prefix: Ipv4Prefix) -> Manifest {
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "valley_free",
            "valley_free",
            InsertionPoint::BgpInboundFilter,
            &["get_peer_info", "ctx_malloc", "get_xtra", "get_prefix", "get_attr", "next"],
            &assemble(SOURCE),
        ));
        m.set_xtra("vf_pairs", pairs_bytes(pairs));
        m.set_xtra("dc_prefix", dc_prefix_bytes(dc_prefix));
        m
    }
}

/// §3.4 — origin validation via the xBGP hash-backed helper.
pub mod origin_validation {
    use super::*;

    pub const SOURCE: &str = include_str!("../asm/rov_check.s");

    /// Program-group name (for reading the persistent counters).
    pub const GROUP: &str = "origin_validation";
    /// Shared-memory key of the counters block.
    pub const COUNTERS_KEY: u64 = 1;

    pub fn extension() -> ExtensionSpec {
        ExtensionSpec::from_program(
            "rov_check",
            GROUP,
            InsertionPoint::BgpInboundFilter,
            &[
                "get_prefix",
                "ctx_malloc",
                "get_attr",
                "rpki_check_origin",
                "ctx_shared_get",
                "ctx_shared_malloc",
                "next",
            ],
            &assemble(SOURCE),
        )
    }

    pub fn manifest() -> Manifest {
        let mut m = Manifest::new();
        m.push(extension());
        m
    }

    /// Decode the persistent counter block: `(valid, invalid, not_found)`.
    pub fn decode_counters(raw: &[u8]) -> (u64, u64, u64) {
        let le =
            |o: usize| u64::from_le_bytes(raw[o..o + 8].try_into().expect("24-byte counter block"));
        (le(0), le(8), le(16))
    }
}

/// Fault-injection probe — not one of the paper's use cases. Exercises
/// the transactional execution contract (DESIGN.md §4d): every `period`-th
/// invocation stages two attribute writes and traps mid-run, so a correct
/// VMM leaves the Loc-RIB byte-identical to a native run; all other
/// invocations delegate with `next()`. Used by the harness's
/// `--fault-rate` option and the fault-injection integration tests.
pub mod fault_inject {
    use super::*;

    /// Assembly template; `PERIOD` and `FAULT_ATTR` are prepended by
    /// [`source`].
    pub const TEMPLATE: &str = include_str!("../asm/fault_inject.s");

    /// Scratch attribute code the probe stages (never committed).
    pub const FAULT_ATTR: u8 = 77;

    /// The probe's source with a concrete fault period (clamped to ≥ 1;
    /// period 1 faults on every invocation).
    pub fn source(period: u64) -> String {
        format!(".equ PERIOD, {}\n.equ FAULT_ATTR, {}\n{}", period.max(1), FAULT_ATTR, TEMPLATE)
    }

    pub fn extension(period: u64) -> ExtensionSpec {
        ExtensionSpec::from_program(
            "fault_inject",
            "fault_inject",
            InsertionPoint::BgpInboundFilter,
            &["ctx_shared_get", "ctx_shared_malloc", "set_attr", "next"],
            &assemble(&source(period)),
        )
    }

    pub fn manifest(period: u64) -> Manifest {
        let mut m = Manifest::new();
        m.push(extension(period));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_core::api::{
        NextHopInfo, PeerInfo, PeerType, FILTER_REJECT, PEER_FLAG_LOCAL, PEER_FLAG_RR_CLIENT,
        ROV_INVALID, ROV_VALID,
    };
    use xbgp_core::host::MockHost;
    use xbgp_core::{Vmm, VmmOutcome};
    use xbgp_wire::attr::AttrFlags;
    use xbgp_wire::AsPath;

    fn host() -> MockHost {
        MockHost::default()
    }

    fn peer(t: PeerType) -> PeerInfo {
        PeerInfo {
            router_id: 0x0a00_0009,
            asn: if t == PeerType::Ebgp { 65009 } else { 65000 },
            peer_type: t,
            local_router_id: 0x0a00_0001,
            local_asn: 65000,
            flags: 0,
        }
    }

    fn as_path_raw(asns: &[u32]) -> Vec<u8> {
        let mut body = Vec::new();
        AsPath::sequence(asns.to_vec()).encode_body(&mut body, 4);
        body
    }

    /// Marshal a source peer-info arg blob the way the daemons do.
    fn source_blob(router_id: u32, t: PeerType, flags: u32) -> Vec<u8> {
        PeerInfo {
            router_id,
            asn: 65000,
            peer_type: t,
            local_router_id: 0x0a00_0001,
            local_asn: 65000,
            flags,
        }
        .to_bytes()
        .to_vec()
    }

    #[test]
    fn every_bundled_program_assembles_and_loads() {
        // Loading a manifest verifies each program against its declared
        // helpers; this is the "same bytecode, verified" path.
        for m in [
            igp_filter::manifest(),
            geoloc::manifest(Some(100)),
            route_reflect::manifest(),
            valley_free::manifest(&[(1, 2)], "10.0.0.0/8".parse().unwrap()),
            origin_validation::manifest(),
        ] {
            Vmm::from_manifest(&m).expect("manifest loads and verifies");
        }
    }

    // ----- §3.1 Listing 1 -----

    #[test]
    fn igp_filter_rejects_costly_ebgp_routes_only() {
        let mut vmm = Vmm::from_manifest(&igp_filter::manifest()).unwrap();
        let point = xbgp_core::InsertionPoint::BgpOutboundFilter;

        let mut h = host();
        h.peer = peer(PeerType::Ebgp);
        h.nexthop = Some(NextHopInfo { addr: 1, igp_metric: 1001, reachable: true });
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));

        h.nexthop = Some(NextHopInfo { addr: 1, igp_metric: 1000, reachable: true });
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback, "metric at bound: accepted");

        h.peer = peer(PeerType::Ibgp);
        h.nexthop = Some(NextHopInfo { addr: 1, igp_metric: 999_999, reachable: true });
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback, "iBGP is never filtered");

        // No nexthop information: conservative reject.
        h.peer = peer(PeerType::Ebgp);
        h.nexthop = None;
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));
    }

    // ----- §2 GeoLoc -----

    #[test]
    fn geoloc_recv_stamps_ebgp_routes_with_config_coords() {
        let mut vmm = Vmm::from_manifest(&geoloc::manifest(None)).unwrap();
        let point = xbgp_core::InsertionPoint::BgpReceiveMessage;
        let mut h = host();
        h.peer = peer(PeerType::Ebgp);
        h.args = vec![vec![0u8; 23]]; // raw update body placeholder
        h.xtra.push(("geo".into(), geoloc::coords_bytes(50_846, 4_352))); // Brussels-ish
        vmm.run(point, &mut h);
        let (flags, payload) = h
            .attrs
            .iter()
            .find(|(c, _, _)| *c == GEOLOC_ATTR)
            .map(|(_, f, v)| (*f, v.clone()))
            .expect("GeoLoc attached");
        assert_eq!(flags, AttrFlags::OPT_TRANS.0);
        assert_eq!(payload, geoloc::coords_bytes(50_846, 4_352));

        // iBGP: not stamped.
        let mut h2 = host();
        h2.peer = peer(PeerType::Ibgp);
        h2.args = vec![vec![0u8; 23]];
        h2.xtra.push(("geo".into(), geoloc::coords_bytes(1, 1)));
        vmm.run(point, &mut h2);
        assert!(h2.attrs.is_empty());

        // Already stamped: left alone (add_attr refuses).
        let mut h3 = host();
        h3.peer = peer(PeerType::Ebgp);
        h3.args = vec![vec![0u8; 23]];
        h3.xtra.push(("geo".into(), geoloc::coords_bytes(9, 9)));
        h3.attrs.push((GEOLOC_ATTR, AttrFlags::OPT_TRANS.0, geoloc::coords_bytes(1, 2)));
        vmm.run(point, &mut h3);
        assert_eq!(h3.attrs.len(), 1);
        assert_eq!(h3.attrs[0].2, geoloc::coords_bytes(1, 2));
    }

    #[test]
    fn geoloc_inbound_rejects_far_routes() {
        let mut vmm = Vmm::from_manifest(&geoloc::manifest(None)).unwrap();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;

        let mut h = host();
        h.xtra.push(("geo".into(), geoloc::coords_bytes(0, 0)));
        h.xtra.push(("geo_max_dist2".into(), geoloc::max_dist2_bytes(100 * 100)));

        // Route learned 60 units away on each axis: 7200 > 10000? No → ok.
        h.attrs
            .push((GEOLOC_ATTR, AttrFlags::OPT_TRANS.0, geoloc::coords_bytes(60, 60)));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);

        // 80 units away on each axis: 12800 > 10000 → reject.
        h.attrs[0].2 = geoloc::coords_bytes(80, 80);
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));

        // Negative coordinates work (signed arithmetic).
        h.attrs[0].2 = geoloc::coords_bytes(-80, -80);
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));
        h.attrs[0].2 = geoloc::coords_bytes(-60, 60);
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);

        // No GeoLoc attribute: passes through.
        h.attrs.clear();
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
    }

    #[test]
    fn geoloc_encode_writes_tlv_on_ibgp_only() {
        let mut vmm = Vmm::from_manifest(&geoloc::manifest(None)).unwrap();
        let point = xbgp_core::InsertionPoint::BgpEncodeMessage;

        let mut h = host();
        h.peer = peer(PeerType::Ibgp);
        h.attrs.push((GEOLOC_ATTR, AttrFlags::OPT_TRANS.0, geoloc::coords_bytes(7, 9)));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(0));
        let mut expected = vec![AttrFlags::OPT_TRANS.0, GEOLOC_ATTR, 8];
        expected.extend_from_slice(&geoloc::coords_bytes(7, 9));
        assert_eq!(h.out_buf, expected);

        let mut h2 = host();
        h2.peer = peer(PeerType::Ebgp);
        h2.attrs.push((GEOLOC_ATTR, AttrFlags::OPT_TRANS.0, geoloc::coords_bytes(7, 9)));
        vmm.run(point, &mut h2);
        assert!(h2.out_buf.is_empty(), "GeoLoc not written over eBGP");
    }

    // ----- §3.2 route reflection -----

    #[test]
    fn rr_inbound_rejects_reflection_loops() {
        let mut vmm = Vmm::from_manifest(&route_reflect::manifest()).unwrap();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;

        // ORIGINATOR_ID equals the local router id.
        let mut h = host();
        h.peer = peer(PeerType::Ibgp);
        h.attrs.push((9, 0x80, 0x0a00_0001u32.to_be_bytes().to_vec()));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));

        // Foreign originator: fine.
        h.attrs[0].2 = 0x0a00_0099u32.to_be_bytes().to_vec();
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);

        // CLUSTER_LIST containing the local cluster id (third entry).
        let mut cl = Vec::new();
        for id in [5u32, 6, 0x0a00_0001] {
            cl.extend_from_slice(&id.to_be_bytes());
        }
        h.attrs.push((10, 0x80, cl));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));

        // eBGP sessions: no reflection checks at all.
        let mut h2 = host();
        h2.peer = peer(PeerType::Ebgp);
        h2.attrs.push((9, 0x80, 0x0a00_0001u32.to_be_bytes().to_vec()));
        assert_eq!(vmm.run(point, &mut h2), VmmOutcome::Fallback);
    }

    #[test]
    fn rr_outbound_reflection_matrix() {
        let mut vmm = Vmm::from_manifest(&route_reflect::manifest()).unwrap();
        let point = xbgp_core::InsertionPoint::BgpOutboundFilter;
        let run = |vmm: &mut Vmm, dest_flags: u32, src_flags: u32, src_type: PeerType| {
            let mut h = host();
            h.peer = PeerInfo { flags: dest_flags, ..peer(PeerType::Ibgp) };
            h.args = vec![source_blob(0x0a00_0005, src_type, src_flags)];
            vmm.run(point, &mut h)
        };

        // client → anyone: reflect.
        assert_eq!(
            run(&mut vmm, 0, PEER_FLAG_RR_CLIENT, PeerType::Ibgp),
            VmmOutcome::Value(xbgp_core::api::FILTER_ACCEPT)
        );
        // non-client → client: reflect.
        assert_eq!(
            run(&mut vmm, PEER_FLAG_RR_CLIENT, 0, PeerType::Ibgp),
            VmmOutcome::Value(xbgp_core::api::FILTER_ACCEPT)
        );
        // non-client → non-client: refuse.
        assert_eq!(run(&mut vmm, 0, 0, PeerType::Ibgp), VmmOutcome::Value(FILTER_REJECT));
        // eBGP-learned: native policy decides.
        assert_eq!(run(&mut vmm, 0, 0, PeerType::Ebgp), VmmOutcome::Fallback);
        // Locally originated: native policy decides.
        assert_eq!(run(&mut vmm, 0, PEER_FLAG_LOCAL, PeerType::Ibgp), VmmOutcome::Fallback);
    }

    #[test]
    fn rr_encode_emits_originator_and_cluster_list() {
        let mut vmm = Vmm::from_manifest(&route_reflect::manifest()).unwrap();
        let point = xbgp_core::InsertionPoint::BgpEncodeMessage;

        let mut h = host();
        h.peer = peer(PeerType::Ibgp); // local router id 0x0a000001
        h.args = vec![source_blob(0x0a00_0005, PeerType::Ibgp, 0)];
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(0));
        // ORIGINATOR_ID TLV: source router id; CLUSTER_LIST TLV: [local id].
        let mut expected = vec![0x80, 9, 4];
        expected.extend_from_slice(&0x0a00_0005u32.to_be_bytes());
        expected.extend_from_slice(&[0x80, 10, 4]);
        expected.extend_from_slice(&0x0a00_0001u32.to_be_bytes());
        assert_eq!(h.out_buf, expected);

        // Existing ORIGINATOR_ID and CLUSTER_LIST are preserved/extended.
        let mut h2 = host();
        h2.peer = peer(PeerType::Ibgp);
        h2.args = vec![source_blob(0x0a00_0005, PeerType::Ibgp, 0)];
        h2.attrs.push((9, 0x80, 0x0a00_0042u32.to_be_bytes().to_vec()));
        h2.attrs.push((10, 0x80, 0x0a00_0077u32.to_be_bytes().to_vec()));
        vmm.run(point, &mut h2);
        let mut expected = vec![0x80, 9, 4];
        expected.extend_from_slice(&0x0a00_0042u32.to_be_bytes());
        expected.extend_from_slice(&[0x80, 10, 8]);
        expected.extend_from_slice(&0x0a00_0001u32.to_be_bytes()); // prepended
        expected.extend_from_slice(&0x0a00_0077u32.to_be_bytes()); // old list
        assert_eq!(h2.out_buf, expected);

        // eBGP destination or eBGP-learned: nothing written.
        let mut h3 = host();
        h3.peer = peer(PeerType::Ebgp);
        h3.args = vec![source_blob(5, PeerType::Ibgp, 0)];
        vmm.run(point, &mut h3);
        assert!(h3.out_buf.is_empty());
        let mut h4 = host();
        h4.peer = peer(PeerType::Ibgp);
        h4.args = vec![source_blob(5, PeerType::Ebgp, 0)];
        vmm.run(point, &mut h4);
        assert!(h4.out_buf.is_empty());
    }

    // ----- §3.3 valley-free -----

    fn vf_vmm() -> Vmm {
        // Fabric: leaf 101,102 below spines 201,202; tor 1..4 below leaves.
        let pairs = vec![
            (101, 201),
            (101, 202),
            (102, 201),
            (102, 202),
            (1, 101),
            (2, 101),
            (3, 102),
            (4, 102),
        ];
        Vmm::from_manifest(&valley_free::manifest(&pairs, "10.0.0.0/8".parse().unwrap())).unwrap()
    }

    fn vf_peer(sender_asn: u32, my_asn: u32) -> PeerInfo {
        PeerInfo {
            router_id: 1,
            asn: sender_asn,
            peer_type: PeerType::Ebgp,
            local_router_id: 2,
            local_asn: my_asn,
            flags: 0,
        }
    }

    #[test]
    fn valley_free_rejects_up_after_down() {
        let mut vmm = vf_vmm();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;

        // Spine 202 receives from leaf 102 a path that already went down
        // through (101 learned from 201): a valley.
        let mut h = host();
        h.peer = vf_peer(102, 202);
        h.prefix = Some("192.0.2.0/24".parse().unwrap()); // external prefix
        h.attrs.push((2, 0x40, as_path_raw(&[101, 201, 999])));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));
    }

    #[test]
    fn valley_free_allows_clean_up_moves_and_down_moves() {
        let mut vmm = vf_vmm();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;

        // Clean upward path: tor 1 → leaf 101 → spine (no down move yet).
        let mut h = host();
        h.peer = vf_peer(101, 201);
        h.prefix = Some("192.0.2.0/24".parse().unwrap());
        h.attrs.push((2, 0x40, as_path_raw(&[1, 999])));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);

        // Down move (receiving from above): never filtered.
        let mut h2 = host();
        h2.peer = vf_peer(201, 101); // sender 201 is ABOVE me (101)
        h2.prefix = Some("192.0.2.0/24".parse().unwrap());
        h2.attrs.push((2, 0x40, as_path_raw(&[202, 102, 201, 999])));
        assert_eq!(vmm.run(point, &mut h2), VmmOutcome::Fallback);
    }

    #[test]
    fn valley_free_allows_internal_destinations() {
        // The paper's Fig. 5 double-failure scenario: the valley path must
        // survive for prefixes inside the datacenter.
        let mut vmm = vf_vmm();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;
        let mut h = host();
        h.peer = vf_peer(102, 201);
        h.prefix = Some("10.3.0.0/24".parse().unwrap()); // inside 10/8
        h.attrs.push((2, 0x40, as_path_raw(&[102, 202, 4]))); // went down at 102←202? pair (102,202) is down
        assert_eq!(
            vmm.run(point, &mut h),
            VmmOutcome::Fallback,
            "valley allowed toward internal destination"
        );
        // Same path toward an external prefix: rejected.
        h.prefix = Some("192.0.2.0/24".parse().unwrap());
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Value(FILTER_REJECT));
    }

    // ----- §3.4 origin validation -----

    #[test]
    fn rov_check_counts_but_never_discards() {
        let mut vmm = Vmm::from_manifest(&origin_validation::manifest()).unwrap();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;

        let mut h = host();
        h.prefix = Some("10.0.0.0/8".parse().unwrap());
        h.attrs.push((2, 0x40, as_path_raw(&[65001, 65002])));

        h.rov_answer = ROV_VALID;
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback, "valid: pass");
        h.rov_answer = ROV_INVALID;
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback, "invalid: STILL pass");
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);

        let raw = vmm
            .shared_read(origin_validation::GROUP, origin_validation::COUNTERS_KEY)
            .expect("counters allocated");
        assert_eq!(origin_validation::decode_counters(&raw), (1, 2, 0));
    }

    #[test]
    fn rov_check_handles_missing_data_gracefully() {
        let mut vmm = Vmm::from_manifest(&origin_validation::manifest()).unwrap();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;

        // No prefix in scope.
        let mut h = host();
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
        // Prefix but no AS_PATH attribute.
        h.prefix = Some("10.0.0.0/8".parse().unwrap());
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
        // Empty AS_PATH (iBGP-originated).
        h.attrs.push((2, 0x40, Vec::new()));
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
        // No counters were allocated for any of these.
        assert!(vmm
            .shared_read(origin_validation::GROUP, origin_validation::COUNTERS_KEY)
            .is_none());
    }

    #[test]
    fn fault_inject_traps_every_nth_run_and_rolls_back() {
        let mut vmm = Vmm::from_manifest(&fault_inject::manifest(3)).unwrap();
        let point = xbgp_core::InsertionPoint::BgpInboundFilter;
        let mut h = host();
        h.attrs.push((5, 0x40, 100u32.to_be_bytes().to_vec()));
        let native = h.attrs.clone();

        // Runs 1 and 2 delegate cleanly; run 3 stages two writes and traps.
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
        assert!(vmm.last_error().is_none());
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
        assert!(vmm.last_error().is_none());
        assert_eq!(vmm.run(point, &mut h), VmmOutcome::Fallback);
        assert!(vmm.last_error().is_some(), "third run trapped");
        assert_eq!(h.attrs, native, "staged writes rolled back");
        assert!(!h.attrs.iter().any(|(c, _, _)| *c == fault_inject::FAULT_ATTR));

        // The period resets the streak, so the probe never self-quarantines.
        for _ in 0..12 {
            vmm.run(point, &mut h);
        }
        assert!(!vmm.stats()[0].quarantined);
        assert_eq!(h.attrs, native);
    }
}

#[cfg(test)]
mod disasm_round_trip {
    use super::*;
    use xbgp_asm::disassemble;

    /// Every bundled program disassembles to text that reassembles to the
    /// identical bytecode — the `xbgp-as -d` / `xbgp-as` loop is lossless.
    #[test]
    fn all_bundled_programs_survive_disassembly() {
        let sources = [
            igp_filter::SOURCE,
            geoloc::SRC_RECV,
            geoloc::SRC_INBOUND,
            geoloc::SRC_OUTBOUND,
            geoloc::SRC_ENCODE,
            route_reflect::SRC_INBOUND,
            route_reflect::SRC_OUTBOUND,
            route_reflect::SRC_ENCODE,
            valley_free::SOURCE,
            origin_validation::SOURCE,
        ];
        for (i, src) in sources.iter().enumerate() {
            let prog = assemble(src);
            let text = disassemble(&prog);
            let back = xbgp_asm::assemble(&text)
                .unwrap_or_else(|e| panic!("program {i} disassembly reassembles: {e}"));
            assert_eq!(prog.to_bytes(), back.to_bytes(), "program {i} bytecode differs");
        }
    }
}
