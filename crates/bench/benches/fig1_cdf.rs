//! Fig. 1: CDF of standardization delay of the last 40 BGP RFCs.
//!
//! The dataset is static; the bench times the CDF computation and, more
//! usefully, prints the regenerated figure rows once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xbgp_harness::fig1;

fn bench(c: &mut Criterion) {
    // Print the regenerated figure once so `cargo bench` output contains
    // the actual artifact.
    println!("{}", fig1::render());

    c.bench_function("fig1/cdf_computation", |b| b.iter(|| black_box(fig1::cdf())));
    c.bench_function("fig1/median", |b| b.iter(|| black_box(fig1::median_delay())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
