//! Ablation: trie-based (FRRouting-style) versus hash-based (BIRD-style)
//! ROA stores — the data-structure difference behind the §3.4 result
//! ("it browses a dedicated trie for validated ROAs each time a prefix
//! needs to be checked. Our extension uses a hash table as in BIRD").
//!
//! Expected shape: hash lookups beat trie walks, increasingly so as the
//! ROA set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpki::{Roa, RoaHashTable, RoaTable, RoaTrie};
use std::hint::black_box;
use xbgp_wire::Ipv4Prefix;

fn workload(n_roas: usize, n_queries: usize) -> (Vec<Roa>, Vec<(Ipv4Prefix, u32)>) {
    let mut rng = SmallRng::seed_from_u64(7);
    let roas: Vec<Roa> = (0..n_roas)
        .map(|_| {
            let len = *[8u8, 16, 20, 24].get(rng.gen_range(0..4usize)).unwrap();
            let prefix = Ipv4Prefix::new(rng.gen(), len);
            Roa::new(prefix, len.max(24), rng.gen_range(1..100_000))
        })
        .collect();
    let queries: Vec<(Ipv4Prefix, u32)> = (0..n_queries)
        .map(|i| {
            // 75% of queries hit an existing ROA's prefix, like §3.4.
            if i % 4 != 0 {
                let r = roas[rng.gen_range(0..roas.len())];
                (r.prefix, r.asn)
            } else {
                (Ipv4Prefix::new(rng.gen(), 24), rng.gen_range(1..100_000))
            }
        })
        .collect();
    (roas, queries)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_roa_lookup");
    for n_roas in [1_000usize, 10_000, 100_000] {
        let (roas, queries) = workload(n_roas, 1_000);

        let mut trie = RoaTrie::new();
        let mut hash = RoaHashTable::new();
        for r in &roas {
            trie.insert(*r);
            hash.insert(*r);
        }

        g.bench_with_input(BenchmarkId::new("trie", n_roas), &n_roas, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for (p, asn) in &queries {
                    acc += trie.validate(*p, *asn) as u8 as u64;
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("hash", n_roas), &n_roas, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for (p, asn) in &queries {
                    acc += hash.validate(*p, *asn) as u8 as u64;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
