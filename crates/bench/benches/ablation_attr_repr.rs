//! Ablation: the attribute-representation gap (§2.1).
//!
//! FIR stores attributes parsed and host-ordered (FRRouting style), so
//! every xBGP `get_attr` re-encodes to network byte order; WREN stores
//! the wire form (BIRD style), so `get_attr` is a copy. This bench
//! measures exactly that conversion cost — the paper's explanation for
//! the 589-vs-400 integration LoC and part of FRRouting's runtime
//! overhead.

use bgp_fir::attrs::FirAttrs;
use bgp_wren::ealist::EaList;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xbgp_wire::attr::Origin;
use xbgp_wire::{AsPath, PathAttr};

fn wire_attrs() -> Vec<PathAttr> {
    vec![
        PathAttr::Origin(Origin::Igp),
        PathAttr::AsPath(AsPath::sequence(vec![65001, 65002, 65003, 65004])),
        PathAttr::NextHop(0x0a00_0001),
        PathAttr::Med(50),
        PathAttr::LocalPref(100),
        PathAttr::Communities(vec![0xffff_0001, 0xffff_0002, 0xffff_0003]),
    ]
}

fn bench(c: &mut Criterion) {
    let fir = FirAttrs::from_wire(&wire_attrs()).expect("parses");
    let wren = EaList::from_wire(&wire_attrs()).expect("parses");

    // get_attr(AS_PATH): FIR re-encodes the parsed path; WREN copies raw.
    c.bench_function("attr_repr/fir_get_as_path_converts", |b| {
        b.iter(|| black_box(fir.neutral_payload(2)))
    });
    c.bench_function("attr_repr/wren_get_as_path_copies", |b| {
        b.iter(|| black_box(wren.get(2).map(|e| e.raw.clone())))
    });

    // get_attr(COMMUNITIES): same asymmetry on a list attribute.
    c.bench_function("attr_repr/fir_get_communities_converts", |b| {
        b.iter(|| black_box(fir.neutral_payload(8)))
    });
    c.bench_function("attr_repr/wren_get_communities_copies", |b| {
        b.iter(|| black_box(wren.get(8).map(|e| e.raw.clone())))
    });

    // Message-boundary parse cost (both pay it, differently).
    let attrs = wire_attrs();
    c.bench_function("attr_repr/fir_parse_from_wire", |b| {
        b.iter(|| black_box(FirAttrs::from_wire(&attrs).unwrap()))
    });
    c.bench_function("attr_repr/wren_parse_from_wire", |b| {
        b.iter(|| black_box(EaList::from_wire(&attrs).unwrap()))
    });

    // Decision-process accessors: FIR reads a field; WREN decodes lazily.
    // (The opposite asymmetry — the price WREN pays for cheap get_attr.)
    c.bench_function("attr_repr/fir_hop_count_field", |b| {
        b.iter(|| black_box(fir.as_path.hop_count()))
    });
    c.bench_function("attr_repr/wren_hop_count_scans_raw", |b| {
        b.iter(|| black_box(wren.as_path_hops()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
