//! Ablation: churn-scale update engine — steady-state updates/sec and
//! convergence time of the incremental prefix-trie RIBs under a
//! [`routegen::churn`] storm, against the full-recompute decision
//! baseline.
//!
//! All quantities are virtual (DUT-CPU-accounted) measurements from
//! [`xbgp_harness::churn::run`], so they are meaningful on a single-core
//! build host: updates/sec divides churn-phase routing updates by
//! churn-phase DUT CPU-seconds, and convergence is virtual ns from the
//! last churn round leaving the feeder to the DUT's last best-path
//! change. Every run self-checks against the full-recompute oracle
//! (incremental Loc-RIB byte-identical to a from-scratch decision pass);
//! a mismatch aborts the bench.
//!
//! Cells:
//!
//! * `{fir, wren} × native × shards {1, 4}` — engine-invariant (native
//!   runs execute no bytecode).
//! * `{fir, wren} × ext × {interp, compiled} × shards {1, 4}` — the
//!   use-case feature as extension bytecode on both engines.
//! * `{fir, wren} × full_recompute × shards 1` — the ablation baseline:
//!   the same storm with per-batch full decision recomputation instead
//!   of dirty-prefix delta recomputation. The headline ratio is
//!   incremental updates/sec over this.
//!
//! Scale knobs for CI: `CHURN_BENCH_ROUTES` (default 50_000),
//! `CHURN_BENCH_SHARDS` (comma list, default `1,4`) and
//! `CHURN_BENCH_ROUNDS` (default 12).

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write;
use xbgp_core::Engine;
use xbgp_harness::churn::{run, ChurnRunSpec};
use xbgp_harness::fig3::{Dut, UseCase};

fn routes() -> usize {
    std::env::var("CHURN_BENCH_ROUTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000)
}

fn shard_counts() -> Vec<usize> {
    std::env::var("CHURN_BENCH_SHARDS")
        .ok()
        .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).filter(|&n| n > 0).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

fn rounds() -> usize {
    std::env::var("CHURN_BENCH_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(12)
}

fn dut_slug(dut: Dut) -> &'static str {
    match dut {
        Dut::Fir => "fir",
        Dut::Wren => "wren",
    }
}

/// Append a measurement line to `CRITERION_JSON_OUT` in the criterion-shim
/// JSONL shape so the virtual figures land in the artifact.
fn emit_json_line(name: &str, value: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"{name}\",\"mean_ns\":{value:.3},\"stddev_ns\":0.000,\
         \"min_ns\":{value:.3},\"samples\":1,\"iters_per_sample\":1}}\n"
    );
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(line.as_bytes());
    }
}

fn spec(dut: Dut, extension: bool, shards: usize, engine: Engine) -> ChurnRunSpec {
    let mut s = ChurnRunSpec::new(dut, UseCase::OriginValidation, routes(), 1);
    s.extension = extension;
    s.shards = shards;
    s.engine = engine;
    s.churn.rounds = rounds();
    s
}

/// Run one cell, print+emit its figures, return updates/sec.
fn cell(label: &str, s: &ChurnRunSpec) -> f64 {
    let out = run(s);
    assert_eq!(
        out.oracle_mismatches, 0,
        "{label}: incremental Loc-RIB diverged from the full-recompute oracle"
    );
    println!(
        "churn/{label:<42} {:>12.0} updates/s  (cpu {:>9.3} ms, convergence {:>9.3} ms, \
         {} updates, {} best changes)",
        out.updates_per_sec,
        out.churn_cpu_ns as f64 / 1e6,
        out.convergence_ns as f64 / 1e6,
        out.updates_applied,
        out.best_changes,
    );
    emit_json_line(&format!("churn/updates_per_sec/{label}"), out.updates_per_sec);
    emit_json_line(&format!("churn/cpu_ns/{label}"), out.churn_cpu_ns as f64);
    emit_json_line(&format!("churn/convergence_ns/{label}"), out.convergence_ns as f64);
    out.updates_per_sec
}

fn bench(_c: &mut Criterion) {
    let counts = shard_counts();
    println!(
        "# churn storm: {} routes, {} rounds, OV workload, seed 1 (virtual, CPU-accounted)",
        routes(),
        rounds()
    );

    for dut in [Dut::Fir, Dut::Wren] {
        let d = dut_slug(dut);
        for &n in &counts {
            cell(&format!("{d}_native/shards_{n}"), &spec(dut, false, n, Engine::Interp));
        }
        for engine in [Engine::Interp, Engine::Compiled] {
            let e = match engine {
                Engine::Interp => "interp",
                Engine::Compiled => "compiled",
            };
            for &n in &counts {
                cell(&format!("{d}_ext_{e}/shards_{n}"), &spec(dut, true, n, engine));
            }
        }
    }

    // Ablation baseline: full decision recomputation per churn batch.
    println!("# full-recompute baseline (the ablation the speedup ratio is against)");
    for dut in [Dut::Fir, Dut::Wren] {
        let d = dut_slug(dut);
        let incremental =
            cell(&format!("{d}_native/shards_1_again"), &spec(dut, false, 1, Engine::Interp));
        let mut base = spec(dut, false, 1, Engine::Interp);
        base.full_recompute = true;
        let full = cell(&format!("{d}_full_recompute/shards_1"), &base);
        let ratio = incremental / full.max(1e-9);
        println!("churn/speedup/{d}: incremental {ratio:.2}x full-recompute updates/s");
        emit_json_line(&format!("churn/speedup_x/{d}"), ratio);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
