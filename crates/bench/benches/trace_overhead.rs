//! Ablation: what the flight recorder and VM profiler cost on the
//! per-route hot path.
//!
//! The observability contract is "zero-cost when off": with tracing and
//! profiling disabled the per-route VM invocation must match the plain
//! `vm_overhead/rov_check_per_route` number within noise. The remaining
//! IDs price the enabled configurations — sampled 1-in-64 (the
//! recommended production setting), full tracing (every route), and the
//! profiler — so regressions in the off or sampled paths are caught by
//! comparing `BENCH_trace_overhead.json` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xbgp_core::host::MockHost;
use xbgp_core::Vmm;
use xbgp_obs::trace::{pack_prefix, TraceConfig};

fn rov_setup() -> (Vmm, MockHost) {
    let rov_manifest = xbgp_progs::origin_validation::manifest();
    let vmm = Vmm::from_manifest(&rov_manifest).unwrap();
    let mut host = MockHost {
        prefix: Some("10.1.2.0/24".parse().unwrap()),
        ..Default::default()
    };
    let mut path = Vec::new();
    xbgp_wire::AsPath::sequence(vec![65001, 65002, 65003, 65004]).encode_body(&mut path, 4);
    host.attrs.push((2, 0x40, path));
    (vmm, host)
}

fn run_route(vmm: &mut Vmm, host: &mut MockHost, route: u64) {
    if let Some(t) = vmm.tracer_mut() {
        t.set_now(route);
        t.begin_route(pack_prefix(0x0a01_0200 + (route as u32 & 0xff), 24));
    }
    black_box(vmm.run(xbgp_core::InsertionPoint::BgpInboundFilter, host));
    if let Some(t) = vmm.tracer_mut() {
        t.end_route();
    }
}

fn bench(c: &mut Criterion) {
    // Baseline: neither subsystem enabled — the exact configuration every
    // non-observability run ships with. Must track
    // `vm_overhead/rov_check_per_route` within noise.
    let (mut vmm, mut host) = rov_setup();
    c.bench_function("trace_overhead/rov_check_per_route_off", |b| {
        b.iter(|| black_box(vmm.run(xbgp_core::InsertionPoint::BgpInboundFilter, &mut host)))
    });

    // Sampled tracing: 1 route in 64 pays the recording cost, the other
    // 63 only the begin/end bookkeeping.
    let (mut vmm, mut host) = rov_setup();
    vmm.enable_trace(TraceConfig { sample_every: 64, capacity: 0, shard: 0 });
    let mut route = 0u64;
    c.bench_function("trace_overhead/rov_check_per_route_sampled_64", |b| {
        b.iter(|| {
            route += 1;
            run_route(&mut vmm, &mut host, route);
        })
    });

    // Full tracing: every route records its event stream into the ring.
    let (mut vmm, mut host) = rov_setup();
    vmm.enable_trace(TraceConfig { sample_every: 1, capacity: 0, shard: 0 });
    let mut route = 0u64;
    c.bench_function("trace_overhead/rov_check_per_route_traced", |b| {
        b.iter(|| {
            route += 1;
            run_route(&mut vmm, &mut host, route);
        })
    });

    // Profiler only: per-extension fuel/latency histograms, no ring.
    let (mut vmm, mut host) = rov_setup();
    vmm.enable_profile();
    c.bench_function("trace_overhead/rov_check_per_route_profiled", |b| {
        b.iter(|| black_box(vmm.run(xbgp_core::InsertionPoint::BgpInboundFilter, &mut host)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
