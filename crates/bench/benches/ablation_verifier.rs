//! Ablation: verifier cost versus program size.
//!
//! Verification is a load-time cost (once per manifest), but it bounds
//! how dynamic extension deployment can be; this bench shows it scales
//! linearly in program length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use xbgp_vm::insn::build;
use xbgp_vm::{verify, Program};

/// A verifiable program of roughly `n` instructions: interleaved ALU ops
/// and short forward jumps.
fn synth(n: usize) -> Program {
    let mut insns = Vec::with_capacity(n + 2);
    insns.push(build::mov_imm(0, 0));
    while insns.len() < n {
        insns.push(build::add_imm(0, 1));
        insns.push(build::jeq_imm(0, -1, 1)); // never taken, valid target
        insns.push(build::mov_reg(1, 0));
    }
    insns.push(build::exit());
    Program::new(insns)
}

fn bench(c: &mut Criterion) {
    let helpers: HashSet<u32> = HashSet::new();
    let mut g = c.benchmark_group("ablation_verifier");
    for n in [16usize, 256, 4_096, 65_000] {
        let prog = synth(n);
        g.bench_with_input(BenchmarkId::new("verify", n), &prog, |b, prog| {
            b.iter(|| black_box(verify(prog, &helpers).is_ok()))
        });
    }
    g.finish();

    // The real programs, for scale.
    for (name, spec) in [
        ("listing1", xbgp_progs::igp_filter::extension()),
        ("rov_check", xbgp_progs::origin_validation::extension()),
    ] {
        let prog = spec.program().unwrap();
        let ids: HashSet<u32> = spec.helper_ids().unwrap().into_iter().collect();
        c.bench_function(&format!("ablation_verifier/{name}"), |b| {
            b.iter(|| black_box(verify(&prog, &ids).is_ok()))
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
