//! Fig. 4, orange series: origin validation native vs extension on both
//! implementations. The paper's surprise — the extension beating
//! FRRouting's native trie — should reproduce as `xFIR/extension` ≲
//! `xFIR/native` while `xWREN` shows parity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xbgp_harness::fig3::{run, Dut, Fig3Spec, UseCase};

const ROUTES: usize = 2_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_origin_validation");
    g.sample_size(10);
    for dut in [Dut::Fir, Dut::Wren] {
        for (label, extension) in [("native", false), ("extension", true)] {
            g.bench_with_input(BenchmarkId::new(dut.name(), label), &extension, |b, &extension| {
                b.iter(|| {
                    let out = run(&Fig3Spec {
                        dut,
                        use_case: UseCase::OriginValidation,
                        extension,
                        routes: ROUTES,
                        seed: 99,
                        metrics: false,
                        shards: 1,
                        rib_dump: false,
                        trace_sample: 0,
                        profile: false,
                        engine: xbgp_core::Engine::Interp,
                    });
                    assert_eq!(out.prefixes_delivered, ROUTES);
                    black_box(out.elapsed_ns)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
