//! Ablation: sharded table-load scaling — how the Fig. 3 table-load
//! completion time falls as the workload splits across per-shard
//! workers, each owning its own daemon and `Vmm`.
//!
//! Two quantities per (daemon × variant × shard count) cell:
//!
//! * **virtual completion** — `merged.elapsed_ns` of an
//!   [`ExecMode::Inline`] run: the max per-shard virtual table-load
//!   time, i.e. when the load completes with one core per shard. Inline
//!   execution keeps each shard's `Instant`-sampled CPU accounting
//!   uncontended, so the numbers are meaningful even on hosts with
//!   fewer hardware threads than shards (this container has one).
//! * **host wall-clock** — criterion-timed [`ExecMode::Threads`] runs,
//!   reported honestly: on a single-core host the threaded path cannot
//!   beat sequential, and the samples show exactly that.
//!
//! Scale knobs for CI: `SHARD_BENCH_ROUTES` (default 50_000) and
//! `SHARD_BENCH_SHARDS` (comma list, default `1,2,4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write;
use xbgp_harness::fig3::{Dut, Fig3Spec, UseCase};
use xbgp_harness::shard::{run_fig3_sharded, ExecMode};

fn routes() -> usize {
    std::env::var("SHARD_BENCH_ROUTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000)
}

fn shard_counts() -> Vec<usize> {
    std::env::var("SHARD_BENCH_SHARDS")
        .ok()
        .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).filter(|&n| n > 0).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn spec(dut: Dut, extension: bool, routes: usize, shards: usize) -> Fig3Spec {
    Fig3Spec {
        dut,
        use_case: UseCase::OriginValidation,
        extension,
        routes,
        seed: 1,
        metrics: false,
        shards,
        rib_dump: false,
        trace_sample: 0,
        profile: false,
        engine: xbgp_core::Engine::Interp,
    }
}

fn cell_label(dut: Dut, extension: bool) -> String {
    format!(
        "{}_{}",
        match dut {
            Dut::Fir => "fir",
            Dut::Wren => "wren",
        },
        if extension { "ext" } else { "native" }
    )
}

/// Append a measurement line to `CRITERION_JSON_OUT` in the same JSONL
/// shape the criterion shim emits, so the virtual-time numbers land in
/// the same artifact as the wall-clock samples.
fn emit_json_line(name: &str, value_ns: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\":\"{name}\",\"mean_ns\":{value_ns:.3},\"stddev_ns\":0.000,\
         \"min_ns\":{value_ns:.3},\"samples\":1,\"iters_per_sample\":1}}\n"
    );
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(line.as_bytes());
    }
}

fn bench(c: &mut Criterion) {
    let routes = routes();
    let counts = shard_counts();

    // Virtual table-load completion, every daemon × variant × shard count.
    println!("# virtual table-load completion ({routes} routes, OV workload)");
    for dut in [Dut::Fir, Dut::Wren] {
        for extension in [false, true] {
            let label = cell_label(dut, extension);
            let mut base_ns = 0u64;
            for &n in &counts {
                let run = run_fig3_sharded(&spec(dut, extension, routes, n), ExecMode::Inline);
                assert_eq!(run.merged.prefixes_delivered, routes);
                let elapsed = run.merged.elapsed_ns;
                let sum: u64 = run.shards.iter().map(|s| s.outcome.elapsed_ns).sum();
                if n == counts[0] {
                    base_ns = elapsed;
                }
                let speedup = base_ns as f64 / elapsed.max(1) as f64;
                println!(
                    "shard_scaling/virtual/{label}/shards_{n:<2} \
                     completion {:>10.3} ms (sum {:>10.3} ms, {:.2}x vs {} shard)",
                    elapsed as f64 / 1e6,
                    sum as f64 / 1e6,
                    speedup,
                    counts[0],
                );
                emit_json_line(
                    &format!("shard_scaling/virtual/{label}/shards_{n}"),
                    elapsed as f64,
                );
                emit_json_line(
                    &format!("shard_scaling/virtual_sum/{label}/shards_{n}"),
                    sum as f64,
                );
            }
        }
    }

    // Host wall-clock of the threaded runtime path. Extension variant
    // only (the native loop above already covers virtual scaling; wall
    // sampling at full table size is expensive).
    let mut g = c.benchmark_group("shard_scaling/wall");
    g.sample_size(2);
    for dut in [Dut::Fir, Dut::Wren] {
        let label = cell_label(dut, true);
        for &n in &counts {
            g.bench_with_input(BenchmarkId::new(&label, n), &n, |b, &n| {
                b.iter(|| {
                    let run = run_fig3_sharded(&spec(dut, true, routes, n), ExecMode::Threads);
                    black_box(run.merged.prefixes_delivered)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
