//! Ablation: what one VM invocation costs at an insertion point.
//!
//! The paper's "within 20%" number is the macro consequence of this
//! micro cost: VMM sandbox setup + interpretation + helper dispatch per
//! insertion-point call, against a native Rust function call doing the
//! same work.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xbgp_asm::assemble_with_symbols;
use xbgp_core::api::{abi_symbols, InsertionPoint, NextHopInfo};
use xbgp_core::host::MockHost;
use xbgp_core::{Engine, ExtensionSpec, Manifest, Vmm, VmmOutcome};

fn vmm_with(src: &str, helpers: &[&str]) -> Vmm {
    let prog = assemble_with_symbols(src, &abi_symbols()).expect("assembles");
    let mut m = Manifest::new();
    m.push(ExtensionSpec::from_program(
        "bench",
        "bench",
        InsertionPoint::BgpOutboundFilter,
        helpers,
        &prog,
    ));
    Vmm::from_manifest(&m).expect("loads")
}

fn bench(c: &mut Criterion) {
    let mut host = MockHost {
        nexthop: Some(NextHopInfo { addr: 1, igp_metric: 10, reachable: true }),
        ..Default::default()
    };

    // Baseline: the same logic as Listing 1, natively.
    c.bench_function("vm_overhead/native_filter_logic", |b| {
        b.iter(|| {
            let peer_ebgp = black_box(true);
            let metric = black_box(10u32);
            black_box(peer_ebgp && metric <= 1000)
        })
    });

    // Minimal program: mov + exit (pure VMM + engine entry cost).
    let mut minimal = vmm_with("mov r0, 1\nexit", &[]);
    c.bench_function("vm_overhead/minimal_program", |b| {
        b.iter(|| black_box(minimal.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    minimal.set_engine(Engine::Compiled);
    c.bench_function("vm_overhead/minimal_program/compiled", |b| {
        b.iter(|| black_box(minimal.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });

    // Listing 1: two helper calls with struct marshalling.
    let mut listing1 =
        vmm_with(xbgp_progs::igp_filter::SOURCE, &["get_peer_info", "get_nexthop", "next"]);
    c.bench_function("vm_overhead/listing1_filter", |b| {
        b.iter(|| {
            let out = listing1.run(InsertionPoint::BgpOutboundFilter, &mut host);
            assert_eq!(out, VmmOutcome::Fallback); // metric 10 → accepted
            black_box(out)
        })
    });

    // Compute-heavy program: a 1000-iteration loop, isolating pure
    // interpretation throughput.
    let loop_src = r"
        mov r0, 0
        mov r1, 1000
    l:  add r0, r1
        sub r1, 1
        jne r1, 0, l
        exit
    ";
    let mut looper = vmm_with(loop_src, &[]);
    c.bench_function("vm_overhead/3000_instruction_loop", |b| {
        b.iter(|| black_box(looper.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    looper.set_check_elision(false);
    c.bench_function("vm_overhead/3000_instruction_loop/no_elide", |b| {
        b.iter(|| black_box(looper.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    looper.set_check_elision(true);
    // The same loop on the compiled engine: the interpretation-throughput
    // headline the block lowering targets (fuel and dispatch hoisted to
    // block entry).
    looper.set_engine(Engine::Compiled);
    c.bench_function("vm_overhead/3000_instruction_loop/compiled", |b| {
        b.iter(|| black_box(looper.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    looper.set_check_elision(false);
    c.bench_function("vm_overhead/3000_instruction_loop/compiled/no_elide", |b| {
        b.iter(|| black_box(looper.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });

    // Memory-bound loop: a cursor/end-pointer walk over 256 bytes of
    // frame. The abstract interpreter proves every `ldxb`/`stxb` in
    // bounds (DESIGN.md §4i), so the elision-on runs take the fast
    // region-indexed path instead of the full address-range check — the
    // cell where check elision, not block compilation, is the lever.
    let walk_src = r"
        mov r0, 0
        mov r1, r10
        sub r1, 256
        mov r2, r10
    b:  ldxb r3, [r1]
        add r3, 1
        stxb [r1], r3
        add r0, r3
        add r1, 1
    t:  jlt r1, r2, b
        exit
    ";
    let mut walker = vmm_with(walk_src, &[]);
    c.bench_function("vm_overhead/stack_walk_loop", |b| {
        b.iter(|| black_box(walker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    walker.set_check_elision(false);
    c.bench_function("vm_overhead/stack_walk_loop/no_elide", |b| {
        b.iter(|| black_box(walker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    walker.set_check_elision(true);
    walker.set_engine(Engine::Compiled);
    c.bench_function("vm_overhead/stack_walk_loop/compiled", |b| {
        b.iter(|| black_box(walker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    walker.set_check_elision(false);
    c.bench_function("vm_overhead/stack_walk_loop/compiled/no_elide", |b| {
        b.iter(|| black_box(walker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });

    // The same walk over a `ctx_malloc`'d heap buffer — the shape real
    // use cases have (attribute bytes live in heap windows, not on the
    // frame). The heap region sits behind the stack in the checked
    // path's scan order, so this is where proof-carrying elision pays
    // on the stepping interpreter.
    let heap_walk_src = r"
        mov r6, 0
        mov r1, 256
        call ctx_malloc
        jeq r0, 0, out
        mov r1, r0
        mov r2, r0
        add r2, 256
    b:  ldxb r3, [r1]
        add r3, 1
        stxb [r1], r3
        add r6, r3
        add r1, 1
        jlt r1, r2, b
    out:
        mov r0, r6
        exit
    ";
    let mut hwalker = vmm_with(heap_walk_src, &["ctx_malloc"]);
    c.bench_function("vm_overhead/heap_walk_loop", |b| {
        b.iter(|| black_box(hwalker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    hwalker.set_check_elision(false);
    c.bench_function("vm_overhead/heap_walk_loop/no_elide", |b| {
        b.iter(|| black_box(hwalker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    hwalker.set_check_elision(true);
    hwalker.set_engine(Engine::Compiled);
    c.bench_function("vm_overhead/heap_walk_loop/compiled", |b| {
        b.iter(|| black_box(hwalker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    hwalker.set_check_elision(false);
    c.bench_function("vm_overhead/heap_walk_loop/compiled/no_elide", |b| {
        b.iter(|| black_box(hwalker.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });

    // Memory-op-dense variant: an unrolled 8-byte read-modify-write pass
    // over the heap buffer, the shape attribute-rewrite extensions have
    // (rr_encode, geoloc_encode move bytes between heap windows). Half
    // the retired instructions are proven loads/stores, so this cell
    // isolates what elision is worth when memory traffic, not dispatch,
    // is the bottleneck.
    // The outer repeat loop amortizes the fixed invocation cost
    // (sandbox entry + ctx_malloc) so the cell measures the steady
    // walk, not the setup.
    let heap_rewrite_src = r"
        mov r6, 0
        mov r7, 8
        mov r1, 1024
        call ctx_malloc
        jeq r0, 0, out
    o:  mov r1, r0
        mov r2, r0
        add r2, 1009
    b:  ldxdw r3, [r1]
        add r3, 1
        stxdw [r1], r3
        ldxdw r4, [r1+8]
        add r4, 1
        stxdw [r1+8], r4
        add r6, r3
        add r1, 16
        jlt r1, r2, b
        sub r7, 1
        jne r7, 0, o
    out:
        mov r0, r6
        exit
    ";
    let mut rewriter = vmm_with(heap_rewrite_src, &["ctx_malloc"]);
    c.bench_function("vm_overhead/heap_rewrite_loop", |b| {
        b.iter(|| black_box(rewriter.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    rewriter.set_check_elision(false);
    c.bench_function("vm_overhead/heap_rewrite_loop/no_elide", |b| {
        b.iter(|| black_box(rewriter.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    rewriter.set_check_elision(true);
    rewriter.set_engine(Engine::Compiled);
    c.bench_function("vm_overhead/heap_rewrite_loop/compiled", |b| {
        b.iter(|| black_box(rewriter.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });
    rewriter.set_check_elision(false);
    c.bench_function("vm_overhead/heap_rewrite_loop/compiled/no_elide", |b| {
        b.iter(|| black_box(rewriter.run(InsertionPoint::BgpOutboundFilter, &mut host)))
    });

    // Load-time side of the split: verify + pre-decode + sandbox build for
    // the real §3.4 program. Pre-decoding moved per-step opcode parsing
    // here, out of the per-route run path measured below.
    let rov_manifest = xbgp_progs::origin_validation::manifest();
    c.bench_function("vm_overhead/rov_check_load_and_verify", |b| {
        b.iter(|| black_box(Vmm::from_manifest(&rov_manifest).unwrap()))
    });

    // The real §3.4 program, per-route cost (Fig. 4's extension-side
    // increment on the OV use case).
    let mut rov = Vmm::from_manifest(&rov_manifest).unwrap();
    let mut rov_host = MockHost {
        prefix: Some("10.1.2.0/24".parse().unwrap()),
        ..Default::default()
    };
    let mut path = Vec::new();
    xbgp_wire::AsPath::sequence(vec![65001, 65002, 65003, 65004]).encode_body(&mut path, 4);
    rov_host.attrs.push((2, 0x40, path));
    c.bench_function("vm_overhead/rov_check_per_route", |b| {
        b.iter(|| black_box(rov.run(xbgp_core::InsertionPoint::BgpInboundFilter, &mut rov_host)))
    });
    rov.set_check_elision(false);
    c.bench_function("vm_overhead/rov_check_per_route/no_elide", |b| {
        b.iter(|| black_box(rov.run(xbgp_core::InsertionPoint::BgpInboundFilter, &mut rov_host)))
    });
    rov.set_check_elision(true);
    rov.set_engine(Engine::Compiled);
    c.bench_function("vm_overhead/rov_check_per_route/compiled", |b| {
        b.iter(|| black_box(rov.run(xbgp_core::InsertionPoint::BgpInboundFilter, &mut rov_host)))
    });
    rov.set_check_elision(false);
    c.bench_function("vm_overhead/rov_check_per_route/compiled/no_elide", |b| {
        b.iter(|| black_box(rov.run(xbgp_core::InsertionPoint::BgpInboundFilter, &mut rov_host)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
