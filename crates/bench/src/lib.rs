//! # xbgp-bench — Criterion benchmarks
//!
//! One bench target per paper artifact plus ablations for the design
//! choices DESIGN.md calls out:
//!
//! | bench | regenerates |
//! |---|---|
//! | `fig1_cdf` | Fig. 1 (CDF computation over the RFC dataset) |
//! | `fig4_route_reflection` | Fig. 4, blue series (RR native vs extension, both DUTs) |
//! | `fig4_origin_validation` | Fig. 4, orange series (OV native vs extension, both DUTs) |
//! | `ablation_roa_lookup` | why OV behaves as it does: trie vs hash ROA stores |
//! | `ablation_vm_overhead` | cost of one VM invocation per insertion point |
//! | `ablation_attr_repr` | FIR's host-order conversion vs WREN's wire-order copy |
//! | `ablation_verifier` | verifier cost vs program size |
//!
//! Run with `cargo bench -p xbgp-bench`. The macro benches use scaled
//! tables (Criterion needs many iterations); `xbgp-harness --bin fig4`
//! is the full-size experiment.
