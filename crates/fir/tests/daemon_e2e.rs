//! End-to-end tests: FIR daemons talking BGP to each other over netsim.

use bgp_fir::{FirConfig, FirDaemon};
use netsim::{Sim, SimConfig};
use rpki::Roa;
use xbgp_wire::Ipv4Prefix;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;

/// Two routers, one eBGP session, one originated prefix.
fn two_router_setup(
    a_cfg: impl FnOnce(FirConfig) -> FirConfig,
    b_cfg: impl FnOnce(FirConfig) -> FirConfig,
) -> (Sim, netsim::NodeId, netsim::NodeId) {
    let mut sim = Sim::new(SimConfig::default());
    // Reserve node ids first so link ids are known before configs.
    let a = sim.add_node(Box::new(Placeholder));
    let b = sim.add_node(Box::new(Placeholder));
    let link = sim.connect(a, b, MS);
    let cfg_a = a_cfg(FirConfig::new(65001, 1).neighbor(link, 2, 65002));
    let cfg_b = b_cfg(FirConfig::new(65002, 2).neighbor(link, 1, 65001));
    sim.replace_node(a, Box::new(FirDaemon::new(cfg_a)));
    sim.replace_node(b, Box::new(FirDaemon::new(cfg_b)));
    (sim, a, b)
}

/// Stand-in node used while wiring topologies (replaced before start).
struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn ebgp_session_establishes_and_propagates_a_route() {
    let (mut sim, a, b) = two_router_setup(
        |cfg| {
            let mut cfg = cfg;
            cfg.originate = vec![(p("10.1.0.0/16"), 1)];
            cfg
        },
        |cfg| cfg,
    );
    sim.run_until(5 * SEC);

    let db: &FirDaemon = sim.node_ref(b);
    assert!(db.session_established(1));
    assert_eq!(db.loc_rib_prefixes(), vec![p("10.1.0.0/16")]);
    let best = db.best_route(&p("10.1.0.0/16")).unwrap();
    // eBGP export prepended the sender's ASN and rewrote the nexthop.
    assert_eq!(best.attrs.as_path.asns().collect::<Vec<_>>(), vec![65001]);
    assert_eq!(best.attrs.next_hop, 1);
    assert!(best.attrs.local_pref.is_none(), "LOCAL_PREF stripped on eBGP");

    let da: &FirDaemon = sim.node_ref(a);
    assert!(da.session_established(2));
}

#[test]
fn withdrawal_propagates_on_link_failure_between_three_routers() {
    // a —— dut —— c : a originates; link a—dut dies; c must lose the route.
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let c = sim.add_node(Box::new(Placeholder));
    let l1 = sim.connect(a, dut, MS);
    let l2 = sim.connect(dut, c, MS);
    let mut cfg_a = FirConfig::new(65001, 1).neighbor(l1, 2, 65002);
    cfg_a.originate = vec![(p("192.0.2.0/24"), 1)];
    let cfg_dut = FirConfig::new(65002, 2).neighbor(l1, 1, 65001).neighbor(l2, 3, 65003);
    let cfg_c = FirConfig::new(65003, 3).neighbor(l2, 2, 65002);
    sim.replace_node(a, Box::new(FirDaemon::new(cfg_a)));
    sim.replace_node(dut, Box::new(FirDaemon::new(cfg_dut)));
    sim.replace_node(c, Box::new(FirDaemon::new(cfg_c)));

    sim.run_until(5 * SEC);
    {
        let dc: &FirDaemon = sim.node_ref(c);
        assert_eq!(dc.loc_rib_prefixes(), vec![p("192.0.2.0/24")]);
        let path: Vec<u32> =
            dc.best_route(&p("192.0.2.0/24")).unwrap().attrs.as_path.asns().collect();
        assert_eq!(path, vec![65002, 65001], "two eBGP hops prepended");
    }

    sim.set_link_up(l1, false);
    sim.run_until(10 * SEC);
    let dc: &FirDaemon = sim.node_ref(c);
    assert!(
        dc.loc_rib_prefixes().is_empty(),
        "route must be withdrawn after the upstream link failed"
    );
}

#[test]
fn ibgp_routes_are_not_reflected_without_rr() {
    // up --eBGP-- dut --iBGP-- x --iBGP-- y : y must NOT get the route
    // (x does not reflect iBGP-learned routes), while x does get it.
    let mut sim = Sim::new(SimConfig::default());
    let up = sim.add_node(Box::new(Placeholder));
    let x = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let y = sim.add_node(Box::new(Placeholder));
    let l_up = sim.connect(up, dut, MS);
    let l_x = sim.connect(dut, x, MS);
    let l_y = sim.connect(x, y, MS);

    let mut cfg_up = FirConfig::new(65009, 9).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("203.0.113.0/24"), 9)];
    let cfg_dut = FirConfig::new(65000, 2).neighbor(l_up, 9, 65009).neighbor(l_x, 3, 65000);
    let cfg_x = FirConfig::new(65000, 3).neighbor(l_x, 2, 65000).neighbor(l_y, 4, 65000);
    let cfg_y = FirConfig::new(65000, 4).neighbor(l_y, 3, 65000);
    sim.replace_node(up, Box::new(FirDaemon::new(cfg_up)));
    sim.replace_node(dut, Box::new(FirDaemon::new(cfg_dut)));
    sim.replace_node(x, Box::new(FirDaemon::new(cfg_x)));
    sim.replace_node(y, Box::new(FirDaemon::new(cfg_y)));

    sim.run_until(5 * SEC);
    assert_eq!(
        sim.node_ref::<FirDaemon>(x).loc_rib_prefixes(),
        vec![p("203.0.113.0/24")],
        "eBGP-learned route goes to iBGP peer x"
    );
    // x learned it over iBGP → not re-advertised to y.
    assert!(sim.node_ref::<FirDaemon>(y).loc_rib_prefixes().is_empty());
}

#[test]
fn native_route_reflection_reflects_with_originator_and_cluster_list() {
    // up --iBGP(client)-- rr --iBGP(client)-- down, native RR on the rr.
    let mut sim = Sim::new(SimConfig::default());
    let up = sim.add_node(Box::new(Placeholder));
    let rr = sim.add_node(Box::new(Placeholder));
    let down = sim.add_node(Box::new(Placeholder));
    let l_up = sim.connect(up, rr, MS);
    let l_down = sim.connect(rr, down, MS);

    let mut cfg_up = FirConfig::new(65000, 1).neighbor(l_up, 2, 65000);
    cfg_up.originate = vec![(p("198.51.100.0/24"), 1)];
    let mut cfg_rr = FirConfig::new(65000, 2).rr_client(l_up, 1, 65000).rr_client(l_down, 3, 65000);
    cfg_rr.native_rr = true;
    let cfg_down = FirConfig::new(65000, 3).neighbor(l_down, 2, 65000);
    sim.replace_node(up, Box::new(FirDaemon::new(cfg_up)));
    sim.replace_node(rr, Box::new(FirDaemon::new(cfg_rr)));
    sim.replace_node(down, Box::new(FirDaemon::new(cfg_down)));

    sim.run_until(5 * SEC);
    let dd: &FirDaemon = sim.node_ref(down);
    assert_eq!(dd.loc_rib_prefixes(), vec![p("198.51.100.0/24")]);
    let best = dd.best_route(&p("198.51.100.0/24")).unwrap();
    assert_eq!(best.attrs.originator_id, Some(1), "ORIGINATOR_ID = learner's id");
    assert_eq!(best.attrs.cluster_list, vec![2], "reflector prepended its cluster id");
    assert_eq!(best.attrs.local_pref, Some(100));
    assert!(best.attrs.as_path.asns().next().is_none(), "AS path untouched on iBGP");
}

#[test]
fn reflection_loop_prevention_by_originator_id() {
    // Two reflectors in a triangle with the client would loop without
    // ORIGINATOR_ID/CLUSTER_LIST checks; assert the route converges and
    // the client does not reimport its own route.
    let mut sim = Sim::new(SimConfig::default());
    let client = sim.add_node(Box::new(Placeholder));
    let rr1 = sim.add_node(Box::new(Placeholder));
    let rr2 = sim.add_node(Box::new(Placeholder));
    let l1 = sim.connect(client, rr1, MS);
    let l2 = sim.connect(rr1, rr2, MS);
    let l3 = sim.connect(rr2, client, MS);

    let mut cfg_client = FirConfig::new(65000, 1).neighbor(l1, 2, 65000).neighbor(l3, 3, 65000);
    cfg_client.originate = vec![(p("10.9.9.0/24"), 1)];
    let mut cfg_rr1 = FirConfig::new(65000, 2).rr_client(l1, 1, 65000).neighbor(l2, 3, 65000);
    cfg_rr1.native_rr = true;
    let mut cfg_rr2 = FirConfig::new(65000, 3).rr_client(l3, 1, 65000).neighbor(l2, 2, 65000);
    cfg_rr2.native_rr = true;
    sim.replace_node(client, Box::new(FirDaemon::new(cfg_client)));
    sim.replace_node(rr1, Box::new(FirDaemon::new(cfg_rr1)));
    sim.replace_node(rr2, Box::new(FirDaemon::new(cfg_rr2)));

    sim.run_until(10 * SEC);
    for node in [rr1, rr2] {
        let d: &FirDaemon = sim.node_ref(node);
        assert_eq!(d.loc_rib_prefixes(), vec![p("10.9.9.0/24")]);
    }
    // The client's best route for its own prefix stays the local one.
    let dc: &FirDaemon = sim.node_ref(client);
    assert!(dc.best_route(&p("10.9.9.0/24")).unwrap().source.local);
}

#[test]
fn native_origin_validation_tags_routes_with_the_trie() {
    let roas = vec![
        Roa::new(p("10.1.0.0/16"), 16, 65001), // matches the origin → Valid
        Roa::new(p("10.2.0.0/16"), 16, 64999), // wrong origin → Invalid
    ];
    let (mut sim, _a, b) = two_router_setup(
        |cfg| {
            let mut cfg = cfg;
            cfg.originate = vec![
                (p("10.1.0.0/16"), 1),
                (p("10.2.0.0/16"), 1),
                (p("10.3.0.0/16"), 1), // no ROA → NotFound
            ];
            cfg
        },
        |cfg| {
            let mut cfg = cfg;
            cfg.native_rov = Some(roas.clone());
            cfg
        },
    );
    sim.run_until(5 * SEC);
    let db: &FirDaemon = sim.node_ref(b);
    assert_eq!(db.stats.rov_valid, 1);
    assert_eq!(db.stats.rov_invalid, 1);
    assert_eq!(db.stats.rov_not_found, 1);
    // §3.4: validation never discards.
    assert_eq!(db.loc_rib_len(), 3);
    use rpki::RovState;
    assert_eq!(db.best_route(&p("10.1.0.0/16")).unwrap().rov, Some(RovState::Valid));
    assert_eq!(db.best_route(&p("10.2.0.0/16")).unwrap().rov, Some(RovState::Invalid));
    assert_eq!(db.best_route(&p("10.3.0.0/16")).unwrap().rov, Some(RovState::NotFound));
}

#[test]
fn ebgp_loop_detection_drops_looping_paths() {
    // a(65001) → dut(65002) → c(65001): c sees its own ASN and drops.
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let c = sim.add_node(Box::new(Placeholder));
    let l1 = sim.connect(a, dut, MS);
    let l2 = sim.connect(dut, c, MS);
    let mut cfg_a = FirConfig::new(65001, 1).neighbor(l1, 2, 65002);
    cfg_a.originate = vec![(p("10.0.0.0/8"), 1)];
    let cfg_dut = FirConfig::new(65002, 2).neighbor(l1, 1, 65001).neighbor(l2, 3, 65001);
    let cfg_c = FirConfig::new(65001, 3).neighbor(l2, 2, 65002);
    sim.replace_node(a, Box::new(FirDaemon::new(cfg_a)));
    sim.replace_node(dut, Box::new(FirDaemon::new(cfg_dut)));
    sim.replace_node(c, Box::new(FirDaemon::new(cfg_c)));
    sim.run_until(5 * SEC);
    assert!(sim.node_ref::<FirDaemon>(c).loc_rib_prefixes().is_empty());
}

#[test]
fn best_path_selection_prefers_shorter_as_path_across_peers() {
    // dut hears 10.0.0.0/8 from two eBGP peers; peer a's path is shorter
    // after a re-advertisement chain (b's path goes through one extra AS).
    let mut sim = Sim::new(SimConfig::default());
    let a = sim.add_node(Box::new(Placeholder));
    let b = sim.add_node(Box::new(Placeholder));
    let mid = sim.add_node(Box::new(Placeholder));
    let dut = sim.add_node(Box::new(Placeholder));
    let l_a_dut = sim.connect(a, dut, MS);
    let l_a_mid = sim.connect(a, mid, MS);
    let l_mid_b = sim.connect(mid, b, MS);
    let l_b_dut = sim.connect(b, dut, MS);

    let mut cfg_a =
        FirConfig::new(65001, 1).neighbor(l_a_dut, 4, 65004).neighbor(l_a_mid, 2, 65002);
    cfg_a.originate = vec![(p("10.0.0.0/8"), 1)];
    let cfg_mid = FirConfig::new(65002, 2).neighbor(l_a_mid, 1, 65001).neighbor(l_mid_b, 3, 65003);
    let cfg_b = FirConfig::new(65003, 3).neighbor(l_mid_b, 2, 65002).neighbor(l_b_dut, 4, 65004);
    let cfg_dut = FirConfig::new(65004, 4).neighbor(l_a_dut, 1, 65001).neighbor(l_b_dut, 3, 65003);
    sim.replace_node(a, Box::new(FirDaemon::new(cfg_a)));
    sim.replace_node(mid, Box::new(FirDaemon::new(cfg_mid)));
    sim.replace_node(b, Box::new(FirDaemon::new(cfg_b)));
    sim.replace_node(dut, Box::new(FirDaemon::new(cfg_dut)));

    sim.run_until(10 * SEC);
    let dd: &FirDaemon = sim.node_ref(dut);
    let best = dd.best_route(&p("10.0.0.0/8")).unwrap();
    assert_eq!(
        best.attrs.as_path.asns().collect::<Vec<_>>(),
        vec![65001],
        "direct one-hop path beats the three-hop path"
    );
    assert_eq!(best.source.peer_addr, 1);
}

#[test]
fn attribute_interning_shares_sets_across_prefixes() {
    let (mut sim, _a, b) = two_router_setup(
        |cfg| {
            let mut cfg = cfg;
            // Many prefixes, one origin: identical attribute sets.
            cfg.originate =
                (0..50).map(|i| (Ipv4Prefix::new(0x0a00_0000 + (i << 8), 24), 1)).collect();
            cfg
        },
        |cfg| cfg,
    );
    sim.run_until(5 * SEC);
    let db: &FirDaemon = sim.node_ref(b);
    assert_eq!(db.loc_rib_len(), 50);
    assert!(
        db.interned_attr_sets() <= 3,
        "one shared attribute set expected, got {}",
        db.interned_attr_sets()
    );
}

#[test]
fn hold_timer_expiry_tears_down_a_silent_session() {
    // A peer that handshakes and then goes silent must be dropped when the
    // hold timer (negotiated 9s here) expires, and its routes withdrawn.
    struct Mute {
        reader: xbgp_wire::MsgReader,
        sent_keepalive: bool,
    }
    impl netsim::Node for Mute {
        fn on_data(&mut self, ctx: &mut netsim::NodeCtx<'_>, link: netsim::LinkId, data: &[u8]) {
            use xbgp_wire::attr::Origin;
            use xbgp_wire::{AsPath, Message, MsgType, OpenMsg, PathAttr, UpdateMsg};
            self.reader.push(data);
            while let Ok(Some(frame)) = self.reader.next_frame() {
                if let Ok((MsgType::Open, _)) = xbgp_wire::msg::deframe(&frame) {
                    // Finish the handshake with a tiny hold time, announce
                    // one route, then never speak again.
                    let open = OpenMsg::standard(65009, 9, 9);
                    ctx.send(link, &Message::Open(open).encode(4).unwrap());
                    ctx.send(link, &Message::Keepalive.encode(4).unwrap());
                }
                if let Ok((MsgType::Keepalive, _)) = xbgp_wire::msg::deframe(&frame) {
                    if !self.sent_keepalive {
                        self.sent_keepalive = true;
                        let upd = UpdateMsg::announce(
                            vec![
                                PathAttr::Origin(Origin::Igp),
                                PathAttr::AsPath(AsPath::sequence(vec![65009])),
                                PathAttr::NextHop(9),
                            ],
                            vec![p("198.18.0.0/16")],
                        );
                        ctx.send(link, &Message::Update(upd).encode(4).unwrap());
                    }
                }
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let mut sim = Sim::new(SimConfig::default());
    let mute =
        sim.add_node(Box::new(Mute { reader: xbgp_wire::MsgReader::new(), sent_keepalive: false }));
    let dut = sim.add_node(Box::new(Placeholder));
    let link = sim.connect(mute, dut, MS);
    let cfg = FirConfig::new(65001, 1).neighbor(link, 9, 65009);
    sim.replace_node(dut, Box::new(FirDaemon::new(cfg)));

    // Session up + route learned well before the hold timer can fire.
    sim.run_until(2 * SEC);
    {
        let d: &FirDaemon = sim.node_ref(dut);
        assert!(d.session_established(9));
        assert_eq!(d.loc_rib_prefixes(), vec![p("198.18.0.0/16")]);
    }
    // 9s hold + checks every 3s: by t=15s the session must be gone and the
    // route flushed.
    sim.run_until(15 * SEC);
    let d: &FirDaemon = sim.node_ref(dut);
    assert!(!d.session_established(9), "silent peer dropped on hold expiry");
    assert!(d.loc_rib_prefixes().is_empty(), "its routes withdrawn");
    assert!(d.logs.iter().any(|l| l.contains("hold timer expired")));
}
