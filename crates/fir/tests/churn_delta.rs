//! Withdraw edge cases and randomized interleavings under incremental
//! delta recomputation.
//!
//! The daemon's fast path re-decides only dirty prefixes against the
//! committed best (see `FirDaemon::decide_after_announce` /
//! `remove_candidate_and_decide`). These tests drive the cases where
//! that shortcut is easiest to get wrong — the last route for a net
//! disappearing, the best flapping away and back, a withdraw and
//! re-announce of the same prefix inside one UPDATE batch — and pin
//! every quiescent state to the from-scratch decision oracle
//! (`oracle_loc_rib_dump`).

use bgp_fir::{FirConfig, FirDaemon};
use netsim::{NodeCtx, Sim, SimConfig};
use proptest::prelude::*;
use xbgp_wire::attr::Origin;
use xbgp_wire::{AsPath, Ipv4Prefix, Message, MsgReader, MsgType, OpenMsg, PathAttr, UpdateMsg};

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;
const STEP_TIMER: u64 = 1;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn announce(prefix: Ipv4Prefix, asns: Vec<u32>, med: Option<u32>) -> UpdateMsg {
    let mut attrs = vec![
        PathAttr::Origin(Origin::Igp),
        PathAttr::AsPath(AsPath::sequence(asns)),
        PathAttr::NextHop(9),
    ];
    if let Some(m) = med {
        attrs.push(PathAttr::Med(m));
    }
    UpdateMsg::announce(attrs, vec![prefix])
}

fn frame(msg: UpdateMsg) -> Vec<u8> {
    Message::Update(msg).encode(4).unwrap()
}

/// A scripted BGP speaker: completes the handshake, then replays one
/// step of pre-encoded frames every 2 virtual seconds, with keepalives
/// to hold the session open. Step `i` hits the wire at `t ≈ 2(i+1)s`,
/// so `t = 2(i+1) + 1` seconds is a quiescent point after step `i`.
struct Scripted {
    asn: u32,
    router_id: u32,
    reader: MsgReader,
    steps: Vec<Vec<Vec<u8>>>,
    next: usize,
    link: Option<netsim::LinkId>,
}

impl Scripted {
    fn new(asn: u32, router_id: u32, steps: Vec<Vec<Vec<u8>>>) -> Scripted {
        Scripted {
            asn,
            router_id,
            reader: MsgReader::new(),
            steps,
            next: 0,
            link: None,
        }
    }
}

impl netsim::Node for Scripted {
    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: netsim::LinkId, data: &[u8]) {
        self.reader.push(data);
        while let Ok(Some(f)) = self.reader.next_frame() {
            if let Ok((MsgType::Open, _)) = xbgp_wire::msg::deframe(&f) {
                let open = OpenMsg::standard(self.asn, 30, self.router_id);
                ctx.send(link, &Message::Open(open).encode(4).unwrap());
                ctx.send(link, &Message::Keepalive.encode(4).unwrap());
                ctx.set_timer(2 * SEC, STEP_TIMER);
            }
        }
        // The handshake link is the only link a Scripted peer has, so
        // remembering it for the timer path is just the latest `link`.
        self.link = Some(link);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token != STEP_TIMER {
            return;
        }
        let Some(link) = self.link else {
            return;
        };
        ctx.send(link, &Message::Keepalive.encode(4).unwrap());
        if let Some(step) = self.steps.get(self.next) {
            for f in step {
                ctx.send(link, f);
            }
            self.next += 1;
        }
        ctx.set_timer(2 * SEC, STEP_TIMER);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Placeholder;
impl netsim::Node for Placeholder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One DUT with one or two scripted eBGP peers.
fn dut_with_scripted(scripts: Vec<Vec<Vec<Vec<u8>>>>) -> (Sim, netsim::NodeId) {
    let mut sim = Sim::new(SimConfig::default());
    let dut = sim.add_node(Box::new(Placeholder));
    let mut cfg = FirConfig::new(65001, 1);
    for (i, steps) in scripts.into_iter().enumerate() {
        let peer_addr = 9 + i as u32;
        let peer_asn = 65009 + i as u32;
        let peer = sim.add_node(Box::new(Scripted::new(peer_asn, peer_addr, steps)));
        let link = sim.connect(peer, dut, MS);
        cfg = cfg.neighbor(link, peer_addr, peer_asn);
    }
    sim.replace_node(dut, Box::new(FirDaemon::new(cfg)));
    (sim, dut)
}

/// Incremental Loc-RIB must match the from-scratch decision pass.
fn assert_oracle_clean(sim: &mut Sim, dut: netsim::NodeId) {
    let d: &mut FirDaemon = sim.node_mut(dut);
    let incremental = d.loc_rib_dump();
    let oracle = d.oracle_loc_rib_dump();
    assert_eq!(incremental, oracle, "incremental Loc-RIB diverged from full recompute");
}

#[test]
fn last_route_withdraw_empties_the_net() {
    let px = p("203.0.113.0/24");
    let steps = vec![
        vec![frame(announce(px, vec![65009], None))],
        vec![frame(UpdateMsg::withdraw(vec![px]))],
    ];
    let (mut sim, dut) = dut_with_scripted(vec![steps]);

    sim.run_until(3 * SEC);
    {
        let d: &FirDaemon = sim.node_ref(dut);
        assert_eq!(d.loc_rib_prefixes(), vec![px]);
    }
    assert_oracle_clean(&mut sim, dut);

    sim.run_until(5 * SEC + SEC / 2);
    let d: &FirDaemon = sim.node_ref(dut);
    assert!(d.loc_rib_prefixes().is_empty(), "last-route withdraw must empty the net");
    assert_eq!(d.stats.withdrawals_rx, 1);
    assert_oracle_clean(&mut sim, dut);
}

#[test]
fn best_flap_away_and_back_settles_on_the_original() {
    let px = p("198.51.100.0/24");
    // Peer 9 holds a two-hop path the whole time; peer 10 interposes a
    // one-hop path (wins on AS-path length), then withdraws it.
    let steps_a = vec![vec![frame(announce(px, vec![65009, 65100], None))]];
    let steps_b = vec![
        vec![],
        vec![frame(announce(px, vec![65010], None))],
        vec![frame(UpdateMsg::withdraw(vec![px]))],
    ];
    let (mut sim, dut) = dut_with_scripted(vec![steps_a, steps_b]);

    sim.run_until(3 * SEC);
    assert_eq!(sim.node_ref::<FirDaemon>(dut).best_route(&px).unwrap().source.peer_addr, 9);
    assert_oracle_clean(&mut sim, dut);

    sim.run_until(5 * SEC + SEC / 2);
    assert_eq!(
        sim.node_ref::<FirDaemon>(dut).best_route(&px).unwrap().source.peer_addr,
        10,
        "shorter path must take over"
    );
    assert_oracle_clean(&mut sim, dut);

    sim.run_until(9 * SEC);
    let d: &FirDaemon = sim.node_ref(dut);
    assert_eq!(
        d.best_route(&px).unwrap().source.peer_addr,
        9,
        "after the flap the original best must return"
    );
    assert_eq!(d.loc_rib_prefixes(), vec![px]);
    assert_oracle_clean(&mut sim, dut);
}

#[test]
fn same_batch_withdraw_and_reannounce_keeps_the_new_route() {
    let px = p("192.0.2.0/24");
    // One UPDATE carrying the prefix in both the withdrawn field and the
    // NLRI: RFC 4271 processes the withdraw first, so the net must end
    // the batch holding exactly the re-announced route.
    let mut both = announce(px, vec![65009], Some(9));
    both.withdrawn = vec![px];
    let steps = vec![vec![frame(announce(px, vec![65009], Some(5)))], vec![frame(both)]];
    let (mut sim, dut) = dut_with_scripted(vec![steps]);

    sim.run_until(3 * SEC);
    assert_eq!(sim.node_ref::<FirDaemon>(dut).best_route(&px).unwrap().attrs.med, Some(5));

    sim.run_until(5 * SEC + SEC / 2);
    let d: &FirDaemon = sim.node_ref(dut);
    assert_eq!(d.loc_rib_prefixes(), vec![px], "the net must survive the batch");
    assert_eq!(
        d.best_route(&px).unwrap().attrs.med,
        Some(9),
        "the re-announce inside the batch must win over the withdraw"
    );
    assert_oracle_clean(&mut sim, dut);
}

#[test]
fn re_announce_within_one_delivery_takes_the_last_frame() {
    let px = p("192.0.2.0/24");
    // Two announcements of the same prefix land back-to-back in one
    // step; the second replaces the first in the same candidate slot.
    let steps = vec![vec![
        frame(announce(px, vec![65009], Some(3))),
        frame(announce(px, vec![65009], Some(7))),
    ]];
    let (mut sim, dut) = dut_with_scripted(vec![steps]);

    sim.run_until(3 * SEC + SEC / 2);
    let d: &FirDaemon = sim.node_ref(dut);
    assert_eq!(d.best_route(&px).unwrap().attrs.med, Some(7));
    assert_eq!(d.stats.prefixes_rx, 2, "both announcements were absorbed");
    assert_oracle_clean(&mut sim, dut);
}

proptest! {
    /// Random announce/withdraw interleavings over a small prefix pool
    /// from two peers: at quiescence the incremental Loc-RIB must be
    /// byte-identical to the full-recompute oracle.
    #[test]
    fn random_interleavings_match_the_full_recompute_oracle(
        ops in proptest::collection::vec(
            // (peer, prefix index, withdraw?, med, extra AS hops)
            (0u8..2, 0u8..6, 0u8..4, 0u32..50, 0u8..3),
            1..28,
        ),
    ) {
        let pool: Vec<Ipv4Prefix> = (0u32..6)
            .map(|i| Ipv4Prefix::new(0xc633_0000 + (i << 8), 24))
            .collect();
        let mut scripts = vec![Vec::new(), Vec::new()];
        // Three ops per step per peer keeps withdraw + re-announce of
        // one prefix landing inside a single drain batch reachable.
        for (i, (peer, pxi, wd, med, hops)) in ops.iter().enumerate() {
            let peer = usize::from(*peer);
            let step = i / 3;
            for s in scripts.iter_mut() {
                while s.len() <= step {
                    s.push(Vec::new());
                }
            }
            let px = pool[usize::from(*pxi)];
            let asn = 65009 + peer as u32;
            let msg = if *wd == 0 {
                UpdateMsg::withdraw(vec![px])
            } else {
                let mut asns = vec![asn];
                asns.extend((0..*hops).map(|k| 64000 + u32::from(*pxi) + u32::from(k)));
                announce(px, asns, Some(*med))
            };
            scripts[peer][step].push(frame(msg));
        }
        let n_steps = scripts.iter().map(Vec::len).max().unwrap_or(0) as u64;
        let (mut sim, dut) = dut_with_scripted(scripts);
        sim.run_until((2 * (n_steps + 1) + 2) * SEC);
        let d: &mut FirDaemon = sim.node_mut(dut);
        let incremental = d.loc_rib_dump();
        let oracle = d.oracle_loc_rib_dump();
        prop_assert_eq!(incremental, oracle);
    }
}
