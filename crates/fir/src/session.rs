//! Per-neighbor session state: the RFC 4271 finite state machine.
//!
//! FIR models the FSM as an explicit state enum driven by event functions
//! (FRRouting's `bgp_fsm.c` style). The Connect/Active TCP states collapse
//! into the link being up — netsim links provide the established stream
//! TCP would.

use crate::config::PeerCfg;
use xbgp_core::api::PeerType;
use xbgp_wire::{MsgReader, OpenMsg};

/// FSM states (TCP-level states are subsumed by link state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Link down or session halted.
    Idle,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPEN received and accepted, waiting for KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

/// One neighbor session.
pub struct Session {
    pub cfg: PeerCfg,
    pub state: FsmState,
    pub reader: MsgReader,
    /// Negotiated hold time in nanoseconds (0 = timers disabled).
    pub hold_time_ns: u64,
    /// Virtual time of the last message from the peer.
    pub last_recv: u64,
    /// Whether the peer advertised 4-octet-AS support (always true for the
    /// daemons in this workspace, but tracked per RFC 6793).
    pub four_octet_as: bool,
    /// Session type, fixed by configuration.
    pub peer_type: PeerType,
}

impl Session {
    pub fn new(cfg: PeerCfg, local_asn: u32) -> Session {
        let peer_type = if cfg.peer_asn == local_asn {
            PeerType::Ibgp
        } else {
            PeerType::Ebgp
        };
        Session {
            cfg,
            state: FsmState::Idle,
            reader: MsgReader::new(),
            hold_time_ns: 0,
            last_recv: 0,
            four_octet_as: true,
            peer_type,
        }
    }

    pub fn is_established(&self) -> bool {
        self.state == FsmState::Established
    }

    /// ASN width for UPDATE codec on this session.
    pub fn asn_width(&self) -> usize {
        if self.four_octet_as {
            4
        } else {
            2
        }
    }

    /// Reset to Idle, dropping any partial input.
    pub fn reset(&mut self) {
        self.state = FsmState::Idle;
        self.reader = MsgReader::new();
        self.hold_time_ns = 0;
    }

    /// Process a received OPEN: negotiate parameters, move to OpenConfirm.
    /// Returns an error string when the OPEN is unacceptable (wrong ASN).
    pub fn handle_open(&mut self, open: &OpenMsg, proposed_hold_secs: u16) -> Result<(), String> {
        let claimed = open.negotiated_asn();
        if claimed != self.cfg.peer_asn {
            return Err(format!("peer claims AS{claimed}, configured AS{}", self.cfg.peer_asn));
        }
        self.four_octet_as = open.supports_four_octet_as();
        let hold = open.hold_time.min(proposed_hold_secs);
        self.hold_time_ns = u64::from(hold) * 1_000_000_000;
        self.state = FsmState::OpenConfirm;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkId;

    fn cfg() -> PeerCfg {
        PeerCfg {
            link: LinkId(0),
            peer_addr: 9,
            peer_asn: 65002,
            rr_client: false,
        }
    }

    #[test]
    fn session_type_from_asns() {
        let s = Session::new(cfg(), 65001);
        assert_eq!(s.peer_type, PeerType::Ebgp);
        let s = Session::new(PeerCfg { peer_asn: 65001, ..cfg() }, 65001);
        assert_eq!(s.peer_type, PeerType::Ibgp);
    }

    #[test]
    fn open_negotiates_minimum_hold_time() {
        let mut s = Session::new(cfg(), 65001);
        s.state = FsmState::OpenSent;
        let open = OpenMsg::standard(65002, 30, 9);
        s.handle_open(&open, 90).unwrap();
        assert_eq!(s.state, FsmState::OpenConfirm);
        assert_eq!(s.hold_time_ns, 30_000_000_000);
    }

    #[test]
    fn open_with_wrong_asn_rejected() {
        let mut s = Session::new(cfg(), 65001);
        let open = OpenMsg::standard(65099, 90, 9);
        assert!(s.handle_open(&open, 90).is_err());
        assert_ne!(s.state, FsmState::OpenConfirm);
    }

    #[test]
    fn reset_clears_reader_and_state() {
        let mut s = Session::new(cfg(), 65001);
        s.state = FsmState::Established;
        s.reader.push(&[0xff; 10]);
        s.reset();
        assert_eq!(s.state, FsmState::Idle);
        assert_eq!(s.reader.buffered(), 0);
    }
}
