//! Daemon configuration.

use igp::SharedIgp;
use netsim::LinkId;
use rpki::Roa;
use xbgp_core::{Engine, Manifest};
use xbgp_obs::trace::TraceConfig;
use xbgp_wire::Ipv4Prefix;

/// One configured BGP neighbor, reached over a netsim link.
#[derive(Debug, Clone)]
pub struct PeerCfg {
    /// The simulator link this neighbor is reached over.
    pub link: LinkId,
    /// The neighbor's address (doubles as its expected BGP identifier).
    pub peer_addr: u32,
    /// The neighbor's AS number; equal to ours ⇒ iBGP session.
    pub peer_asn: u32,
    /// Treat this iBGP neighbor as a route-reflection client.
    pub rr_client: bool,
}

/// Full configuration of one FIR daemon instance.
pub struct FirConfig {
    pub asn: u32,
    /// BGP identifier; also this router's address in the simulation.
    pub router_id: u32,
    /// Hold time proposed in OPEN (seconds). Keepalives at a third of the
    /// negotiated value.
    pub hold_time_secs: u16,
    pub peers: Vec<PeerCfg>,
    /// Enable native RFC 4456 route reflection (ORIGINATOR_ID and
    /// CLUSTER_LIST handling). Disabled when the paper's §3.2 extension
    /// provides reflection instead.
    pub native_rr: bool,
    /// Cluster id for reflection; defaults to the router id.
    pub cluster_id: Option<u32>,
    /// Load these ROAs into FIR's native trie-based origin validation.
    /// Validation tags routes; it does not discard them (§3.4).
    pub native_rov: Option<Vec<Roa>>,
    /// xBGP manifest to load into the VMM.
    pub xbgp: Option<Manifest>,
    /// ROAs backing the xBGP `rpki_check_origin` helper (the extension's
    /// own hash table, per §3.4 — distinct from the native trie).
    pub xbgp_roas: Option<Vec<Roa>>,
    /// Link-state IGP this router participates in (nexthop metrics).
    pub igp: Option<SharedIgp>,
    /// Routes to originate locally at startup: `(prefix, nexthop)`.
    pub originate: Vec<(Ipv4Prefix, u32)>,
    /// LOCAL_PREF assigned to routes learned over eBGP (default 100).
    pub default_local_pref: u32,
    /// Static key → value data exposed to extensions via `get_xtra`
    /// (router coordinates, cluster tables, …) in addition to manifest
    /// data.
    pub xtra: Vec<(String, Vec<u8>)>,
    /// Enable timing instrumentation: hook-site and VMM latency
    /// histograms fill in (two clock reads per hook). Counters are
    /// collected regardless.
    pub metrics: bool,
    /// Route-scoped tracing: attach a flight recorder with this sampling
    /// and shard configuration. `None` (the default) records nothing and
    /// keeps the hot path trace-free.
    pub trace: Option<TraceConfig>,
    /// Enable the VM execution profiler (`xbgp_prof_*` metric series).
    pub profile: bool,
    /// Execution engine for extension bytecode: the stepping interpreter
    /// (default) or the block-compiled engine. Bit-for-bit identical
    /// routing outcomes either way; only throughput differs.
    pub engine: Engine,
    /// Disable delta recomputation: mark *every* net dirty at the end of
    /// each UPDATE batch, re-deciding the full table. Byte-identical
    /// outcomes to the incremental default — this exists as the ablation
    /// baseline for the churn benchmarks.
    pub full_recompute: bool,
}

impl FirConfig {
    /// A minimal configuration with mandatory fields; everything else off.
    pub fn new(asn: u32, router_id: u32) -> FirConfig {
        FirConfig {
            asn,
            router_id,
            hold_time_secs: 90,
            peers: Vec::new(),
            native_rr: false,
            cluster_id: None,
            native_rov: None,
            xbgp: None,
            xbgp_roas: None,
            igp: None,
            originate: Vec::new(),
            default_local_pref: 100,
            xtra: Vec::new(),
            metrics: false,
            trace: None,
            profile: false,
            engine: Engine::default(),
            full_recompute: false,
        }
    }

    /// Turn on timing instrumentation (see the `metrics` field).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Attach a route-scoped flight recorder (see the `trace` field).
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Turn on the VM execution profiler (see the `profile` field).
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Select the bytecode execution engine (see the `engine` field).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Run the full-recompute decision baseline (see the
    /// `full_recompute` field).
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self
    }

    /// Add a neighbor (the unified [`xbgp_driver::DaemonSpec`] builder
    /// vocabulary; wren spells this identically).
    pub fn neighbor(mut self, link: LinkId, peer_addr: u32, peer_asn: u32) -> Self {
        xbgp_obs::debug!("fir {}: neighbor {peer_addr} (AS{peer_asn})", self.router_id);
        self.peers.push(PeerCfg { link, peer_addr, peer_asn, rr_client: false });
        self
    }

    /// Add a route-reflection client neighbor (iBGP).
    pub fn rr_client(mut self, link: LinkId, peer_addr: u32, peer_asn: u32) -> Self {
        xbgp_obs::debug!("fir {}: rr-client {peer_addr} (AS{peer_asn})", self.router_id);
        self.peers.push(PeerCfg { link, peer_addr, peer_asn, rr_client: true });
        self
    }

    /// Add a neighbor.
    #[deprecated(since = "0.1.0", note = "renamed to `neighbor()` (unified builder vocabulary)")]
    pub fn peer(self, link: LinkId, peer_addr: u32, peer_asn: u32) -> Self {
        self.neighbor(link, peer_addr, peer_asn)
    }

    /// Add a route-reflection client neighbor (iBGP).
    #[deprecated(since = "0.1.0", note = "renamed to `rr_client()` (unified builder vocabulary)")]
    pub fn rr_client_peer(self, link: LinkId, peer_addr: u32, peer_asn: u32) -> Self {
        self.rr_client(link, peer_addr, peer_asn)
    }

    /// Build a FIR configuration from the unified driver-seam spec (see
    /// [`xbgp_driver::DaemonSpec`]): one neighbor vocabulary, fir field
    /// names resolved here and nowhere else.
    pub fn from_spec(spec: xbgp_driver::DaemonSpec) -> FirConfig {
        let mut cfg = FirConfig::new(spec.asn, spec.router_id);
        cfg.hold_time_secs = spec.hold_time_secs;
        for n in &spec.neighbors {
            cfg = if n.rr_client {
                cfg.rr_client(n.link, n.addr, n.asn)
            } else {
                cfg.neighbor(n.link, n.addr, n.asn)
            };
        }
        cfg.native_rr = spec.native_rr;
        cfg.cluster_id = spec.cluster_id;
        cfg.native_rov = spec.native_rov;
        cfg.xbgp = spec.xbgp;
        cfg.xbgp_roas = spec.xbgp_roas;
        cfg.igp = spec.igp;
        cfg.originate = spec.originate;
        cfg.default_local_pref = spec.default_local_pref;
        cfg.xtra = spec.xtra;
        cfg.metrics = spec.metrics;
        cfg.trace = spec.trace;
        cfg.profile = spec.profile;
        cfg.engine = spec.engine;
        cfg.full_recompute = spec.full_recompute;
        cfg
    }
}
