//! The FIR daemon: netsim node, FSM driver, RIB pipeline, xBGP points.

use crate::attrs::{AttrInternTable, FirAttrs};
use crate::config::FirConfig;
use crate::rib::{peer_slot, AdjRibOut, DecisionCtx, RibEntry, RibStore, RouteSource, LOCAL_SLOT};
use crate::session::{FsmState, Session};
use crate::xbgp_glue::{AttrAccess, FirXbgpCtx};
use netsim::{LinkId, Node, NodeCtx};
use rpki::{RoaHashTable, RoaTable, RoaTrie, RovState};
use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;
use xbgp_core::api::{self, InsertionPoint, PeerInfo, PeerType};
use xbgp_core::{Manifest, Vmm, VmmOutcome};
use xbgp_obs::trace::{pack_prefix, TraceConfig, TraceDump, TraceKind, NO_EXT, NO_POINT};
use xbgp_obs::{Histogram, Snapshot};
use xbgp_rib::{push_rib_gauges, DirtySet, RibCounters};
use xbgp_wire::attr::encode_attrs;
use xbgp_wire::{Ipv4Prefix, Message, NotificationMsg, OpenMsg, UpdateMsg};

/// Counters and timestamps the harness reads off a daemon.
#[derive(Debug, Default, Clone)]
pub struct DaemonStats {
    pub updates_rx: u64,
    pub prefixes_rx: u64,
    pub withdrawals_rx: u64,
    pub updates_tx: u64,
    pub prefixes_tx: u64,
    pub withdrawals_tx: u64,
    /// Virtual time of the first received UPDATE.
    pub first_update_rx: Option<u64>,
    /// Virtual time of the most recent Loc-RIB change.
    pub last_route_change: Option<u64>,
    pub sessions_established: u64,
    pub rov_valid: u64,
    pub rov_invalid: u64,
    pub rov_not_found: u64,
    /// Routes rejected by xBGP filters.
    pub xbgp_rejected: u64,
    /// Filter-point runs where an extension accepted the route (a
    /// `Value` other than reject).
    pub xbgp_accepted: u64,
    /// Decision-point runs resolved by an extension instead of the
    /// native RFC 4271 comparison.
    pub xbgp_decisions: u64,
    /// Session FSM transitions, indexed by target state
    /// ([`FSM_TO_OPEN_SENT`] …).
    pub fsm_transitions: [u64; 4],
}

/// Indices into [`DaemonStats::fsm_transitions`], one per target state.
pub const FSM_TO_OPEN_SENT: usize = 0;
pub const FSM_TO_OPEN_CONFIRM: usize = 1;
pub const FSM_TO_ESTABLISHED: usize = 2;
pub const FSM_TO_IDLE: usize = 3;

/// Label values for the transition counters, matching the indices above.
const FSM_STATE_NAMES: [&str; 4] = ["open_sent", "open_confirm", "established", "idle"];

/// Dense index of an insertion point into the hook-latency table.
fn pindex(p: InsertionPoint) -> usize {
    InsertionPoint::ALL.iter().position(|q| *q == p).expect("point in ALL")
}

/// Timer token layout: `peer_index * 2 + kind`.
const TIMER_KEEPALIVE: u64 = 0;
const TIMER_HOLD: u64 = 1;

/// The FIR BGP daemon. See the crate documentation.
pub struct FirDaemon {
    cfg: FirConfig,
    sessions: Vec<Session>,
    link_to_peer: HashMap<LinkId, usize>,
    intern: AttrInternTable,
    /// Merged Adj-RIB-In + Loc-RIB: one trie node per net holds every
    /// source's candidate (slot 0 = locally originated, slot `i+1` =
    /// peer `i`) and the committed best route.
    rib: RibStore,
    /// Prefixes touched by the current UPDATE batch and awaiting delta
    /// re-decision (drained in prefix order before each flush).
    dirty: DirtySet,
    /// Shared `xbgp_rib_*` churn counters.
    rib_counters: RibCounters,
    adj_out: Vec<AdjRibOut>,
    vmm: Vmm,
    /// FIR's native origin validation: the trie (§3.4).
    rov_trie: Option<RoaTrie>,
    /// The xBGP-layer ROA store (hash) for `rpki_check_origin`.
    xbgp_rov: Option<RoaHashTable>,
    pub stats: DaemonStats,
    pub logs: Vec<String>,
    /// Routes added by extensions via `rib_add_route`.
    ext_rib_adds: Vec<(Ipv4Prefix, u32)>,
    /// Timing instrumentation on? (mirrors `FirConfig::metrics`).
    metrics: bool,
    /// Wall-clock nanoseconds spent around each insertion-point hook,
    /// including context marshalling — a superset of the VMM's own chain
    /// timing. Indexed by [`pindex`]; filled only when `metrics` is set.
    hook_ns: [Histogram; 5],
}

impl FirDaemon {
    /// Build a daemon from its configuration. Panics on a malformed xBGP
    /// manifest — configuration errors are fatal at startup, like a daemon
    /// refusing to start on a bad config file.
    pub fn new(cfg: FirConfig) -> FirDaemon {
        let mut vmm = match &cfg.xbgp {
            Some(m) => Vmm::from_manifest(m).expect("invalid xBGP manifest"),
            None => Vmm::from_manifest(&Manifest::new()).expect("empty manifest"),
        };
        if cfg.metrics {
            vmm.enable_metrics();
        }
        if let Some(tc) = cfg.trace {
            vmm.enable_trace(tc);
        }
        if cfg.profile {
            vmm.enable_profile();
        }
        vmm.set_engine(cfg.engine);
        let rov_trie = cfg.native_rov.as_ref().map(|roas| {
            let mut t = RoaTrie::new();
            for r in roas {
                t.insert(*r);
            }
            t
        });
        let xbgp_rov = cfg.xbgp_roas.as_ref().map(|roas| {
            let mut t = RoaHashTable::new();
            for r in roas {
                t.insert(*r);
            }
            t
        });
        let sessions: Vec<Session> =
            cfg.peers.iter().map(|p| Session::new(p.clone(), cfg.asn)).collect();
        let link_to_peer = cfg.peers.iter().enumerate().map(|(i, p)| (p.link, i)).collect();
        let n = sessions.len();
        let metrics = cfg.metrics;
        FirDaemon {
            cfg,
            sessions,
            link_to_peer,
            intern: AttrInternTable::new(),
            rib: RibStore::new(n + 1),
            dirty: DirtySet::new(),
            rib_counters: RibCounters::new(),
            adj_out: (0..n).map(|_| AdjRibOut::default()).collect(),
            vmm,
            rov_trie,
            xbgp_rov,
            stats: DaemonStats::default(),
            logs: Vec::new(),
            ext_rib_adds: Vec::new(),
            metrics,
            hook_ns: Default::default(),
        }
    }

    /// Turn on timing instrumentation at runtime (same effect as
    /// [`FirConfig::metrics`](crate::config::FirConfig)).
    pub fn enable_metrics(&mut self) {
        self.metrics = true;
        self.vmm.enable_metrics();
    }

    /// Attach a route-scoped flight recorder at runtime (same effect as
    /// [`FirConfig::trace`](crate::config::FirConfig)).
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        self.vmm.enable_trace(cfg);
    }

    /// Turn on the VM execution profiler at runtime.
    pub fn enable_profile(&mut self) {
        self.vmm.enable_profile();
    }

    /// Drain the flight recorder into a mergeable dump (`None` when
    /// tracing is off).
    pub fn take_trace(&mut self) -> Option<TraceDump> {
        self.vmm.take_trace()
    }

    /// Start a hook timer when instrumentation is on.
    fn hook_start(&self) -> Option<Instant> {
        self.metrics.then(Instant::now)
    }

    /// Record the elapsed time of one insertion-point hook.
    fn hook_end(&self, point: InsertionPoint, start: Option<Instant>) {
        if let Some(t0) = start {
            self.hook_ns[pindex(point)].observe(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Full observability snapshot: daemon counters and gauges, hook-site
    /// latency histograms (when instrumentation is on) and the VMM's
    /// per-point / per-extension metrics, all labelled `daemon="bgp-fir"`.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        let st = &self.stats;
        s.push_counter("xbgp_daemon_updates_rx_total", &[], st.updates_rx);
        s.push_counter("xbgp_daemon_updates_tx_total", &[], st.updates_tx);
        s.push_counter("xbgp_daemon_prefixes_rx_total", &[], st.prefixes_rx);
        s.push_counter("xbgp_daemon_prefixes_tx_total", &[], st.prefixes_tx);
        s.push_counter("xbgp_daemon_withdrawals_rx_total", &[], st.withdrawals_rx);
        s.push_counter("xbgp_daemon_withdrawals_tx_total", &[], st.withdrawals_tx);
        s.push_counter("xbgp_daemon_sessions_established_total", &[], st.sessions_established);
        for (state, n) in [
            ("valid", st.rov_valid),
            ("invalid", st.rov_invalid),
            ("not_found", st.rov_not_found),
        ] {
            s.push_counter("xbgp_daemon_rov_total", &[("state", state)], n);
        }
        s.push_counter("xbgp_daemon_filter_rejects_total", &[], st.xbgp_rejected);
        s.push_counter("xbgp_daemon_filter_accepts_total", &[], st.xbgp_accepted);
        s.push_counter("xbgp_daemon_decision_overrides_total", &[], st.xbgp_decisions);
        for (i, to) in FSM_STATE_NAMES.iter().enumerate() {
            s.push_counter(
                "xbgp_daemon_fsm_transitions_total",
                &[("to", to)],
                st.fsm_transitions[i],
            );
        }
        s.push_gauge("xbgp_daemon_loc_rib_size", &[], self.rib.loc_len() as i64);
        s.push_gauge("xbgp_daemon_adj_rib_in_size", &[], self.rib.adj_in_len() as i64);
        self.rib_counters.push(&mut s);
        push_rib_gauges(&mut s, self.rib.adj_in_len(), self.rib.loc_len(), self.dirty.len());
        s.push_gauge(
            "xbgp_daemon_adj_rib_out_size",
            &[],
            self.adj_out.iter().map(AdjRibOut::len).sum::<usize>() as i64,
        );
        s.push_gauge(
            "xbgp_daemon_sessions_up",
            &[],
            self.sessions.iter().filter(|s| s.is_established()).count() as i64,
        );
        s.push_gauge("xbgp_daemon_interned_attr_sets", &[], self.intern.len() as i64);
        if self.metrics {
            for p in InsertionPoint::ALL {
                s.push_histogram(
                    "xbgp_daemon_hook_ns",
                    &[("point", p.name())],
                    self.hook_ns[pindex(p)].snapshot(),
                );
            }
        }
        s.merge(self.vmm.metrics_snapshot())
            .expect("daemon and VMM share the bucket layout");
        s.with_labels(&[("daemon", "bgp-fir")])
    }

    /// The daemon's Loc-RIB size (for tests and the harness).
    pub fn loc_rib_len(&self) -> usize {
        self.rib.loc_len()
    }

    /// Best route for a prefix, if any.
    pub fn best_route(&self, prefix: &Ipv4Prefix) -> Option<&RibEntry> {
        self.rib.best(prefix)
    }

    /// All Loc-RIB prefixes, in prefix order (trie pre-order *is*
    /// `(addr, len)` order, so no sort is needed).
    pub fn loc_rib_prefixes(&self) -> Vec<Ipv4Prefix> {
        self.rib.iter_best().map(|(p, _)| p).collect()
    }

    /// Full Loc-RIB contents as `(prefix, wire-encoded best-route
    /// attributes)`, in prefix order straight off the trie. The wire form
    /// is `Send` and implementation-neutral, so per-shard dumps can cross
    /// threads and be compared byte-for-byte against a sequential run's
    /// dump.
    pub fn loc_rib_dump(&self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        self.rib
            .iter_best()
            .map(|(p, e)| (p, encode_attrs(&e.attrs.to_wire(), 4)))
            .collect()
    }

    /// Full-recompute oracle: re-derive every net's best route from the
    /// live candidates alone — ignoring the committed best the
    /// incremental engine maintains — and format the result exactly like
    /// [`loc_rib_dump`](Self::loc_rib_dump). At any quiescent point the
    /// two must be byte-identical; that invariant pins the incremental
    /// engine's correctness. Runs the same ③ `BGP_DECISION` extensions as
    /// the live path, so collect metrics snapshots *before* calling this
    /// (it advances the decision counters).
    pub fn oracle_loc_rib_dump(&mut self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        let mut out = Vec::new();
        for prefix in self.rib.net_prefixes() {
            let mut best: Option<RibEntry> = None;
            for (_, entry) in self.rib.candidates_cloned(&prefix) {
                if !self.eligible(&entry) {
                    continue;
                }
                best = match best {
                    None => Some(entry),
                    Some(cur) => {
                        if self.better(&entry, &cur) {
                            Some(entry)
                        } else {
                            Some(cur)
                        }
                    }
                };
            }
            if let Some(e) = best {
                out.push((prefix, encode_attrs(&e.attrs.to_wire(), 4)));
            }
        }
        out
    }

    /// Is the session with `peer_addr` established?
    pub fn session_established(&self, peer_addr: u32) -> bool {
        self.sessions.iter().any(|s| s.cfg.peer_addr == peer_addr && s.is_established())
    }

    /// Distinct interned attribute sets (exposes the attrhash behaviour).
    pub fn interned_attr_sets(&self) -> usize {
        self.intern.len()
    }

    /// xBGP per-extension statistics.
    pub fn xbgp_stats(&self) -> Vec<xbgp_core::vmm::ExtensionStats> {
        self.vmm.stats()
    }

    /// Read a block from an extension program's persistent memory.
    pub fn xbgp_shared_read(&self, group: &str, key: u64) -> Option<Vec<u8>> {
        self.vmm.shared_read(group, key)
    }

    /// The most recent extension fault, formatted, if any.
    pub fn xbgp_last_error(&self) -> Option<String> {
        self.vmm.last_error().map(|(n, e)| format!("{n}: {e}"))
    }

    fn cluster_id(&self) -> u32 {
        self.cfg.cluster_id.unwrap_or(self.cfg.router_id)
    }

    fn peer_info_for(&self, idx: usize) -> PeerInfo {
        let s = &self.sessions[idx];
        PeerInfo {
            router_id: s.cfg.peer_addr,
            asn: s.cfg.peer_asn,
            peer_type: s.peer_type,
            local_router_id: self.cfg.router_id,
            local_asn: self.cfg.asn,
            flags: if s.cfg.rr_client { api::PEER_FLAG_RR_CLIENT } else { 0 },
        }
    }

    /// Marshal a [`PeerInfo`]-shaped blob describing a route's *source*
    /// (passed as argument 0 to the outbound-filter and encode points).
    fn source_info_bytes(&self, src: &RouteSource) -> Vec<u8> {
        let mut flags = 0;
        if src.rr_client {
            flags |= api::PEER_FLAG_RR_CLIENT;
        }
        if src.local {
            flags |= api::PEER_FLAG_LOCAL;
        }
        let pi = PeerInfo {
            router_id: src.peer_addr,
            asn: src.peer_asn,
            peer_type: src.peer_type,
            local_router_id: self.cfg.router_id,
            local_asn: self.cfg.asn,
            flags,
        };
        pi.to_bytes().to_vec()
    }

    fn igp_metric_to(&self, nexthop: u32) -> u32 {
        match &self.cfg.igp {
            Some(igp) => igp.borrow().metric(self.cfg.router_id, nexthop),
            None => 0,
        }
    }

    fn nexthop_info(&self, attrs: &FirAttrs) -> api::NextHopInfo {
        let metric = self.igp_metric_to(attrs.next_hop);
        api::NextHopInfo {
            addr: attrs.next_hop,
            igp_metric: metric,
            reachable: metric != u32::MAX,
        }
    }

    // -----------------------------------------------------------------
    // Session machinery
    // -----------------------------------------------------------------

    fn send_open(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let open = OpenMsg::standard(self.cfg.asn, self.cfg.hold_time_secs, self.cfg.router_id);
        let frame = Message::Open(open).encode(4).expect("OPEN encodes");
        ctx.send(self.sessions[idx].cfg.link, &frame);
        self.sessions[idx].state = FsmState::OpenSent;
        self.stats.fsm_transitions[FSM_TO_OPEN_SENT] += 1;
    }

    fn send_msg(&mut self, ctx: &mut NodeCtx<'_>, idx: usize, msg: &Message) {
        let width = self.sessions[idx].asn_width();
        match msg.encode(width) {
            Ok(frame) => ctx.send(self.sessions[idx].cfg.link, &frame),
            Err(e) => self.logs.push(format!("encode error to peer {idx}: {e}")),
        }
    }

    fn establish(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        self.sessions[idx].state = FsmState::Established;
        self.stats.fsm_transitions[FSM_TO_ESTABLISHED] += 1;
        self.sessions[idx].last_recv = ctx.now();
        self.stats.sessions_established += 1;
        let hold = self.sessions[idx].hold_time_ns;
        if hold > 0 {
            ctx.set_timer(hold / 3, (idx as u64) * 2 + TIMER_KEEPALIVE);
            ctx.set_timer(hold / 3, (idx as u64) * 2 + TIMER_HOLD);
        }
        // Initial route dump: advertise the whole Loc-RIB to this peer.
        // Trie iteration is already prefix-ordered, so the wire order (and
        // with it UPDATE batching and trace timelines) is deterministic
        // without a sort.
        let routes: Vec<(Ipv4Prefix, RibEntry)> =
            self.rib.iter_best().map(|(p, e)| (p, e.clone())).collect();
        let mut pending = OutboundBatches::default();
        for (prefix, entry) in routes {
            self.export_one(idx, prefix, &entry, &mut pending);
        }
        self.flush_outbound(ctx, idx, pending);
    }

    fn teardown(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        if self.sessions[idx].state == FsmState::Idle {
            return;
        }
        self.sessions[idx].reset();
        self.stats.fsm_transitions[FSM_TO_IDLE] += 1;
        self.adj_out[idx] = AdjRibOut::default();
        let slot = peer_slot(idx);
        self.rib_counters.withdrawals += self.rib.slot_len(slot) as u64;
        // Without the delta guarantees only best-affected nets need a
        // re-decision; with an IGP or a decision extension every net the
        // peer contributed to must be rescanned (see `delta_safe`).
        let lost = self.rib.flush_slot(slot, !self.delta_safe());
        for prefix in lost {
            self.dirty.mark(prefix);
        }
        let mut pending_per_peer: Vec<OutboundBatches> =
            (0..self.sessions.len()).map(|_| OutboundBatches::default()).collect();
        self.drain_dirty(ctx, &mut pending_per_peer);
        self.flush_all(ctx, pending_per_peer);
    }

    // -----------------------------------------------------------------
    // Inbound pipeline
    // -----------------------------------------------------------------

    fn handle_update(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        idx: usize,
        upd: UpdateMsg,
        raw_body: Vec<u8>,
    ) {
        self.stats.updates_rx += 1;
        if self.stats.first_update_rx.is_none() {
            self.stats.first_update_rx = Some(ctx.now());
        }
        // Trace-id allocation happens at UPDATE ingest, before any route
        // is parsed, so every downstream event carries the same scope.
        if let Some(t) = self.vmm.tracer_mut() {
            t.set_now(ctx.now());
            t.on_ingest(idx as u64, upd.nlri.len() as u64);
        }

        let mut pending_per_peer: Vec<OutboundBatches> =
            (0..self.sessions.len()).map(|_| OutboundBatches::default()).collect();

        // Withdrawals first (RFC 4271 §3.1 ordering within an UPDATE).
        // Each removal only *marks* its prefix; the batched re-decision
        // happens once, in `drain_dirty`, before the flush. A removal
        // that provably cannot change the best route (the committed best
        // came from another source, and the comparison order is stable —
        // see `delta_safe`) is not marked at all.
        let slot = peer_slot(idx);
        let delta_safe = self.delta_safe();
        for prefix in &upd.withdrawn {
            self.stats.withdrawals_rx += 1;
            if self.rib.remove(prefix, slot).is_some() {
                self.rib_counters.withdrawals += 1;
                let best_slot = self.rib.best_slot(prefix);
                if !delta_safe || best_slot.is_none() || best_slot == Some(slot) {
                    self.dirty.mark(*prefix);
                }
            }
        }

        if !upd.nlri.is_empty() {
            match FirAttrs::from_wire(&upd.attrs) {
                Ok(attrs) => {
                    self.install_routes(ctx, idx, attrs, &upd.nlri, raw_body, &mut pending_per_peer)
                }
                Err(e) => {
                    self.logs.push(format!("malformed UPDATE from peer {idx}: {e}"));
                    // Commit the deferred withdrawal decisions before the
                    // teardown below flushes its own state; the pending
                    // batches themselves are dropped, as they always were
                    // on this path.
                    self.drain_dirty(ctx, &mut pending_per_peer);
                    self.send_msg(
                        ctx,
                        idx,
                        &Message::Notification(NotificationMsg::from_error(&e)),
                    );
                    self.teardown(ctx, idx);
                    return;
                }
            }
        }
        self.drain_dirty(ctx, &mut pending_per_peer);
        self.flush_all(ctx, pending_per_peer);
    }

    fn install_routes(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        idx: usize,
        mut attrs: FirAttrs,
        nlri: &[Ipv4Prefix],
        raw_body: Vec<u8>,
        pending_per_peer: &mut [OutboundBatches],
    ) {
        let peer_info = self.peer_info_for(idx);
        let peer_type = self.sessions[idx].peer_type;

        // ① BGP_RECEIVE_MESSAGE: the extension sees the raw message and
        // may attach attributes to the routes being parsed.
        if self.vmm.has_extensions(InsertionPoint::BgpReceiveMessage) {
            let t0 = self.hook_start();
            let hook_args = [raw_body.as_slice()];
            let mut hctx = FirXbgpCtx {
                peer: peer_info,
                args: &hook_args,
                attrs: AttrAccess::Mut(&mut attrs),
                prefix: None,
                nexthop: None,
                xtra: &self.cfg.xtra,
                out_buf: None,
                rov: self.xbgp_rov.as_ref(),
                rib_adds: &mut self.ext_rib_adds,
                logs: &mut self.logs,
            };
            let _ = self.vmm.run(InsertionPoint::BgpReceiveMessage, &mut hctx);
            self.hook_end(InsertionPoint::BgpReceiveMessage, t0);
        }

        // Sender-side loop detection.
        if peer_type == PeerType::Ebgp && attrs.as_path.contains(self.cfg.asn) {
            return; // AS loop: drop silently (RFC 4271 §9.1.2).
        }
        if peer_type == PeerType::Ibgp && self.cfg.native_rr {
            if attrs.originator_id == Some(self.cfg.router_id) {
                return;
            }
            if attrs.cluster_list.contains(&self.cluster_id()) {
                return;
            }
        }

        let source = RouteSource {
            peer_addr: self.sessions[idx].cfg.peer_addr,
            peer_asn: self.sessions[idx].cfg.peer_asn,
            peer_type,
            rr_client: self.sessions[idx].cfg.rr_client,
            local: false,
        };
        let shared = self.intern.intern(attrs);
        let inbound_ext = self.vmm.has_extensions(InsertionPoint::BgpInboundFilter);
        let nexthop = self.nexthop_info(&shared);

        for prefix in nlri {
            self.stats.prefixes_rx += 1;
            // One sampling decision per route; a sampled route records
            // its whole decode → decision → propagate path.
            if let Some(t) = self.vmm.tracer_mut() {
                t.begin_route(pack_prefix(prefix.addr(), prefix.len()));
            }
            let mut entry_attrs = Rc::clone(&shared);

            // ② BGP_INBOUND_FILTER (per route, copy-on-write attributes).
            if inbound_ext {
                let t0 = self.hook_start();
                let mut modified = None;
                let mut hctx = FirXbgpCtx {
                    peer: peer_info,
                    args: &[],
                    attrs: AttrAccess::Cow { base: &shared, modified: &mut modified },
                    prefix: Some(*prefix),
                    nexthop: Some(nexthop),
                    xtra: &self.cfg.xtra,
                    out_buf: None,
                    rov: self.xbgp_rov.as_ref(),
                    rib_adds: &mut self.ext_rib_adds,
                    logs: &mut self.logs,
                };
                let outcome = self.vmm.run(InsertionPoint::BgpInboundFilter, &mut hctx);
                self.hook_end(InsertionPoint::BgpInboundFilter, t0);
                match outcome {
                    VmmOutcome::Value(v) if v == api::FILTER_REJECT => {
                        self.stats.xbgp_rejected += 1;
                        self.remove_candidate_and_decide(
                            ctx,
                            *prefix,
                            peer_slot(idx),
                            pending_per_peer,
                        );
                        // Close the route scope on the early-reject path
                        // too: a leaked scope would let the next route's
                        // events inherit this route's attribution.
                        if let Some(t) = self.vmm.tracer_mut() {
                            t.end_route();
                        }
                        continue;
                    }
                    VmmOutcome::Value(_) => self.stats.xbgp_accepted += 1,
                    VmmOutcome::Fallback => {}
                    // `on_fault = abort`: the filter failed, so fail
                    // closed — reject the route rather than widen policy.
                    VmmOutcome::Aborted => {
                        self.stats.xbgp_rejected += 1;
                        self.remove_candidate_and_decide(
                            ctx,
                            *prefix,
                            peer_slot(idx),
                            pending_per_peer,
                        );
                        if let Some(t) = self.vmm.tracer_mut() {
                            t.end_route();
                        }
                        continue;
                    }
                }
                if let Some(m) = modified {
                    entry_attrs = self.intern.intern(m);
                }
            }

            // Native import policy: origin validation tags (never drops).
            let rov = self.rov_trie.as_ref().map(|trie| {
                let state = match entry_attrs.as_path.origin_asn() {
                    Some(origin) => trie.validate(*prefix, origin),
                    None => RovState::NotFound,
                };
                match state {
                    RovState::Valid => self.stats.rov_valid += 1,
                    RovState::Invalid => self.stats.rov_invalid += 1,
                    RovState::NotFound => self.stats.rov_not_found += 1,
                }
                state
            });

            self.rib
                .insert(*prefix, peer_slot(idx), RibEntry { attrs: entry_attrs, source, rov });
            self.rib_counters.updates_applied += 1;
            self.decide_after_announce(ctx, *prefix, peer_slot(idx), pending_per_peer);
            // Every `begin_route` above is matched here or on the reject/
            // abort `continue`s, so no scope outlives its route.
            if let Some(t) = self.vmm.tracer_mut() {
                t.end_route();
            }
        }

        // Routes installed by extensions through `rib_add_route`.
        let adds: Vec<(Ipv4Prefix, u32)> = self.ext_rib_adds.drain(..).collect();
        for (prefix, nexthop) in adds {
            let attrs = self.intern.intern(FirAttrs { next_hop: nexthop, ..FirAttrs::default() });
            self.rib.insert(
                prefix,
                LOCAL_SLOT,
                RibEntry {
                    attrs,
                    source: RouteSource::local(self.cfg.router_id, self.cfg.asn),
                    rov: None,
                },
            );
            self.rib_counters.updates_applied += 1;
            self.decide_after_announce(ctx, prefix, LOCAL_SLOT, pending_per_peer);
        }
    }

    // -----------------------------------------------------------------
    // Decision process
    // -----------------------------------------------------------------

    /// Is `candidate` preferred over `best`? Consults the ③ BGP_DECISION
    /// insertion point before the native RFC 4271 comparison.
    fn better(&mut self, candidate: &RibEntry, best: &RibEntry) -> bool {
        if self.vmm.has_extensions(InsertionPoint::BgpDecision) {
            let best_wire = encode_attrs(&best.attrs.to_wire(), 4);
            let peer = PeerInfo {
                router_id: candidate.source.peer_addr,
                asn: candidate.source.peer_asn,
                peer_type: candidate.source.peer_type,
                local_router_id: self.cfg.router_id,
                local_asn: self.cfg.asn,
                flags: 0,
            };
            let nexthop = self.nexthop_info(&candidate.attrs);
            let t0 = self.hook_start();
            let hook_args = [best_wire.as_slice()];
            let mut hctx = FirXbgpCtx {
                peer,
                args: &hook_args,
                attrs: AttrAccess::Read(&candidate.attrs),
                prefix: None,
                nexthop: Some(nexthop),
                xtra: &self.cfg.xtra,
                out_buf: None,
                rov: self.xbgp_rov.as_ref(),
                rib_adds: &mut self.ext_rib_adds,
                logs: &mut self.logs,
            };
            let outcome = self.vmm.run(InsertionPoint::BgpDecision, &mut hctx);
            self.hook_end(InsertionPoint::BgpDecision, t0);
            match outcome {
                VmmOutcome::Value(v) => {
                    self.stats.xbgp_decisions += 1;
                    return v == api::DECISION_PREFER_NEW;
                }
                // The decision point has a sound native answer, so both
                // fallback and abort degrade to the RFC 4271 comparison.
                VmmOutcome::Fallback | VmmOutcome::Aborted => {}
            }
        }
        let igp = &|nh: u32| self.igp_metric_to(nh);
        let dctx = DecisionCtx {
            igp_metric: igp,
            default_local_pref: self.cfg.default_local_pref,
        };
        crate::rib::native_better(candidate, best, &dctx)
    }

    /// Can the incremental engine trust pairwise comparisons against the
    /// committed best? The native RFC 4271 comparison is a strict total
    /// order on distinct sources *as long as the per-entry keys are
    /// stable between touches* — an attached IGP can re-cost nexthops
    /// (the metric tier) mid-run, and a ③ `BGP_DECISION` extension may
    /// fold over the candidate list in an order-dependent way. In either
    /// case every touched prefix falls back to a full per-prefix scan,
    /// the pre-incremental behaviour.
    fn delta_safe(&self) -> bool {
        self.cfg.igp.is_none() && !self.vmm.has_extensions(InsertionPoint::BgpDecision)
    }

    /// Is `entry` a usable candidate? iBGP-learned routes need a
    /// reachable nexthop in the IGP; local routes always qualify.
    fn eligible(&self, entry: &RibEntry) -> bool {
        entry.source.local
            || !(self.cfg.igp.is_some()
                && entry.source.peer_type == PeerType::Ibgp
                && self.igp_metric_to(entry.attrs.next_hop) == u32::MAX)
    }

    /// Decide `prefix` after its candidate at `slot` was just announced
    /// or replaced. The fast path — the common case under churn — is a
    /// single pairwise comparison against the committed best; anything
    /// that invalidates it (the prefix is already dirty, the announce
    /// replaced the best's own route, there is no committed best yet, or
    /// `delta_safe` is off) falls back to a full scan.
    fn decide_after_announce(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        prefix: Ipv4Prefix,
        slot: usize,
        pending_per_peer: &mut [OutboundBatches],
    ) {
        // An inline decision supersedes a pending deferred one: a
        // withdraw + re-announce of the same prefix within one batch is
        // decided exactly once, here.
        let was_dirty = self.dirty.unmark(&prefix);
        if was_dirty || !self.delta_safe() {
            self.run_decision(ctx, prefix, pending_per_peer);
            return;
        }
        let Some((best_slot, incumbent)) = self.rib.best_pair_cloned(&prefix) else {
            self.run_decision(ctx, prefix, pending_per_peer);
            return;
        };
        if best_slot == slot {
            // The best route's own source re-announced: the replacement
            // may be worse, so the whole list competes again.
            self.run_decision(ctx, prefix, pending_per_peer);
            return;
        }
        let cand = self.rib.candidate(&prefix, slot).expect("candidate just inserted").clone();
        let wins = {
            let igp = &|nh: u32| self.igp_metric_to(nh);
            let dctx = DecisionCtx {
                igp_metric: igp,
                default_local_pref: self.cfg.default_local_pref,
            };
            crate::rib::native_better(&cand, &incumbent, &dctx)
        };
        if wins {
            self.commit(ctx, prefix, Some((slot, cand)), pending_per_peer);
        } else if let Some(t) = self.vmm.tracer_mut() {
            // The candidate lost to the incumbent: no state change, but
            // the decision still happened for trace purposes.
            t.record(
                TraceKind::Decision,
                NO_POINT,
                NO_EXT,
                pack_prefix(prefix.addr(), prefix.len()),
                0,
            );
        }
    }

    /// Remove the candidate at `slot` (inbound-filter reject/abort) and
    /// re-decide if the removal could have mattered.
    fn remove_candidate_and_decide(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        prefix: Ipv4Prefix,
        slot: usize,
        pending_per_peer: &mut [OutboundBatches],
    ) {
        if self.rib.remove(&prefix, slot).is_none() {
            return;
        }
        self.rib_counters.withdrawals += 1;
        let best_slot = self.rib.best_slot(&prefix);
        if self.dirty.contains(&prefix)
            || !self.delta_safe()
            || best_slot.is_none()
            || best_slot == Some(slot)
        {
            // Decide inline (not deferred): this runs inside the route's
            // trace scope, where the pre-incremental engine recorded its
            // decision too.
            self.dirty.unmark(&prefix);
            self.run_decision(ctx, prefix, pending_per_peer);
        } else if let Some(t) = self.vmm.tracer_mut() {
            t.record(
                TraceKind::Decision,
                NO_POINT,
                NO_EXT,
                pack_prefix(prefix.addr(), prefix.len()),
                0,
            );
        }
    }

    /// Re-decide every prefix the current batch touched, in prefix
    /// order. Under `full_recompute` (the ablation baseline) every net
    /// in the store is re-decided instead.
    fn drain_dirty(&mut self, ctx: &mut NodeCtx<'_>, pending_per_peer: &mut [OutboundBatches]) {
        if self.cfg.full_recompute {
            for prefix in self.rib.net_prefixes() {
                self.dirty.mark(prefix);
            }
        }
        if self.dirty.is_empty() {
            return;
        }
        let batch = self.dirty.drain_ordered();
        self.rib_counters.delta_batch_size.observe(batch.len() as u64);
        for prefix in batch {
            self.run_decision(ctx, prefix, pending_per_peer);
        }
    }

    /// Recompute the best route for `prefix` from the full candidate
    /// list and commit the outcome.
    fn run_decision(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        prefix: Ipv4Prefix,
        pending_per_peer: &mut [OutboundBatches],
    ) {
        // Scan candidates in slot order: the local route first, then each
        // peer — the same order the pre-incremental engine used.
        let mut best: Option<(usize, RibEntry)> = None;
        for (slot, entry) in self.rib.candidates_cloned(&prefix) {
            if !self.eligible(&entry) {
                continue;
            }
            best = match best {
                None => Some((slot, entry)),
                Some((bs, cur)) => {
                    if self.better(&entry, &cur) {
                        Some((slot, entry))
                    } else {
                        Some((bs, cur))
                    }
                }
            };
        }
        self.commit(ctx, prefix, best, pending_per_peer);
    }

    /// Compare a decision outcome against the committed best; when it
    /// changed, store the new best and queue the resulting
    /// advertisements/withdrawals.
    fn commit(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        prefix: Ipv4Prefix,
        winner: Option<(usize, RibEntry)>,
        pending_per_peer: &mut [OutboundBatches],
    ) {
        let changed = match (self.rib.best(&prefix), &winner) {
            (None, None) => false,
            (Some(o), Some((_, n))) => !Rc::ptr_eq(&o.attrs, &n.attrs) || o.source != n.source,
            _ => true,
        };
        if let Some(t) = self.vmm.tracer_mut() {
            t.record(
                TraceKind::Decision,
                NO_POINT,
                NO_EXT,
                pack_prefix(prefix.addr(), prefix.len()),
                u64::from(changed),
            );
        }
        if !changed {
            return;
        }
        self.stats.last_route_change = Some(ctx.now());
        self.rib_counters.best_changes += 1;
        match winner {
            Some((slot, entry)) => {
                self.rib.commit_best(prefix, Some((slot, entry.clone())));
                for (q, pending) in pending_per_peer.iter_mut().enumerate() {
                    self.export_one(q, prefix, &entry, pending);
                }
            }
            None => {
                self.rib.commit_best(prefix, None);
                for (q, pending) in pending_per_peer.iter_mut().enumerate() {
                    if self.sessions[q].is_established() && self.adj_out[q].withdraw(&prefix) {
                        pending.withdrawals.push(prefix);
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Outbound pipeline
    // -----------------------------------------------------------------

    /// Export `entry` to peer `q` if policy allows, queueing into `out`.
    fn export_one(
        &mut self,
        q: usize,
        prefix: Ipv4Prefix,
        entry: &RibEntry,
        out: &mut OutboundBatches,
    ) {
        if !self.sessions[q].is_established() {
            return;
        }
        // Split horizon: never advertise back to the route's source — and
        // implicitly withdraw anything previously advertised there (the
        // peer must not keep a stale copy once it became our best source).
        if !entry.source.local && entry.source.peer_addr == self.sessions[q].cfg.peer_addr {
            if self.adj_out[q].withdraw(&prefix) {
                out.withdrawals.push(prefix);
            }
            return;
        }

        let dest_type = self.sessions[q].peer_type;
        let src = &entry.source;

        // ④ BGP_OUTBOUND_FILTER: policy. Value forces, Fallback → native.
        let allowed = if self.vmm.has_extensions(InsertionPoint::BgpOutboundFilter) {
            let peer_info = self.peer_info_for(q);
            let nexthop = self.nexthop_info(&entry.attrs);
            let src_bytes = self.source_info_bytes(src);
            let t0 = self.hook_start();
            let hook_args = [src_bytes.as_slice()];
            let mut hctx = FirXbgpCtx {
                peer: peer_info,
                args: &hook_args,
                attrs: AttrAccess::Read(&entry.attrs),
                prefix: Some(prefix),
                nexthop: Some(nexthop),
                xtra: &self.cfg.xtra,
                out_buf: None,
                rov: self.xbgp_rov.as_ref(),
                rib_adds: &mut self.ext_rib_adds,
                logs: &mut self.logs,
            };
            let outcome = self.vmm.run(InsertionPoint::BgpOutboundFilter, &mut hctx);
            self.hook_end(InsertionPoint::BgpOutboundFilter, t0);
            match outcome {
                VmmOutcome::Value(v) if v == api::FILTER_REJECT => {
                    self.stats.xbgp_rejected += 1;
                    false
                }
                VmmOutcome::Value(_) => {
                    self.stats.xbgp_accepted += 1;
                    true
                }
                VmmOutcome::Fallback => self.native_export_policy(q, entry),
                // Fail closed: a broken `abort` filter exports nothing.
                VmmOutcome::Aborted => {
                    self.stats.xbgp_rejected += 1;
                    false
                }
            }
        } else {
            self.native_export_policy(q, entry)
        };
        if !allowed {
            // If previously advertised, it must now be withdrawn.
            if self.adj_out[q].withdraw(&prefix) {
                out.withdrawals.push(prefix);
            }
            return;
        }

        // Mechanism: transform attributes for the session type.
        let mut a = (*entry.attrs).clone();
        match dest_type {
            PeerType::Ebgp => {
                a.as_path = a.as_path.prepend(self.cfg.asn);
                a.next_hop = self.cfg.router_id;
                a.local_pref = None;
                a.med = None;
                a.originator_id = None;
                a.cluster_list.clear();
            }
            PeerType::Ibgp => {
                if a.local_pref.is_none() {
                    a.local_pref = Some(self.cfg.default_local_pref);
                }
                // Native reflection bookkeeping (RFC 4456 §7): only when
                // native RR owns the feature.
                if self.cfg.native_rr && !src.local && src.peer_type == PeerType::Ibgp {
                    if a.originator_id.is_none() {
                        a.originator_id = Some(src.peer_addr);
                    }
                    a.cluster_list.insert(0, self.cluster_id());
                }
            }
        }
        let transformed = self.intern.intern(a);
        if self.adj_out[q].advertise(prefix, Rc::clone(&transformed)) {
            if let Some(t) = self.vmm.tracer_mut() {
                t.record(
                    TraceKind::Propagate,
                    NO_POINT,
                    NO_EXT,
                    pack_prefix(prefix.addr(), prefix.len()),
                    q as u64,
                );
            }
            out.push(prefix, transformed, *src);
        }
    }

    /// Native (no-extension) export policy decision.
    fn native_export_policy(&self, q: usize, entry: &RibEntry) -> bool {
        let dest_type = self.sessions[q].peer_type;
        let src = &entry.source;
        match dest_type {
            PeerType::Ebgp => true,
            PeerType::Ibgp => {
                if src.local || src.peer_type == PeerType::Ebgp {
                    true
                } else {
                    // iBGP → iBGP needs reflection.
                    self.cfg.native_rr && (src.rr_client || self.sessions[q].cfg.rr_client)
                }
            }
        }
    }

    /// Send the queued batches for peer `q`.
    fn flush_outbound(&mut self, ctx: &mut NodeCtx<'_>, q: usize, pending: OutboundBatches) {
        if !self.sessions[q].is_established() {
            return;
        }
        // Withdrawals: batches of up to ~800 prefixes.
        for chunk in pending.withdrawals.chunks(800) {
            let upd = UpdateMsg::withdraw(chunk.to_vec());
            self.stats.updates_tx += 1;
            self.stats.withdrawals_tx += chunk.len() as u64;
            self.send_msg(ctx, q, &Message::Update(upd));
        }
        let encode_ext = self.vmm.has_extensions(InsertionPoint::BgpEncodeMessage);
        for batch in pending.batches {
            let wire_attrs = batch.attrs.to_wire();
            // ⑤ BGP_ENCODE_MESSAGE: extensions append raw attribute TLVs.
            let mut extra = Vec::new();
            if encode_ext {
                let peer_info = self.peer_info_for(q);
                let src_bytes = self.source_info_bytes(&batch.source);
                let t0 = self.hook_start();
                let hook_args = [src_bytes.as_slice()];
                let mut hctx = FirXbgpCtx {
                    peer: peer_info,
                    args: &hook_args,
                    attrs: AttrAccess::Read(&batch.attrs),
                    prefix: batch.prefixes.first().copied(),
                    nexthop: None,
                    xtra: &self.cfg.xtra,
                    out_buf: Some(&mut extra),
                    rov: self.xbgp_rov.as_ref(),
                    rib_adds: &mut self.ext_rib_adds,
                    logs: &mut self.logs,
                };
                let _ = self.vmm.run(InsertionPoint::BgpEncodeMessage, &mut hctx);
                self.hook_end(InsertionPoint::BgpEncodeMessage, t0);
            }
            let width = self.sessions[q].asn_width();
            // NLRI chunks sized to stay under the 4096-byte frame.
            for chunk in batch.prefixes.chunks(700) {
                let upd = UpdateMsg::announce(wire_attrs.clone(), chunk.to_vec());
                match upd.encode_with_extra(&extra, width) {
                    Ok(frame) => {
                        self.stats.updates_tx += 1;
                        self.stats.prefixes_tx += chunk.len() as u64;
                        ctx.send(self.sessions[q].cfg.link, &frame);
                    }
                    Err(e) => self.logs.push(format!("encode to peer {q} failed: {e}")),
                }
            }
        }
    }

    fn flush_all(&mut self, ctx: &mut NodeCtx<'_>, pending: Vec<OutboundBatches>) {
        for (q, batches) in pending.into_iter().enumerate() {
            if !batches.is_empty() {
                self.flush_outbound(ctx, q, batches);
            }
        }
    }

    // -----------------------------------------------------------------
    // Message dispatch
    // -----------------------------------------------------------------

    fn handle_message(&mut self, ctx: &mut NodeCtx<'_>, idx: usize, frame: Vec<u8>) {
        self.sessions[idx].last_recv = ctx.now();
        let width = self.sessions[idx].asn_width();
        let decoded = match xbgp_wire::msg::deframe(&frame) {
            Ok((ty, body)) => Message::decode_body(ty, body, width).map(|m| (m, body.to_vec())),
            Err(e) => Err(e),
        };
        let (msg, body) = match decoded {
            Ok(v) => v,
            Err(e) => {
                self.logs.push(format!("bad message from peer {idx}: {e}"));
                self.send_msg(ctx, idx, &Message::Notification(NotificationMsg::from_error(&e)));
                self.teardown(ctx, idx);
                return;
            }
        };
        let state = self.sessions[idx].state;
        match (state, msg) {
            (FsmState::OpenSent, Message::Open(open)) => {
                match self.sessions[idx].handle_open(&open, self.cfg.hold_time_secs) {
                    Ok(()) => {
                        self.stats.fsm_transitions[FSM_TO_OPEN_CONFIRM] += 1;
                        self.send_msg(ctx, idx, &Message::Keepalive)
                    }
                    Err(reason) => {
                        self.logs.push(format!("OPEN rejected from peer {idx}: {reason}"));
                        self.send_msg(ctx, idx, &Message::Notification(NotificationMsg::new(2, 2)));
                        self.teardown(ctx, idx);
                    }
                }
            }
            (FsmState::OpenConfirm, Message::Keepalive) => self.establish(ctx, idx),
            (FsmState::Established, Message::Update(upd)) => {
                self.handle_update(ctx, idx, upd, body)
            }
            (FsmState::Established, Message::Keepalive) => {}
            (_, Message::Notification(n)) => {
                self.logs.push(format!("NOTIFICATION {}/{} from peer {idx}", n.code, n.subcode));
                self.teardown(ctx, idx);
            }
            (state, msg) => {
                self.logs.push(format!(
                    "unexpected {:?} in state {state:?} from peer {idx}",
                    msg.msg_type()
                ));
                self.send_msg(ctx, idx, &Message::Notification(NotificationMsg::new(5, 0)));
                self.teardown(ctx, idx);
            }
        }
    }
}

/// Outgoing routes grouped by (attribute set, route source) so each group
/// becomes one UPDATE (modulo NLRI chunking).
#[derive(Default)]
struct OutboundBatches {
    batches: Vec<Batch>,
    index: HashMap<(usize, u32), usize>,
    withdrawals: Vec<Ipv4Prefix>,
}

struct Batch {
    attrs: Rc<FirAttrs>,
    source: RouteSource,
    prefixes: Vec<Ipv4Prefix>,
}

impl OutboundBatches {
    fn push(&mut self, prefix: Ipv4Prefix, attrs: Rc<FirAttrs>, source: RouteSource) {
        let key = (Rc::as_ptr(&attrs) as usize, source.peer_addr);
        match self.index.get(&key) {
            Some(&i) => self.batches[i].prefixes.push(prefix),
            None => {
                self.index.insert(key, self.batches.len());
                self.batches.push(Batch { attrs, source, prefixes: vec![prefix] });
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.batches.is_empty() && self.withdrawals.is_empty()
    }
}

impl Node for FirDaemon {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Originate local routes.
        let originate = self.cfg.originate.clone();
        for (prefix, nexthop) in originate {
            let attrs = self.intern.intern(FirAttrs { next_hop: nexthop, ..FirAttrs::default() });
            let entry = RibEntry {
                attrs,
                source: RouteSource::local(self.cfg.router_id, self.cfg.asn),
                rov: None,
            };
            self.rib.insert(prefix, LOCAL_SLOT, entry.clone());
            // Committed directly: no sessions are up yet, so there is
            // nothing to export and no competition to decide against.
            self.rib.commit_best(prefix, Some((LOCAL_SLOT, entry)));
        }
        // Open every configured session.
        for idx in 0..self.sessions.len() {
            self.send_open(ctx, idx);
        }
    }

    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, data: &[u8]) {
        let Some(&idx) = self.link_to_peer.get(&link) else {
            return; // Data on an unconfigured link.
        };
        if self.sessions[idx].state == FsmState::Idle {
            return;
        }
        self.sessions[idx].reader.push(data);
        loop {
            // The reader is polled through a temporary to satisfy borrow
            // rules (handle_message needs &mut self).
            let next = self.sessions[idx].reader.next_frame();
            match next {
                Ok(Some(frame)) => self.handle_message(ctx, idx, frame),
                Ok(None) => break,
                Err(e) => {
                    self.logs.push(format!("framing error from peer {idx}: {e}"));
                    self.send_msg(
                        ctx,
                        idx,
                        &Message::Notification(NotificationMsg::from_error(&e)),
                    );
                    self.teardown(ctx, idx);
                    break;
                }
            }
            if self.sessions[idx].state == FsmState::Idle {
                break;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let idx = (token / 2) as usize;
        let kind = token % 2;
        if idx >= self.sessions.len() || !self.sessions[idx].is_established() {
            return;
        }
        let hold = self.sessions[idx].hold_time_ns;
        match kind {
            TIMER_KEEPALIVE => {
                self.send_msg(ctx, idx, &Message::Keepalive);
                ctx.set_timer(hold / 3, token);
            }
            _ => {
                if ctx.now().saturating_sub(self.sessions[idx].last_recv) >= hold {
                    self.logs.push(format!("hold timer expired for peer {idx}"));
                    self.send_msg(ctx, idx, &Message::Notification(NotificationMsg::new(4, 0)));
                    self.teardown(ctx, idx);
                } else {
                    ctx.set_timer(hold / 3, token);
                }
            }
        }
    }

    fn on_link_event(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, up: bool) {
        let Some(&idx) = self.link_to_peer.get(&link) else {
            return;
        };
        if up {
            if self.sessions[idx].state == FsmState::Idle {
                self.send_open(ctx, idx);
            }
        } else {
            self.teardown(ctx, idx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl xbgp_driver::Daemon for FirDaemon {
    fn kind(&self) -> xbgp_driver::Dut {
        xbgp_driver::Dut::Fir
    }

    fn loc_rib_len(&self) -> usize {
        FirDaemon::loc_rib_len(self)
    }

    fn has_best_route(&self, prefix: &Ipv4Prefix) -> bool {
        self.best_route(prefix).is_some()
    }

    fn loc_rib_dump(&self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        FirDaemon::loc_rib_dump(self)
    }

    fn oracle_loc_rib_dump(&mut self) -> Vec<(Ipv4Prefix, Vec<u8>)> {
        FirDaemon::oracle_loc_rib_dump(self)
    }

    fn metrics_snapshot(&self) -> Snapshot {
        FirDaemon::metrics_snapshot(self)
    }

    fn take_trace(&mut self) -> Option<TraceDump> {
        FirDaemon::take_trace(self)
    }

    fn session_established(&self, addr: u32) -> bool {
        FirDaemon::session_established(self, addr)
    }

    fn counters(&self) -> xbgp_driver::DaemonCounters {
        let st = &self.stats;
        xbgp_driver::DaemonCounters {
            updates_rx: st.updates_rx,
            prefixes_rx: st.prefixes_rx,
            withdrawals_rx: st.withdrawals_rx,
            updates_tx: st.updates_tx,
            prefixes_tx: st.prefixes_tx,
            withdrawals_tx: st.withdrawals_tx,
            sessions_established: st.sessions_established,
            first_update_rx: st.first_update_rx,
            last_route_change: st.last_route_change,
        }
    }
}

// Unit tests for the daemon live in `tests/` (integration level) and in
// the sibling modules; FSM-level tests that need a simulator are in
// `crates/fir/tests/daemon_e2e.rs`.
