//! FIR's internal attribute representation: parsed, host-order, interned.
//!
//! This mirrors FRRouting's `struct attr` + `attrhash`: attributes are
//! decoded once into host-order fields, and identical attribute sets are
//! shared through an intern table so a 724k-route table stores each
//! distinct set exactly once. Conversion to/from the neutral
//! network-byte-order form (`to_wire` / `from_wire` / `neutral_payload`)
//! is therefore *work* — the representational gap the paper calls out for
//! FRRouting.

use std::collections::HashMap;
use std::rc::Rc;
use xbgp_wire::attr::{encode_attr_tlv, AttrCode, AttrFlags, Origin};
use xbgp_wire::{AsPath, PathAttr, WireError};

/// One fully parsed, host-order attribute set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FirAttrs {
    pub origin: Origin,
    pub as_path: AsPath,
    /// Host byte order.
    pub next_hop: u32,
    pub med: Option<u32>,
    pub local_pref: Option<u32>,
    pub communities: Vec<u32>,
    pub originator_id: Option<u32>,
    pub cluster_list: Vec<u32>,
    /// Attributes FIR does not model natively: `(code, flags, raw payload
    /// in network byte order)`, kept for xBGP `get_attr` but NOT encoded
    /// on the wire natively (FRR could not add unsupported attributes
    /// until the paper's authors rewrote that part — extensions emit them
    /// at the encode-message insertion point instead).
    pub extra: Vec<(u8, u8, Vec<u8>)>,
}

impl Default for FirAttrs {
    fn default() -> Self {
        FirAttrs {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: 0,
            med: None,
            local_pref: None,
            communities: Vec::new(),
            originator_id: None,
            cluster_list: Vec::new(),
            extra: Vec::new(),
        }
    }
}

impl FirAttrs {
    /// Parse a neutral (typed) attribute vector into the host
    /// representation. Unknown attributes land in `extra`.
    pub fn from_wire(attrs: &[PathAttr]) -> Result<FirAttrs, WireError> {
        let mut a = FirAttrs::default();
        let mut have_origin = false;
        let mut have_next_hop = false;
        for attr in attrs {
            match attr {
                PathAttr::Origin(o) => {
                    a.origin = *o;
                    have_origin = true;
                }
                PathAttr::AsPath(p) => a.as_path = p.clone(),
                PathAttr::NextHop(nh) => {
                    a.next_hop = *nh;
                    have_next_hop = true;
                }
                PathAttr::Med(m) => a.med = Some(*m),
                PathAttr::LocalPref(lp) => a.local_pref = Some(*lp),
                PathAttr::AtomicAggregate | PathAttr::Aggregator { .. } => {
                    // Accepted and ignored: not relevant to any experiment.
                }
                PathAttr::Communities(cs) => a.communities = cs.clone(),
                PathAttr::OriginatorId(id) => a.originator_id = Some(*id),
                PathAttr::ClusterList(cl) => a.cluster_list = cl.clone(),
                PathAttr::Unknown { flags, code, value } => {
                    a.extra.push((*code, flags.0, value.clone()))
                }
            }
        }
        if !have_origin {
            return Err(WireError::MissingWellKnown("ORIGIN"));
        }
        if !have_next_hop {
            return Err(WireError::MissingWellKnown("NEXT_HOP"));
        }
        Ok(a)
    }

    /// Serialize the natively understood attributes back to the neutral
    /// form (used when building outgoing UPDATEs). `extra` attributes are
    /// deliberately *not* included — see the field documentation.
    pub fn to_wire(&self) -> Vec<PathAttr> {
        let mut out = vec![
            PathAttr::Origin(self.origin),
            PathAttr::AsPath(self.as_path.clone()),
            PathAttr::NextHop(self.next_hop),
        ];
        if let Some(m) = self.med {
            out.push(PathAttr::Med(m));
        }
        if let Some(lp) = self.local_pref {
            out.push(PathAttr::LocalPref(lp));
        }
        if !self.communities.is_empty() {
            out.push(PathAttr::Communities(self.communities.clone()));
        }
        if let Some(id) = self.originator_id {
            out.push(PathAttr::OriginatorId(id));
        }
        if !self.cluster_list.is_empty() {
            out.push(PathAttr::ClusterList(self.cluster_list.clone()));
        }
        out
    }

    /// xBGP `get_attr`: produce the attribute payload for `code` in
    /// network byte order. For natively modelled attributes this performs
    /// the host-order → wire conversion (FRR's cost); for `extra`
    /// attributes it is a copy.
    pub fn neutral_payload(&self, code: u8) -> Option<(u8, Vec<u8>)> {
        let mut body = Vec::new();
        let flags = self.neutral_payload_into(code, &mut body)?;
        Some((flags, body))
    }

    /// Allocation-free form of [`FirAttrs::neutral_payload`]: append the
    /// network-order payload to `body` and return the flags. All
    /// absent-attribute paths bail out before appending, so `body` is
    /// untouched on `None`.
    pub fn neutral_payload_into(&self, code: u8, body: &mut Vec<u8>) -> Option<u8> {
        let flags = match code {
            1 => {
                body.push(self.origin as u8);
                AttrFlags::WELL_KNOWN.0
            }
            2 => {
                self.as_path.encode_body(body, 4);
                AttrFlags::WELL_KNOWN.0
            }
            3 => {
                body.extend_from_slice(&self.next_hop.to_be_bytes());
                AttrFlags::WELL_KNOWN.0
            }
            4 => {
                body.extend_from_slice(&self.med?.to_be_bytes());
                AttrCode::Med.canonical_flags().0
            }
            5 => {
                body.extend_from_slice(&self.local_pref?.to_be_bytes());
                AttrFlags::WELL_KNOWN.0
            }
            8 => {
                if self.communities.is_empty() {
                    return None;
                }
                for c in &self.communities {
                    body.extend_from_slice(&c.to_be_bytes());
                }
                AttrCode::Communities.canonical_flags().0
            }
            9 => {
                body.extend_from_slice(&self.originator_id?.to_be_bytes());
                AttrCode::OriginatorId.canonical_flags().0
            }
            10 => {
                if self.cluster_list.is_empty() {
                    return None;
                }
                for c in &self.cluster_list {
                    body.extend_from_slice(&c.to_be_bytes());
                }
                AttrCode::ClusterList.canonical_flags().0
            }
            other => {
                let (_, flags, value) = self.extra.iter().find(|(c, _, _)| *c == other)?;
                body.extend_from_slice(value);
                *flags
            }
        };
        Some(flags)
    }

    /// Does this attribute set carry `code`? Existence check without
    /// marshalling the payload (backs the xBGP `add_attr` helper).
    pub fn has_neutral(&self, code: u8) -> bool {
        match code {
            1..=3 => true,
            4 => self.med.is_some(),
            5 => self.local_pref.is_some(),
            8 => !self.communities.is_empty(),
            9 => self.originator_id.is_some(),
            10 => !self.cluster_list.is_empty(),
            other => self.extra.iter().any(|(c, _, _)| *c == other),
        }
    }

    /// Stage-time validation for [`FirAttrs::set_neutral`]: would this
    /// neutral payload convert into the host representation? Pure — the
    /// VMM calls it from `check_op` before buffering the mutation, so a
    /// later commit cannot fail on a malformed payload. Reasons carry no
    /// `attribute {code}:` prefix; the caller wraps them in a typed error.
    pub fn validate_neutral(code: u8, value: &[u8]) -> Result<(), String> {
        let need = |n: usize| -> Result<(), String> {
            if value.len() == n {
                Ok(())
            } else {
                Err(format!("expected {n} bytes, got {}", value.len()))
            }
        };
        match code {
            1 => {
                need(1)?;
                Origin::from_u8(value[0]).map_err(|e| e.to_string())?;
            }
            2 => {
                AsPath::decode_body(value, 4).map_err(|e| e.to_string())?;
            }
            3..=5 | 9 => need(4)?,
            8 | 10 if !value.len().is_multiple_of(4) => {
                return Err("payload not a multiple of 4".into());
            }
            _ => {}
        }
        Ok(())
    }

    /// xBGP `set_attr`: overwrite (or insert) attribute `code` from a
    /// network-byte-order payload, converting into the host representation.
    pub fn set_neutral(&mut self, code: u8, flags: u8, value: &[u8]) -> Result<(), String> {
        let be32 = |b: &[u8]| u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let need = |n: usize| -> Result<(), String> {
            if value.len() == n {
                Ok(())
            } else {
                Err(format!("attribute {code}: expected {n} bytes, got {}", value.len()))
            }
        };
        match code {
            1 => {
                need(1)?;
                self.origin = Origin::from_u8(value[0]).map_err(|e| e.to_string())?;
            }
            2 => {
                self.as_path = AsPath::decode_body(value, 4).map_err(|e| e.to_string())?;
            }
            3 => {
                need(4)?;
                self.next_hop = be32(value);
            }
            4 => {
                need(4)?;
                self.med = Some(be32(value));
            }
            5 => {
                need(4)?;
                self.local_pref = Some(be32(value));
            }
            8 => {
                if !value.len().is_multiple_of(4) {
                    return Err("COMMUNITIES payload not a multiple of 4".into());
                }
                self.communities = value.chunks_exact(4).map(be32).collect();
            }
            9 => {
                need(4)?;
                self.originator_id = Some(be32(value));
            }
            10 => {
                if !value.len().is_multiple_of(4) {
                    return Err("CLUSTER_LIST payload not a multiple of 4".into());
                }
                self.cluster_list = value.chunks_exact(4).map(be32).collect();
            }
            other => match self.extra.iter_mut().find(|(c, _, _)| *c == other) {
                Some(slot) => {
                    slot.1 = flags;
                    slot.2 = value.to_vec();
                }
                None => self.extra.push((other, flags, value.to_vec())),
            },
        }
        Ok(())
    }

    /// xBGP `remove_attr`.
    pub fn remove_neutral(&mut self, code: u8) -> Result<(), String> {
        match code {
            4 => self.med = None,
            5 => self.local_pref = None,
            8 => self.communities.clear(),
            9 => self.originator_id = None,
            10 => self.cluster_list.clear(),
            1..=3 => return Err(format!("attribute {code} is mandatory")),
            other => {
                let before = self.extra.len();
                self.extra.retain(|(c, _, _)| *c != other);
                if self.extra.len() == before {
                    return Err(format!("attribute {other} not present"));
                }
            }
        }
        Ok(())
    }

    /// Encode the `extra` attributes as raw TLVs (what a native FRR cannot
    /// do — used only by tests comparing against extension-written output).
    pub fn encode_extra_tlvs(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (code, flags, value) in &self.extra {
            encode_attr_tlv(&mut out, AttrFlags(*flags), *code, value);
        }
        out
    }
}

/// FRR-style attribute interning (hash-consing) table.
///
/// `intern` returns a shared pointer to the canonical copy of an attribute
/// set; identical sets share storage. The table never shrinks during a
/// session, like FRR's `attrhash` between `bgp_attr_unintern` sweeps —
/// adequate for the experiment lifetimes here.
#[derive(Debug, Default)]
pub struct AttrInternTable {
    table: HashMap<Rc<FirAttrs>, ()>,
}

impl AttrInternTable {
    pub fn new() -> AttrInternTable {
        AttrInternTable::default()
    }

    /// Intern a set, returning the canonical shared copy.
    pub fn intern(&mut self, attrs: FirAttrs) -> Rc<FirAttrs> {
        let rc = Rc::new(attrs);
        match self.table.get_key_value(&rc) {
            Some((existing, ())) => Rc::clone(existing),
            None => {
                self.table.insert(Rc::clone(&rc), ());
                rc
            }
        }
    }

    /// Number of distinct attribute sets interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PathAttr> {
        vec![
            PathAttr::Origin(Origin::Igp),
            PathAttr::AsPath(AsPath::sequence(vec![65001, 65002])),
            PathAttr::NextHop(0x0a00_0001),
            PathAttr::Med(50),
            PathAttr::LocalPref(200),
            PathAttr::Communities(vec![0xffff_0001]),
        ]
    }

    #[test]
    fn wire_round_trip() {
        let parsed = FirAttrs::from_wire(&sample()).unwrap();
        assert_eq!(parsed.next_hop, 0x0a00_0001);
        assert_eq!(parsed.local_pref, Some(200));
        let back = parsed.to_wire();
        assert_eq!(back, sample());
    }

    #[test]
    fn missing_mandatory_attributes_rejected() {
        let no_origin = vec![PathAttr::AsPath(AsPath::empty()), PathAttr::NextHop(1)];
        assert!(matches!(
            FirAttrs::from_wire(&no_origin),
            Err(WireError::MissingWellKnown("ORIGIN"))
        ));
        let no_nh = vec![PathAttr::Origin(Origin::Igp), PathAttr::AsPath(AsPath::empty())];
        assert!(matches!(
            FirAttrs::from_wire(&no_nh),
            Err(WireError::MissingWellKnown("NEXT_HOP"))
        ));
    }

    #[test]
    fn unknown_attrs_survive_in_extra_but_not_on_wire() {
        let mut attrs = sample();
        attrs.push(PathAttr::Unknown {
            flags: AttrFlags::OPT_TRANS,
            code: 66,
            value: vec![1, 2, 3],
        });
        let parsed = FirAttrs::from_wire(&attrs).unwrap();
        assert_eq!(parsed.extra, vec![(66, AttrFlags::OPT_TRANS.0, vec![1, 2, 3])]);
        // Native encoding drops them (FRR pre-modification behaviour).
        assert!(parsed.to_wire().iter().all(|a| !matches!(a, PathAttr::Unknown { .. })));
        // But the raw TLV encoder (for extension comparison) has them.
        assert!(!parsed.encode_extra_tlvs().is_empty());
    }

    #[test]
    fn neutral_payload_converts_to_network_order() {
        let parsed = FirAttrs::from_wire(&sample()).unwrap();
        let (flags, nh) = parsed.neutral_payload(3).unwrap();
        assert_eq!(nh, 0x0a00_0001u32.to_be_bytes());
        assert_eq!(flags, AttrFlags::WELL_KNOWN.0);
        let (_, med) = parsed.neutral_payload(4).unwrap();
        assert_eq!(med, 50u32.to_be_bytes());
        assert_eq!(parsed.neutral_payload(9), None);
        // AS_PATH payload decodes back to the same path.
        let (_, path) = parsed.neutral_payload(2).unwrap();
        assert_eq!(AsPath::decode_body(&path, 4).unwrap(), parsed.as_path);
    }

    #[test]
    fn set_neutral_round_trips_every_native_code() {
        let mut a = FirAttrs::from_wire(&sample()).unwrap();
        a.set_neutral(5, 0x40, &300u32.to_be_bytes()).unwrap();
        assert_eq!(a.local_pref, Some(300));
        a.set_neutral(9, 0x80, &7u32.to_be_bytes()).unwrap();
        assert_eq!(a.originator_id, Some(7));
        let cl: Vec<u8> = [1u32, 2].iter().flat_map(|c| c.to_be_bytes()).collect();
        a.set_neutral(10, 0x80, &cl).unwrap();
        assert_eq!(a.cluster_list, vec![1, 2]);
        a.set_neutral(66, 0xc0, &[9, 9]).unwrap();
        assert_eq!(a.neutral_payload(66).unwrap().1, vec![9, 9]);
        // Bad sizes are rejected.
        assert!(a.set_neutral(3, 0x40, &[1, 2]).is_err());
        assert!(a.set_neutral(8, 0xc0, &[1, 2, 3]).is_err());
    }

    #[test]
    fn remove_neutral_semantics() {
        let mut a = FirAttrs::from_wire(&sample()).unwrap();
        a.remove_neutral(4).unwrap();
        assert_eq!(a.med, None);
        assert!(a.remove_neutral(3).is_err(), "mandatory attributes stay");
        assert!(a.remove_neutral(77).is_err(), "absent attribute");
        a.set_neutral(77, 0xc0, &[1]).unwrap();
        a.remove_neutral(77).unwrap();
        assert_eq!(a.neutral_payload(77), None);
    }

    #[test]
    fn interning_shares_identical_sets() {
        let mut table = AttrInternTable::new();
        let a = table.intern(FirAttrs::from_wire(&sample()).unwrap());
        let b = table.intern(FirAttrs::from_wire(&sample()).unwrap());
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(table.len(), 1);

        let mut different = FirAttrs::from_wire(&sample()).unwrap();
        different.med = Some(51);
        let c = table.intern(different);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(table.len(), 2);
    }
}
