//! The RFC 4271 RIBs and the native decision process.
//!
//! Since the incremental-RIB rework, Adj-RIB-In and Loc-RIB live in one
//! prefix-trie-keyed store ([`RibStore`]): each net holds its candidate
//! list (one slot per source: slot 0 = locally originated, slot `i+1` =
//! peer `i`) plus the *committed* best route — a clone taken when the
//! decision process last ran, exactly like the separate `LocRib` used to
//! hold clones. Keeping candidates and best under one node gives the
//! daemon O(1) best-route access while deciding and lets dump paths walk
//! the trie in prefix order without sorting.

use crate::attrs::FirAttrs;
use rpki::RovState;
use std::collections::HashMap;
use std::rc::Rc;
use xbgp_core::api::PeerType;
use xbgp_rib::PrefixMap;
use xbgp_wire::Ipv4Prefix;

/// Where a route was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSource {
    /// Neighbor address / BGP identifier, or the router's own id for
    /// locally originated routes.
    pub peer_addr: u32,
    pub peer_asn: u32,
    pub peer_type: PeerType,
    /// The source peer is a route-reflection client.
    pub rr_client: bool,
    /// True for locally originated routes.
    pub local: bool,
}

impl RouteSource {
    pub fn local(router_id: u32, asn: u32) -> RouteSource {
        RouteSource {
            peer_addr: router_id,
            peer_asn: asn,
            peer_type: PeerType::Ibgp,
            rr_client: false,
            local: true,
        }
    }
}

/// One route in a RIB: shared attribute set plus provenance.
#[derive(Debug, Clone)]
pub struct RibEntry {
    pub attrs: Rc<FirAttrs>,
    pub source: RouteSource,
    /// Origin-validation verdict, when validation is active (§3.4 —
    /// recorded, never used to discard).
    pub rov: Option<RovState>,
}

/// Slot index of locally originated routes in a [`RibStore`].
pub const LOCAL_SLOT: usize = 0;

/// Slot index of peer `idx`'s routes in a [`RibStore`].
pub fn peer_slot(idx: usize) -> usize {
    idx + 1
}

/// All state for one net: the candidate routes (ascending slot order,
/// which reproduces the old decision scan order — local route first,
/// then peers) and the committed best, cloned at decision time so it
/// survives the winning candidate's later removal.
#[derive(Debug, Default)]
pub struct NetEntry {
    cands: Vec<(usize, RibEntry)>,
    best: Option<(usize, RibEntry)>,
}

impl NetEntry {
    pub fn candidates(&self) -> &[(usize, RibEntry)] {
        &self.cands
    }

    pub fn best(&self) -> Option<&(usize, RibEntry)> {
        self.best.as_ref()
    }
}

/// The merged Adj-RIB-In + Loc-RIB store, keyed by a prefix trie.
///
/// `slot_counts` and `loc_len` are maintained incrementally so the
/// occupancy gauges are O(1) reads.
#[derive(Debug)]
pub struct RibStore {
    nets: PrefixMap<NetEntry>,
    slot_counts: Vec<usize>,
    loc_len: usize,
}

impl RibStore {
    /// `slots` = number of candidate sources (peers + 1 for local).
    pub fn new(slots: usize) -> RibStore {
        RibStore {
            nets: PrefixMap::new(),
            slot_counts: vec![0; slots],
            loc_len: 0,
        }
    }

    /// Insert/replace the candidate at `slot`; returns the previous
    /// entry if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, slot: usize, entry: RibEntry) -> Option<RibEntry> {
        let net = self.nets.get_or_insert_with(prefix, NetEntry::default);
        match net.cands.iter_mut().find(|(s, _)| *s == slot) {
            Some((_, old)) => Some(std::mem::replace(old, entry)),
            None => {
                let pos = net.cands.partition_point(|(s, _)| *s < slot);
                net.cands.insert(pos, (slot, entry));
                self.slot_counts[slot] += 1;
                None
            }
        }
    }

    /// Remove the candidate at `slot`; drops the net when nothing —
    /// neither candidates nor a committed best — remains.
    pub fn remove(&mut self, prefix: &Ipv4Prefix, slot: usize) -> Option<RibEntry> {
        let net = self.nets.get_mut(prefix)?;
        let pos = net.cands.iter().position(|(s, _)| *s == slot)?;
        let (_, entry) = net.cands.remove(pos);
        self.slot_counts[slot] -= 1;
        if net.cands.is_empty() && net.best.is_none() {
            self.nets.remove(prefix);
        }
        Some(entry)
    }

    pub fn candidate(&self, prefix: &Ipv4Prefix, slot: usize) -> Option<&RibEntry> {
        self.nets.get(prefix)?.cands.iter().find(|(s, _)| *s == slot).map(|(_, e)| e)
    }

    /// Clone the candidate list (slot order) for a decision pass.
    pub fn candidates_cloned(&self, prefix: &Ipv4Prefix) -> Vec<(usize, RibEntry)> {
        self.nets.get(prefix).map(|n| n.cands.clone()).unwrap_or_default()
    }

    /// The committed best route, if any (O(1)).
    pub fn best(&self, prefix: &Ipv4Prefix) -> Option<&RibEntry> {
        self.nets.get(prefix)?.best.as_ref().map(|(_, e)| e)
    }

    /// Which slot the committed best came from.
    pub fn best_slot(&self, prefix: &Ipv4Prefix) -> Option<usize> {
        self.nets.get(prefix)?.best.as_ref().map(|(s, _)| *s)
    }

    pub fn best_pair_cloned(&self, prefix: &Ipv4Prefix) -> Option<(usize, RibEntry)> {
        self.nets.get(prefix)?.best.clone()
    }

    /// Commit a decision outcome; drops the net once it is fully empty.
    pub fn commit_best(&mut self, prefix: Ipv4Prefix, winner: Option<(usize, RibEntry)>) {
        let Some(net) = self.nets.get_mut(&prefix) else {
            // Nothing stored and nothing to store: a None commit on a
            // missing net is a no-op; a Some commit creates the node.
            if let Some(w) = winner {
                let entry = self.nets.get_or_insert_with(prefix, NetEntry::default);
                entry.best = Some(w);
                self.loc_len += 1;
            }
            return;
        };
        let had = net.best.is_some();
        net.best = winner;
        let has = net.best.is_some();
        match (had, has) {
            (false, true) => self.loc_len += 1,
            (true, false) => self.loc_len -= 1,
            _ => {}
        }
        if net.cands.is_empty() && net.best.is_none() {
            self.nets.remove(&prefix);
        }
    }

    /// Number of nets with a committed best (Loc-RIB size).
    pub fn loc_len(&self) -> usize {
        self.loc_len
    }

    /// Total candidates learned from peers (Adj-RIB-In size).
    pub fn adj_in_len(&self) -> usize {
        self.slot_counts.iter().skip(1).sum()
    }

    /// Candidates held for one slot.
    pub fn slot_len(&self, slot: usize) -> usize {
        self.slot_counts[slot]
    }

    /// Committed best routes in `(addr, len)` prefix order — trie
    /// pre-order, no sort.
    pub fn iter_best(&self) -> impl Iterator<Item = (Ipv4Prefix, &RibEntry)> {
        self.nets.iter().filter_map(|(p, n)| n.best.as_ref().map(|(_, e)| (p, e)))
    }

    /// Every net with any state at all, in prefix order (oracle and
    /// full-recompute sweeps).
    pub fn net_prefixes(&self) -> Vec<Ipv4Prefix> {
        self.nets.keys().collect()
    }

    /// Drop every candidate held at `slot` (session teardown).
    ///
    /// Returns the prefixes needing re-decision, in prefix order: only
    /// those whose committed best came from this slot — or, when
    /// `all` is set (a `BgpDecision` extension is loaded, so any
    /// candidate-list change can alter the order-dependent outcome),
    /// every prefix that held a candidate.
    pub fn flush_slot(&mut self, slot: usize, all: bool) -> Vec<Ipv4Prefix> {
        let mut affected = Vec::new();
        let mut emptied = Vec::new();
        self.nets.for_each_mut(|prefix, net| {
            let Some(pos) = net.cands.iter().position(|(s, _)| *s == slot) else {
                return;
            };
            net.cands.remove(pos);
            if all || net.best.as_ref().is_some_and(|(s, _)| *s == slot) {
                affected.push(prefix);
            }
            if net.cands.is_empty() && net.best.is_none() {
                emptied.push(prefix);
            }
        });
        self.slot_counts[slot] = 0;
        for p in emptied {
            self.nets.remove(&p);
        }
        affected
    }
}

/// Adj-RIB-Out: what has been advertised to one peer (prefix → attribute
/// set actually sent). Used to emit withdraws and suppress duplicates.
#[derive(Debug, Default)]
pub struct AdjRibOut {
    sent: HashMap<Ipv4Prefix, Rc<FirAttrs>>,
}

impl AdjRibOut {
    /// Record an advertisement. Returns true if it differs from what was
    /// previously sent (i.e. must actually go on the wire).
    pub fn advertise(&mut self, prefix: Ipv4Prefix, attrs: Rc<FirAttrs>) -> bool {
        match self.sent.get(&prefix) {
            Some(prev) if Rc::ptr_eq(prev, &attrs) || **prev == *attrs => false,
            _ => {
                self.sent.insert(prefix, attrs);
                true
            }
        }
    }

    /// Record a withdraw. Returns true if the prefix had been advertised.
    pub fn withdraw(&mut self, prefix: &Ipv4Prefix) -> bool {
        self.sent.remove(prefix).is_some()
    }

    pub fn len(&self) -> usize {
        self.sent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sent.is_empty()
    }
}

/// Context the native decision process needs beyond the two candidates.
pub struct DecisionCtx<'a> {
    /// IGP metric to a nexthop (`u32::MAX` = unreachable/unknown).
    pub igp_metric: &'a dyn Fn(u32) -> u32,
    pub default_local_pref: u32,
}

/// RFC 4271 §9.1 route preference: returns true when `candidate` is
/// preferred over `best`.
///
/// Order: LOCAL_PREF, AS-path length, origin code, MED (compared across
/// neighbors, "always-compare-med" style, documented deviation), eBGP over
/// iBGP, IGP metric to nexthop, lowest originator router id, lowest peer
/// address.
///
/// On distinct sources this is a *strict total order*: every tier
/// compares a per-entry scalar, and the final peer-address tiebreak is
/// strict because a store never holds two candidates from the same
/// source. That totality is what makes the incremental fast path (one
/// pairwise comparison against the committed best) equivalent to a full
/// scan over the candidate list.
pub fn native_better(candidate: &RibEntry, best: &RibEntry, ctx: &DecisionCtx<'_>) -> bool {
    let lp = |e: &RibEntry| e.attrs.local_pref.unwrap_or(ctx.default_local_pref);
    if lp(candidate) != lp(best) {
        return lp(candidate) > lp(best);
    }
    let hops = |e: &RibEntry| e.attrs.as_path.hop_count();
    if hops(candidate) != hops(best) {
        return hops(candidate) < hops(best);
    }
    if candidate.attrs.origin != best.attrs.origin {
        return candidate.attrs.origin < best.attrs.origin;
    }
    let med = |e: &RibEntry| e.attrs.med.unwrap_or(0);
    if med(candidate) != med(best) {
        return med(candidate) < med(best);
    }
    let ebgp = |e: &RibEntry| e.source.peer_type == PeerType::Ebgp && !e.source.local;
    if ebgp(candidate) != ebgp(best) {
        return ebgp(candidate);
    }
    let metric = |e: &RibEntry| (ctx.igp_metric)(e.attrs.next_hop);
    if metric(candidate) != metric(best) {
        return metric(candidate) < metric(best);
    }
    let originator = |e: &RibEntry| e.attrs.originator_id.unwrap_or(e.source.peer_addr);
    if originator(candidate) != originator(best) {
        return originator(candidate) < originator(best);
    }
    candidate.source.peer_addr < best.source.peer_addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_wire::attr::Origin;
    use xbgp_wire::AsPath;

    fn entry(f: impl FnOnce(&mut FirAttrs), src: RouteSource) -> RibEntry {
        let mut a = FirAttrs {
            as_path: AsPath::sequence(vec![1, 2]),
            next_hop: 1,
            ..FirAttrs::default()
        };
        f(&mut a);
        RibEntry { attrs: Rc::new(a), source: src, rov: None }
    }

    fn ebgp_src(addr: u32) -> RouteSource {
        RouteSource {
            peer_addr: addr,
            peer_asn: 65002,
            peer_type: PeerType::Ebgp,
            rr_client: false,
            local: false,
        }
    }

    fn ibgp_src(addr: u32) -> RouteSource {
        RouteSource {
            peer_addr: addr,
            peer_asn: 65001,
            peer_type: PeerType::Ibgp,
            rr_client: false,
            local: false,
        }
    }

    fn ctx() -> DecisionCtx<'static> {
        DecisionCtx { igp_metric: &|_| 10, default_local_pref: 100 }
    }

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn local_pref_dominates() {
        let hi = entry(|a| a.local_pref = Some(200), ibgp_src(5));
        let lo = entry(
            |a| {
                a.local_pref = Some(100);
                a.as_path = AsPath::sequence(vec![1]);
            },
            ibgp_src(6),
        );
        assert!(native_better(&hi, &lo, &ctx()));
        assert!(!native_better(&lo, &hi, &ctx()));
    }

    #[test]
    fn shorter_path_wins_then_origin_then_med() {
        let short = entry(|a| a.as_path = AsPath::sequence(vec![1]), ebgp_src(5));
        let long = entry(|a| a.as_path = AsPath::sequence(vec![1, 2, 3]), ebgp_src(6));
        assert!(native_better(&short, &long, &ctx()));

        let igp = entry(|a| a.origin = Origin::Igp, ebgp_src(5));
        let inc = entry(|a| a.origin = Origin::Incomplete, ebgp_src(6));
        assert!(native_better(&igp, &inc, &ctx()));

        let lomed = entry(|a| a.med = Some(5), ebgp_src(5));
        let himed = entry(|a| a.med = Some(50), ebgp_src(6));
        assert!(native_better(&lomed, &himed, &ctx()));
    }

    #[test]
    fn ebgp_beats_ibgp_then_igp_metric_then_tiebreaks() {
        let e = entry(|_| {}, ebgp_src(5));
        let i = entry(|_| {}, ibgp_src(4));
        assert!(native_better(&e, &i, &ctx()));

        let near = entry(|a| a.next_hop = 1, ibgp_src(5));
        let far = entry(|a| a.next_hop = 2, ibgp_src(6));
        let dctx = DecisionCtx {
            igp_metric: &|nh| if nh == 1 { 5 } else { 500 },
            default_local_pref: 100,
        };
        assert!(native_better(&near, &far, &dctx));

        let a = entry(|_| {}, ebgp_src(5));
        let b = entry(|_| {}, ebgp_src(6));
        assert!(native_better(&a, &b, &ctx()), "lower peer address wins the final tiebreak");
    }

    #[test]
    fn preference_is_asymmetric() {
        // For any distinct pair, exactly one direction is "better".
        let a = entry(|a| a.med = Some(1), ebgp_src(5));
        let b = entry(|a| a.med = Some(2), ebgp_src(6));
        assert!(native_better(&a, &b, &ctx()) != native_better(&b, &a, &ctx()));
    }

    #[test]
    fn adj_rib_out_suppresses_duplicates() {
        let mut out = AdjRibOut::default();
        let px = p("10.0.0.0/8");
        let attrs = Rc::new(FirAttrs::default());
        assert!(out.advertise(px, Rc::clone(&attrs)));
        assert!(!out.advertise(px, Rc::clone(&attrs)), "same attrs: nothing to send");
        let different = Rc::new(FirAttrs { med: Some(9), ..FirAttrs::default() });
        assert!(out.advertise(px, different), "changed attrs must be re-sent");
        assert!(out.withdraw(&px));
        assert!(!out.withdraw(&px), "second withdraw is a no-op");
    }

    #[test]
    fn rib_store_insert_replace_remove_and_counts() {
        let mut rib = RibStore::new(3);
        let px = p("10.0.0.0/8");
        assert!(rib.insert(px, peer_slot(0), entry(|_| {}, ebgp_src(5))).is_none());
        assert!(
            rib.insert(px, peer_slot(0), entry(|a| a.med = Some(1), ebgp_src(5))).is_some(),
            "same slot replaces"
        );
        assert!(rib.insert(px, peer_slot(1), entry(|_| {}, ebgp_src(6))).is_none());
        assert_eq!(rib.adj_in_len(), 2);
        assert_eq!(rib.slot_len(peer_slot(0)), 1);
        assert_eq!(rib.candidates_cloned(&px).len(), 2);
        assert_eq!(rib.candidate(&px, peer_slot(0)).unwrap().attrs.med, Some(1));
        assert!(rib.remove(&px, peer_slot(0)).is_some());
        assert!(rib.remove(&px, peer_slot(0)).is_none(), "second remove is a no-op");
        assert_eq!(rib.adj_in_len(), 1);
        assert!(rib.remove(&px, peer_slot(1)).is_some());
        assert!(rib.net_prefixes().is_empty(), "empty net is dropped");
    }

    #[test]
    fn rib_store_candidates_stay_in_slot_order() {
        let mut rib = RibStore::new(4);
        let px = p("10.0.0.0/8");
        // Insert out of order; the scan order must be ascending slots
        // (local first, then peers) like the old full-pass loop.
        rib.insert(px, peer_slot(2), entry(|_| {}, ebgp_src(8)));
        rib.insert(px, LOCAL_SLOT, entry(|_| {}, RouteSource::local(1, 65000)));
        rib.insert(px, peer_slot(0), entry(|_| {}, ebgp_src(6)));
        let slots: Vec<usize> = rib.candidates_cloned(&px).iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, vec![LOCAL_SLOT, peer_slot(0), peer_slot(2)]);
    }

    #[test]
    fn rib_store_committed_best_survives_candidate_removal() {
        let mut rib = RibStore::new(2);
        let px = p("192.0.2.0/24");
        let e = entry(|_| {}, ebgp_src(5));
        rib.insert(px, peer_slot(0), e.clone());
        rib.commit_best(px, Some((peer_slot(0), e)));
        assert_eq!(rib.loc_len(), 1);
        assert_eq!(rib.best_slot(&px), Some(peer_slot(0)));
        // Withdraw the candidate: the committed best stays visible until
        // the next decision commits None (the old LocRib held clones).
        assert!(rib.remove(&px, peer_slot(0)).is_some());
        assert!(rib.best(&px).is_some());
        assert_eq!(rib.loc_len(), 1);
        rib.commit_best(px, None);
        assert_eq!(rib.loc_len(), 0);
        assert!(rib.net_prefixes().is_empty());
    }

    #[test]
    fn rib_store_iter_best_is_prefix_ordered() {
        let mut rib = RibStore::new(2);
        for s in ["192.0.2.0/24", "10.0.0.0/8", "10.0.0.0/16", "172.16.0.0/12"] {
            let px = p(s);
            let e = entry(|_| {}, ebgp_src(5));
            rib.insert(px, peer_slot(0), e.clone());
            rib.commit_best(px, Some((peer_slot(0), e)));
        }
        let got: Vec<Ipv4Prefix> = rib.iter_best().map(|(px, _)| px).collect();
        let mut want = got.clone();
        want.sort();
        assert_eq!(got, want, "trie pre-order is (addr, len) order — no sort needed");
    }

    #[test]
    fn rib_store_flush_slot_reports_best_affected_or_all() {
        let mut rib = RibStore::new(3);
        let a = p("10.0.0.0/8");
        let b = p("192.0.2.0/24");
        for px in [a, b] {
            rib.insert(px, peer_slot(0), entry(|_| {}, ebgp_src(5)));
            rib.insert(px, peer_slot(1), entry(|_| {}, ebgp_src(6)));
        }
        // Best for `a` from slot 1, for `b` from slot 2.
        rib.commit_best(a, rib.candidates_cloned(&a).first().cloned());
        rib.commit_best(b, rib.candidates_cloned(&b).last().cloned());

        let affected = rib.flush_slot(peer_slot(0), false);
        assert_eq!(affected, vec![a], "only the net whose best came from the slot");
        assert_eq!(rib.slot_len(peer_slot(0)), 0);
        assert_eq!(rib.slot_len(peer_slot(1)), 2);

        let affected = rib.flush_slot(peer_slot(1), true);
        assert_eq!(affected, vec![a, b], "all=true reports every removal, prefix-ordered");
    }
}
