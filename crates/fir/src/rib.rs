//! The three RFC 4271 RIBs and the native decision process.

use crate::attrs::FirAttrs;
use rpki::RovState;
use std::collections::HashMap;
use std::rc::Rc;
use xbgp_core::api::PeerType;
use xbgp_wire::Ipv4Prefix;

/// Where a route was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSource {
    /// Neighbor address / BGP identifier, or the router's own id for
    /// locally originated routes.
    pub peer_addr: u32,
    pub peer_asn: u32,
    pub peer_type: PeerType,
    /// The source peer is a route-reflection client.
    pub rr_client: bool,
    /// True for locally originated routes.
    pub local: bool,
}

impl RouteSource {
    pub fn local(router_id: u32, asn: u32) -> RouteSource {
        RouteSource {
            peer_addr: router_id,
            peer_asn: asn,
            peer_type: PeerType::Ibgp,
            rr_client: false,
            local: true,
        }
    }
}

/// One route in a RIB: shared attribute set plus provenance.
#[derive(Debug, Clone)]
pub struct RibEntry {
    pub attrs: Rc<FirAttrs>,
    pub source: RouteSource,
    /// Origin-validation verdict, when validation is active (§3.4 —
    /// recorded, never used to discard).
    pub rov: Option<RovState>,
}

/// Adj-RIB-In: per-peer accepted routes.
#[derive(Debug, Default)]
pub struct AdjRibIn {
    routes: HashMap<Ipv4Prefix, RibEntry>,
}

impl AdjRibIn {
    /// Insert/replace; returns the previous entry if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, entry: RibEntry) -> Option<RibEntry> {
        self.routes.insert(prefix, entry)
    }

    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<RibEntry> {
        self.routes.remove(prefix)
    }

    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&RibEntry> {
        self.routes.get(prefix)
    }

    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    pub fn prefixes(&self) -> impl Iterator<Item = &Ipv4Prefix> {
        self.routes.keys()
    }

    /// Drain everything (session teardown). Sorted by prefix so the
    /// resulting withdrawal storm is deterministic, not hash-ordered.
    pub fn drain(&mut self) -> Vec<Ipv4Prefix> {
        let mut keys: Vec<Ipv4Prefix> = self.routes.keys().copied().collect();
        self.routes.clear();
        keys.sort();
        keys
    }
}

/// Loc-RIB: the best route per prefix.
#[derive(Debug, Default)]
pub struct LocRib {
    best: HashMap<Ipv4Prefix, RibEntry>,
}

impl LocRib {
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&RibEntry> {
        self.best.get(prefix)
    }

    pub fn set(&mut self, prefix: Ipv4Prefix, entry: RibEntry) {
        self.best.insert(prefix, entry);
    }

    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<RibEntry> {
        self.best.remove(prefix)
    }

    pub fn len(&self) -> usize {
        self.best.len()
    }

    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Prefix, &RibEntry)> {
        self.best.iter()
    }
}

/// Adj-RIB-Out: what has been advertised to one peer (prefix → attribute
/// set actually sent). Used to emit withdraws and suppress duplicates.
#[derive(Debug, Default)]
pub struct AdjRibOut {
    sent: HashMap<Ipv4Prefix, Rc<FirAttrs>>,
}

impl AdjRibOut {
    /// Record an advertisement. Returns true if it differs from what was
    /// previously sent (i.e. must actually go on the wire).
    pub fn advertise(&mut self, prefix: Ipv4Prefix, attrs: Rc<FirAttrs>) -> bool {
        match self.sent.get(&prefix) {
            Some(prev) if Rc::ptr_eq(prev, &attrs) || **prev == *attrs => false,
            _ => {
                self.sent.insert(prefix, attrs);
                true
            }
        }
    }

    /// Record a withdraw. Returns true if the prefix had been advertised.
    pub fn withdraw(&mut self, prefix: &Ipv4Prefix) -> bool {
        self.sent.remove(prefix).is_some()
    }

    pub fn len(&self) -> usize {
        self.sent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sent.is_empty()
    }
}

/// Context the native decision process needs beyond the two candidates.
pub struct DecisionCtx<'a> {
    /// IGP metric to a nexthop (`u32::MAX` = unreachable/unknown).
    pub igp_metric: &'a dyn Fn(u32) -> u32,
    pub default_local_pref: u32,
}

/// RFC 4271 §9.1 route preference: returns true when `candidate` is
/// preferred over `best`.
///
/// Order: LOCAL_PREF, AS-path length, origin code, MED (compared across
/// neighbors, "always-compare-med" style, documented deviation), eBGP over
/// iBGP, IGP metric to nexthop, lowest originator router id, lowest peer
/// address.
pub fn native_better(candidate: &RibEntry, best: &RibEntry, ctx: &DecisionCtx<'_>) -> bool {
    let lp = |e: &RibEntry| e.attrs.local_pref.unwrap_or(ctx.default_local_pref);
    if lp(candidate) != lp(best) {
        return lp(candidate) > lp(best);
    }
    let hops = |e: &RibEntry| e.attrs.as_path.hop_count();
    if hops(candidate) != hops(best) {
        return hops(candidate) < hops(best);
    }
    if candidate.attrs.origin != best.attrs.origin {
        return candidate.attrs.origin < best.attrs.origin;
    }
    let med = |e: &RibEntry| e.attrs.med.unwrap_or(0);
    if med(candidate) != med(best) {
        return med(candidate) < med(best);
    }
    let ebgp = |e: &RibEntry| e.source.peer_type == PeerType::Ebgp && !e.source.local;
    if ebgp(candidate) != ebgp(best) {
        return ebgp(candidate);
    }
    let metric = |e: &RibEntry| (ctx.igp_metric)(e.attrs.next_hop);
    if metric(candidate) != metric(best) {
        return metric(candidate) < metric(best);
    }
    let originator = |e: &RibEntry| e.attrs.originator_id.unwrap_or(e.source.peer_addr);
    if originator(candidate) != originator(best) {
        return originator(candidate) < originator(best);
    }
    candidate.source.peer_addr < best.source.peer_addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_wire::attr::Origin;
    use xbgp_wire::AsPath;

    fn entry(f: impl FnOnce(&mut FirAttrs), src: RouteSource) -> RibEntry {
        let mut a = FirAttrs {
            as_path: AsPath::sequence(vec![1, 2]),
            next_hop: 1,
            ..FirAttrs::default()
        };
        f(&mut a);
        RibEntry { attrs: Rc::new(a), source: src, rov: None }
    }

    fn ebgp_src(addr: u32) -> RouteSource {
        RouteSource {
            peer_addr: addr,
            peer_asn: 65002,
            peer_type: PeerType::Ebgp,
            rr_client: false,
            local: false,
        }
    }

    fn ibgp_src(addr: u32) -> RouteSource {
        RouteSource {
            peer_addr: addr,
            peer_asn: 65001,
            peer_type: PeerType::Ibgp,
            rr_client: false,
            local: false,
        }
    }

    fn ctx() -> DecisionCtx<'static> {
        DecisionCtx { igp_metric: &|_| 10, default_local_pref: 100 }
    }

    #[test]
    fn local_pref_dominates() {
        let hi = entry(|a| a.local_pref = Some(200), ibgp_src(5));
        let lo = entry(
            |a| {
                a.local_pref = Some(100);
                a.as_path = AsPath::sequence(vec![1]);
            },
            ibgp_src(6),
        );
        assert!(native_better(&hi, &lo, &ctx()));
        assert!(!native_better(&lo, &hi, &ctx()));
    }

    #[test]
    fn shorter_path_wins_then_origin_then_med() {
        let short = entry(|a| a.as_path = AsPath::sequence(vec![1]), ebgp_src(5));
        let long = entry(|a| a.as_path = AsPath::sequence(vec![1, 2, 3]), ebgp_src(6));
        assert!(native_better(&short, &long, &ctx()));

        let igp = entry(|a| a.origin = Origin::Igp, ebgp_src(5));
        let inc = entry(|a| a.origin = Origin::Incomplete, ebgp_src(6));
        assert!(native_better(&igp, &inc, &ctx()));

        let lomed = entry(|a| a.med = Some(5), ebgp_src(5));
        let himed = entry(|a| a.med = Some(50), ebgp_src(6));
        assert!(native_better(&lomed, &himed, &ctx()));
    }

    #[test]
    fn ebgp_beats_ibgp_then_igp_metric_then_tiebreaks() {
        let e = entry(|_| {}, ebgp_src(5));
        let i = entry(|_| {}, ibgp_src(4));
        assert!(native_better(&e, &i, &ctx()));

        let near = entry(|a| a.next_hop = 1, ibgp_src(5));
        let far = entry(|a| a.next_hop = 2, ibgp_src(6));
        let dctx = DecisionCtx {
            igp_metric: &|nh| if nh == 1 { 5 } else { 500 },
            default_local_pref: 100,
        };
        assert!(native_better(&near, &far, &dctx));

        let a = entry(|_| {}, ebgp_src(5));
        let b = entry(|_| {}, ebgp_src(6));
        assert!(native_better(&a, &b, &ctx()), "lower peer address wins the final tiebreak");
    }

    #[test]
    fn preference_is_asymmetric() {
        // For any distinct pair, exactly one direction is "better".
        let a = entry(|a| a.med = Some(1), ebgp_src(5));
        let b = entry(|a| a.med = Some(2), ebgp_src(6));
        assert!(native_better(&a, &b, &ctx()) != native_better(&b, &a, &ctx()));
    }

    #[test]
    fn adj_rib_out_suppresses_duplicates() {
        let mut out = AdjRibOut::default();
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let attrs = Rc::new(FirAttrs::default());
        assert!(out.advertise(p, Rc::clone(&attrs)));
        assert!(!out.advertise(p, Rc::clone(&attrs)), "same attrs: nothing to send");
        let different = Rc::new(FirAttrs { med: Some(9), ..FirAttrs::default() });
        assert!(out.advertise(p, different), "changed attrs must be re-sent");
        assert!(out.withdraw(&p));
        assert!(!out.withdraw(&p), "second withdraw is a no-op");
    }

    #[test]
    fn adj_rib_in_replace_and_drain() {
        let mut rib = AdjRibIn::default();
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(rib.insert(p, entry(|_| {}, ebgp_src(5))).is_none());
        assert!(rib.insert(p, entry(|a| a.med = Some(1), ebgp_src(5))).is_some());
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.drain(), vec![p]);
        assert!(rib.is_empty());
    }
}
