//! # bgp-fir — the FIR BGP daemon (FRRouting analogue)
//!
//! FIR is one of the two independent BGP implementations in this workspace
//! (the other is `bgp-wren`). It is deliberately structured like FRRouting
//! where that structure matters to xBGP (DESIGN.md §1):
//!
//! * **Host-order, fully parsed attributes** ([`attrs::FirAttrs`]): every
//!   received attribute is decoded into typed host-order fields and the
//!   resulting attribute sets are **interned** in a hash-consing table
//!   (FRR's `attrhash`). The xBGP glue must therefore *convert* between
//!   this representation and the neutral network-byte-order form on every
//!   `get_attr`/`set_attr` — the conversion cost the paper measured on
//!   FRRouting.
//! * **Trie-based native origin validation** ([`rpki::RoaTrie`]): FIR's
//!   native route-origin validation walks a bit trie per lookup, which is
//!   why the hash-based xBGP extension outperforms it (§3.4, Fig. 4).
//! * **Peer-group export**: export policy is evaluated per group of peers
//!   sharing an outbound configuration, and the current peer must be
//!   threaded into the xBGP insertion point explicitly (the "5 extra lines
//!   of code" item of §2.1).
//!
//! The daemon implements the RFC 4271 session FSM over `netsim` links,
//! the three RIBs, the decision process, native route reflection
//! (RFC 4456) and all five xBGP insertion points.

pub mod attrs;
pub mod config;
pub mod daemon;
pub mod rib;
pub mod session;
pub mod xbgp_glue;

pub use config::{FirConfig, PeerCfg};
pub use daemon::{DaemonStats, FirDaemon};
