//! xBGP execution contexts for FIR.
//!
//! Each insertion-point invocation builds a [`FirXbgpCtx`] over the
//! daemon's state relevant to that point; the VMM's helpers reach the
//! host through the `HostApi` methods implemented here. Because FIR
//! stores attributes parsed and host-ordered, `get_attr`/`set_attr` calls
//! run the conversion in [`crate::attrs::FirAttrs::neutral_payload`] /
//! [`crate::attrs::FirAttrs::set_neutral`] — FIR pays a representation
//! tax on every attribute access, exactly like FRRouting in the paper.
//!
//! Attribute mutation at per-route points is copy-on-write: routes share
//! interned attribute sets, so the context clones the set only when an
//! extension actually writes.

use crate::attrs::FirAttrs;
use rpki::{RoaHashTable, RoaTable};
use xbgp_core::api::{NextHopInfo, PeerInfo};
use xbgp_core::{HostApi, HostError, HostOp};
use xbgp_wire::Ipv4Prefix;

/// How the current insertion point exposes route attributes.
pub enum AttrAccess<'a> {
    /// No route in scope.
    None,
    /// Read-only attribute set (encode-message point).
    Read(&'a FirAttrs),
    /// Copy-on-write: reads come from `modified` if an extension has
    /// written, else from `base`; the first write clones `base`.
    Cow {
        base: &'a FirAttrs,
        modified: &'a mut Option<FirAttrs>,
    },
    /// Direct mutation (receive-message point: the pending attribute set
    /// for all routes of the UPDATE being parsed).
    Mut(&'a mut FirAttrs),
}

impl AttrAccess<'_> {
    /// Non-mutating probe used by `check_op`: can this point write
    /// attributes at all? (A `write()` call would clone on a Cow point.)
    fn writable(&self) -> bool {
        !matches!(self, AttrAccess::None | AttrAccess::Read(_))
    }

    fn read(&self) -> Option<&FirAttrs> {
        match self {
            AttrAccess::None => None,
            AttrAccess::Read(a) => Some(a),
            AttrAccess::Cow { base, modified } => Some(modified.as_ref().unwrap_or(base)),
            AttrAccess::Mut(a) => Some(a),
        }
    }

    fn write(&mut self) -> Option<&mut FirAttrs> {
        match self {
            AttrAccess::None | AttrAccess::Read(_) => None,
            AttrAccess::Cow { base, modified } => {
                if modified.is_none() {
                    **modified = Some((*base).clone());
                }
                modified.as_mut()
            }
            AttrAccess::Mut(a) => Some(a),
        }
    }
}

/// The execution context handed to the VMM at a FIR insertion point.
pub struct FirXbgpCtx<'a> {
    pub peer: PeerInfo,
    /// Insertion-point arguments (raw message body, source peer info, …),
    /// borrowed from the daemon — building a context copies nothing.
    pub args: &'a [&'a [u8]],
    pub attrs: AttrAccess<'a>,
    pub prefix: Option<Ipv4Prefix>,
    pub nexthop: Option<NextHopInfo>,
    /// Router configuration for `get_xtra` (manifest data is layered in by
    /// the VMM itself).
    pub xtra: &'a [(String, Vec<u8>)],
    /// Output buffer (encode-message point): raw attribute TLVs appended
    /// to the outgoing UPDATE.
    pub out_buf: Option<&'a mut Vec<u8>>,
    /// The xBGP-layer ROA store backing `rpki_check_origin` (hash table,
    /// per §3.4 — not FIR's native trie).
    pub rov: Option<&'a RoaHashTable>,
    /// Routes installed by `rib_add_route` via hidden context arguments.
    pub rib_adds: &'a mut Vec<(Ipv4Prefix, u32)>,
    /// Debug output sink.
    pub logs: &'a mut Vec<String>,
}

impl HostApi for FirXbgpCtx<'_> {
    fn peer_info(&self) -> PeerInfo {
        self.peer
    }

    fn nexthop_info(&self) -> Option<NextHopInfo> {
        self.nexthop
    }

    fn prefix(&self) -> Option<Ipv4Prefix> {
        self.prefix
    }

    fn arg(&self, idx: u32) -> Option<&[u8]> {
        self.args.get(idx as usize).copied()
    }

    fn get_attr_into(&self, code: u8, out: &mut Vec<u8>) -> Option<u8> {
        self.attrs.read()?.neutral_payload_into(code, out)
    }

    fn has_attr(&self, code: u8) -> bool {
        self.attrs.read().is_some_and(|a| a.has_neutral(code))
    }

    fn check_op(&self, op: &HostOp<'_>) -> Result<(), HostError> {
        match op {
            HostOp::SetAttr { code, value, .. } => {
                if !self.attrs.writable() {
                    return Err(HostError::ReadOnlyPoint { op: "set_attr" });
                }
                FirAttrs::validate_neutral(*code, value)
                    .map_err(|reason| HostError::BadAttrValue { code: *code, reason })
            }
            HostOp::RemoveAttr { code } => {
                if !self.attrs.writable() {
                    Err(HostError::ReadOnlyPoint { op: "remove_attr" })
                } else if (1..=3).contains(code) {
                    Err(HostError::MandatoryAttr { code: *code })
                } else {
                    Ok(())
                }
            }
            HostOp::WriteBuf { .. } => {
                if self.out_buf.is_some() {
                    Ok(())
                } else {
                    Err(HostError::NoOutputBuffer)
                }
            }
            HostOp::RibAddRoute { .. } => Ok(()),
        }
    }

    fn set_attr(&mut self, code: u8, flags: u8, value: &[u8]) -> Result<(), HostError> {
        self.attrs
            .write()
            .ok_or(HostError::ReadOnlyPoint { op: "set_attr" })?
            .set_neutral(code, flags, value)
            .map_err(|reason| HostError::BadAttrValue { code, reason })
    }

    fn remove_attr(&mut self, code: u8) -> Result<(), HostError> {
        self.attrs
            .write()
            .ok_or(HostError::ReadOnlyPoint { op: "remove_attr" })?
            .remove_neutral(code)
            .map_err(|_| {
                if (1..=3).contains(&code) {
                    HostError::MandatoryAttr { code }
                } else {
                    HostError::AttrNotPresent { code }
                }
            })
    }

    fn get_xtra(&self, key: &str) -> Option<Vec<u8>> {
        self.xtra.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    fn write_buf(&mut self, data: &[u8]) -> Result<(), HostError> {
        match self.out_buf.as_deref_mut() {
            Some(buf) => {
                buf.extend_from_slice(data);
                Ok(())
            }
            None => Err(HostError::NoOutputBuffer),
        }
    }

    fn check_origin(&self, prefix: Ipv4Prefix, origin_asn: u32) -> u64 {
        match self.rov {
            Some(table) => table.validate(prefix, origin_asn) as u8 as u64,
            None => xbgp_core::api::ROV_NOT_FOUND,
        }
    }

    fn rib_add_route(&mut self, prefix: Ipv4Prefix, nexthop: u32) -> Result<(), HostError> {
        self.rib_adds.push((prefix, nexthop));
        Ok(())
    }

    fn log(&mut self, msg: &str) {
        self.logs.push(msg.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_core::api::PeerType;
    use xbgp_wire::attr::AttrFlags;

    fn peer() -> PeerInfo {
        PeerInfo {
            router_id: 1,
            asn: 65002,
            peer_type: PeerType::Ebgp,
            local_router_id: 2,
            local_asn: 65001,
            flags: 0,
        }
    }

    #[test]
    fn cow_clones_only_on_write() {
        let base = FirAttrs { med: Some(5), next_hop: 9, ..FirAttrs::default() };
        let mut modified = None;
        let mut rib_adds = Vec::new();
        let mut logs = Vec::new();
        let mut ctx = FirXbgpCtx {
            peer: peer(),
            args: &[],
            attrs: AttrAccess::Cow { base: &base, modified: &mut modified },
            prefix: None,
            nexthop: None,
            xtra: &[],
            out_buf: None,
            rov: None,
            rib_adds: &mut rib_adds,
            logs: &mut logs,
        };
        // Reads do not clone.
        assert_eq!(ctx.get_attr(4).unwrap().1, 5u32.to_be_bytes());
        assert!(matches!(&ctx.attrs, AttrAccess::Cow { modified, .. } if modified.is_none()));
        // First write clones, then mutates the copy.
        ctx.set_attr(4, AttrFlags::OPT_NON_TRANS.0, &7u32.to_be_bytes()).unwrap();
        assert_eq!(ctx.get_attr(4).unwrap().1, 7u32.to_be_bytes());
        assert_eq!(base.med, Some(5), "base untouched");
        assert_eq!(modified.unwrap().med, Some(7));
    }

    #[test]
    fn read_only_contexts_reject_writes() {
        let base = FirAttrs::default();
        let mut rib_adds = Vec::new();
        let mut logs = Vec::new();
        let mut ctx = FirXbgpCtx {
            peer: peer(),
            args: &[],
            attrs: AttrAccess::Read(&base),
            prefix: None,
            nexthop: None,
            xtra: &[],
            out_buf: None,
            rov: None,
            rib_adds: &mut rib_adds,
            logs: &mut logs,
        };
        assert!(ctx.set_attr(4, 0x80, &7u32.to_be_bytes()).is_err());
        assert!(ctx.remove_attr(4).is_err());
    }

    #[test]
    fn write_buf_requires_encode_context() {
        let mut rib_adds = Vec::new();
        let mut logs = Vec::new();
        let mut out = Vec::new();
        let mut ctx = FirXbgpCtx {
            peer: peer(),
            args: &[],
            attrs: AttrAccess::None,
            prefix: None,
            nexthop: None,
            xtra: &[],
            out_buf: Some(&mut out),
            rov: None,
            rib_adds: &mut rib_adds,
            logs: &mut logs,
        };
        ctx.write_buf(&[1, 2]).unwrap();
        ctx.write_buf(&[3]).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn rov_helper_uses_hash_table() {
        use rpki::Roa;
        let mut table = RoaHashTable::new();
        table.insert(Roa::new("10.0.0.0/8".parse().unwrap(), 24, 65001));
        let mut rib_adds = Vec::new();
        let mut logs = Vec::new();
        let ctx = FirXbgpCtx {
            peer: peer(),
            args: &[],
            attrs: AttrAccess::None,
            prefix: None,
            nexthop: None,
            xtra: &[],
            out_buf: None,
            rov: Some(&table),
            rib_adds: &mut rib_adds,
            logs: &mut logs,
        };
        assert_eq!(
            ctx.check_origin("10.1.0.0/16".parse().unwrap(), 65001),
            xbgp_core::api::ROV_VALID
        );
        assert_eq!(
            ctx.check_origin("10.1.0.0/16".parse().unwrap(), 65002),
            xbgp_core::api::ROV_INVALID
        );
    }
}
