//! # xbgp-driver — the transport-agnostic daemon driver seam
//!
//! Both BGP implementations in this workspace (`bgp-fir` and `bgp-wren`)
//! are single-threaded [`netsim::Node`]s: wire frames in, wire frames
//! out, plus timers. Historically every front-end that drove them — the
//! Fig. 3 harness, the shard workers, the scenario runner, the churn
//! bench — carried its own pair of fir-vs-wren match arms and its own
//! copy of the near-identical-but-differently-named config builders
//! (`FirConfig::peer` vs `WrenConfig::channel`). This crate extracts the
//! seam those front-ends share, so the deterministic sim feeder and the
//! `xbgp-serve` socket runtime are two transports over one API:
//!
//! * [`Dut`] — which implementation sits behind the seam.
//! * [`DaemonSpec`] — the unified daemon configuration with one
//!   neighbor-declaration vocabulary ([`DaemonSpec::neighbor`] /
//!   [`DaemonSpec::rr_client`]); each daemon crate converts it into its
//!   native config type.
//! * [`Daemon`] — the driver trait: everything a front-end needs from a
//!   running daemon (Loc-RIB dumps, the full-recompute oracle, metrics,
//!   traces, session state, counters) without knowing which one it is.
//!   Frames are delivered and drained through the [`netsim::Node`]
//!   supertrait — over a [`netsim::Sim`] link in the harness, or a
//!   [`netsim::NodeDriver`] under a TCP session fan-in.
//! * [`DutNode`] — a newtype that lets a `Box<dyn Daemon>` live in the
//!   simulator's node table (which downcasts to concrete types) while
//!   still being reachable as a trait object.

use netsim::{LinkId, Node, NodeCtx};
use xbgp_obs::trace::{TraceConfig, TraceDump};
use xbgp_obs::Snapshot;
use xbgp_wire::Ipv4Prefix;

/// Which BGP implementation sits behind the driver seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dut {
    Fir,
    Wren,
}

impl Dut {
    pub fn name(self) -> &'static str {
        match self {
            Dut::Fir => "xFIR",
            Dut::Wren => "xWREN",
        }
    }

    /// Machine-friendly name, used in CLI flags and metric labels.
    pub fn slug(self) -> &'static str {
        match self {
            Dut::Fir => "fir",
            Dut::Wren => "wren",
        }
    }
}

impl std::str::FromStr for Dut {
    type Err = String;

    fn from_str(s: &str) -> Result<Dut, String> {
        match s {
            "fir" | "xfir" | "xFIR" => Ok(Dut::Fir),
            "wren" | "xwren" | "xWREN" => Ok(Dut::Wren),
            other => Err(format!("unknown implementation `{other}` (fir|wren)")),
        }
    }
}

/// One declared BGP neighbor, in the shared vocabulary both daemon
/// configs translate from (`PeerCfg` in fir, `ChannelCfg` in wren).
#[derive(Debug, Clone, Copy)]
pub struct NeighborDecl {
    /// The link this neighbor is reached over: a simulator link in the
    /// harness, a session slot index under `xbgp-serve`.
    pub link: LinkId,
    /// Neighbor address (doubles as its expected BGP identifier).
    pub addr: u32,
    /// Neighbor AS number; equal to ours ⇒ iBGP session.
    pub asn: u32,
    /// Treat this iBGP neighbor as a route-reflection client.
    pub rr_client: bool,
}

/// Unified daemon configuration: the union of the knobs `FirConfig` and
/// `WrenConfig` expose, in one vocabulary. Front-ends build one of these
/// and hand it to `FirConfig::from_spec` / `WrenConfig::from_spec` (via
/// `xbgp_harness::dut::build`), instead of duplicating per-daemon
/// builder chains.
#[derive(Clone)]
pub struct DaemonSpec {
    pub asn: u32,
    /// BGP identifier; also this router's address on its links.
    pub router_id: u32,
    /// Hold time proposed in OPEN (seconds); keepalives at a third of
    /// the negotiated value. `0` disables liveness timers entirely —
    /// the socket runtime negotiates this for its shard cores, whose
    /// liveness is owned by the per-session FSMs in front of them.
    pub hold_time_secs: u16,
    pub neighbors: Vec<NeighborDecl>,
    /// Native RFC 4456 route reflection (fir `native_rr`, wren
    /// `rr_enabled`).
    pub native_rr: bool,
    /// Cluster id for reflection; defaults to the router id.
    pub cluster_id: Option<u32>,
    /// ROAs for the daemon's native origin validation (fir's trie, wren's
    /// hash table). Validation tags routes; it does not discard them.
    pub native_rov: Option<Vec<rpki::Roa>>,
    /// xBGP manifest to load into the VMM.
    pub xbgp: Option<xbgp_core::Manifest>,
    /// ROAs backing the xBGP `rpki_check_origin` helper.
    pub xbgp_roas: Option<Vec<rpki::Roa>>,
    /// Link-state IGP this router participates in.
    pub igp: Option<igp::SharedIgp>,
    /// Routes to originate locally at startup: `(prefix, nexthop)`.
    pub originate: Vec<(Ipv4Prefix, u32)>,
    /// LOCAL_PREF assigned to routes learned over eBGP.
    pub default_local_pref: u32,
    /// Static key → value data exposed to extensions via `get_xtra`.
    pub xtra: Vec<(String, Vec<u8>)>,
    /// Enable timing instrumentation (latency histograms).
    pub metrics: bool,
    /// Route-scoped tracing configuration.
    pub trace: Option<TraceConfig>,
    /// Enable the VM execution profiler.
    pub profile: bool,
    /// Bytecode execution engine.
    pub engine: xbgp_core::Engine,
    /// Run the full-recompute decision baseline instead of incremental
    /// delta recomputation.
    pub full_recompute: bool,
}

impl DaemonSpec {
    /// A minimal spec with mandatory fields; everything else off.
    pub fn new(asn: u32, router_id: u32) -> DaemonSpec {
        DaemonSpec {
            asn,
            router_id,
            hold_time_secs: 90,
            neighbors: Vec::new(),
            native_rr: false,
            cluster_id: None,
            native_rov: None,
            xbgp: None,
            xbgp_roas: None,
            igp: None,
            originate: Vec::new(),
            default_local_pref: 100,
            xtra: Vec::new(),
            metrics: false,
            trace: None,
            profile: false,
            engine: xbgp_core::Engine::default(),
            full_recompute: false,
        }
    }

    /// Declare a neighbor.
    pub fn neighbor(mut self, link: LinkId, addr: u32, asn: u32) -> Self {
        self.neighbors.push(NeighborDecl { link, addr, asn, rr_client: false });
        self
    }

    /// Declare a route-reflection client neighbor (iBGP).
    pub fn rr_client(mut self, link: LinkId, addr: u32, asn: u32) -> Self {
        self.neighbors.push(NeighborDecl { link, addr, asn, rr_client: true });
        self
    }
}

/// The cross-implementation counter set front-ends read (`DaemonStats`
/// in fir, `WrenStats` in wren — same quantities, one shape).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonCounters {
    pub updates_rx: u64,
    /// Announced NLRI received.
    pub prefixes_rx: u64,
    pub withdrawals_rx: u64,
    pub updates_tx: u64,
    pub prefixes_tx: u64,
    pub withdrawals_tx: u64,
    pub sessions_established: u64,
    /// Virtual time of the first received UPDATE.
    pub first_update_rx: Option<u64>,
    /// Virtual time of the most recent Loc-RIB change.
    pub last_route_change: Option<u64>,
}

impl DaemonCounters {
    /// Routing updates absorbed: announced NLRI plus withdrawn prefixes —
    /// the unit of the churn and peer-scaling benchmarks.
    pub fn routing_updates_rx(&self) -> u64 {
        self.prefixes_rx + self.withdrawals_rx
    }
}

/// The driver seam: what every front-end needs from a running daemon,
/// independent of which implementation it is. Wire frames are delivered
/// and drained through the [`Node`] supertrait; this trait adds the
/// inspection surface.
///
/// Object safety is deliberate — front-ends hold `Box<dyn Daemon>` (see
/// [`DutNode`]) so adding a third implementation touches only the one
/// construction site.
pub trait Daemon: Node {
    /// Which implementation this is.
    fn kind(&self) -> Dut;

    /// Number of nets with a selected best route.
    fn loc_rib_len(&self) -> usize;

    /// Does the Loc-RIB hold a best route for `prefix`?
    fn has_best_route(&self, prefix: &Ipv4Prefix) -> bool;

    /// The committed Loc-RIB as `(prefix, wire-encoded attributes)`,
    /// sorted by prefix — the byte-identical comparison currency of every
    /// determinism check in the workspace.
    fn loc_rib_dump(&self) -> Vec<(Ipv4Prefix, Vec<u8>)>;

    /// A from-scratch decision pass over the Adj-RIB-In, in the same
    /// dump format — the incremental-RIB correctness oracle.
    fn oracle_loc_rib_dump(&mut self) -> Vec<(Ipv4Prefix, Vec<u8>)>;

    /// Current metrics snapshot (labelled with the daemon's identity).
    fn metrics_snapshot(&self) -> Snapshot;

    /// Take the flight-recorder dump, if tracing was configured.
    fn take_trace(&mut self) -> Option<TraceDump>;

    /// Is the session to the neighbor at `addr` established?
    fn session_established(&self, addr: u32) -> bool;

    /// The cross-implementation counter set.
    fn counters(&self) -> DaemonCounters;
}

/// Adapter that lets a `Box<dyn Daemon>` live in the simulator's node
/// table. [`netsim::Sim`] stores `Box<dyn Node>` and hands nodes back by
/// downcasting to a concrete type — so harnesses store a `DutNode` and
/// reach the daemon through `.0` as a trait object:
///
/// ```ignore
/// sim.replace_node(d, Box::new(build(dut, spec)));
/// // ... later ...
/// let rib = sim.node_ref::<DutNode>(d).0.loc_rib_dump();
/// ```
pub struct DutNode(pub Box<dyn Daemon>);

impl Node for DutNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.0.on_start(ctx);
    }
    fn on_data(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, data: &[u8]) {
        self.0.on_data(ctx, link, data);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        self.0.on_timer(ctx, token);
    }
    fn on_link_event(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, up: bool) {
        self.0.on_link_event(ctx, link, up);
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dut_parses_and_names() {
        assert_eq!("fir".parse::<Dut>().unwrap(), Dut::Fir);
        assert_eq!("wren".parse::<Dut>().unwrap(), Dut::Wren);
        assert!("bird".parse::<Dut>().is_err());
        assert_eq!(Dut::Fir.name(), "xFIR");
        assert_eq!(Dut::Wren.slug(), "wren");
    }

    #[test]
    fn spec_builder_collects_neighbors() {
        let s =
            DaemonSpec::new(65000, 2)
                .rr_client(LinkId(0), 1, 65000)
                .neighbor(LinkId(1), 3, 65001);
        assert_eq!(s.neighbors.len(), 2);
        assert!(s.neighbors[0].rr_client);
        assert!(!s.neighbors[1].rr_client);
        assert_eq!(s.neighbors[1].asn, 65001);
        assert_eq!(s.hold_time_secs, 90);
    }

    #[test]
    fn counters_sum_routing_updates() {
        let c = DaemonCounters { prefixes_rx: 7, withdrawals_rx: 5, ..Default::default() };
        assert_eq!(c.routing_updates_rx(), 12);
    }
}
