//! Extension manifests.
//!
//! The VMM "is initialized with a manifest containing the extension
//! bytecodes and the points where they must be inserted. Different
//! extension codes can be attached to the same insertion point, and the
//! manifest defines in which order they are executed. The manifest also
//! lists the different xBGP API functions that the bytecode uses." (§2.1)
//!
//! Manifests are plain data (serde-serializable to JSON) so operators can
//! ship them alongside compiled bytecode. Bytecode travels hex-encoded.

use crate::api::{helper, InsertionPoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xbgp_vm::Program;

/// One extension bytecode and where/how to attach it.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ExtensionSpec {
    /// Human-readable name (diagnostics).
    pub name: String,
    /// Extensions with the same `program` share one persistent memory
    /// space (the GeoLoc use case: four bytecodes, one program).
    #[serde(default)]
    pub program: String,
    /// Where to attach.
    pub insertion_point: InsertionPoint,
    /// Helper names this bytecode is allowed to call; the verifier rejects
    /// any call outside this list.
    pub helpers: Vec<String>,
    /// Bytecode, hex-encoded 8-byte slots.
    #[serde(with = "hex_bytes")]
    pub bytecode: Vec<u8>,
}

impl ExtensionSpec {
    /// Build a spec from an already-assembled program.
    pub fn from_program(
        name: impl Into<String>,
        program_group: impl Into<String>,
        insertion_point: InsertionPoint,
        helpers: &[&str],
        prog: &Program,
    ) -> ExtensionSpec {
        ExtensionSpec {
            name: name.into(),
            program: program_group.into(),
            insertion_point,
            helpers: helpers.iter().map(|s| s.to_string()).collect(),
            bytecode: prog.to_bytes(),
        }
    }

    /// Decode the bytecode into instructions.
    pub fn program(&self) -> Result<Program, String> {
        Program::from_bytes(&self.bytecode)
    }

    /// Resolve the declared helper names to ids; unknown names are errors.
    pub fn helper_ids(&self) -> Result<Vec<u32>, String> {
        self.helpers
            .iter()
            .map(|n| helper::id_of(n).ok_or_else(|| format!("unknown helper `{n}`")))
            .collect()
    }
}

/// A full manifest: ordered list of extensions plus static configuration
/// exposed to bytecode through `get_xtra`.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Manifest {
    pub extensions: Vec<ExtensionSpec>,
    /// Static key → bytes data (router coordinates, AS-pair tables, ROA
    /// file paths, …), hex-encoded on the wire.
    #[serde(default)]
    pub xtra: HashMap<String, HexBlob>,
}

impl Manifest {
    pub fn new() -> Manifest {
        Manifest::default()
    }

    /// Append an extension (executed after previously added ones attached
    /// to the same insertion point).
    pub fn push(&mut self, spec: ExtensionSpec) -> &mut Self {
        self.extensions.push(spec);
        self
    }

    /// Attach static data retrievable with `get_xtra`.
    pub fn set_xtra(&mut self, key: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.xtra.insert(key.into(), HexBlob(value));
        self
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Manifest, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// Byte blob serialized as a hex string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HexBlob(pub Vec<u8>);

impl Serialize for HexBlob {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&to_hex(&self.0))
    }
}

impl<'de> Deserialize<'de> for HexBlob {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        from_hex(&s).map(HexBlob).map_err(serde::de::Error::custom)
    }
}

/// Hex encoding used for bytecode and blobs in JSON manifests.
pub fn to_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

mod hex_bytes {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(data: &[u8], s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&super::to_hex(data))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<u8>, D::Error> {
        let s = String::deserialize(d)?;
        super::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_vm::insn::build;

    fn sample() -> Manifest {
        let prog = Program::new(vec![build::mov_imm(0, 1), build::exit()]);
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "accept_all",
            "demo",
            InsertionPoint::BgpInboundFilter,
            &["next", "get_peer_info"],
            &prog,
        ));
        m.set_xtra("coords", vec![1, 2, 3, 4]);
        m
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let json = m.to_json();
        assert!(json.contains("bgp_inbound_filter"));
        assert!(json.contains("accept_all"));
        let back = Manifest::from_json(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bytecode_decodes_back_to_program() {
        let m = sample();
        let prog = m.extensions[0].program().unwrap();
        assert_eq!(prog.insns.len(), 2);
    }

    #[test]
    fn helper_name_resolution() {
        let m = sample();
        assert_eq!(m.extensions[0].helper_ids().unwrap(), vec![1, 4]);

        let mut bad = m.extensions[0].clone();
        bad.helpers.push("no_such_helper".into());
        assert!(bad.helper_ids().is_err());
    }

    #[test]
    fn hex_codec() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(from_hex("00ff1a").unwrap(), vec![0x00, 0xff, 0x1a]);
        assert!(from_hex("0").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn malformed_json_reports_error() {
        assert!(Manifest::from_json("{").is_err());
        assert!(Manifest::from_json(r#"{"extensions":[{"name":"x"}]}"#).is_err());
    }
}
