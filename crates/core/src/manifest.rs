//! Extension manifests.
//!
//! The VMM "is initialized with a manifest containing the extension
//! bytecodes and the points where they must be inserted. Different
//! extension codes can be attached to the same insertion point, and the
//! manifest defines in which order they are executed. The manifest also
//! lists the different xBGP API functions that the bytecode uses." (§2.1)
//!
//! Manifests are plain data (JSON on disk) so operators can ship them
//! alongside compiled bytecode. Bytecode travels hex-encoded. The codec is
//! [`xbgp_obs::json`] — hand-rolled (de)serialization keeps the manifest
//! format explicit and dependency-free.

use crate::api::{helper, InsertionPoint};
use crate::policy::OnFault;
use std::collections::HashMap;
use std::sync::Arc;
use xbgp_obs::json::Value;
use xbgp_vm::Program;

/// One extension bytecode and where/how to attach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionSpec {
    /// Human-readable name (diagnostics).
    pub name: String,
    /// Extensions with the same `program` share one persistent memory
    /// space (the GeoLoc use case: four bytecodes, one program).
    pub program: String,
    /// Where to attach.
    pub insertion_point: InsertionPoint,
    /// Helper names this bytecode is allowed to call; the verifier rejects
    /// any call outside this list.
    pub helpers: Vec<String>,
    /// Bytecode, hex-encoded 8-byte slots on the wire. Held behind an
    /// `Arc` so cloning a manifest for each shard's VMM shares one copy
    /// of the raw bytes instead of duplicating every program.
    pub bytecode: Arc<[u8]>,
    /// Per-invocation fuel budget. `None` uses the VMM-wide default
    /// ([`crate::vmm::Vmm::set_fuel`]).
    pub fuel: Option<u64>,
    /// Disposition when this extension faults (trap, fuel exhaustion,
    /// contract violation); defaults to falling back to native behaviour.
    pub on_fault: OnFault,
}

impl ExtensionSpec {
    /// Build a spec from an already-assembled program.
    pub fn from_program(
        name: impl Into<String>,
        program_group: impl Into<String>,
        insertion_point: InsertionPoint,
        helpers: &[&str],
        prog: &Program,
    ) -> ExtensionSpec {
        ExtensionSpec {
            name: name.into(),
            program: program_group.into(),
            insertion_point,
            helpers: helpers.iter().map(|s| s.to_string()).collect(),
            bytecode: prog.to_bytes().into(),
            fuel: None,
            on_fault: OnFault::Fallback,
        }
    }

    /// Decode the bytecode into instructions.
    pub fn program(&self) -> Result<Program, String> {
        Program::from_bytes(&self.bytecode)
    }

    /// Resolve the declared helper names to ids; unknown names are errors.
    pub fn helper_ids(&self) -> Result<Vec<u32>, String> {
        self.helpers
            .iter()
            .map(|n| helper::id_of(n).ok_or_else(|| format!("unknown helper `{n}`")))
            .collect()
    }
}

/// A full manifest: ordered list of extensions plus static configuration
/// exposed to bytecode through `get_xtra`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    pub extensions: Vec<ExtensionSpec>,
    /// Static key → bytes data (router coordinates, AS-pair tables, ROA
    /// file paths, …), hex-encoded on the wire.
    pub xtra: HashMap<String, HexBlob>,
}

impl Manifest {
    pub fn new() -> Manifest {
        Manifest::default()
    }

    /// Append an extension (executed after previously added ones attached
    /// to the same insertion point).
    pub fn push(&mut self, spec: ExtensionSpec) -> &mut Self {
        self.extensions.push(spec);
        self
    }

    /// Attach static data retrievable with `get_xtra`.
    pub fn set_xtra(&mut self, key: impl Into<String>, value: Vec<u8>) -> &mut Self {
        self.xtra.insert(key.into(), HexBlob(value));
        self
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let extensions: Vec<Value> = self
            .extensions
            .iter()
            .map(|e| {
                let mut obj = vec![
                    ("name".to_string(), Value::from(e.name.as_str())),
                    ("program".to_string(), Value::from(e.program.as_str())),
                    ("insertion_point".to_string(), Value::from(e.insertion_point.name())),
                    (
                        "helpers".to_string(),
                        Value::Arr(e.helpers.iter().map(|h| Value::from(h.as_str())).collect()),
                    ),
                    ("bytecode".to_string(), Value::from(to_hex(&e.bytecode))),
                ];
                // Policy fields are emitted only when they deviate from
                // the defaults, keeping pre-existing manifests byte-stable.
                if let Some(fuel) = e.fuel {
                    obj.push(("fuel".to_string(), Value::from(fuel)));
                }
                if e.on_fault != OnFault::Fallback {
                    obj.push(("on_fault".to_string(), Value::from(e.on_fault.as_str())));
                }
                Value::Obj(obj)
            })
            .collect();
        let mut xtra: Vec<(String, Value)> =
            self.xtra.iter().map(|(k, v)| (k.clone(), Value::from(to_hex(&v.0)))).collect();
        xtra.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(vec![
            ("extensions".to_string(), Value::Arr(extensions)),
            ("xtra".to_string(), Value::Obj(xtra)),
        ])
        .to_string_pretty()
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Manifest, String> {
        let doc = Value::parse(s)?;
        let mut manifest = Manifest::new();
        let extensions = doc
            .get("extensions")
            .and_then(Value::as_array)
            .ok_or("manifest: missing `extensions` array")?;
        for (i, ext) in extensions.iter().enumerate() {
            let field = |key: &str| {
                ext.get(key).ok_or_else(|| format!("manifest: extension {i}: missing `{key}`"))
            };
            let str_field = |key: &str| {
                field(key)?
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("manifest: extension {i}: `{key}` must be a string"))
            };
            let point_name = str_field("insertion_point")?;
            let insertion_point = InsertionPoint::from_name(&point_name).ok_or_else(|| {
                format!("manifest: extension {i}: unknown insertion point `{point_name}`")
            })?;
            let helpers = field("helpers")?
                .as_array()
                .ok_or_else(|| format!("manifest: extension {i}: `helpers` must be an array"))?
                .iter()
                .map(|h| {
                    h.as_str().map(str::to_string).ok_or_else(|| {
                        format!("manifest: extension {i}: helper names must be strings")
                    })
                })
                .collect::<Result<Vec<String>, String>>()?;
            let fuel = match ext.get("fuel") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    format!("manifest: extension {i}: `fuel` must be a non-negative integer")
                })?),
            };
            let on_fault = match ext.get("on_fault").and_then(Value::as_str) {
                None => OnFault::Fallback,
                Some(s) => {
                    OnFault::parse(s).map_err(|e| format!("manifest: extension {i}: {e}"))?
                }
            };
            manifest.extensions.push(ExtensionSpec {
                name: str_field("name")?,
                // `program` defaults to empty, like the old serde(default).
                program: ext.get("program").and_then(Value::as_str).unwrap_or_default().to_string(),
                insertion_point,
                helpers,
                bytecode: from_hex(&str_field("bytecode")?)
                    .map_err(|e| format!("manifest: extension {i}: bad bytecode: {e}"))?
                    .into(),
                fuel,
                on_fault,
            });
        }
        if let Some(xtra) = doc.get("xtra") {
            let members = xtra.as_object().ok_or("manifest: `xtra` must be an object")?;
            for (key, value) in members {
                let hex = value
                    .as_str()
                    .ok_or_else(|| format!("manifest: xtra `{key}` must be a hex string"))?;
                manifest.xtra.insert(
                    key.clone(),
                    HexBlob(from_hex(hex).map_err(|e| format!("manifest: xtra `{key}`: {e}"))?),
                );
            }
        }
        Ok(manifest)
    }
}

/// Byte blob serialized as a hex string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HexBlob(pub Vec<u8>);

/// Hex encoding used for bytecode and blobs in JSON manifests.
pub fn to_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbgp_vm::insn::build;

    fn sample() -> Manifest {
        let prog = Program::new(vec![build::mov_imm(0, 1), build::exit()]);
        let mut m = Manifest::new();
        m.push(ExtensionSpec::from_program(
            "accept_all",
            "demo",
            InsertionPoint::BgpInboundFilter,
            &["next", "get_peer_info"],
            &prog,
        ));
        m.set_xtra("coords", vec![1, 2, 3, 4]);
        m
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let json = m.to_json();
        assert!(json.contains("bgp_inbound_filter"));
        assert!(json.contains("accept_all"));
        let back = Manifest::from_json(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn policy_fields_round_trip_and_default() {
        let mut m = sample();
        m.extensions[0].fuel = Some(4096);
        m.extensions[0].on_fault = OnFault::Abort;
        let json = m.to_json();
        assert!(json.contains("\"fuel\""));
        assert!(json.contains("\"abort\""));
        let back = Manifest::from_json(&json).unwrap();
        assert_eq!(back, m);

        // Defaults are omitted on the wire and restored on parse.
        let plain = sample().to_json();
        assert!(!plain.contains("on_fault"));
        let back = Manifest::from_json(&plain).unwrap();
        assert_eq!(back.extensions[0].fuel, None);
        assert_eq!(back.extensions[0].on_fault, OnFault::Fallback);

        // Bad values are rejected with the manifest error style.
        let bad =
            plain.replace("\"program\": \"demo\"", "\"program\": \"demo\", \"on_fault\": \"x\"");
        assert!(Manifest::from_json(&bad).unwrap_err().contains("unknown on_fault"));
    }

    #[test]
    fn bytecode_decodes_back_to_program() {
        let m = sample();
        let prog = m.extensions[0].program().unwrap();
        assert_eq!(prog.insns.len(), 2);
    }

    #[test]
    fn helper_name_resolution() {
        let m = sample();
        assert_eq!(m.extensions[0].helper_ids().unwrap(), vec![1, 4]);

        let mut bad = m.extensions[0].clone();
        bad.helpers.push("no_such_helper".into());
        assert!(bad.helper_ids().is_err());
    }

    #[test]
    fn hex_codec() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(from_hex("00ff1a").unwrap(), vec![0x00, 0xff, 0x1a]);
        assert!(from_hex("0").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn malformed_json_reports_error() {
        assert!(Manifest::from_json("{").is_err());
        assert!(Manifest::from_json(r#"{"extensions":[{"name":"x"}]}"#).is_err());
    }
}
